/**
 * @file
 * The central equivalence property: the cycle-accurate execution path
 * (SoftMC host -> module FSM -> fault injector) and the closed-form
 * analytic engine predict the same bit flips for the same test.
 *
 * The benches rely on the analytic path for speed; this test is what
 * makes that substitution sound.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <set>

#include "core/hammer_session.hh"
#include "core/tester.hh"
#include "fuzz/gene.hh"
#include "rhmodel/kernel.hh"
#include "util/hash.hh"

namespace
{

using namespace rhs;
using namespace rhs::rhmodel;

/** Quantize nominal conditions to the host clock the cycle path uses. */
Conditions
quantized(const dram::TimingParams &timing, Conditions conditions)
{
    conditions.tAggOn = timing.toNs(timing.toCycles(
        conditions.tAggOn > 0 ? conditions.tAggOn : timing.tRAS));
    conditions.tAggOff = timing.toNs(timing.toCycles(
        conditions.tAggOff > 0 ? conditions.tAggOff : timing.tRP));
    return conditions;
}

struct Scenario
{
    Mfr mfr;
    unsigned victim;
    double temperature;
    double tAggOn;
    double tAggOff;
};

class EquivalenceTest : public ::testing::TestWithParam<Scenario>
{
};

TEST_P(EquivalenceTest, CyclePathMatchesAnalyticPath)
{
    const auto scenario = GetParam();
    DimmOptions options;
    options.subarraysPerBank = 4; // Small bank keeps the test fast.
    SimulatedDimm dimm(scenario.mfr, 0, options);
    const auto &timing = dimm.module().timing();

    Conditions nominal;
    nominal.temperature = scenario.temperature;
    nominal.tAggOn = scenario.tAggOn;
    nominal.tAggOff = scenario.tAggOff;
    const auto conditions = quantized(timing, nominal);

    const DataPattern pattern(PatternId::Checkered);
    constexpr std::uint64_t hammers = 150'000;

    // --- Cycle path. ---
    core::CycleTestConfig config;
    config.victimPhysicalRow = scenario.victim;
    config.conditions = conditions;
    config.hammers = hammers;
    const auto cycle =
        core::runCycleHammerTest(dimm, pattern, config);

    // --- Analytic path (same quantized conditions). ---
    const auto attack =
        HammerAttack::doubleSided(0, scenario.victim);
    const auto analytic = dimm.analytic().berTest(
        scenario.victim, attack, conditions, pattern, hammers, 0);

    // The only legitimate disagreements are cells whose HCfirst sits
    // within a whisker of the hammer count (the cycle path's first
    // activation has a nominal rather than measured off-time).
    const auto &engine = dimm.analytic();
    std::set<std::uint64_t> near_boundary_free_mismatch;
    unsigned analytic_robust = 0;
    for (const auto &cell :
         dimm.cellModel().cellsOfRow(0, scenario.victim)) {
        const double hc = engine.cellHcFirst(
            cell, scenario.victim, attack, conditions, pattern, 0);
        if (hc == kNeverFlips)
            continue;
        const double margin =
            std::abs(hc - static_cast<double>(hammers)) /
            static_cast<double>(hammers);
        if (hc <= hammers && margin > 0.001)
            ++analytic_robust;
    }

    // Every robust analytic flip must appear in the cycle path, and
    // the cycle path may only exceed the analytic count by boundary
    // cells.
    EXPECT_GE(cycle.victimFlips(), analytic_robust);
    EXPECT_LE(cycle.victimFlips(), analytic.flips.size() + 2);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, EquivalenceTest,
    ::testing::Values(
        Scenario{Mfr::A, 101, 50.0, 0.0, 0.0},
        Scenario{Mfr::B, 257, 50.0, 0.0, 0.0},
        Scenario{Mfr::B, 258, 70.0, 0.0, 0.0},
        Scenario{Mfr::C, 333, 50.0, 94.5, 0.0},
        Scenario{Mfr::D, 512, 50.0, 0.0, 32.5},
        Scenario{Mfr::B, 771, 90.0, 154.5, 0.0},
        Scenario{Mfr::A, 900, 85.0, 64.5, 24.5}));

TEST(EquivalenceTest, SideVictimsMatchToo)
{
    DimmOptions options;
    options.subarraysPerBank = 4;
    SimulatedDimm dimm(Mfr::B, 0, options);
    const auto &timing = dimm.module().timing();

    Conditions conditions = quantized(timing, Conditions{});
    const DataPattern pattern(PatternId::RowStripe);
    const unsigned victim = 400;
    constexpr std::uint64_t hammers = 400'000;

    core::CycleTestConfig config;
    config.victimPhysicalRow = victim;
    config.conditions = conditions;
    config.hammers = hammers;
    const auto cycle = core::runCycleHammerTest(dimm, pattern, config);

    const auto attack = HammerAttack::doubleSided(0, victim);
    for (int offset : {-2, 2}) {
        const auto analytic = dimm.analytic().berTest(
            victim + offset, attack, conditions, pattern, hammers, 0);
        const auto it = cycle.flipsByOffset.find(offset);
        ASSERT_NE(it, cycle.flipsByOffset.end());
        EXPECT_NEAR(static_cast<double>(it->second),
                    static_cast<double>(analytic.flips.size()), 2.0)
            << "offset " << offset;
    }
}

// --- The row-evaluation kernel vs the probe-per-call reference -----
//
// The batched kernel (AnalyticEngine::rowEval) replaced a path that
// re-evaluated cellHcFirst for every cell on every probe. These tests
// re-implement that old path verbatim on top of cellHcFirst — which is
// still the property-tested single-cell reference — and require the
// kernel-backed berTest / rowHcFirst / hcFirstSearch /
// findWorstCasePattern to be byte-identical: same flip locations in
// the same order, bit-equal HCfirst doubles, same search results.

RowBerResult
referenceBerTest(const AnalyticEngine &engine, unsigned victim,
                 const HammerAttack &attack, const Conditions &conditions,
                 const DataPattern &pattern, std::uint64_t hammers,
                 unsigned trial)
{
    RowBerResult result;
    const auto &cells =
        engine.cellModel().cellsOfRow(attack.bank, victim);
    result.vulnerableCells = static_cast<unsigned>(cells.size());
    for (const auto &cell : cells) {
        const double hc = engine.cellHcFirst(cell, victim, attack,
                                             conditions, pattern, trial);
        if (hc <= static_cast<double>(hammers))
            result.flips.push_back(cell.loc);
    }
    return result;
}

double
referenceRowHcFirst(const AnalyticEngine &engine, unsigned victim,
                    const HammerAttack &attack,
                    const Conditions &conditions,
                    const DataPattern &pattern, unsigned trial)
{
    double best = kNeverFlips;
    for (const auto &cell :
         engine.cellModel().cellsOfRow(attack.bank, victim)) {
        best = std::min(best,
                        engine.cellHcFirst(cell, victim, attack,
                                           conditions, pattern, trial));
    }
    return best;
}

std::uint64_t
referenceHcFirstSearch(const AnalyticEngine &engine, unsigned bank,
                       unsigned victim, const Conditions &conditions,
                       const DataPattern &pattern, unsigned trial)
{
    const auto attack = HammerAttack::doubleSided(bank, victim);
    auto flips_at = [&](std::uint64_t hammers) {
        return !referenceBerTest(engine, victim, attack, conditions,
                                 pattern, hammers, trial)
                    .flips.empty();
    };
    if (!flips_at(core::kMaxHammers))
        return core::kNotVulnerable;
    std::uint64_t hammers = core::kHcFirstInitial;
    std::uint64_t best = core::kMaxHammers;
    for (std::uint64_t delta = core::kHcFirstInitialDelta;
         delta >= core::kHcFirstAccuracy; delta /= 2) {
        if (flips_at(hammers)) {
            best = std::min(best, hammers);
            hammers = hammers > delta ? hammers - delta
                                      : core::kHcFirstAccuracy;
        } else {
            hammers = std::min(hammers + delta, core::kMaxHammers);
        }
    }
    if (flips_at(hammers))
        best = std::min(best, hammers);
    return best;
}

struct KernelScenario
{
    Mfr mfr;
    PatternId pattern;
    std::uint64_t seed;
    double temperature;
    double tAggOn;  //!< 0 = keep the default.
    double tAggOff; //!< 0 = keep the default.
};

class RowEvalKernelTest : public ::testing::TestWithParam<KernelScenario>
{
  protected:
    RowEvalKernelTest()
        : dimm(GetParam().mfr, 0, smallBank()), tester(dimm)
    {
        const auto s = GetParam();
        pattern = DataPattern(s.pattern, s.seed);
        conditions.temperature = s.temperature;
        if (s.tAggOn > 0)
            conditions.tAggOn = s.tAggOn;
        if (s.tAggOff > 0)
            conditions.tAggOff = s.tAggOff;
    }

    static DimmOptions
    smallBank()
    {
        DimmOptions options;
        options.subarraysPerBank = 4; // Small bank keeps the test fast.
        return options;
    }

    SimulatedDimm dimm;
    core::Tester tester;
    DataPattern pattern{PatternId::Checkered};
    Conditions conditions;
};

/** Restore auto dispatch when a forcing test ends (even on failure). */
struct SimdVariantGuard
{
    ~SimdVariantGuard() { kern::setVariant("auto"); }
};

/** Bit-exact digest of one RowEval (order-sensitive). */
std::uint64_t
digestEval(std::uint64_t digest, const RowEval &eval)
{
    digest = util::hashCombine(digest, eval.vulnerableCells);
    digest = util::hashCombine(
        digest, std::bit_cast<std::uint64_t>(eval.minHcFirst));
    for (double hc : eval.hcFirst)
        digest =
            util::hashCombine(digest, std::bit_cast<std::uint64_t>(hc));
    for (const auto &loc : eval.loc) {
        digest = util::hashCombine(
            digest, util::hashTuple(loc.chip, loc.bank, loc.row,
                                    loc.column, loc.bit));
    }
    return digest;
}

TEST_P(RowEvalKernelTest, BerAndHcFirstByteIdenticalToReference)
{
    // The whole property matrix runs once per SIMD variant supported
    // on this host, each against a fresh dimm (so the RowEval cache
    // cannot launder results computed by another variant), and every
    // variant must be byte-identical to the probe-per-call reference —
    // which pins all variants to each other.
    const SimdVariantGuard guard;
    const std::vector<unsigned> rows{2, 150, 151, 152, 153, 1021};

    // The reference path (cellHcFirst) never enters the kernel; one
    // pass over the matrix supplies the expectations for all variants.
    struct Expected
    {
        std::vector<RowBerResult> ber;
        double rowHcFirst = 0.0;
        std::uint64_t search = 0;
    };
    const std::vector<std::uint64_t> hammer_counts{50'000, 150'000,
                                                   512'000};
    std::vector<Expected> expected;
    {
        const auto &engine = dimm.analytic();
        for (unsigned row : rows) {
            const auto attack = HammerAttack::doubleSided(0, row);
            for (unsigned trial = 0; trial < core::kRepetitions;
                 ++trial) {
                Expected e;
                for (std::uint64_t hammers : hammer_counts) {
                    e.ber.push_back(referenceBerTest(engine, row, attack,
                                                     conditions, pattern,
                                                     hammers, trial));
                }
                e.rowHcFirst = referenceRowHcFirst(
                    engine, row, attack, conditions, pattern, trial);
                e.search = referenceHcFirstSearch(
                    engine, 0, row, conditions, pattern, trial);
                expected.push_back(std::move(e));
            }
        }
    }

    const auto variants = kern::supportedVariants();
    ASSERT_FALSE(variants.empty());
    std::vector<std::uint64_t> digests;
    for (kern::Simd simd : variants) {
        SCOPED_TRACE(kern::name(simd));
        kern::forceVariant(simd);
        SimulatedDimm fresh(GetParam().mfr, 0, smallBank());
        core::Tester fresh_tester(fresh);
        const auto &engine = fresh.analytic();
        std::uint64_t digest = 0;
        std::size_t at = 0;
        for (unsigned row : rows) {
            const auto attack = HammerAttack::doubleSided(0, row);
            for (unsigned trial = 0; trial < core::kRepetitions;
                 ++trial, ++at) {
                const auto &e = expected[at];
                for (std::size_t h = 0; h < hammer_counts.size(); ++h) {
                    const auto kernel =
                        engine.berTest(row, attack, conditions, pattern,
                                       hammer_counts[h], trial);
                    const auto &reference = e.ber[h];
                    EXPECT_EQ(kernel.vulnerableCells,
                              reference.vulnerableCells);
                    ASSERT_EQ(kernel.flips.size(),
                              reference.flips.size())
                        << "row " << row << " trial " << trial
                        << " hammers " << hammer_counts[h];
                    for (std::size_t i = 0; i < kernel.flips.size(); ++i)
                        EXPECT_EQ(kernel.flips[i], reference.flips[i]);
                }
                // Bit-equal doubles, not just close: the kernel hoists
                // factors and runs wide lanes, but must not
                // reassociate the arithmetic.
                EXPECT_EQ(engine.rowHcFirst(row, attack, conditions,
                                            pattern, trial),
                          e.rowHcFirst)
                    << "row " << row << " trial " << trial;
                EXPECT_EQ(fresh_tester.hcFirstSearch(0, row, conditions,
                                                     pattern, trial),
                          e.search)
                    << "row " << row << " trial " << trial;
                digest = digestEval(
                    digest, *engine.rowEval(row, attack, conditions,
                                            pattern, trial));
            }
        }
        digests.push_back(digest);
    }
    for (std::size_t v = 1; v < digests.size(); ++v) {
        EXPECT_EQ(digests[0], digests[v])
            << kern::name(variants[0]) << " vs "
            << kern::name(variants[v]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, RowEvalKernelTest,
    ::testing::Values(
        KernelScenario{Mfr::A, PatternId::Checkered, 0, 50.0, 0.0, 0.0},
        KernelScenario{Mfr::B, PatternId::CheckeredInv, 0, 70.0, 0.0,
                       0.0},
        KernelScenario{Mfr::C, PatternId::RowStripe, 0, 90.0, 154.5,
                       0.0},
        KernelScenario{Mfr::D, PatternId::ColStripe, 0, 50.0, 0.0, 40.5},
        KernelScenario{Mfr::B, PatternId::Random, 7, 50.0, 0.0, 0.0},
        KernelScenario{Mfr::B, PatternId::Random, 12345, 85.0, 64.5,
                       24.5}));

TEST(RowEvalWcdpTest, FindWorstCasePatternMatchesSerialReference)
{
    DimmOptions options;
    options.subarraysPerBank = 4;
    SimulatedDimm dimm(Mfr::B, 0, options);
    core::Tester tester(dimm);
    const auto &engine = dimm.analytic();
    const std::vector<unsigned> sample{150, 151, 152, 153};
    Conditions conditions;

    // The old serial scan: total reference-path flips per Table 1
    // pattern, first strictly greater total wins.
    DataPattern best(PatternId::ColStripe);
    std::uint64_t best_flips = 0;
    bool first = true;
    for (auto id : allPatterns) {
        const DataPattern candidate(id, dimm.module().info().serial);
        std::uint64_t flips = 0;
        for (unsigned row : sample) {
            const auto attack = HammerAttack::doubleSided(0, row);
            flips += referenceBerTest(engine, row, attack, conditions,
                                      candidate, core::kBerHammers, 0)
                         .flips.size();
        }
        if (first || flips > best_flips) {
            best = candidate;
            best_flips = flips;
            first = false;
        }
    }

    const auto wcdp = tester.findWorstCasePattern(0, sample, conditions);
    EXPECT_EQ(wcdp.id(), best.id());
}

TEST(RowEvalFuzzedPatternTest, NonUniformGeneByteIdenticalAcrossVariants)
{
    // A fuzzed non-uniform gene (many-sided, mixed frequency/phase/
    // amplitude on the slot grid) lowers to an attack with repeated
    // aggressor entries; every SIMD variant must evaluate it
    // byte-identically, and identically to the cellHcFirst reference.
    const SimdVariantGuard guard;
    fuzz::PatternGene gene;
    gene.slots = 8;
    gene.patternCenter = 151;
    gene.aggressors.push_back({149, 1, 0, 1});
    gene.aggressors.push_back({151, 2, 1, 2});
    gene.aggressors.push_back({153, 4, 3, 1});
    const auto attack = gene.lower();
    const Conditions conditions;
    const DataPattern pattern(PatternId::Checkered);

    DimmOptions options;
    options.subarraysPerBank = 4;
    const auto victims = gene.victims(
        SimulatedDimm(Mfr::B, 0, options)
            .module()
            .geometry()
            .rowsPerBank() -
        2);
    ASSERT_FALSE(victims.empty());

    // Reference expectations never enter the kernel.
    std::vector<double> expected;
    {
        SimulatedDimm dimm(Mfr::B, 0, options);
        for (unsigned victim : victims)
            expected.push_back(referenceRowHcFirst(
                dimm.analytic(), victim, attack, conditions, pattern,
                0));
    }

    const auto variants = kern::supportedVariants();
    ASSERT_FALSE(variants.empty());
    std::vector<std::uint64_t> digests;
    for (kern::Simd simd : variants) {
        SCOPED_TRACE(kern::name(simd));
        kern::forceVariant(simd);
        SimulatedDimm fresh(Mfr::B, 0, options);
        const auto &engine = fresh.analytic();
        std::uint64_t digest = 0;
        for (std::size_t v = 0; v < victims.size(); ++v) {
            EXPECT_EQ(engine.rowHcFirst(victims[v], attack, conditions,
                                        pattern, 0),
                      expected[v])
                << "victim " << victims[v];
            digest = digestEval(
                digest, *engine.rowEval(victims[v], attack, conditions,
                                        pattern, 0));
        }
        digests.push_back(digest);
    }
    for (std::size_t v = 1; v < digests.size(); ++v) {
        EXPECT_EQ(digests[0], digests[v])
            << kern::name(variants[0]) << " vs "
            << kern::name(variants[v]);
    }
}

TEST(EquivalenceTest, AggressorRowsAreImmune)
{
    // Activation restores the aggressor's own cells: the cycle path
    // must report no flips in the aggressor rows.
    DimmOptions options;
    options.subarraysPerBank = 4;
    SimulatedDimm dimm(Mfr::B, 0, options);
    Conditions conditions =
        quantized(dimm.module().timing(), Conditions{});

    core::CycleTestConfig config;
    config.victimPhysicalRow = 600;
    config.conditions = conditions;
    config.hammers = 400'000;
    const auto cycle = core::runCycleHammerTest(
        dimm, DataPattern(PatternId::Checkered), config);
    EXPECT_EQ(cycle.flipsByOffset.at(-1), 0u);
    EXPECT_EQ(cycle.flipsByOffset.at(1), 0u);
}

} // namespace

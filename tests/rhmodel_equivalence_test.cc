/**
 * @file
 * The central equivalence property: the cycle-accurate execution path
 * (SoftMC host -> module FSM -> fault injector) and the closed-form
 * analytic engine predict the same bit flips for the same test.
 *
 * The benches rely on the analytic path for speed; this test is what
 * makes that substitution sound.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/hammer_session.hh"
#include "core/tester.hh"

namespace
{

using namespace rhs;
using namespace rhs::rhmodel;

/** Quantize nominal conditions to the host clock the cycle path uses. */
Conditions
quantized(const dram::TimingParams &timing, Conditions conditions)
{
    conditions.tAggOn = timing.toNs(timing.toCycles(
        conditions.tAggOn > 0 ? conditions.tAggOn : timing.tRAS));
    conditions.tAggOff = timing.toNs(timing.toCycles(
        conditions.tAggOff > 0 ? conditions.tAggOff : timing.tRP));
    return conditions;
}

struct Scenario
{
    Mfr mfr;
    unsigned victim;
    double temperature;
    double tAggOn;
    double tAggOff;
};

class EquivalenceTest : public ::testing::TestWithParam<Scenario>
{
};

TEST_P(EquivalenceTest, CyclePathMatchesAnalyticPath)
{
    const auto scenario = GetParam();
    DimmOptions options;
    options.subarraysPerBank = 4; // Small bank keeps the test fast.
    SimulatedDimm dimm(scenario.mfr, 0, options);
    const auto &timing = dimm.module().timing();

    Conditions nominal;
    nominal.temperature = scenario.temperature;
    nominal.tAggOn = scenario.tAggOn;
    nominal.tAggOff = scenario.tAggOff;
    const auto conditions = quantized(timing, nominal);

    const DataPattern pattern(PatternId::Checkered);
    constexpr std::uint64_t hammers = 150'000;

    // --- Cycle path. ---
    core::CycleTestConfig config;
    config.victimPhysicalRow = scenario.victim;
    config.conditions = conditions;
    config.hammers = hammers;
    const auto cycle =
        core::runCycleHammerTest(dimm, pattern, config);

    // --- Analytic path (same quantized conditions). ---
    const auto attack =
        HammerAttack::doubleSided(0, scenario.victim);
    const auto analytic = dimm.analytic().berTest(
        scenario.victim, attack, conditions, pattern, hammers, 0);

    // The only legitimate disagreements are cells whose HCfirst sits
    // within a whisker of the hammer count (the cycle path's first
    // activation has a nominal rather than measured off-time).
    const auto &engine = dimm.analytic();
    std::set<std::uint64_t> near_boundary_free_mismatch;
    unsigned analytic_robust = 0;
    for (const auto &cell :
         dimm.cellModel().cellsOfRow(0, scenario.victim)) {
        const double hc = engine.cellHcFirst(
            cell, scenario.victim, attack, conditions, pattern, 0);
        if (hc == kNeverFlips)
            continue;
        const double margin =
            std::abs(hc - static_cast<double>(hammers)) /
            static_cast<double>(hammers);
        if (hc <= hammers && margin > 0.001)
            ++analytic_robust;
    }

    // Every robust analytic flip must appear in the cycle path, and
    // the cycle path may only exceed the analytic count by boundary
    // cells.
    EXPECT_GE(cycle.victimFlips(), analytic_robust);
    EXPECT_LE(cycle.victimFlips(), analytic.flips.size() + 2);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, EquivalenceTest,
    ::testing::Values(
        Scenario{Mfr::A, 101, 50.0, 0.0, 0.0},
        Scenario{Mfr::B, 257, 50.0, 0.0, 0.0},
        Scenario{Mfr::B, 258, 70.0, 0.0, 0.0},
        Scenario{Mfr::C, 333, 50.0, 94.5, 0.0},
        Scenario{Mfr::D, 512, 50.0, 0.0, 32.5},
        Scenario{Mfr::B, 771, 90.0, 154.5, 0.0},
        Scenario{Mfr::A, 900, 85.0, 64.5, 24.5}));

TEST(EquivalenceTest, SideVictimsMatchToo)
{
    DimmOptions options;
    options.subarraysPerBank = 4;
    SimulatedDimm dimm(Mfr::B, 0, options);
    const auto &timing = dimm.module().timing();

    Conditions conditions = quantized(timing, Conditions{});
    const DataPattern pattern(PatternId::RowStripe);
    const unsigned victim = 400;
    constexpr std::uint64_t hammers = 400'000;

    core::CycleTestConfig config;
    config.victimPhysicalRow = victim;
    config.conditions = conditions;
    config.hammers = hammers;
    const auto cycle = core::runCycleHammerTest(dimm, pattern, config);

    const auto attack = HammerAttack::doubleSided(0, victim);
    for (int offset : {-2, 2}) {
        const auto analytic = dimm.analytic().berTest(
            victim + offset, attack, conditions, pattern, hammers, 0);
        const auto it = cycle.flipsByOffset.find(offset);
        ASSERT_NE(it, cycle.flipsByOffset.end());
        EXPECT_NEAR(static_cast<double>(it->second),
                    static_cast<double>(analytic.flips.size()), 2.0)
            << "offset " << offset;
    }
}

TEST(EquivalenceTest, AggressorRowsAreImmune)
{
    // Activation restores the aggressor's own cells: the cycle path
    // must report no flips in the aggressor rows.
    DimmOptions options;
    options.subarraysPerBank = 4;
    SimulatedDimm dimm(Mfr::B, 0, options);
    Conditions conditions =
        quantized(dimm.module().timing(), Conditions{});

    core::CycleTestConfig config;
    config.victimPhysicalRow = 600;
    config.conditions = conditions;
    config.hammers = 400'000;
    const auto cycle = core::runCycleHammerTest(
        dimm, DataPattern(PatternId::Checkered), config);
    EXPECT_EQ(cycle.flipsByOffset.at(-1), 0u);
    EXPECT_EQ(cycle.flipsByOffset.at(1), 0u);
}

} // namespace

/**
 * @file
 * Unit tests for the report layer: JSON model, escaping, number
 * formatting, parse/write round-trips, and the rhs-report/1 envelope
 * schema validation that `rhs-bench --check` gates on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <unistd.h>

#include "report/document.hh"
#include "report/json.hh"
#include "report/writer.hh"

namespace
{

using namespace rhs::report;

// --- Json model -----------------------------------------------------

TEST(JsonTest, TypesAndAccessors)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_TRUE(Json(true).asBool());
    EXPECT_EQ(Json(42).asInt(), 42);
    EXPECT_DOUBLE_EQ(Json(2.5).asDouble(), 2.5);
    EXPECT_EQ(Json("abc").asString(), "abc");
    EXPECT_TRUE(Json(7).isNumber());
    EXPECT_TRUE(Json(7.0).isNumber());
    // An Int node is readable as a double without loss.
    EXPECT_DOUBLE_EQ(Json(7).asDouble(), 7.0);
}

TEST(JsonTest, ObjectPreservesInsertionOrder)
{
    auto object = Json::object();
    object.set("zulu", 1);
    object.set("alpha", 2);
    object.set("mike", 3);
    ASSERT_EQ(object.members().size(), 3u);
    EXPECT_EQ(object.members()[0].first, "zulu");
    EXPECT_EQ(object.members()[1].first, "alpha");
    EXPECT_EQ(object.members()[2].first, "mike");
    // Re-setting an existing key keeps its original slot.
    object.set("alpha", 9);
    EXPECT_EQ(object.members()[1].first, "alpha");
    EXPECT_EQ(object.at("alpha").asInt(), 9);
}

TEST(JsonTest, ArrayPushAndIndex)
{
    auto array = Json::array();
    array.push(1);
    array.push("two");
    array.push(3.0);
    ASSERT_EQ(array.size(), 3u);
    EXPECT_EQ(array.at(0).asInt(), 1);
    EXPECT_EQ(array.at(1).asString(), "two");
    EXPECT_DOUBLE_EQ(array.at(2).asDouble(), 3.0);
}

// --- Escaping -------------------------------------------------------

TEST(WriterTest, EscapesControlAndSpecialCharacters)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("a\nb\tc"), "a\\nb\\tc");
    // Bare control characters must come out as \u escapes.
    EXPECT_EQ(JsonWriter::escape(std::string("\x01", 1)), "\\u0001");
}

TEST(WriterTest, EscapedStringsRoundTrip)
{
    const std::string nasty = "q\"uo\\te\n\r\t\x01 end";
    auto object = Json::object();
    object.set("text", nasty);

    Json parsed;
    std::string error;
    ASSERT_TRUE(
        Json::parse(JsonWriter().toString(object), parsed, error))
        << error;
    EXPECT_EQ(parsed.at("text").asString(), nasty);
}

// --- Number formatting ----------------------------------------------

TEST(WriterTest, FormatDoubleRoundTripsExactly)
{
    for (double value : {0.0, 1.0, -1.5, 0.1, 1e-12, 3.0e20,
                         0.30000000000000004, 154.5}) {
        const std::string text = formatDouble(value);
        EXPECT_DOUBLE_EQ(std::stod(text), value) << text;
    }
}

TEST(WriterTest, WriteFileCreatesMissingDirectories)
{
    namespace fs = std::filesystem;
    const fs::path root = fs::temp_directory_path() /
        ("rhs-writer-test-" + std::to_string(::getpid()));
    const fs::path nested = root / "a" / "b" / "out.json";
    fs::remove_all(root);

    auto value = Json::object();
    value.set("ok", true);
    JsonWriter().writeFile(nested.string(), value);

    std::ifstream in(nested);
    ASSERT_TRUE(in.is_open());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::parse(text, parsed, error)) << error;
    EXPECT_TRUE(parsed.at("ok").asBool());
    fs::remove_all(root);
}

TEST(WriterTest, DocumentRoundTripIsIdentical)
{
    auto object = Json::object();
    object.set("int", 7);
    object.set("neg", -3);
    object.set("real", 0.1);
    object.set("flag", true);
    object.set("nothing", Json());
    auto array = Json::array();
    array.push(1.5);
    array.push("x");
    object.set("list", std::move(array));

    const std::string first = JsonWriter().toString(object);
    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::parse(first, parsed, error)) << error;
    EXPECT_TRUE(parsed == object);
    // write(parse(write(x))) is byte-stable.
    EXPECT_EQ(JsonWriter().toString(parsed), first);
}

TEST(JsonTest, ParseRejectsMalformedDocuments)
{
    Json parsed;
    std::string error;
    EXPECT_FALSE(Json::parse("", parsed, error));
    EXPECT_FALSE(Json::parse("{", parsed, error));
    EXPECT_FALSE(Json::parse("{\"a\":}", parsed, error));
    EXPECT_FALSE(Json::parse("[1,]", parsed, error));
    EXPECT_FALSE(Json::parse("{} trailing", parsed, error));
    EXPECT_FALSE(Json::parse("\"unterminated", parsed, error));
}

// --- Document envelope ----------------------------------------------

/** A minimal but complete document, as the driver would emit it. */
Document
sampleDocument()
{
    Document doc;
    doc.experiment = "unit_test";
    doc.title = "Unit test document";
    doc.source = "tests/report_test.cc";
    doc.git = "deadbeef";
    doc.modulesPerMfr = 1;
    doc.maxRows = 18;
    doc.rowsPerRegion = 7;
    doc.jobs = 2;
    doc.seed = 0;
    doc.smoke = true;
    doc.wallSeconds = 0.25;
    doc.addSeries("plain", {1.0, 2.0, 3.0});
    doc.addSeries("labelled", {"a", "b"}, {4.0, 5.0});
    doc.data.set("extra", 11);
    doc.check("unit_check", "Obsv. 0", "one equals one", true, "1==1");
    return doc;
}

TEST(DocumentTest, EmittedEnvelopeValidates)
{
    const auto doc = sampleDocument();
    const auto json = doc.toJson();
    EXPECT_EQ(json.at("schema").asString(), kSchema);

    std::string error;
    EXPECT_TRUE(Document::validate(json, error)) << error;

    // And it still validates after a serialize/parse cycle.
    Json parsed;
    ASSERT_TRUE(
        Json::parse(JsonWriter().toString(json), parsed, error))
        << error;
    EXPECT_TRUE(Document::validate(parsed, error)) << error;
}

TEST(DocumentTest, CheckRecordsVerdicts)
{
    Document doc;
    EXPECT_TRUE(doc.check("a", "ref", "passes", true));
    EXPECT_TRUE(doc.allChecksPass());
    EXPECT_FALSE(doc.check("b", "ref", "fails", false, "saw 2"));
    EXPECT_FALSE(doc.allChecksPass());
    ASSERT_EQ(doc.checks.size(), 2u);
    EXPECT_EQ(doc.checks[1].observed, "saw 2");
}

TEST(DocumentTest, ValidateRejectsBadEnvelopes)
{
    std::string error;

    // Unknown schema revision.
    auto wrong_schema = sampleDocument().toJson();
    wrong_schema.set("schema", "rhs-report/999");
    EXPECT_FALSE(Document::validate(wrong_schema, error));

    // A document with no checks is not a reproduction.
    Document unchecked = sampleDocument();
    unchecked.checks.clear();
    EXPECT_FALSE(Document::validate(unchecked.toJson(), error));

    // Non-objects and empty objects fail on the first required member.
    EXPECT_FALSE(Document::validate(Json("not an object"), error));
    EXPECT_FALSE(Document::validate(Json::object(), error));

    // A labels array whose length disagrees with values is rejected.
    Document skewed = sampleDocument();
    skewed.series[1].labels.push_back("extra");
    EXPECT_FALSE(Document::validate(skewed.toJson(), error));
}

} // namespace

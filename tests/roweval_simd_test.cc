/**
 * @file
 * Smoke tests for the row-evaluation kernel's SIMD dispatch: every
 * variant supported on this host (plus the always-present scalar
 * build) must produce byte-identical RowEval curves, publish its
 * identity through the obs metrics, and survive concurrent use of the
 * dispatched kernel through the RowEval cache (the TSan preset runs
 * this suite — test names start with "RowEvalSimd" so the existing
 * RowEval preset filters pick them up).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "rhmodel/dimm.hh"
#include "rhmodel/kernel.hh"
#include "util/hash.hh"

namespace
{

using namespace rhs;
using namespace rhs::rhmodel;

/** Restore auto dispatch when a forcing test ends (even on failure). */
struct SimdVariantGuard
{
    ~SimdVariantGuard() { kern::setVariant("auto"); }
};

DimmOptions
smallBank()
{
    DimmOptions options;
    options.subarraysPerBank = 4;
    return options;
}

/** Bit-exact digest of a handful of RowEval curves on a fresh dimm. */
std::uint64_t
evalDigest(Mfr mfr, const DataPattern &pattern)
{
    SimulatedDimm dimm(mfr, 0, smallBank());
    const auto &engine = dimm.analytic();
    Conditions conditions;
    std::uint64_t digest = 0;
    for (unsigned row : {150u, 151u, 152u}) {
        const auto attack = HammerAttack::doubleSided(0, row);
        for (unsigned trial = 0; trial < 2; ++trial) {
            const auto eval =
                engine.rowEval(row, attack, conditions, pattern, trial);
            digest = util::hashCombine(digest, eval->vulnerableCells);
            digest = util::hashCombine(
                digest, std::bit_cast<std::uint64_t>(eval->minHcFirst));
            for (double hc : eval->hcFirst)
                digest = util::hashCombine(
                    digest, std::bit_cast<std::uint64_t>(hc));
        }
    }
    return digest;
}

TEST(RowEvalSimdSmoke, ScalarIsAlwaysCompiledAndSupported)
{
    const auto compiled = kern::compiledVariants();
    const auto supported = kern::supportedVariants();
    EXPECT_NE(std::find(compiled.begin(), compiled.end(),
                        kern::Simd::Scalar),
              compiled.end());
    ASSERT_FALSE(supported.empty());
    for (kern::Simd simd : supported) {
        EXPECT_TRUE(kern::cpuSupports(simd)) << kern::name(simd);
        EXPECT_NE(std::find(compiled.begin(), compiled.end(), simd),
                  compiled.end())
            << kern::name(simd);
    }
}

TEST(RowEvalSimdSmoke, EveryVariantMatchesScalarAndPublishesMetrics)
{
    const SimdVariantGuard guard;
    auto &registry = obs::Registry::global();

    kern::forceVariant(kern::Simd::Scalar);
    const std::uint64_t scalar_digest =
        evalDigest(Mfr::B, DataPattern(PatternId::Random, 7));

    for (kern::Simd simd : kern::supportedVariants()) {
        SCOPED_TRACE(kern::name(simd));
        kern::forceVariant(simd);

        // Dispatch identity is published for fleet debugging: the
        // ordinal as a gauge, the name as an info label — both under
        // one metric name, picked up by the rhs-serve stats snapshot.
        EXPECT_EQ(registry.gauge("roweval.simd.variant").value(),
                  static_cast<int>(simd));
        EXPECT_EQ(registry.info("roweval.simd.variant").value(),
                  kern::name(simd));
        EXPECT_EQ(kern::active().id, simd);

        auto &passes = registry.counter(
            std::string("roweval.kernel.passes.") + kern::name(simd));
        const std::uint64_t passes_before = passes.value();
        EXPECT_EQ(evalDigest(Mfr::B, DataPattern(PatternId::Random, 7)),
                  scalar_digest);
        EXPECT_GT(passes.value(), passes_before);
    }
}

TEST(RowEvalSimdSmoke, SetVariantValidatesNames)
{
    const SimdVariantGuard guard;
    std::string error;
    EXPECT_FALSE(kern::setVariant("sse9", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_TRUE(kern::setVariant("scalar", &error)) << error;
    EXPECT_EQ(kern::active().id, kern::Simd::Scalar);
    EXPECT_TRUE(kern::setVariant("auto", &error)) << error;
    // auto = the best supported variant (last in worst-to-best order).
    EXPECT_EQ(kern::active().id, kern::supportedVariants().back());
}

TEST(RowEvalSimdSmoke, ConcurrentDispatchedKernelCacheStress)
{
    // TSan target: many threads drive the dispatched kernel through
    // the sharded RowEval cache on one dimm, with overlapping keys so
    // cache fills race with hits. Every thread must read the same
    // curves regardless of which thread's kernel pass populated an
    // entry.
    SimulatedDimm dimm(Mfr::B, 0, smallBank());
    const auto &engine = dimm.analytic();
    const DataPattern pattern(PatternId::Checkered);
    Conditions conditions;

    constexpr unsigned kThreads = 8;
    std::vector<std::uint64_t> digests(kThreads, 0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            std::uint64_t digest = 0;
            // Each thread starts at a different row so misses and hits
            // interleave differently per thread.
            for (unsigned step = 0; step < 12; ++step) {
                const unsigned row = 150 + (t + step) % 6;
                const auto attack = HammerAttack::doubleSided(0, row);
                const auto eval = engine.rowEval(row, attack, conditions,
                                                 pattern, step % 2);
                digest = util::hashCombine(
                    digest,
                    std::bit_cast<std::uint64_t>(eval->minHcFirst));
                digest = util::hashCombine(digest, eval->hcFirst.size());
            }
            digests[t] = digest;
        });
    }
    for (auto &thread : threads)
        thread.join();
    // Replay each thread's key sequence serially (all cached now) and
    // check the concurrent run read exactly the same curves.
    for (unsigned t = 0; t < kThreads; ++t) {
        std::uint64_t digest = 0;
        for (unsigned step = 0; step < 12; ++step) {
            const unsigned row = 150 + (t + step) % 6;
            const auto attack = HammerAttack::doubleSided(0, row);
            const auto eval =
                engine.rowEval(row, attack, conditions, pattern, step % 2);
            digest = util::hashCombine(
                digest, std::bit_cast<std::uint64_t>(eval->minHcFirst));
            digest = util::hashCombine(digest, eval->hcFirst.size());
        }
        EXPECT_EQ(digests[t], digest) << "thread " << t;
    }
}

} // namespace

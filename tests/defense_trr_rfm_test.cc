/**
 * @file
 * Tests for the in-DRAM mitigations: sampling TRR (and its
 * TRRespass-style many-sided bypass) and DDR5 RFM.
 */

#include <gtest/gtest.h>

#include "defense/evaluate.hh"
#include "defense/rfm.hh"
#include "defense/trr.hh"
#include "rhmodel/dimm.hh"

namespace
{

using namespace rhs;
using namespace rhs::defense;
using namespace rhs::rhmodel;

TEST(TrrUnitTest, TracksDistinctRowsUpToCapacity)
{
    InDramTrr trr(2);
    trr.onActivation({0, 10});
    trr.onActivation({0, 12});
    trr.onActivation({0, 10}); // Re-activation: refreshes recency.
    EXPECT_EQ(trr.trackedCount(), 2u);
    trr.onActivation({0, 14}); // Evicts the oldest (12).
    EXPECT_EQ(trr.trackedCount(), 2u);

    const auto victims = trr.onRefresh();
    // Tracked rows 10 and 14 -> victims 9, 11, 13, 15.
    EXPECT_EQ(victims.size(), 4u);
    EXPECT_EQ(trr.trackedCount(), 0u);
}

TEST(TrrUnitTest, SamplingIntervalSkipsActivations)
{
    InDramTrr trr(8, 4); // Sample every 4th activation.
    for (unsigned i = 0; i < 8; ++i)
        trr.onActivation({0, 100 + i});
    EXPECT_EQ(trr.trackedCount(), 2u);
}

TEST(TrrUnitTest, NeverActsOutsideRefresh)
{
    InDramTrr trr(4);
    for (int i = 0; i < 100; ++i) {
        const auto action = trr.onActivation({0, 7});
        EXPECT_TRUE(action.refreshRows.empty());
        EXPECT_FALSE(action.throttle);
    }
}

TEST(RfmUnitTest, IssuesRfmAtRaaThreshold)
{
    Rfm rfm(32, 16);
    unsigned refresh_batches = 0;
    for (int i = 0; i < 96; ++i) {
        const auto action = rfm.onActivation({0, 5});
        if (!action.refreshRows.empty())
            ++refresh_batches;
    }
    EXPECT_EQ(rfm.rfmCount(), 3u);
    EXPECT_EQ(refresh_batches, 3u);
}

TEST(RfmUnitTest, RaaCountersArePerBank)
{
    Rfm rfm(10, 16);
    for (int i = 0; i < 9; ++i) {
        rfm.onActivation({0, 1});
        rfm.onActivation({1, 2});
    }
    EXPECT_EQ(rfm.rfmCount(), 0u);
    rfm.onActivation({0, 1});
    EXPECT_EQ(rfm.rfmCount(), 1u);
}

TEST(RfmUnitTest, DeterministicProtectionPredicate)
{
    EXPECT_TRUE(Rfm(16, 16).providesDeterministicProtection());
    EXPECT_FALSE(Rfm(64, 16).providesDeterministicProtection());
}

class TrrEvaluationTest : public ::testing::Test
{
  protected:
    TrrEvaluationTest() : dimm(Mfr::B, 0, smallOptions()),
                          pattern(PatternId::Checkered)
    {
        config.hammers = 80'000;
        // tREFI-equivalent: one refresh command per ~150 activations.
        config.refreshEveryActivations = 150;
    }

    /**
     * Find a many-sided attack position whose sandwiched victims
     * include a weak row (keeps the hammer budget small).
     */
    HammerAttack
    weakManySided(unsigned sides)
    {
        Conditions conditions;
        for (unsigned base = 100; base < 4000; base += 2 * sides) {
            const auto attack =
                HammerAttack::manySided(0, base, sides);
            const auto victims = attack.sandwichedVictims();
            // Only consider victims that are NOT adjacent to the two
            // most-recently-hammered aggressors (those stay in a
            // 2-entry tracker at REF time and get protected even by
            // a synchronized attack).
            for (std::size_t v = 0; v + 2 < victims.size(); ++v) {
                const double hc = dimm.analytic().rowHcFirst(
                    victims[v], attack, conditions, pattern, 0);
                if (hc < 60'000.0)
                    return attack;
            }
        }
        ADD_FAILURE() << "no weak many-sided position found";
        return HammerAttack::manySided(0, 100, sides);
    }

    static DimmOptions
    smallOptions()
    {
        DimmOptions options;
        options.subarraysPerBank = 4;
        return options;
    }

    SimulatedDimm dimm;
    DataPattern pattern;
    AttackConfig config;
};

TEST_F(TrrEvaluationTest, TrrStopsTheDoubleSidedAttack)
{
    // Double-sided: 2 distinct aggressors fit a 4-entry tracker, so
    // every victim is refreshed at every REF.
    config.hammers = 120'000;
    config.victimPhysicalRow = 200;
    InDramTrr trr(4);
    const auto result = evaluateDefense(dimm, trr, pattern, config);
    EXPECT_EQ(result.flips, 0u);
    EXPECT_GT(result.refreshes, 0u);
}

TEST_F(TrrEvaluationTest, SynchronizedManySidedAttackBypassesTrr)
{
    // TRRespass/SMASH: 8 aggressors against a 2-entry tracker, with
    // the refresh period *synchronized* to the attack round (19 rounds
    // of 8 activations per REF). The tracker then always holds the
    // same two rows at REF time, so the victims of the other six
    // accumulate disturbance unchecked.
    config.attack = weakManySided(8);
    config.refreshEveryActivations = 8 * 19;
    InDramTrr trr(2);

    const auto undefended =
        evaluateUndefended(dimm, pattern, config);
    ASSERT_GT(undefended.flips, 0u);

    const auto result = evaluateDefense(dimm, trr, pattern, config);
    EXPECT_GT(result.flips, 0u) << "TRR should NOT stop TRRespass";
}

TEST_F(TrrEvaluationTest, UnsynchronizedAttackIsLargelyMitigated)
{
    // Without tREFI synchronization the tracker phase rotates across
    // the aggressor set, so every victim is refreshed now and then:
    // the same attack loses most (here: all) of its flips.
    config.attack = weakManySided(8);
    config.refreshEveryActivations = 150; // Coprime to the round.
    InDramTrr trr(2);
    const auto undefended =
        evaluateUndefended(dimm, pattern, config);
    ASSERT_GT(undefended.flips, 0u);
    const auto result = evaluateDefense(dimm, trr, pattern, config);
    EXPECT_LT(result.flips, undefended.flips);
}

TEST_F(TrrEvaluationTest, BiggerTrackerRestoresProtection)
{
    config.attack = weakManySided(8);
    config.refreshEveryActivations = 8 * 19; // Synchronized, but...
    InDramTrr trr(8); // ...the tracker covers the whole attack.
    const auto result = evaluateDefense(dimm, trr, pattern, config);
    EXPECT_EQ(result.flips, 0u);
}

TEST_F(TrrEvaluationTest, RfmStopsTheManySidedAttack)
{
    // RFM's guaranteed-capacity queue (Silver Bullet style) does what
    // sampling TRR cannot.
    config.attack = weakManySided(8);
    config.refreshEveryActivations = 0; // RFM needs no periodic REF.
    Rfm rfm(16, 16);
    ASSERT_TRUE(rfm.providesDeterministicProtection());
    const auto result = evaluateDefense(dimm, rfm, pattern, config);
    EXPECT_EQ(result.flips, 0u);
    EXPECT_GT(rfm.rfmCount(), 0u);
}

TEST(ManySidedAttackTest, GeometryAndVictims)
{
    const auto attack = HammerAttack::manySided(0, 100, 4);
    EXPECT_EQ(attack.aggressorRows,
              (std::vector<unsigned>{100, 102, 104, 106}));
    EXPECT_EQ(attack.sandwichedVictims(),
              (std::vector<unsigned>{101, 103, 105}));
    EXPECT_EQ(attack.patternCenter, 103u);
}

TEST(ManySidedAttackTest, SandwichedVictimsFlipLikeDoubleSided)
{
    // Each sandwiched victim has aggressors on both sides, so the
    // per-victim damage rate equals the classic double-sided attack.
    SimulatedDimm dimm(Mfr::B, 0);
    const DataPattern pattern(PatternId::Checkered);
    Conditions conditions;

    const auto many = HammerAttack::manySided(0, 700, 4);
    const unsigned victim = many.sandwichedVictims()[1];
    const auto ds = HammerAttack::doubleSided(0, victim);

    for (const auto &cell : dimm.cellModel().cellsOfRow(0, victim)) {
        const double a = dimm.analytic().hammerDamage(
            cell, victim, many, conditions, pattern);
        const double b = dimm.analytic().hammerDamage(
            cell, victim, ds, conditions, pattern);
        // Many-sided adds small distance-2 contributions on top.
        EXPECT_GE(a, b);
        EXPECT_LE(a, b * 1.5);
    }
}

} // namespace

/**
 * @file
 * Tests for the memory-controller scheduler and its row-buffer
 * policies (the Defense Improvement 5 substrate).
 */

#include <gtest/gtest.h>

#include "mc/scheduler.hh"

namespace
{

using namespace rhs;
using namespace rhs::mc;

dram::Module
makeModule()
{
    dram::Geometry g;
    g.banks = 4;
    g.subarraysPerBank = 8;
    g.rowsPerSubarray = 512;
    g.columnsPerRow = 64;
    dram::ModuleInfo info;
    info.label = "MC";
    info.chips = 2;
    info.serial = 0x3C;
    return dram::Module(info, g, dram::ddr4_2400(),
                        dram::makeIdentityMapping());
}

TEST(TraceTest, GeneratorHonoursConfig)
{
    TraceConfig config;
    config.requests = 5'000;
    config.banks = 4;
    config.rows = 256;
    const auto trace = makeTrace(config);
    ASSERT_EQ(trace.size(), 5'000u);
    dram::Cycles prev = 0;
    for (const auto &request : trace) {
        EXPECT_LT(request.bank, 4u);
        EXPECT_LT(request.row, 256u);
        EXPECT_GE(request.arrival, prev);
        prev = request.arrival;
    }
}

TEST(TraceTest, LocalityControlsRowReuse)
{
    TraceConfig local;
    local.rowLocality = 0.9;
    local.seed = 3;
    TraceConfig random;
    random.rowLocality = 0.0;
    random.seed = 3;

    auto reuse = [](const std::vector<MemRequest> &trace) {
        std::map<unsigned, unsigned> last;
        unsigned hits = 0;
        for (const auto &request : trace) {
            auto it = last.find(request.bank);
            if (it != last.end() && it->second == request.row)
                ++hits;
            last[request.bank] = request.row;
        }
        return hits;
    };
    EXPECT_GT(reuse(makeTrace(local)), reuse(makeTrace(random)));
}

class PolicyTest : public ::testing::TestWithParam<RowPolicy>
{
};

TEST_P(PolicyTest, ServicesTraceWithoutTimingViolations)
{
    auto module = makeModule();
    Scheduler scheduler(module, GetParam());
    TraceConfig config;
    config.requests = 4'000;
    const auto trace = makeTrace(config);
    ScheduleStats stats;
    EXPECT_NO_THROW(stats = scheduler.run(trace));
    EXPECT_EQ(stats.requests, 4'000u);
    EXPECT_GT(stats.activations, 0u);
    // Every activation window is eventually closed and measured.
    EXPECT_EQ(stats.onTimes.size(), stats.activations);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(RowPolicy::OpenPage,
                                           RowPolicy::ClosedPage,
                                           RowPolicy::TimeoutPage));

TEST(PolicyComparisonTest, OpenPageKeepsRowsActiveLongest)
{
    TraceConfig config;
    config.requests = 8'000;
    config.rowLocality = 0.7;
    const auto trace = makeTrace(config);

    auto mean_on_time = [&](RowPolicy policy) {
        auto module = makeModule();
        Scheduler scheduler(module, policy, 100.0);
        return scheduler.run(trace).meanOnTime();
    };

    const double open = mean_on_time(RowPolicy::OpenPage);
    const double closed = mean_on_time(RowPolicy::ClosedPage);
    const double timeout = mean_on_time(RowPolicy::TimeoutPage);

    // Defense Improvement 5: closing rows promptly bounds the
    // aggressor active time Obsv. 8 shows drives vulnerability.
    EXPECT_GT(open, timeout);
    EXPECT_GT(timeout, closed * 0.99);
    EXPECT_LT(closed, 60.0); // Near tRAS + column budget.
}

TEST(PolicyComparisonTest, OpenPageHasBestHitRate)
{
    TraceConfig config;
    config.requests = 8'000;
    config.rowLocality = 0.7;
    const auto trace = makeTrace(config);

    auto run = [&](RowPolicy policy) {
        auto module = makeModule();
        Scheduler scheduler(module, policy, 100.0);
        return scheduler.run(trace);
    };

    const auto open = run(RowPolicy::OpenPage);
    const auto closed = run(RowPolicy::ClosedPage);
    // The performance cost of bounding active time: fewer row hits,
    // more activations (the trade-off Improvement 5 accepts).
    EXPECT_GT(open.hitRate(), closed.hitRate());
    EXPECT_LT(open.activations, closed.activations);
}

TEST(PolicyComparisonTest, TimeoutBoundsTailActiveTime)
{
    TraceConfig config;
    config.requests = 6'000;
    config.rowLocality = 0.8;
    config.meanInterarrival = 40.0; // Sparse: long idle windows.
    const auto trace = makeTrace(config);

    auto max_on_time = [&](RowPolicy policy, double timeout_ns) {
        auto module = makeModule();
        Scheduler scheduler(module, policy, timeout_ns);
        const auto stats = scheduler.run(trace);
        double worst = 0.0;
        for (double t : stats.onTimes)
            worst = std::max(worst, t);
        return worst;
    };

    const double open = max_on_time(RowPolicy::OpenPage, 100.0);
    const double bounded = max_on_time(RowPolicy::TimeoutPage, 100.0);
    EXPECT_LT(bounded, open);
}

} // namespace

/**
 * @file
 * Full-stack integration tests: temperature controller + SoftMC host +
 * device model + fault injector, exercised the way the paper's
 * infrastructure runs a characterization campaign.
 */

#include <gtest/gtest.h>

#include "attack/long_aggressor.hh"
#include "core/hammer_session.hh"
#include "core/tester.hh"
#include "softmc/temperature_controller.hh"

namespace
{

using namespace rhs;
using namespace rhs::rhmodel;

DimmOptions
smallBank()
{
    DimmOptions options;
    options.subarraysPerBank = 4;
    return options;
}

TEST(IntegrationTest, FullCampaignStep)
{
    // One full experimental step as the paper would run it: settle the
    // temperature, install the pattern, hammer, read back, diff.
    SimulatedDimm dimm(Mfr::B, 0, smallBank());

    softmc::TemperatureController controller;
    controller.setTarget(70.0);
    ASSERT_TRUE(controller.settle(0.1));

    core::CycleTestConfig config;
    config.victimPhysicalRow = 300;
    config.conditions.temperature = controller.measure();
    config.hammers = 300'000;

    const auto result = core::runCycleHammerTest(
        dimm, DataPattern(PatternId::Checkered), config);

    // The double-sided victim flips more than the single-sided ones.
    EXPECT_GT(result.victimFlips(), 0u);
    EXPECT_GE(result.victimFlips(), result.flipsByOffset.at(2));
    EXPECT_GE(result.victimFlips(), result.flipsByOffset.at(-2));

    // Attack duration: 300K hammers x 2 ACTs x ~51 ns ≈ 31 ms,
    // within the 64 ms refresh window the paper's tests respect.
    EXPECT_LT(result.elapsedNs, 64e6);
    EXPECT_GT(result.elapsedNs, 10e6);
}

TEST(IntegrationTest, MoreHammersMoreFlips)
{
    SimulatedDimm dimm(Mfr::B, 0, smallBank());
    DataPattern pattern(PatternId::Checkered);

    core::CycleTestConfig few;
    few.victimPhysicalRow = 500;
    few.hammers = 60'000;
    const auto few_flips =
        core::runCycleHammerTest(dimm, pattern, few).victimFlips();

    core::CycleTestConfig many = few;
    many.hammers = 480'000;
    const auto many_flips =
        core::runCycleHammerTest(dimm, pattern, many).victimFlips();
    EXPECT_GE(many_flips, few_flips);
    EXPECT_GT(many_flips, 0u);
}

TEST(IntegrationTest, ReadBurstAttackBeatsBaseline)
{
    // Attack improvement 3 end-to-end: extending the on-time with
    // READ bursts produces more flips for the same hammer count.
    SimulatedDimm baseline_dimm(Mfr::A, 0, smallBank());
    SimulatedDimm burst_dimm(Mfr::A, 0, smallBank());
    DataPattern pattern(PatternId::Checkered);

    core::CycleTestConfig config;
    config.victimPhysicalRow = 700;
    config.hammers = 150'000;

    const auto baseline =
        core::runCycleHammerTest(baseline_dimm, pattern, config);

    config.readsPerActivation = 15;
    config.conditions.tAggOn = attack::effectiveOnTime(
        burst_dimm.module().timing(), 15);
    const auto burst =
        core::runCycleHammerTest(burst_dimm, pattern, config);

    EXPECT_GE(burst.victimFlips(), baseline.victimFlips());
    EXPECT_GT(burst.victimFlips(), 0u);
}

TEST(IntegrationTest, RepeatedTestsAreReproducible)
{
    SimulatedDimm a(Mfr::C, 0, smallBank());
    SimulatedDimm b(Mfr::C, 0, smallBank());
    DataPattern pattern(PatternId::RowStripe);

    core::CycleTestConfig config;
    config.victimPhysicalRow = 321;
    config.hammers = 250'000;

    const auto first = core::runCycleHammerTest(a, pattern, config);
    const auto second = core::runCycleHammerTest(b, pattern, config);
    EXPECT_EQ(first.victimFlips(), second.victimFlips());
    EXPECT_EQ(first.flipsByOffset, second.flipsByOffset);
}

TEST(IntegrationTest, RefreshWindowBudget)
{
    // The paper caps HCfirst tests at 512K hammers so a test fits in
    // 64 ms (footnote in §4.2): verify the timing arithmetic.
    SimulatedDimm dimm(Mfr::A, 0, smallBank());
    const auto &timing = dimm.module().timing();
    const double hammer_ns =
        timing.toNs(timing.toCycles(timing.tRAS) +
                    timing.toCycles(timing.tRP)) *
        2.0;
    EXPECT_LT(512'000.0 * hammer_ns, 64e6);
}

} // namespace

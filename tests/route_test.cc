/**
 * @file
 * Tests for the rhs-route subsystem: consistent-hash ring properties
 * (determinism, balance, removal stability), the replica health state
 * machine, byte-identity of routed replies against direct engine
 * calls, replica failover mid-batch without losing or duplicating a
 * request, and the client's reconnect-with-backoff.
 *
 * Fleet tests run shards and router in one process on ephemeral
 * loopback ports. Suite names all start with "Route" — the tsan and
 * obs-off presets' filters select them by that prefix.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <map>
#include <memory>
#include <netinet/in.h>
#include <set>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "obs/export.hh"
#include "route/hash_ring.hh"
#include "route/health.hh"
#include "route/router.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/query_engine.hh"
#include "serve/server.hh"

namespace
{

using namespace rhs;

// --- Hash ring -------------------------------------------------------

TEST(RouteRingTest, DeterministicAcrossInstances)
{
    const route::HashRing a(4, 64);
    const route::HashRing b(4, 64);
    for (unsigned module = 0; module < 8; ++module)
        for (unsigned bank = 0; bank < 16; ++bank) {
            const auto key = route::HashRing::bankKey('A', module, bank);
            EXPECT_EQ(a.ownerOf(key), b.ownerOf(key)) << key;
        }
}

TEST(RouteRingTest, BalancedAcrossShards)
{
    const route::HashRing ring(4, 64);
    std::vector<unsigned> counts(4, 0);
    unsigned total = 0;
    for (const char mfr : {'A', 'B', 'C', 'D'})
        for (unsigned module = 0; module < 16; ++module)
            for (unsigned bank = 0; bank < 16; ++bank) {
                ++counts[ring.ownerOf(
                    route::HashRing::bankKey(mfr, module, bank))];
                ++total;
            }
    // Every shard owns a meaningful share: within 2x either way of
    // the fair 1/4 (64 vnodes keeps real skew far tighter; the loose
    // bound keeps the test stable if the hash ever changes).
    for (unsigned shard = 0; shard < 4; ++shard) {
        EXPECT_GT(counts[shard], total / 8u) << "shard " << shard;
        EXPECT_LT(counts[shard], total / 2u) << "shard " << shard;
    }
}

TEST(RouteRingTest, RemovingAShardOnlyMovesItsOwnKeys)
{
    const route::HashRing four(4, 64);
    const route::HashRing three(3, 64);
    unsigned moved = 0, kept = 0;
    for (const char mfr : {'A', 'B'})
        for (unsigned module = 0; module < 16; ++module)
            for (unsigned bank = 0; bank < 16; ++bank) {
                const auto key =
                    route::HashRing::bankKey(mfr, module, bank);
                if (four.ownerOf(key) == 3) {
                    ++moved; // Owner gone; key must remap somewhere.
                    EXPECT_LT(three.ownerOf(key), 3u);
                } else {
                    ++kept; // Surviving shards keep their keys.
                    EXPECT_EQ(three.ownerOf(key), four.ownerOf(key))
                        << key;
                }
            }
    EXPECT_GT(moved, 0u);
    EXPECT_GT(kept, 0u);
}

// --- Health state machine (no live servers needed) -------------------

route::Endpoint
deadEndpoint(unsigned short port)
{
    route::Endpoint endpoint;
    endpoint.host = "127.0.0.1";
    endpoint.port = port; // Nothing listens there.
    return endpoint;
}

TEST(RouteHealthTest, ProbeStreaksDriveUpDownTransitions)
{
    route::HealthConfig config;
    config.failThreshold = 2;
    config.riseThreshold = 1;
    route::HealthMonitor monitor(
        config, {{deadEndpoint(1), deadEndpoint(2)}});

    // Replicas start optimistic (up) so the first dial gets a chance.
    EXPECT_TRUE(monitor.isUp(0, 0));
    EXPECT_EQ(monitor.pickUp(0, 0), 0);

    // One failed sweep: below the threshold, still up.
    monitor.probeSweep();
    EXPECT_TRUE(monitor.isUp(0, 0));

    // Second failed sweep crosses failThreshold: down.
    monitor.probeSweep();
    EXPECT_FALSE(monitor.isUp(0, 0));
    EXPECT_FALSE(monitor.isUp(0, 1));
    EXPECT_EQ(monitor.pickUp(0, 0), -1);

    const auto snapshot = monitor.snapshot();
    EXPECT_EQ(snapshot[0][0].probes, 2u);
    EXPECT_EQ(snapshot[0][0].probeFailures, 2u);
}

TEST(RouteHealthTest, DataPathFailureDropsReplicaImmediately)
{
    route::HealthConfig config;
    config.failThreshold = 3; // Probes would need three sweeps...
    route::HealthMonitor monitor(
        config, {{deadEndpoint(1), deadEndpoint(2)}});

    monitor.reportFailure(0, 0); // ...but the data path knows now.
    EXPECT_FALSE(monitor.isUp(0, 0));
    EXPECT_EQ(monitor.pickUp(0, 0), 1); // Next replica clockwise.

    // A live-probe success brings it back (riseThreshold default 1 is
    // exercised through applyProbe via a real fleet test below; here
    // verify pickUp's clockwise fallback shape only.)
    monitor.reportFailure(0, 1);
    EXPECT_EQ(monitor.pickUp(0, 0), -1);
}

// --- Fleet fixture ---------------------------------------------------

/** A raw pipelined rhs-rpc/1 connection (send many, then read). */
class RawConn
{
  public:
    ~RawConn() { close(); }

    bool
    connect(unsigned short port)
    {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return false;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        return ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof addr) == 0;
    }

    bool
    sendBytes(const std::string &bytes)
    {
        std::size_t done = 0;
        while (done < bytes.size()) {
            const ssize_t sent =
                ::send(fd, bytes.data() + done, bytes.size() - done,
                       MSG_NOSIGNAL);
            if (sent <= 0)
                return false;
            done += static_cast<std::size_t>(sent);
        }
        return true;
    }

    bool
    recvFrame(std::string &body)
    {
        return serve::readFrame(fd, body) == serve::FrameStatus::Ok;
    }

    void
    close()
    {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }

  private:
    int fd = -1;
};

/** Shards + router in-process; replicas per shard as configured. */
class RouteFleetTest : public ::testing::Test
{
  protected:
    void
    startFleet(const std::vector<unsigned> &replicas_per_shard,
               serve::ServerConfig server_config = {},
               route::RouterConfig router_config = {})
    {
        server_config.port = 0;
        router_config.port = 0;
        for (const unsigned replicas : replicas_per_shard) {
            ASSERT_GT(replicas, 0u);
            std::vector<route::Endpoint> endpoints;
            for (unsigned r = 0; r < replicas; ++r) {
                auto server =
                    std::make_unique<serve::Server>(server_config);
                server->start();
                ASSERT_GT(server->port(), 0);
                route::Endpoint endpoint;
                endpoint.port = server->port();
                endpoints.push_back(std::move(endpoint));
                servers.push_back(std::move(server));
            }
            router_config.shards.push_back(std::move(endpoints));
        }
        // Test-speed knobs: quick probes, quick redials.
        router_config.health.probeIntervalMs = 50;
        router_config.health.failThreshold = 2;
        router_config.health.riseThreshold = 1;
        router_config.redialBackoffMs = 10;
        router = std::make_unique<route::Router>(router_config);
        router->start();
        ASSERT_GT(router->port(), 0);
    }

    void
    TearDown() override
    {
        if (router)
            router->stop();
        for (auto &server : servers)
            if (server)
                server->stop();
    }

    /** servers[] index of shard `shard`'s replica `replica`. */
    std::size_t
    serverIndex(unsigned shard, unsigned replica) const
    {
        std::size_t index = 0;
        for (unsigned s = 0; s < shard; ++s)
            index += router->health().snapshot()[s].size();
        return index + replica;
    }

    std::vector<std::unique_ptr<serve::Server>> servers;
    std::unique_ptr<route::Router> router;
};

TEST_F(RouteFleetTest, RoutedRepliesMatchDirectEngineBytes)
{
    startFleet({1, 1});
    serve::QueryEngine direct;

    const std::vector<std::string> bodies = {
        R"({"op": "row_hcfirst", "id": 1, "mfr": "A", "bank": 0,)"
        R"( "row": 5})",
        R"({"op": "ber", "id": 2, "mfr": "A", "bank": 3, "row": 7,)"
        R"( "hammers": 20000})",
        R"({"op": "worst_pattern", "id": 3, "mfr": "B", "bank": 1,)"
        R"( "rows": [3, 5]})",
        R"({"op": "profile_slice", "id": 4, "mfr": "B", "bank": 2,)"
        R"( "row0": 10, "count": 4})",
        // Error paths must be byte-identical too.
        R"({"op": "row_hcfirst", "id": 5, "row": 0})",
        R"({"op": "ber", "row": 5})",
    };

    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", router->port()));
    for (const std::string &body : bodies) {
        const std::string routed = client.callRaw(body);
        ASSERT_FALSE(routed.empty()) << body;
        EXPECT_EQ(routed, direct.executeRaw(body)) << body;
    }

    // Control ops are served by the router itself.
    EXPECT_TRUE(client.ping(9));
    const auto stats = client.stats(10);
    EXPECT_EQ(stats.at("role").asString(), "router");
    EXPECT_EQ(stats.at("shards").asInt(), 2);
}

TEST_F(RouteFleetTest, FailoverMidBatchLosesAndDuplicatesNothing)
{
    // Two replicas on the single shard; slow the batch clock down so
    // the replica kill lands mid-pipeline.
    serve::ServerConfig server_config;
    server_config.serviceDelayUs = 2000;
    startFleet({2}, server_config);
    serve::QueryEngine direct;

    constexpr unsigned kRequests = 40;
    std::map<std::int64_t, std::string> expected;
    std::string pipelined;
    for (unsigned i = 0; i < kRequests; ++i) {
        const std::int64_t id = 1000 + i;
        const std::string body =
            R"({"op": "row_hcfirst", "id": )" + std::to_string(id) +
            R"(, "row": )" + std::to_string(1 + i) + "}";
        expected[id] = direct.executeRaw(body);
        pipelined += serve::encodeFrame(body);
    }

    RawConn conn;
    ASSERT_TRUE(conn.connect(router->port()));
    ASSERT_TRUE(conn.sendBytes(pipelined));

    // Kill the shard's first replica (the one the forwarder dialed
    // first) while the batch is in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    servers[serverIndex(0, 0)]->stop();

    // Every request must come back exactly once, byte-identical to
    // the direct engine — none lost to the dead replica, none
    // duplicated by the failover resend, no error replies surfaced.
    std::set<std::int64_t> seen;
    for (unsigned i = 0; i < kRequests; ++i) {
        std::string reply;
        ASSERT_TRUE(conn.recvFrame(reply)) << "reply " << i;
        report::Json parsed;
        std::string error;
        ASSERT_TRUE(report::Json::parse(reply, parsed, error));
        const std::int64_t id = parsed.at("id").asInt();
        EXPECT_TRUE(parsed.at("ok").asBool())
            << serve::serialize(parsed);
        EXPECT_TRUE(seen.insert(id).second)
            << "duplicate reply for id " << id;
        ASSERT_EQ(expected.count(id), 1u);
        EXPECT_EQ(reply, expected[id]);
    }
    EXPECT_EQ(seen.size(), kRequests);

    // The surviving replica carried the tail of the batch.
    const auto health = router->health().snapshot();
    EXPECT_TRUE(health[0][1].up);
}

TEST_F(RouteFleetTest, DrainAnswersEverythingInFlight)
{
    startFleet({1});
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", router->port()));
    const std::string reply = client.callRaw(
        R"({"op": "row_hcfirst", "id": 1, "row": 9})");
    ASSERT_FALSE(reply.empty());
    router->stop();
    // After the drain, new connections are refused or reset; the
    // already-received reply above is the invariant that matters.
    EXPECT_EQ(router->connectionCount(), 0u);
}

// --- PR 10: trace propagation and fleet aggregation -------------------

TEST_F(RouteFleetTest, TracedRequestsRouteByteIdentical)
{
    startFleet({1, 1});
    serve::QueryEngine direct;
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", router->port()));

    for (unsigned k = 0; k < 8; ++k) {
        auto request = report::Json::object();
        const char mfr[2] = {"ABCD"[k % 4], '\0'};
        request.set("op", "row_hcfirst");
        request.set("id", static_cast<std::int64_t>(100 + k));
        request.set("mfr", mfr);
        request.set("bank", k % 4);
        request.set("row", 3 + k);
        const std::string plain = serve::serialize(request);
        auto trace = report::Json::object();
        trace.set("id", "0000feed0000face0000000000000000");
        trace.set("parent", std::int64_t{k + 1});
        request.set("trace", std::move(trace));
        // Routed with a trace attached == direct engine without one:
        // the context survives the router's id rewrite and fan-out
        // without leaking a byte into the reply.
        const std::string routed =
            client.callRaw(serve::serialize(request));
        ASSERT_FALSE(routed.empty());
        EXPECT_EQ(routed, direct.executeRaw(plain));
    }
}

TEST_F(RouteFleetTest, GarbageTraceErrorBytesMatchShard)
{
    startFleet({1});
    serve::Client through_router, to_shard;
    ASSERT_TRUE(
        through_router.connect("127.0.0.1", router->port()));
    ASSERT_TRUE(
        to_shard.connect("127.0.0.1", servers[0]->port()));

    // The router validates the member before forwarding; its error
    // reply must be byte-identical to what the shard itself answers,
    // so clients cannot tell the tiers apart on the error path.
    const std::vector<std::string> bad_bodies = {
        R"({"op": "ber", "id": 70, "row": 5, "trace": []})",
        R"({"op": "ber", "id": 71, "row": 5, "trace": {"id": "zz"}})",
        R"({"op": "ber", "id": 72, "row": 5, "trace":)"
        R"( {"id": "0123456789abcdef0123456789abcdef0"}})",
        R"({"op": "ber", "id": 73, "row": 5, "trace": {"id": "1",)"
        R"( "parent": -3}})",
    };
    for (const std::string &body : bad_bodies) {
        const std::string routed = through_router.callRaw(body);
        const std::string direct = to_shard.callRaw(body);
        ASSERT_FALSE(routed.empty()) << body;
        EXPECT_EQ(routed, direct) << body;
        report::Json response;
        std::string error;
        ASSERT_TRUE(report::Json::parse(routed, response, error));
        EXPECT_TRUE(
            serve::isError(response, serve::err::kBadRequest));
    }
    // Neither connection was torn down.
    EXPECT_TRUE(through_router.ping(80));
    EXPECT_TRUE(to_shard.ping(81));
}

TEST_F(RouteFleetTest, FleetStatsMergesEveryShard)
{
    startFleet({1, 1});
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", router->port()));

    // Drive work onto both shards so the merge has real counters.
    for (unsigned k = 0; k < 12; ++k) {
        auto request = report::Json::object();
        const char mfr[2] = {"ABCD"[k % 4], '\0'};
        request.set("op", "row_hcfirst");
        request.set("id", static_cast<std::int64_t>(200 + k));
        request.set("mfr", mfr);
        request.set("bank", k % 4);
        request.set("row", 5 + k);
        report::Json response;
        ASSERT_TRUE(client.call(request, response));
    }

    // A shard writes its response bytes before the responses_sent
    // increment lands, so a fleet_stats fired immediately after the
    // last reply can see the counter one short. Poll until the fleet
    // snapshot settles at >= 12 (it always does within a few ms).
    report::Json response;
    std::int64_t merged = 0;
    for (int attempt = 0; attempt < 200; ++attempt) {
        auto request = report::Json::object();
        request.set("op", "fleet_stats");
        request.set("id", static_cast<std::int64_t>(300 + attempt));
        ASSERT_TRUE(client.call(request, response));
        ASSERT_TRUE(response.at("ok").asBool());
        const report::Json &server =
            response.at("result").at("merged").at("server");
        merged =
            server.at("counters").at("responses_sent").asInt();
        const std::int64_t observed = server.at("histograms")
                                          .at("latency_ms")
                                          .at("count")
                                          .asInt();
        if (merged >= 12 &&
            (!obs::kCompiledIn || observed == merged))
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const report::Json &fleet = response.at("result");

    EXPECT_EQ(fleet.at("replicas_reached").asInt(), 2);
    // Merged counters are the exact sum of the per-shard raw stats.
    std::int64_t summed = 0;
    const report::Json &per_shard = fleet.at("per_shard");
    ASSERT_EQ(per_shard.size(), 2u);
    for (std::size_t i = 0; i < per_shard.size(); ++i)
        summed +=
            per_shard.at(i).at("stats").at("responses_sent").asInt();
    EXPECT_EQ(merged, summed);
    EXPECT_GE(merged, 12);
    // The merged latency histogram is a real distribution with sane
    // quantiles. With obs compiled out the servers never observe
    // latency samples, so the merged histogram is legitimately empty.
    const report::Json &hist = fleet.at("merged")
                                   .at("server")
                                   .at("histograms")
                                   .at("latency_ms");
    if (obs::kCompiledIn) {
        EXPECT_EQ(hist.at("count").asInt(),
                  summed); // One latency sample per response.
        EXPECT_LE(hist.at("p50").asDouble(),
                  hist.at("p99").asDouble());
        EXPECT_GE(hist.at("p50").asDouble(),
                  hist.at("min").asDouble());
        EXPECT_LE(hist.at("p99").asDouble(),
                  hist.at("max").asDouble());
    } else {
        EXPECT_EQ(hist.at("count").asInt(), 0);
    }
}

TEST_F(RouteFleetTest, TracePullFansOutToEveryNode)
{
    startFleet({1, 1});
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", router->port()));

    auto request = report::Json::object();
    request.set("op", "trace_pull");
    request.set("id", std::int64_t{400});
    report::Json response;
    ASSERT_TRUE(client.call(request, response));
    ASSERT_TRUE(response.at("ok").asBool());
    const report::Json &nodes = response.at("result").at("nodes");
    // Router + both shards, router first, every entry parseable as a
    // NodeTrace.
    ASSERT_EQ(nodes.size(), 3u);
    EXPECT_EQ(nodes.at(0).at("node").asString().rfind("route:", 0),
              0u);
    unsigned shard_nodes = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        obs::NodeTrace parsed;
        EXPECT_TRUE(obs::nodeTraceFromJson(nodes.at(i), parsed));
        if (parsed.node.rfind("serve:", 0) == 0)
            ++shard_nodes;
    }
    EXPECT_EQ(shard_nodes, 2u);

    // The router applies the same max_spans bound as a shard.
    request.set("id", std::int64_t{401});
    request.set("max_spans",
                static_cast<std::int64_t>(serve::kMaxPullSpans) + 1);
    ASSERT_TRUE(client.call(request, response));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));
    EXPECT_TRUE(client.ping(402));
}

// --- Client reconnect-with-backoff -----------------------------------

TEST(RouteClientTest, ReconnectsAfterServerRestart)
{
    serve::QueryEngine direct;
    const std::string body =
        R"({"op": "row_hcfirst", "id": 5, "row": 12})";
    const std::string expected = direct.executeRaw(body);

    auto first = std::make_unique<serve::Server>();
    first->start();
    const unsigned short port = first->port();

    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    client.setReconnect({/*attempts=*/10, /*backoffMs=*/20});
    EXPECT_EQ(client.callRaw(body), expected);

    // Replace the server on the same port; the old socket is dead.
    first->stop();
    first.reset();
    serve::ServerConfig config;
    config.port = port;
    serve::Server second(config);
    second.start();

    // The call sees ECONNRESET/EPIPE/EOF, redials, and resends.
    EXPECT_EQ(client.callRaw(body), expected);
    EXPECT_TRUE(client.ping(6));
}

} // namespace

/**
 * @file
 * SoftMC host tests: instruction encoding, program building, hammer
 * program timing, and the PID temperature controller.
 */

#include <gtest/gtest.h>

#include "dram/module.hh"
#include "softmc/host.hh"
#include "softmc/program.hh"
#include "softmc/temperature_controller.hh"

namespace
{

using namespace rhs;
using namespace rhs::softmc;

class EncodingTest : public ::testing::TestWithParam<Instruction>
{
};

TEST_P(EncodingTest, RoundTrips)
{
    const auto instruction = GetParam();
    EXPECT_EQ(decode(encode(instruction)), instruction);
}

INSTANTIATE_TEST_SUITE_P(
    Samples, EncodingTest,
    ::testing::Values(
        Instruction{dram::CommandType::Act, 3, 12345, 0, 27},
        Instruction{dram::CommandType::Pre, 7, 0, 0, 0},
        Instruction{dram::CommandType::Rd, 0, 0, 1023, 3},
        Instruction{dram::CommandType::Wr, 15, 0, 4095, 65535},
        Instruction{dram::CommandType::Nop, 0, 0, 0, 100},
        Instruction{dram::CommandType::PreA, 0, 0, 0, 1}));

TEST(ProgramTest, DurationCountsIdles)
{
    Program program;
    program.instructions = {
        {dram::CommandType::Act, 0, 0, 0, 27},
        {dram::CommandType::Pre, 0, 0, 0, 13},
    };
    EXPECT_EQ(program.durationCycles(), 42u);
}

TEST(ProgramBuilderTest, WaitFromLastPadsIdle)
{
    const auto timing = dram::ddr4_2400();
    ProgramBuilder builder(timing);
    builder.act(0, 5).waitFromLast(timing.tRAS).pre(0);
    const auto program = builder.build();
    ASSERT_EQ(program.instructions.size(), 2u);
    // 34.5ns at 1.25ns = 28 cycles; ACT takes one, so 27 idles.
    EXPECT_EQ(program.instructions[0].idle, 27u);
}

dram::Module
makeModule()
{
    dram::Geometry g;
    g.banks = 2;
    g.subarraysPerBank = 4;
    g.rowsPerSubarray = 128;
    g.columnsPerRow = 64;

    dram::ModuleInfo info;
    info.label = "T";
    info.chips = 2;
    info.serial = 99;
    return dram::Module(info, g, dram::ddr4_2400(),
                        dram::makeIdentityMapping());
}

struct TimesListener : dram::ActivationListener
{
    std::vector<dram::ActivationRecord> records;

    void
    onActivation(const dram::ActivationRecord &record) override
    {
        records.push_back(record);
    }
};

TEST(HammerProgramTest, BaselineLoopExecutesAtSpecTimings)
{
    auto module = makeModule();
    TimesListener listener;
    module.addListener(&listener);

    HammerProgramSpec spec;
    spec.aggressorA = 10;
    spec.aggressorB = 12;
    spec.hammers = 50;
    const auto program = makeHammerProgram(module.timing(), spec);

    Host host(module);
    EXPECT_NO_THROW(host.run(program));
    ASSERT_EQ(listener.records.size(), 100u);
    const auto &timing = module.timing();
    for (const auto &record : listener.records) {
        EXPECT_GE(record.onTime, timing.tRAS);
        // Quantized to the 1.25ns host clock: at most one cycle over.
        EXPECT_LE(record.onTime, timing.tRAS + timing.clock);
    }
}

class StretchedOnTimeTest : public ::testing::TestWithParam<double>
{
};

TEST_P(StretchedOnTimeTest, MeasuredOnTimeMatchesRequest)
{
    const double t_on = GetParam();
    auto module = makeModule();
    TimesListener listener;
    module.addListener(&listener);

    HammerProgramSpec spec;
    spec.aggressorA = 20;
    spec.aggressorB = 22;
    spec.hammers = 5;
    spec.tAggOn = t_on;
    Host host(module);
    host.run(makeHammerProgram(module.timing(), spec));

    for (const auto &record : listener.records) {
        EXPECT_GE(record.onTime, t_on - 1e-9);
        EXPECT_LE(record.onTime, t_on + module.timing().clock);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperSweep, StretchedOnTimeTest,
                         ::testing::Values(34.5, 64.5, 94.5, 124.5,
                                           154.5));

class StretchedOffTimeTest : public ::testing::TestWithParam<double>
{
};

TEST_P(StretchedOffTimeTest, MeasuredOffTimeMatchesRequest)
{
    const double t_off = GetParam();
    auto module = makeModule();
    TimesListener listener;
    module.addListener(&listener);

    HammerProgramSpec spec;
    spec.aggressorA = 30;
    spec.aggressorB = 32;
    spec.hammers = 5;
    spec.tAggOff = t_off;
    Host host(module);
    host.run(makeHammerProgram(module.timing(), spec));

    // Skip the first two records (no preceding precharge for each
    // aggressor row's bank gap yet).
    for (std::size_t i = 2; i < listener.records.size(); ++i) {
        EXPECT_GE(listener.records[i].offTime, t_off - 1e-9);
        EXPECT_LE(listener.records[i].offTime,
                  t_off + module.timing().clock);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperSweep, StretchedOffTimeTest,
                         ::testing::Values(16.5, 24.5, 32.5, 40.5));

TEST(HammerProgramTest, ReadBurstExtendsOnTime)
{
    auto module = makeModule();
    TimesListener listener;
    module.addListener(&listener);

    HammerProgramSpec spec;
    spec.aggressorA = 40;
    spec.aggressorB = 42;
    spec.hammers = 3;
    spec.readsPerActivation = 12;
    Host host(module);
    host.run(makeHammerProgram(module.timing(), spec));

    const auto &t = module.timing();
    const double burst =
        t.toNs(t.toCycles(t.tRCD) + 11 * t.toCycles(t.tCCD) +
               t.toCycles(t.tRTP));
    for (const auto &record : listener.records)
        EXPECT_GE(record.onTime, burst - 1e-9);
}

TEST(HammerProgramTest, SingleSidedUsesOneRow)
{
    auto module = makeModule();
    TimesListener listener;
    module.addListener(&listener);

    HammerProgramSpec spec;
    spec.aggressorA = 50;
    spec.aggressorB = 50; // Same row => single-sided.
    spec.hammers = 4;
    Host host(module);
    host.run(makeHammerProgram(module.timing(), spec));
    EXPECT_EQ(listener.records.size(), 4u);
    for (const auto &record : listener.records)
        EXPECT_EQ(record.physicalRow, 50u);
}

TEST(HostTest, ReadDataComesFromOpenRow)
{
    auto module = makeModule();
    std::vector<std::vector<std::uint8_t>> images(
        2, std::vector<std::uint8_t>(module.geometry().bytesPerRow(),
                                     0x3C));
    module.storeRowDirect(0, 6, images);

    const auto &t = module.timing();
    ProgramBuilder builder(t);
    builder.act(0, 6).waitFromLast(t.tRCD).rd(0, 5);
    Host host(module);
    const auto result = host.run(builder.build());
    ASSERT_EQ(result.readData.size(), 1u);
    EXPECT_EQ(result.readData[0],
              (std::vector<std::uint8_t>{0x3C, 0x3C}));
}

TEST(HostTest, RowImageHelpers)
{
    auto module = makeModule();
    Host host(module);
    std::vector<std::vector<std::uint8_t>> images(
        2, std::vector<std::uint8_t>(module.geometry().bytesPerRow(),
                                     0x77));
    host.writeRowImage(0, 11, images);
    EXPECT_EQ(host.readRowImage(0, 11), images);
}

TEST(TemperatureControllerTest, SettlesWithinTolerance)
{
    TemperatureController controller;
    controller.setTarget(75.0);
    ASSERT_TRUE(controller.settle(0.1));
    EXPECT_NEAR(controller.plantTemperature(), 75.0, 0.1);
}

class TemperatureTargetTest : public ::testing::TestWithParam<double>
{
};

TEST_P(TemperatureTargetTest, ReachesEveryPaperSetpoint)
{
    TemperatureController controller;
    controller.setTarget(GetParam());
    ASSERT_TRUE(controller.settle(0.1));
    EXPECT_NEAR(controller.plantTemperature(), GetParam(), 0.1);
}

INSTANTIATE_TEST_SUITE_P(PaperRange, TemperatureTargetTest,
                         ::testing::Values(50.0, 55.0, 60.0, 65.0, 70.0,
                                           75.0, 80.0, 85.0, 90.0));

TEST(TemperatureControllerTest, MeasurementNoiseIsSmall)
{
    TemperatureController controller;
    controller.setTarget(60.0);
    controller.settle(0.1);
    for (int i = 0; i < 100; ++i)
        EXPECT_NEAR(controller.measure(), 60.0, 0.25);
}

TEST(TemperatureControllerTest, HeaterPowerIsBounded)
{
    TemperatureController controller;
    controller.setTarget(90.0);
    for (int i = 0; i < 1000; ++i) {
        controller.step();
        EXPECT_GE(controller.heaterPower(), 0.0);
        EXPECT_LE(controller.heaterPower(), 1.0);
    }
}

TEST(TemperatureControllerTest, CoolingIsPassive)
{
    // The controller can only heat; a target below ambient never
    // settles (matches the heater-pad hardware).
    ThermalConfig config;
    config.ambient = 25.0;
    TemperatureController controller(config);
    controller.setTarget(10.0);
    EXPECT_FALSE(controller.settle(0.1, 5.0, 60.0));
}

} // namespace

/**
 * @file
 * Tests for the characterization tester: the paper's HCfirst binary
 * search, the WCDP scan, and the tested-row sampling.
 */

#include <gtest/gtest.h>

#include "core/tester.hh"

namespace
{

using namespace rhs;
using namespace rhs::core;
using namespace rhs::rhmodel;

TEST(TestedRowsTest, ThreeRegionsWithoutEdges)
{
    dram::Geometry g;
    g.banks = 1;
    g.subarraysPerBank = 16;
    g.rowsPerSubarray = 512;
    const auto rows = testedRows(g, 100);
    // Edge rows 0 and 1 excluded; last two rows excluded.
    EXPECT_EQ(rows.front(), 2u);
    EXPECT_EQ(rows.back(), g.rowsPerBank() - 3);
    EXPECT_GE(rows.size(), 3u * 100u - 4u);
    // Strictly increasing and unique.
    for (std::size_t i = 1; i < rows.size(); ++i)
        EXPECT_LT(rows[i - 1], rows[i]);
}

TEST(TestedRowsDeathTest, OversizedRegionPanics)
{
    dram::Geometry g;
    g.subarraysPerBank = 1;
    g.rowsPerSubarray = 64;
    EXPECT_DEATH(testedRows(g, 64), "per-region");
}

class TesterTest : public ::testing::TestWithParam<Mfr>
{
  protected:
    TesterTest()
        : dimm(GetParam(), 0), tester(dimm),
          pattern(PatternId::Checkered)
    {
    }

    SimulatedDimm dimm;
    Tester tester;
    DataPattern pattern;
};

TEST_P(TesterTest, BerMatchesAnalyticDetail)
{
    Conditions conditions;
    const unsigned row = 300;
    const auto detail =
        tester.berDetail(0, row, conditions, pattern);
    EXPECT_EQ(tester.berOfRow(0, row, conditions, pattern),
              detail.flips.size());
}

TEST_P(TesterTest, HcFirstSearchBracketsExactValue)
{
    Conditions conditions;
    unsigned checked = 0;
    for (unsigned row = 100; row < 140 && checked < 10; ++row) {
        const auto exact = dimm.analytic().rowHcFirst(
            row, HammerAttack::doubleSided(0, row), conditions, pattern,
            0);
        if (exact == kNeverFlips ||
            exact > static_cast<double>(kMaxHammers)) {
            continue;
        }
        ++checked;
        const auto searched =
            tester.hcFirstSearch(0, row, conditions, pattern, 0);
        ASSERT_NE(searched, kNotVulnerable) << "row " << row;
        // The search reports the smallest probed count with a flip:
        // it can overshoot the exact value by at most the accuracy
        // step and must never undershoot it.
        EXPECT_GE(static_cast<double>(searched), exact - 1.0)
            << "row " << row;
        EXPECT_LE(static_cast<double>(searched),
                  exact + 2.0 * kHcFirstAccuracy)
            << "row " << row;
    }
    EXPECT_GT(checked, 0u);
}

TEST_P(TesterTest, HcFirstMinIsMinOverTrials)
{
    Conditions conditions;
    for (unsigned row = 200; row < 210; ++row) {
        const auto min_hc =
            tester.hcFirstMin(0, row, conditions, pattern);
        if (min_hc == kNotVulnerable)
            continue;
        for (unsigned trial = 0; trial < kRepetitions; ++trial) {
            const auto hc = tester.hcFirstSearch(0, row, conditions,
                                                 pattern, trial);
            if (hc != kNotVulnerable) {
                EXPECT_LE(min_hc, hc);
            }
        }
    }
}

TEST_P(TesterTest, WcdpMaximizesFlips)
{
    Conditions conditions;
    std::vector<unsigned> sample{150, 151, 152, 153};
    const auto wcdp =
        tester.findWorstCasePattern(0, sample, conditions);

    auto total = [&](const DataPattern &p) {
        std::uint64_t flips = 0;
        for (unsigned row : sample)
            flips += tester.berOfRow(0, row, conditions, p);
        return flips;
    };

    const auto best = total(wcdp);
    for (auto id : allPatterns) {
        DataPattern candidate(id, dimm.module().info().serial);
        EXPECT_LE(total(candidate), best)
            << "pattern " << to_string(id);
    }
}

TEST_P(TesterTest, ComplementPatternsCoverOppositeCells)
{
    // Between a pattern and its complement, every cell's polarity
    // requirement is satisfied once; the union of flips must be
    // larger than either alone.
    Conditions conditions;
    const unsigned row = 400;
    DataPattern a(PatternId::RowStripe);
    DataPattern b(PatternId::RowStripeInv);
    const auto fa = tester.berDetail(0, row, conditions, a,
                                     kMaxHammers);
    const auto fb = tester.berDetail(0, row, conditions, b,
                                     kMaxHammers);
    std::set<std::pair<unsigned, unsigned>> cells;
    for (const auto &loc : fa.flips)
        cells.insert({loc.column * 8 + loc.bit, loc.chip});
    std::size_t overlap = 0;
    for (const auto &loc : fb.flips) {
        if (cells.count({loc.column * 8 + loc.bit, loc.chip}))
            ++overlap;
    }
    EXPECT_EQ(overlap, 0u); // Opposite polarities never overlap.
}

INSTANTIATE_TEST_SUITE_P(AllMfrs, TesterTest,
                         ::testing::ValuesIn(allMfrs));

} // namespace

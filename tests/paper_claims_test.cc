/**
 * @file
 * Calibration regression suite: asserts, with tolerances, the
 * paper-facing numbers EXPERIMENTS.md reports. If a model change
 * drifts a reproduced observation, this suite fails before the bench
 * output quietly changes.
 *
 * Tolerances are deliberately loose — these are statistical quantities
 * at reduced sample sizes — but tight enough to catch a broken
 * mechanism (sign flips, order-of-magnitude drifts).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/spatial.hh"
#include "core/temp_analysis.hh"
#include "core/timing_analysis.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace rhs;
using namespace rhs::core;
using namespace rhs::rhmodel;

/** Paper targets per manufacturer (see EXPERIMENTS.md). */
struct PaperTargets
{
    Mfr mfr;
    double berOnRatio;     //!< Obsv. 8.
    double hcOnChangePct;  //!< Obsv. 8 (negative).
    double hcOffChangePct; //!< Obsv. 10 (positive).
    bool berRisesWithTemp; //!< Obsv. 4 sign at 90 degC.
    double noGapMinPct;    //!< Table 3 lower bound.
};

const PaperTargets kTargets[] = {
    {Mfr::A, 10.2, -40.0, 33.8, true, 97.0},
    {Mfr::B, 3.1, -28.3, 24.7, false, 97.0},
    {Mfr::C, 4.4, -32.7, 50.1, true, 97.0},
    {Mfr::D, 9.6, -37.3, 33.7, true, 97.0},
};

class PaperClaimsTest : public ::testing::TestWithParam<PaperTargets>
{
  protected:
    PaperClaimsTest() : dimm(GetParam().mfr, 0), tester(dimm)
    {
        const auto all = testedRows(dimm.module().geometry(), 50);
        for (unsigned i = 0; i < 120; ++i)
            rows.push_back(all[i * all.size() / 120]);
        Conditions reference;
        wcdp = tester.findWorstCasePattern(
            0, {rows[0], rows[40], rows[80]}, reference);
    }

    SimulatedDimm dimm;
    Tester tester;
    std::vector<unsigned> rows;
    DataPattern wcdp{PatternId::Checkered};
};

TEST_P(PaperClaimsTest, Observation8OnTimeSweep)
{
    const auto sweep = sweepAggressorOnTime(tester, 0, rows, wcdp);
    const auto &target = GetParam();

    // HCfirst endpoint change: calibrated, must track closely.
    EXPECT_NEAR(100.0 * sweep.hcFirstChange(), target.hcOnChangePct,
                4.0);

    // BER amplification: emergent; within a factor band. Mfr. A's
    // published pair is structurally unreachable (EXPERIMENTS.md),
    // so its lower band is wider.
    const double measured = sweep.berRatio();
    const double lo = target.mfr == Mfr::A ? 0.55 * target.berOnRatio
                                           : 0.7 * target.berOnRatio;
    EXPECT_GE(measured, lo);
    EXPECT_LE(measured, 1.6 * target.berOnRatio);
}

TEST_P(PaperClaimsTest, Observation10OffTimeSweep)
{
    const auto sweep = sweepAggressorOffTime(tester, 0, rows, wcdp);
    EXPECT_NEAR(100.0 * sweep.hcFirstChange(),
                GetParam().hcOffChangePct, 4.0);
    // Obsv. 10 direction: fewer flips at longer off-time.
    EXPECT_LT(sweep.berRatio(), 0.8);
}

TEST_P(PaperClaimsTest, Observation4TemperatureTrend)
{
    Conditions cold, hot;
    hot.temperature = 90.0;
    double ber_cold = 0.0, ber_hot = 0.0;
    for (unsigned row : rows) {
        ber_cold += tester.berOfRow(0, row, cold, wcdp);
        ber_hot += tester.berOfRow(0, row, hot, wcdp);
    }
    ASSERT_GT(ber_cold, 0.0);
    if (GetParam().berRisesWithTemp)
        EXPECT_GT(ber_hot, ber_cold);
    else
        EXPECT_LT(ber_hot, ber_cold);
}

TEST_P(PaperClaimsTest, Table3Continuity)
{
    std::vector<unsigned> sample(rows.begin(), rows.begin() + 50);
    const auto analysis = analyzeTempRanges(tester, 0, sample, wcdp);
    ASSERT_GT(analysis.vulnerableCells, 0u);
    EXPECT_GE(100.0 * analysis.noGapFraction(),
              GetParam().noGapMinPct);
    // Obsv. 2: full-range cells exist. Obsv. 3: narrow-range cells
    // exist.
    EXPECT_GT(analysis.fullRangeFraction(), 0.02);
    EXPECT_GT(analysis.singlePointFraction(), 0.01);
}

TEST_P(PaperClaimsTest, Observations6And7TemperatureShifts)
{
    std::vector<unsigned> sample(rows.begin(), rows.begin() + 50);
    const auto shift =
        analyzeHcFirstVsTemperature(tester, 0, sample, wcdp);
    ASSERT_FALSE(shift.changePct55.empty());
    // Obsv. 6: fewer rows improve for the larger delta.
    EXPECT_LE(shift.crossing90(), shift.crossing55() + 0.05);
    // Obsv. 7: the larger delta moves HCfirst further.
    EXPECT_GT(shift.magnitudeRatio(), 1.5);
}

TEST_P(PaperClaimsTest, Observation12RowVariation)
{
    const auto hcs = rowHcFirstSurvey(tester, 0, rows, wcdp);
    ASSERT_GT(hcs.size(), 50u);
    const auto summary = summarizeRowVariation(hcs);
    // Paper scale: min ~33K-130K depending on manufacturer.
    EXPECT_GT(summary.minHcFirst, 15e3);
    EXPECT_LT(summary.minHcFirst, 250e3);
    // The vulnerable tail exists even at this reduced sample.
    EXPECT_GT(summary.p10Ratio, 1.15);
}

TEST_P(PaperClaimsTest, Observation15SubarrayStructure)
{
    const auto survey = subarraySurvey(tester, 0, 6, 10, wcdp);
    ASSERT_GE(survey.size(), 4u);
    for (const auto &entry : survey) {
        // The most vulnerable row sits well below the average.
        EXPECT_LT(entry.minimumHcFirst, entry.averageHcFirst);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMfrs, PaperClaimsTest, ::testing::ValuesIn(kTargets),
    [](const ::testing::TestParamInfo<PaperTargets> &info) {
        return std::string(1, letterOf(info.param.mfr));
    });

} // namespace

/**
 * @file
 * Exhaustive bank FSM timing-violation tests: every JEDEC constraint
 * the model enforces has a passing and a violating case.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/timing.hh"

namespace
{

using namespace rhs::dram;

class BankTest : public ::testing::Test
{
  protected:
    BankTest() : timing(ddr4_2400()), bank(timing, 0) {}

    Cycles
    cycles(Ns ns) const
    {
        return timing.toCycles(ns);
    }

    TimingParams timing;
    Bank bank;
};

TEST_F(BankTest, ActivateOpensRow)
{
    bank.activate(42, 0);
    EXPECT_TRUE(bank.isActive());
    EXPECT_EQ(bank.openRow(), 42u);
    EXPECT_EQ(bank.activationCount(), 1u);
}

TEST_F(BankTest, ActWhileActiveThrows)
{
    bank.activate(1, 0);
    EXPECT_THROW(bank.activate(2, 100), TimingError);
}

TEST_F(BankTest, PreWhileIdleThrows)
{
    EXPECT_THROW(bank.precharge(0), TimingError);
}

TEST_F(BankTest, PreBeforeTrasThrows)
{
    bank.activate(1, 0);
    EXPECT_THROW(bank.precharge(cycles(timing.tRAS) - 2), TimingError);
}

TEST_F(BankTest, PreAtTrasSucceeds)
{
    bank.activate(1, 0);
    const auto record = bank.precharge(cycles(timing.tRAS));
    EXPECT_GE(record.onTime, timing.tRAS);
    EXPECT_FALSE(bank.isActive());
}

TEST_F(BankTest, ActBeforeTrpThrows)
{
    bank.activate(1, 0);
    bank.precharge(cycles(timing.tRAS));
    EXPECT_THROW(bank.activate(2, cycles(timing.tRAS) + 1), TimingError);
}

TEST_F(BankTest, ActAfterTrpSucceeds)
{
    bank.activate(1, 0);
    const auto pre_at = cycles(timing.tRAS);
    bank.precharge(pre_at);
    bank.activate(2, pre_at + cycles(timing.tRP));
    EXPECT_EQ(bank.openRow(), 2u);
}

TEST_F(BankTest, ReadWhileIdleThrows)
{
    EXPECT_THROW(bank.read(0, 0), TimingError);
}

TEST_F(BankTest, ReadBeforeTrcdThrows)
{
    bank.activate(1, 0);
    EXPECT_THROW(bank.read(0, cycles(timing.tRCD) - 2), TimingError);
}

TEST_F(BankTest, ReadAfterTrcdSucceeds)
{
    bank.activate(1, 0);
    EXPECT_NO_THROW(bank.read(0, cycles(timing.tRCD)));
}

TEST_F(BankTest, BackToBackReadsRespectTccd)
{
    bank.activate(1, 0);
    const auto first = cycles(timing.tRCD);
    bank.read(0, first);
    EXPECT_THROW(bank.read(1, first + 1), TimingError);
}

TEST_F(BankTest, ReadsSpacedByTccdSucceed)
{
    bank.activate(1, 0);
    const auto first = cycles(timing.tRCD);
    bank.read(0, first);
    EXPECT_NO_THROW(bank.read(1, first + cycles(timing.tCCD)));
}

TEST_F(BankTest, PreBeforeReadToPrechargeDelayThrows)
{
    bank.activate(1, 0);
    const auto rd_at = cycles(timing.tRCD);
    bank.read(0, rd_at);
    // tRTP after the read is later than tRAS here.
    EXPECT_THROW(bank.precharge(rd_at + 1), TimingError);
}

TEST_F(BankTest, PreAfterReadCompletes)
{
    bank.activate(1, 0);
    const auto rd_at = cycles(timing.tRCD);
    bank.read(0, rd_at);
    const auto pre_at = std::max(cycles(timing.tRAS),
                                 rd_at + cycles(timing.tRTP));
    EXPECT_NO_THROW(bank.precharge(pre_at));
}

TEST_F(BankTest, WriteRequiresTwrBeforePre)
{
    bank.activate(1, 0);
    const auto wr_at = cycles(timing.tRCD);
    bank.write(0, wr_at);
    EXPECT_THROW(bank.precharge(wr_at + cycles(timing.tRTP)),
                 TimingError);
    Bank fresh(timing, 1);
    fresh.activate(1, 0);
    fresh.write(0, wr_at);
    EXPECT_NO_THROW(fresh.precharge(
        std::max(cycles(timing.tRAS), wr_at + cycles(timing.tWR))));
}

TEST_F(BankTest, MeasuredOnAndOffTimes)
{
    // Two activations with stretched on/off windows: the second
    // record must carry the stretched times.
    const Cycles on = cycles(94.5), off = cycles(40.5);
    bank.activate(1, 0);
    bank.precharge(on);
    bank.activate(2, on + off);
    const auto record = bank.precharge(on + off + on);
    EXPECT_DOUBLE_EQ(record.onTime, timing.toNs(on));
    EXPECT_DOUBLE_EQ(record.offTime, timing.toNs(off));
    EXPECT_EQ(record.physicalRow, 2u);
    EXPECT_EQ(bank.activationCount(), 2u);
}

TEST_F(BankTest, HammerLoopAtSpecTimings)
{
    // A long baseline hammer loop never violates timing.
    Cycles t = 0;
    const auto on = cycles(timing.tRAS), off = cycles(timing.tRP);
    for (int h = 0; h < 1000; ++h) {
        bank.activate(h % 2 ? 100 : 102, t);
        bank.precharge(t + on);
        t += on + off;
    }
    EXPECT_EQ(bank.activationCount(), 1000u);
}

} // namespace

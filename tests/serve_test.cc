/**
 * @file
 * Tests for the rhs-serve subsystem: rhs-rpc/1 framing edge cases
 * (truncated prefix, oversize frame, empty body, pipelining, deadline
 * expiry mid-batch), the backpressure and clean-drain invariants, and
 * the byte-identity of served responses against direct engine calls.
 *
 * Every server test binds an ephemeral loopback port, so tests can
 * run in parallel. Suite names all start with "Serve" — the tsan
 * test preset's filter selects them by that prefix.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "obs/metrics.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/query_engine.hh"
#include "serve/server.hh"

namespace
{

using namespace rhs;

// --- Protocol unit tests ---------------------------------------------

TEST(ServeProtocolTest, LengthPrefixRoundTrips)
{
    for (std::uint32_t length :
         {0u, 1u, 255u, 256u, 70'000u, 0xdeadbeefu}) {
        const auto prefix = serve::encodeLength(length);
        EXPECT_EQ(serve::decodeLength(prefix.data()), length);
    }
    const std::string frame = serve::encodeFrame("abc");
    ASSERT_EQ(frame.size(), 7u);
    EXPECT_EQ(frame.substr(0, 4), std::string("\x00\x00\x00\x03", 4));
    EXPECT_EQ(frame.substr(4), "abc");
}

TEST(ServeProtocolTest, ResponseEnvelopes)
{
    const auto ok = serve::makeResult(7, report::Json::object());
    EXPECT_TRUE(ok.at("ok").asBool());
    EXPECT_EQ(ok.at("id").asInt(), 7);
    EXPECT_FALSE(serve::isError(ok, serve::err::kOverloaded));

    const auto error =
        serve::makeError(-1, serve::err::kOverloaded, "full");
    EXPECT_FALSE(error.at("ok").asBool());
    EXPECT_TRUE(serve::isError(error, serve::err::kOverloaded));
    EXPECT_FALSE(serve::isError(error, serve::err::kBadRequest));
}

// --- Query engine parameter validation (no sockets) ------------------

report::Json
parseOrDie(const std::string &text)
{
    report::Json value;
    std::string error;
    EXPECT_TRUE(report::Json::parse(text, value, error)) << error;
    return value;
}

TEST(ServeQueryEngineTest, RejectsInvalidParameters)
{
    serve::QueryEngine engine;

    // A double-sided victim needs both neighbours: row 0 is invalid.
    auto response = engine.execute(parseOrDie(
        R"({"op": "row_hcfirst", "id": 1, "row": 0})"));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));

    response = engine.execute(parseOrDie(
        R"({"op": "row_hcfirst", "id": 2})"));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));

    response = engine.execute(parseOrDie(
        R"({"op": "ber", "id": 3, "row": 5, "pattern": "plaid"})"));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));

    response = engine.execute(parseOrDie(
        R"({"op": "worst_pattern", "id": 4, "rows": []})"));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));

    response = engine.execute(parseOrDie(
        R"({"op": "profile_slice", "id": 5, "row0": 8189,
            "count": 10})"));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));

    response = engine.execute(parseOrDie(
        R"({"op": "levitate", "id": 6})"));
    EXPECT_TRUE(serve::isError(response, serve::err::kUnknownOp));

    // Engine ops demand an id so responses stay matchable.
    response = engine.execute(parseOrDie(
        R"({"op": "ber", "row": 5})"));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));
}

TEST(ServeQueryEngineTest, ServesDeterministicResults)
{
    serve::QueryEngine engine;
    const std::string body =
        R"({"op": "row_hcfirst", "id": 9, "mfr": "B", "row": 33,
            "temperature": 75})";
    const std::string first = engine.executeRaw(body);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(engine.executeRaw(body), first);

    // A second engine (fresh caches) produces the same bytes.
    serve::QueryEngine other;
    EXPECT_EQ(other.executeRaw(body), first);
}

// --- Server fixture and raw-socket helper ----------------------------

/** A raw TCP connection for writing malformed bytes at the server. */
class RawConn
{
  public:
    ~RawConn() { close(); }

    bool
    connect(unsigned short port)
    {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return false;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        return ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof addr) == 0;
    }

    bool
    sendBytes(const std::string &bytes)
    {
        std::size_t done = 0;
        while (done < bytes.size()) {
            const ssize_t sent =
                ::send(fd, bytes.data() + done, bytes.size() - done,
                       MSG_NOSIGNAL);
            if (sent <= 0)
                return false;
            done += static_cast<std::size_t>(sent);
        }
        return true;
    }

    /** Read and parse one response frame. */
    bool
    recvResponse(report::Json &out)
    {
        std::string body;
        if (serve::readFrame(fd, body) != serve::FrameStatus::Ok)
            return false;
        std::string error;
        return report::Json::parse(body, out, error);
    }

    void
    close()
    {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }

  private:
    int fd = -1;
};

class ServeServerTest : public ::testing::Test
{
  protected:
    void
    startServer(serve::ServerConfig config = {})
    {
        config.port = 0;
        server = std::make_unique<serve::Server>(config);
        server->start();
        ASSERT_GT(server->port(), 0);
    }

    void
    TearDown() override
    {
        if (server)
            server->stop();
    }

    std::unique_ptr<serve::Server> server;
};

TEST_F(ServeServerTest, PingStatsAndUnknownOp)
{
    startServer();
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port()));
    EXPECT_TRUE(client.ping(1));

    const auto stats = client.stats(2);
    ASSERT_FALSE(stats.isNull());
    EXPECT_EQ(stats.at("protocol").asString(), serve::kProtocol);

    auto request = report::Json::object();
    request.set("op", "levitate");
    request.set("id", 3);
    report::Json response;
    ASSERT_TRUE(client.call(request, response));
    EXPECT_TRUE(serve::isError(response, serve::err::kUnknownOp));
}

TEST_F(ServeServerTest, ServedBytesMatchDirectEngineCalls)
{
    startServer();
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port()));

    serve::QueryEngine direct;
    const std::vector<std::string> bodies = {
        R"({"op": "row_hcfirst", "id": 10, "mfr": "B", "row": 17,
            "temperature": 70})",
        R"({"op": "ber", "id": 11, "mfr": "C", "row": 40,
            "hammers": 150000})",
        R"({"op": "profile_slice", "id": 12, "row0": 5, "count": 3})",
        R"({"op": "worst_pattern", "id": 13, "rows": [9, 11, 13]})",
    };
    for (const auto &body : bodies) {
        const std::string served = client.callRaw(body);
        ASSERT_FALSE(served.empty());
        EXPECT_EQ(served, direct.executeRaw(body)) << body;
    }
}

TEST_F(ServeServerTest, SplitFrameReassembledAcrossArbitraryReads)
{
    startServer();
    RawConn raw;
    ASSERT_TRUE(raw.connect(server->port()));

    // Dribble a valid frame one byte at a time: the event loop must
    // reassemble it across epoll wakeups exactly as the old blocking
    // reader did across recv calls.
    const std::string frame =
        serve::encodeFrame(R"({"op": "ping", "id": 77})");
    for (const char byte : frame) {
        ASSERT_TRUE(raw.sendBytes(std::string(1, byte)));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    report::Json response;
    ASSERT_TRUE(raw.recvResponse(response));
    EXPECT_TRUE(response.at("ok").asBool());
    EXPECT_EQ(response.at("id").asInt(), 77);

    // Two frames glued into one send must yield two replies.
    ASSERT_TRUE(raw.sendBytes(
        serve::encodeFrame(R"({"op": "ping", "id": 78})") +
        serve::encodeFrame(R"({"op": "ping", "id": 79})")));
    ASSERT_TRUE(raw.recvResponse(response));
    EXPECT_EQ(response.at("id").asInt(), 78);
    ASSERT_TRUE(raw.recvResponse(response));
    EXPECT_EQ(response.at("id").asInt(), 79);
}

TEST_F(ServeServerTest, ManyIdleConnectionsServedByFixedThreads)
{
    serve::ServerConfig config;
    config.maxConnections = 400;
    startServer(config);

    // 300 idle connections held open at once — far beyond what the
    // old thread-per-connection design could sanely carry — while
    // the server keeps answering on any of them.
    std::vector<std::unique_ptr<RawConn>> idle;
    for (unsigned i = 0; i < 300; ++i) {
        auto conn = std::make_unique<RawConn>();
        ASSERT_TRUE(conn->connect(server->port())) << i;
        idle.push_back(std::move(conn));
    }
    // Connection registration is asynchronous (accept runs on the
    // event thread); a served ping on the last connection is the
    // barrier that proves all 300 are registered.
    report::Json response;
    ASSERT_TRUE(idle.back()->sendBytes(
        serve::encodeFrame(R"({"op": "ping", "id": 300})")));
    ASSERT_TRUE(idle.back()->recvResponse(response));
    EXPECT_TRUE(response.at("ok").asBool());
    EXPECT_EQ(server->connectionCount(), 300u);

    ASSERT_TRUE(idle.front()->sendBytes(
        serve::encodeFrame(R"({"op": "ping", "id": 1})")));
    ASSERT_TRUE(idle.front()->recvResponse(response));
    EXPECT_TRUE(response.at("ok").asBool());
    EXPECT_EQ(server->stats().connectionsAccepted, 300u);
}

TEST_F(ServeServerTest, EmptyBodyRejectedWithoutTeardown)
{
    startServer();
    RawConn raw;
    ASSERT_TRUE(raw.connect(server->port()));

    // Length prefix 0, no payload.
    ASSERT_TRUE(raw.sendBytes(std::string(4, '\0')));
    report::Json response;
    ASSERT_TRUE(raw.recvResponse(response));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));
    EXPECT_EQ(response.at("id").asInt(), serve::kNoRequestId);

    // The connection survives: a valid request still works.
    ASSERT_TRUE(raw.sendBytes(
        serve::encodeFrame(R"({"op": "ping", "id": 1})")));
    ASSERT_TRUE(raw.recvResponse(response));
    EXPECT_TRUE(response.at("ok").asBool());
}

TEST_F(ServeServerTest, MalformedJsonRejectedWithoutTeardown)
{
    startServer();
    RawConn raw;
    ASSERT_TRUE(raw.connect(server->port()));

    ASSERT_TRUE(raw.sendBytes(serve::encodeFrame("{not json")));
    report::Json response;
    ASSERT_TRUE(raw.recvResponse(response));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));

    ASSERT_TRUE(raw.sendBytes(
        serve::encodeFrame(R"({"op": "ping", "id": 2})")));
    ASSERT_TRUE(raw.recvResponse(response));
    EXPECT_TRUE(response.at("ok").asBool());
}

TEST_F(ServeServerTest, OversizeFrameRejectedWithoutTeardown)
{
    startServer();
    RawConn raw;
    ASSERT_TRUE(raw.connect(server->port()));

    // Declare one byte over the cap and actually send it; the server
    // must drain the payload to stay frame-aligned.
    const std::uint32_t declared = serve::kMaxFrameBytes + 1;
    const auto prefix = serve::encodeLength(declared);
    ASSERT_TRUE(raw.sendBytes(std::string(
        reinterpret_cast<const char *>(prefix.data()), 4)));
    ASSERT_TRUE(raw.sendBytes(std::string(declared, 'x')));

    report::Json response;
    ASSERT_TRUE(raw.recvResponse(response));
    EXPECT_TRUE(serve::isError(response, serve::err::kFrameTooLarge));

    ASSERT_TRUE(raw.sendBytes(
        serve::encodeFrame(R"({"op": "ping", "id": 3})")));
    ASSERT_TRUE(raw.recvResponse(response));
    EXPECT_TRUE(response.at("ok").asBool());
}

TEST_F(ServeServerTest, TruncatedPrefixClosesOnlyThatConnection)
{
    startServer();
    {
        RawConn dying;
        ASSERT_TRUE(dying.connect(server->port()));
        ASSERT_TRUE(dying.sendBytes(std::string(2, '\x01')));
        dying.close(); // EOF mid-prefix: the peer died.
    }

    // The server keeps serving other connections, and eventually
    // accounts the truncated frame as malformed.
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port()));
    EXPECT_TRUE(client.ping(4));

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    std::int64_t malformed = 0;
    while (std::chrono::steady_clock::now() < deadline) {
        const auto stats = client.stats(5);
        malformed = stats.at("malformed_frames").asInt();
        if (malformed >= 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(malformed, 1);
}

TEST_F(ServeServerTest, PipelinedRequestsAllAnswered)
{
    startServer();
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port()));

    serve::QueryEngine direct;
    std::vector<std::string> bodies;
    for (int i = 0; i < 10; ++i) {
        auto request = report::Json::object();
        request.set("op", "ber");
        request.set("id", 100 + i);
        request.set("row", 5 + i);
        bodies.push_back(serve::serialize(request));
    }
    for (const auto &body : bodies)
        ASSERT_TRUE(client.sendRaw(body));

    // Responses may be reordered across batches; match by id.
    std::vector<bool> seen(bodies.size(), false);
    for (std::size_t i = 0; i < bodies.size(); ++i) {
        std::string reply;
        ASSERT_TRUE(client.recvRaw(reply));
        report::Json response;
        std::string error;
        ASSERT_TRUE(report::Json::parse(reply, response, error));
        const auto id = response.at("id").asInt();
        ASSERT_GE(id, 100);
        ASSERT_LT(id, 110);
        EXPECT_FALSE(seen[id - 100]) << "duplicate response " << id;
        seen[id - 100] = true;
        EXPECT_EQ(reply, direct.executeRaw(bodies[id - 100]));
    }
}

TEST_F(ServeServerTest, DeadlineExpiresMidBatch)
{
    serve::ServerConfig config;
    config.batchMax = 8;
    config.serviceDelayUs = 20'000; // Every batch stalls 20 ms.
    startServer(config);

    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port()));

    auto patient = report::Json::object();
    patient.set("op", "ber");
    patient.set("id", 1);
    patient.set("row", 7);
    auto hurried = report::Json::object();
    hurried.set("op", "ber");
    hurried.set("id", 2);
    hurried.set("row", 8);
    hurried.set("deadline_ms", 1); // Lapses during the batch stall.

    ASSERT_TRUE(client.sendRaw(serve::serialize(patient)));
    ASSERT_TRUE(client.sendRaw(serve::serialize(hurried)));

    bool patient_ok = false, hurried_expired = false;
    for (int i = 0; i < 2; ++i) {
        std::string reply;
        ASSERT_TRUE(client.recvRaw(reply));
        report::Json response;
        std::string error;
        ASSERT_TRUE(report::Json::parse(reply, response, error));
        if (response.at("id").asInt() == 1)
            patient_ok = response.at("ok").asBool();
        else
            hurried_expired = serve::isError(
                response, serve::err::kDeadlineExceeded);
    }
    EXPECT_TRUE(patient_ok);
    EXPECT_TRUE(hurried_expired);
}

TEST_F(ServeServerTest, BackpressureAnswersOverloadedNeverDrops)
{
    serve::ServerConfig config;
    config.queueCapacity = 1;
    config.batchMax = 1;
    config.serviceDelayUs = 5'000;
    startServer(config);

    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port()));

    const unsigned flood = 12;
    for (unsigned i = 0; i < flood; ++i) {
        auto request = report::Json::object();
        request.set("op", "ber");
        request.set("id", static_cast<std::int64_t>(i));
        request.set("row", 5);
        ASSERT_TRUE(client.sendRaw(serve::serialize(request)));
    }

    unsigned answered = 0, overloaded = 0;
    std::string reply;
    while (answered < flood && client.recvRaw(reply)) {
        ++answered;
        report::Json response;
        std::string error;
        ASSERT_TRUE(report::Json::parse(reply, response, error));
        if (serve::isError(response, serve::err::kOverloaded))
            ++overloaded;
    }
    EXPECT_EQ(answered, flood);  // Nothing silently dropped.
    EXPECT_GE(overloaded, 1u);   // The backpressure path fired.
}

TEST_F(ServeServerTest, ShutdownOpDrainsBeforeStopping)
{
    serve::ServerConfig config;
    config.serviceDelayUs = 2'000;
    startServer(config);

    serve::Client worker;
    ASSERT_TRUE(worker.connect("127.0.0.1", server->port()));
    const unsigned in_flight = 6;
    for (unsigned i = 0; i < in_flight; ++i) {
        auto request = report::Json::object();
        request.set("op", "row_hcfirst");
        request.set("id", static_cast<std::int64_t>(i));
        request.set("row", 11 + i);
        ASSERT_TRUE(worker.sendRaw(serve::serialize(request)));
    }

    serve::Client control;
    ASSERT_TRUE(control.connect("127.0.0.1", server->port()));
    EXPECT_TRUE(control.shutdownServer(99));

    server->waitForStopRequest();
    server->stop();

    // Clean drain: every request enqueued before the shutdown was
    // answered by a batch response.
    const auto stats = server->stats();
    EXPECT_EQ(stats.requestsEnqueued, stats.responsesSent);

    // And the worker can still read every response off its socket.
    unsigned answered = 0;
    std::string reply;
    while (answered < in_flight && worker.recvRaw(reply))
        ++answered;
    EXPECT_EQ(answered, stats.requestsEnqueued);
}

// --- PR 10: the optional `trace` request member ----------------------

TEST_F(ServeServerTest, TraceMemberInvisibleInResponseBytes)
{
    startServer();
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port()));
    serve::QueryEngine direct;

    const std::vector<std::string> plain_bodies = {
        R"({"op": "row_hcfirst", "id": 20, "mfr": "A", "row": 21})",
        R"({"op": "ber", "id": 21, "mfr": "C", "row": 9,)"
        R"( "hammers": 30000})",
        R"({"op": "profile_slice", "id": 22, "row0": 6, "count": 2})",
    };
    for (const std::string &plain : plain_bodies) {
        report::Json request = parseOrDie(plain);
        auto trace = report::Json::object();
        trace.set("id", "00c0ffee00000000000000000000beef");
        trace.set("parent", std::int64_t{42});
        request.set("trace", std::move(trace));
        const std::string served =
            client.callRaw(serve::serialize(request));
        ASSERT_FALSE(served.empty());
        // The reply carries no echo of the trace context and is the
        // exact bytes of the trace-free direct call.
        EXPECT_EQ(served, direct.executeRaw(plain)) << plain;
    }
}

TEST_F(ServeServerTest, GarbageTraceRejectedWithoutTeardown)
{
    startServer();
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port()));

    // Trace validation lives on the engine-op path (control ops
    // never consume the member), so probe it with a real engine op.
    const std::vector<std::string> bad_bodies = {
        // `trace` must be an object.
        R"({"op": "ber", "id": 30, "row": 5, "trace": "deadbeef"})",
        R"({"op": "ber", "id": 31, "row": 5, "trace": 7})",
        // `trace.id` must be 1..32 hex characters.
        R"({"op": "ber", "id": 32, "row": 5, "trace": {"id": ""}})",
        R"({"op": "ber", "id": 33, "row": 5,)"
        R"( "trace": {"id": "xyz"}})",
        R"({"op": "ber", "id": 34, "row": 5, "trace": {)"
        R"("id": "000000000000000000000000000000001"}})", // 33 chars
        R"({"op": "ber", "id": 35, "row": 5,)"
        R"( "trace": {"parent": 1}})",
        // `trace.parent` must be a non-negative integer.
        R"({"op": "ber", "id": 36, "row": 5, "trace": {"id": "ab",)"
        R"( "parent": -1}})",
        R"({"op": "ber", "id": 37, "row": 5, "trace": {"id": "ab",)"
        R"( "parent": "x"}})",
    };
    for (const std::string &body : bad_bodies) {
        const std::string reply = client.callRaw(body);
        ASSERT_FALSE(reply.empty()) << body;
        report::Json response;
        std::string error;
        ASSERT_TRUE(report::Json::parse(reply, response, error));
        EXPECT_TRUE(
            serve::isError(response, serve::err::kBadRequest))
            << body;
    }
    // Rejection never tears the connection: a valid traced request
    // still works on the same socket.
    const std::string good = client.callRaw(
        R"({"op": "ber", "id": 40, "row": 5,)"
        R"( "trace": {"id": "ab12"}})");
    ASSERT_FALSE(good.empty());
    report::Json response;
    std::string error;
    ASSERT_TRUE(report::Json::parse(good, response, error));
    EXPECT_TRUE(response.at("ok").asBool());
}

TEST_F(ServeServerTest, TracePullDrainsSpansAndValidatesMaxSpans)
{
    startServer();
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port()));

    // Record something traceable, then pull.
    const std::string traced = client.callRaw(
        R"({"op": "row_hcfirst", "id": 50, "row": 13,)"
        R"( "trace": {"id": "feedc0de"}})");
    ASSERT_FALSE(traced.empty());

    auto pull = report::Json::object();
    pull.set("op", "trace_pull");
    pull.set("id", std::int64_t{51});
    report::Json response;
    ASSERT_TRUE(client.call(pull, response));
    ASSERT_TRUE(response.at("ok").asBool());
    const report::Json &result = response.at("result");
    EXPECT_FALSE(result.at("node").asString().empty());
    EXPECT_EQ(result.at("compiled").asBool(), obs::kCompiledIn);
    ASSERT_TRUE(result.contains("spans"));
    if (obs::kCompiledIn) {
        // The engine request's spans surface under the request's
        // distributed trace id.
        bool tagged = false;
        const report::Json &spans = result.at("spans");
        for (std::size_t i = 0; i < spans.size(); ++i)
            if (const auto *id = spans.at(i).find("trace"))
                tagged = tagged ||
                         id->asString().find("feedc0de") !=
                             std::string::npos;
        EXPECT_TRUE(tagged);
    }

    // Drain semantics: a second pull never double-reports. The first
    // pull cleared the rings, so the request's spans are gone.
    pull.set("id", std::int64_t{52});
    ASSERT_TRUE(client.call(pull, response));
    const report::Json &second = response.at("result");
    for (std::size_t i = 0; i < second.at("spans").size(); ++i)
        EXPECT_EQ(second.at("spans").at(i).find("trace"), nullptr);

    // max_spans outside [0, kMaxPullSpans] is rejected, connection
    // intact.
    for (const std::int64_t bad :
         {std::int64_t{-1},
          static_cast<std::int64_t>(serve::kMaxPullSpans) + 1}) {
        pull.set("id", std::int64_t{53});
        pull.set("max_spans", bad);
        ASSERT_TRUE(client.call(pull, response));
        EXPECT_TRUE(
            serve::isError(response, serve::err::kBadRequest));
    }
    EXPECT_TRUE(client.ping(54));
}

TEST_F(ServeServerTest, StatsExposeTraceRingAndSlowLog)
{
    startServer();
    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server->port()));
    const auto stats = client.stats(60);
    ASSERT_FALSE(stats.isNull());
    ASSERT_TRUE(stats.contains("trace"));
    EXPECT_GE(stats.at("trace").at("recorded").asInt(), 0);
    EXPECT_GE(stats.at("trace").at("dropped").asInt(), 0);
    ASSERT_TRUE(stats.contains("slow_log"));
    ASSERT_TRUE(stats.contains("metrics"));
    EXPECT_TRUE(stats.at("metrics").contains("server"));
}

// The stats op races engine ops by design (counters are read without
// stopping the writers), so each snapshot must still be causally
// consistent: a response can never be observed without its enqueue.
// The old implementation read requests_enqueued before responses_sent
// off plain atomics and could report responses > enqueued; stats()
// now reads effects before causes over seq_cst counters. This test
// hammers both paths concurrently — it runs under ThreadSanitizer via
// the tsan preset (filter includes "Serve").
TEST_F(ServeServerTest, StatsSnapshotNeverTearsUnderLoad)
{
    startServer();

    std::atomic<bool> done{false};
    const unsigned writer_count = 4;
    std::vector<std::thread> writers;
    writers.reserve(writer_count);
    for (unsigned w = 0; w < writer_count; ++w) {
        writers.emplace_back([this, w] {
            serve::Client client;
            ASSERT_TRUE(client.connect("127.0.0.1", server->port()));
            for (unsigned i = 0; i < 40; ++i) {
                auto request = report::Json::object();
                request.set("op", "row_hcfirst");
                request.set("id",
                            static_cast<std::int64_t>(w * 1000 + i));
                request.set("row", 11 + (w * 40 + i) % 64);
                report::Json response;
                ASSERT_TRUE(client.call(request, response));
            }
        });
    }

    // Reader 1: the rhs-rpc stats op, as a real client sees it.
    std::thread rpc_reader([this, &done] {
        serve::Client client;
        ASSERT_TRUE(client.connect("127.0.0.1", server->port()));
        std::int64_t id = 50'000;
        while (!done.load()) {
            const auto stats = client.stats(id++);
            ASSERT_FALSE(stats.isNull());
            EXPECT_LE(stats.at("responses_sent").asInt(),
                      stats.at("requests_enqueued").asInt());
        }
    });

    // Reader 2: the in-process snapshot (the rhs-serve exit report),
    // spun on this thread until every writer has been joined.
    std::thread joiner([&writers, &done] {
        for (auto &writer : writers)
            writer.join();
        done.store(true);
    });
    while (!done.load()) {
        const auto stats = server->stats();
        EXPECT_LE(stats.responsesSent, stats.requestsEnqueued);
    }
    joiner.join();
    rpc_reader.join();

    const auto stats = server->stats();
    EXPECT_EQ(stats.requestsEnqueued, writer_count * 40);
    EXPECT_EQ(stats.responsesSent, writer_count * 40);
}

} // namespace

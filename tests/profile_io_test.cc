/**
 * @file
 * Tests for profile persistence and for the hammer-session pattern
 * installation helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/hammer_session.hh"
#include "core/profile_io.hh"
#include "core/spatial.hh"
#include "rhmodel/dimm.hh"

namespace
{

using namespace rhs;
using namespace rhs::core;

ModuleProfile
sampleProfile()
{
    ModuleProfile profile;
    profile.moduleLabel = "B0";
    profile.serial = 0xDEADBEEF;
    profile.temperature = 75.0;
    profile.wcdp = rhmodel::PatternId::CheckeredInv;
    profile.rows = {
        {0, 100, 45'000},
        {0, 101, 0}, // Not vulnerable.
        {0, 102, 130'000},
        {0, 103, 88'000},
        {1, 50, 52'000},
    };
    return profile;
}

TEST(ProfileIoTest, RoundTripPreservesEverything)
{
    const auto original = sampleProfile();
    const auto parsed =
        loadProfileFromString(saveProfileToString(original));

    EXPECT_EQ(parsed.moduleLabel, original.moduleLabel);
    EXPECT_EQ(parsed.serial, original.serial);
    EXPECT_DOUBLE_EQ(parsed.temperature, original.temperature);
    EXPECT_EQ(parsed.wcdp, original.wcdp);
    ASSERT_EQ(parsed.rows.size(), original.rows.size());
    for (std::size_t i = 0; i < parsed.rows.size(); ++i) {
        EXPECT_EQ(parsed.rows[i].bank, original.rows[i].bank);
        EXPECT_EQ(parsed.rows[i].physicalRow,
                  original.rows[i].physicalRow);
        EXPECT_EQ(parsed.rows[i].hcFirst, original.rows[i].hcFirst);
    }
}

TEST(ProfileIoTest, WorstCaseIgnoresInvulnerableRows)
{
    const auto profile = sampleProfile();
    EXPECT_EQ(profile.worstCase(), 45'000u);
}

TEST(ProfileIoTest, WeakRowsWithinFactor)
{
    const auto profile = sampleProfile();
    // 2x worst case = 90K: rows 100 (45K), 103 (88K), bank1/50 (52K).
    const auto weak = profile.weakRows(2.0);
    EXPECT_EQ(weak, (std::vector<unsigned>{50, 100, 103}));
}

TEST(ProfileIoTest, EmptyProfileHasNoWorstCase)
{
    ModuleProfile profile;
    EXPECT_EQ(profile.worstCase(), 0u);
    EXPECT_TRUE(profile.weakRows().empty());
}

TEST(ProfileIoTest, RejectsWrongMagic)
{
    std::istringstream in("not a profile\n");
    EXPECT_THROW(loadProfile(in), std::runtime_error);
}

TEST(ProfileIoTest, RejectsTruncatedRow)
{
    const std::string text = "rowhammer-profile v1\n"
                             "module X serial 1 temperature 75 wcdp "
                             "checkered\n"
                             "row 0 100\n";
    EXPECT_THROW(loadProfileFromString(text), std::runtime_error);
}

TEST(ProfileIoTest, RejectsUnknownPattern)
{
    const std::string text = "rowhammer-profile v1\n"
                             "module X serial 1 temperature 75 wcdp "
                             "plaid\n";
    EXPECT_THROW(loadProfileFromString(text), std::runtime_error);
}

TEST(ProfileIoTest, RejectsMissingHeader)
{
    const std::string text = "rowhammer-profile v1\n"
                             "row 0 1 2\n";
    EXPECT_THROW(loadProfileFromString(text), std::runtime_error);
}

TEST(ProfileIoTest, CommentsAndBlankLinesIgnored)
{
    const std::string text = "rowhammer-profile v1\n"
                             "# a comment\n"
                             "\n"
                             "module X serial ff temperature 60 wcdp "
                             "rowstripe\n"
                             "# another\n"
                             "row 2 7 9000\n";
    const auto profile = loadProfileFromString(text);
    EXPECT_EQ(profile.serial, 0xFFu);
    ASSERT_EQ(profile.rows.size(), 1u);
    EXPECT_EQ(profile.rows[0].bank, 2u);
}

TEST(ProfileIoTest, SurveyToProfileToDefenseFlow)
{
    // End-to-end: characterize, persist, reload, and derive a defense
    // configuration from the parsed profile.
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0);
    Tester tester(dimm);
    const rhmodel::DataPattern pattern(rhmodel::PatternId::Checkered);

    ModuleProfile profile;
    profile.moduleLabel = dimm.label();
    profile.serial = dimm.module().info().serial;
    profile.wcdp = pattern.id();
    const auto conditions = spatialConditions();
    for (unsigned row = 120; row < 170; ++row) {
        profile.rows.push_back(
            {0, row,
             tester.hcFirstMin(0, row, conditions, pattern)});
    }

    const auto reloaded =
        loadProfileFromString(saveProfileToString(profile));
    EXPECT_EQ(reloaded.serial, dimm.module().info().serial);
    EXPECT_GT(reloaded.worstCase(), 0u);
    EXPECT_FALSE(reloaded.weakRows(2.0).empty());
}

TEST(InstallPatternTest, WritesPatternAroundVictim)
{
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0);
    const rhmodel::DataPattern pattern(rhmodel::PatternId::RowStripe);
    const unsigned victim = 500;
    installPattern(dimm, 0, victim, pattern, 3);

    const auto &mapping = dimm.module().rowMapping();
    for (unsigned phys = victim - 3; phys <= victim + 3; ++phys) {
        const auto images =
            dimm.module().loadRowDirect(0, mapping.toLogical(phys));
        for (unsigned col = 0; col < 8; ++col) {
            EXPECT_EQ(images[0][col], pattern.byteAt(phys, victim, col))
                << "row " << phys << " col " << col;
        }
    }
    // Outside the radius: untouched (default zero).
    const auto outside = dimm.module().loadRowDirect(
        0, mapping.toLogical(victim + 5));
    EXPECT_EQ(outside[0][0], 0);
}

TEST(InstallPatternTest, ClampsAtBankEdges)
{
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0);
    const rhmodel::DataPattern pattern(rhmodel::PatternId::ColStripe);
    EXPECT_NO_THROW(installPattern(dimm, 0, 1, pattern, 8));
    EXPECT_NO_THROW(installPattern(
        dimm, 0, dimm.module().geometry().rowsPerBank() - 2, pattern,
        8));
}

} // namespace

/**
 * @file
 * Randomized property tests: legally-scheduled command streams never
 * trip the bank FSM, randomly perturbed streams are always caught,
 * and the fault model stays internally consistent under random
 * condition mixes.
 */

#include <gtest/gtest.h>

#include "dram/module.hh"
#include "rhmodel/dimm.hh"
#include "util/rng.hh"

namespace
{

using namespace rhs;
using namespace rhs::dram;

Module
fuzzModule()
{
    Geometry g;
    g.banks = 4;
    g.subarraysPerBank = 2;
    g.rowsPerSubarray = 256;
    g.columnsPerRow = 64;
    ModuleInfo info;
    info.label = "F";
    info.chips = 2;
    info.serial = 0xF022;
    return Module(info, g, ddr4_2400(), makeIdentityMapping());
}

/** Per-bank scheduler that tracks earliest-legal issue cycles. */
struct LegalScheduler
{
    explicit LegalScheduler(const TimingParams &timing) : timing(timing)
    {
    }

    Cycles
    legalAct(unsigned bank) const
    {
        return nextAct[bank];
    }

    void
    recordAct(unsigned bank, Cycles cycle)
    {
        open[bank] = true;
        actAt[bank] = cycle;
        nextColumn[bank] = cycle + timing.toCycles(timing.tRCD);
        earliestPre[bank] =
            std::max(earliestPre[bank],
                     cycle + timing.toCycles(timing.tRAS));
    }

    void
    recordColumn(unsigned bank, Cycles cycle, bool is_write)
    {
        const auto done = cycle + timing.toCycles(
                                      is_write ? timing.tWR : timing.tRTP);
        earliestPre[bank] = std::max(earliestPre[bank], done);
        nextColumn[bank] = cycle + timing.toCycles(timing.tCCD);
    }

    void
    recordPre(unsigned bank, Cycles cycle)
    {
        open[bank] = false;
        nextAct[bank] = cycle + timing.toCycles(timing.tRP);
        earliestPre[bank] = 0;
    }

    const TimingParams &timing;
    bool open[4] = {false, false, false, false};
    Cycles actAt[4] = {0, 0, 0, 0};
    Cycles nextAct[4] = {0, 0, 0, 0};
    Cycles nextColumn[4] = {0, 0, 0, 0};
    Cycles earliestPre[4] = {0, 0, 0, 0};
};

class ScheduleFuzzTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ScheduleFuzzTest, LegalRandomSchedulesNeverThrow)
{
    auto module = fuzzModule();
    const auto &timing = module.timing();
    LegalScheduler sched(timing);
    util::Rng rng(GetParam());

    Cycles now = 0;
    unsigned issued = 0;
    for (int step = 0; step < 3000; ++step) {
        const auto bank = static_cast<unsigned>(rng.uniformInt(4));
        now += 1 + rng.uniformInt(4);

        if (!sched.open[bank]) {
            const Cycles at = module.earliestRankAct(
                std::max(now, sched.legalAct(bank)));
            const auto row =
                static_cast<unsigned>(rng.uniformInt(512));
            EXPECT_NO_THROW(module.issue(
                {CommandType::Act, bank, row, 0, at}));
            sched.recordAct(bank, at);
            now = at;
            ++issued;
        } else if (rng.bernoulli(0.4)) {
            const Cycles at = std::max(now, sched.nextColumn[bank]);
            const bool write = rng.bernoulli(0.5);
            const auto column =
                static_cast<unsigned>(rng.uniformInt(64));
            if (write) {
                EXPECT_NO_THROW(module.writeColumn(
                    bank, column, {0x11, 0x22}, at));
            } else {
                EXPECT_NO_THROW(module.readColumn(bank, column, at));
            }
            sched.recordColumn(bank, at, write);
            now = at;
            ++issued;
        } else {
            const Cycles at = std::max(now, sched.earliestPre[bank]);
            EXPECT_NO_THROW(
                module.issue({CommandType::Pre, bank, 0, 0, at}));
            sched.recordPre(bank, at);
            now = at;
            ++issued;
        }
    }
    EXPECT_GT(issued, 1000u);
}

TEST_P(ScheduleFuzzTest, PrematureCommandsAlwaysThrow)
{
    const auto &timing = ddr4_2400();
    util::Rng rng(GetParam() + 1000);

    for (int trial = 0; trial < 200; ++trial) {
        auto module = fuzzModule();
        // Open a row, then issue a PRE strictly inside tRAS.
        module.issue({CommandType::Act, 0, 5, 0, 0});
        const auto legal = timing.toCycles(timing.tRAS);
        const Cycles premature = rng.uniformInt(legal - 1);
        EXPECT_THROW(
            module.issue({CommandType::Pre, 0, 0, 0, premature}),
            TimingError)
            << "PRE at " << premature << " of " << legal;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

class ModelConsistencyFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ModelConsistencyFuzz, HcFirstConsistentWithBerAtRandomConditions)
{
    // For random conditions, the row flips in a BER test iff the
    // hammer count is at least the row's HCfirst.
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::C, 0);
    util::Rng rng(GetParam());
    const rhmodel::DataPattern pattern(rhmodel::PatternId::Checkered,
                                       77);

    for (int trial = 0; trial < 40; ++trial) {
        rhmodel::Conditions conditions;
        conditions.temperature = 50.0 + 5.0 * rng.uniformInt(9);
        conditions.tAggOn = 34.5 + rng.uniform(0.0, 120.0);
        conditions.tAggOff = 16.5 + rng.uniform(0.0, 24.0);
        const auto row =
            static_cast<unsigned>(100 + rng.uniformInt(4000));
        const auto attack =
            rhmodel::HammerAttack::doubleSided(0, row);

        const double hc = dimm.analytic().rowHcFirst(
            row, attack, conditions, pattern, 0);
        if (hc == rhmodel::kNeverFlips)
            continue;

        const auto hammers = static_cast<std::uint64_t>(hc);
        const auto below = dimm.analytic().berTest(
            row, attack, conditions, pattern,
            hammers > 1 ? hammers - 1 : 0, 0);
        const auto above = dimm.analytic().berTest(
            row, attack, conditions, pattern, hammers + 1, 0);
        EXPECT_EQ(below.flips.size(), 0u);
        EXPECT_GE(above.flips.size(), 1u);
    }
}

TEST_P(ModelConsistencyFuzz, DamageScalesLinearlyWithHammerCount)
{
    // Flip sets are nested: flips(H1) ⊆ flips(H2) for H1 < H2.
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::A, 0);
    util::Rng rng(GetParam() + 7);
    const rhmodel::DataPattern pattern(rhmodel::PatternId::RowStripe);

    for (int trial = 0; trial < 20; ++trial) {
        const auto row =
            static_cast<unsigned>(100 + rng.uniformInt(4000));
        const auto attack =
            rhmodel::HammerAttack::doubleSided(0, row);
        rhmodel::Conditions conditions;
        conditions.temperature = 50.0 + 5.0 * rng.uniformInt(9);

        std::set<std::uint64_t> previous;
        for (std::uint64_t hammers :
             {50'000ull, 150'000ull, 400'000ull}) {
            const auto result = dimm.analytic().berTest(
                row, attack, conditions, pattern, hammers, 0);
            std::set<std::uint64_t> current;
            for (const auto &loc : result.flips)
                current.insert((static_cast<std::uint64_t>(loc.chip)
                                << 32) |
                               (loc.column << 8) | loc.bit);
            for (auto key : previous)
                EXPECT_TRUE(current.count(key));
            previous = std::move(current);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelConsistencyFuzz,
                         ::testing::Values(5u, 6u, 7u));

} // namespace

/**
 * @file
 * Tests for the src/fuzz pattern-search engine: gene lowering
 * semantics, the determinism contract (seed reproducibility, thread
 * invariance, deadline behaviour), the uniform-baseline bound, the
 * concurrent-searches-over-one-tiny-cache stress the tsan preset
 * exercises, and the fuzz_best serve op.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fuzz/search.hh"
#include "report/json.hh"
#include "rhmodel/dimm.hh"
#include "serve/protocol.hh"
#include "serve/query_engine.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace rhs;

/** Small module so searches stay fast; real calibrated profile. */
rhmodel::DimmOptions
smallOptions()
{
    rhmodel::DimmOptions options;
    options.subarraysPerBank = 2;
    options.rowsPerSubarray = 64;
    options.columnsPerRow = 256;
    return options;
}

fuzz::SearchConfig
smallConfig(unsigned max_victim_row)
{
    fuzz::SearchConfig config;
    config.seed = 7;
    config.population = 8;
    config.generations = 3;
    config.elites = 2;
    config.candidateRows = {20, 40, 60};
    config.maxVictimRow = max_victim_row;
    return config;
}

/** Restores the global pool width on scope exit. */
struct PoolGuard
{
    ~PoolGuard() { util::ThreadPool::configure(0); }
};

// --- Gene lowering ---------------------------------------------------

TEST(FuzzGeneTest, UniformGeneLowersToDoubleSided)
{
    const auto gene = fuzz::PatternGene::uniformDoubleSided(
        2, 40, 8, rhmodel::PatternId::Checkered, 0);
    const auto lowered = gene.lower();
    const auto reference = rhmodel::HammerAttack::doubleSided(2, 40);
    EXPECT_EQ(lowered.bank, reference.bank);
    EXPECT_EQ(lowered.patternCenter, reference.patternCenter);
    EXPECT_EQ(lowered.aggressorRows, reference.aggressorRows);
    EXPECT_EQ(gene.activationsPerPeriod(), 2u);
}

TEST(FuzzGeneTest, LowerEmitsSlotMajorSchedule)
{
    // slots=4; row 10 in every slot, row 12 in slots 1 and 3 with
    // amplitude 2: the schedule must interleave slot by slot, not
    // aggressor by aggressor.
    fuzz::PatternGene gene;
    gene.slots = 4;
    gene.aggressors.push_back({10, 1, 0, 1});
    gene.aggressors.push_back({12, 2, 1, 2});
    const std::vector<unsigned> expected = {10, 10, 12, 12,
                                            10, 10, 12, 12};
    EXPECT_EQ(gene.lower().aggressorRows, expected);
    EXPECT_EQ(gene.activationsPerPeriod(), expected.size());
}

TEST(FuzzGeneTest, VictimsAreNonAggressorNeighbours)
{
    fuzz::PatternGene gene;
    gene.slots = 4;
    gene.aggressors.push_back({10, 1, 0, 1});
    gene.aggressors.push_back({12, 2, 1, 1});
    const std::vector<unsigned> expected = {9, 11, 13};
    EXPECT_EQ(gene.victims(100), expected);
    // The bound excludes out-of-range candidates.
    EXPECT_EQ(gene.victims(11), (std::vector<unsigned>{9, 11}));
}

TEST(FuzzGeneTest, DigestSeparatesFieldEdits)
{
    const auto gene = fuzz::PatternGene::uniformDoubleSided(
        0, 40, 8, rhmodel::PatternId::Checkered, 0);
    auto other = gene;
    EXPECT_EQ(gene.digest(), other.digest());
    other.aggressors[1].phase = 3;
    EXPECT_NE(gene.digest(), other.digest());
}

// --- Search determinism ----------------------------------------------

TEST(FuzzSearchTest, SeedReproducible)
{
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::A, 0, smallOptions());
    const unsigned last =
        dimm.module().geometry().rowsPerBank() - 2;
    const auto config = smallConfig(last);

    const auto first = fuzz::Search(config).run(dimm.analytic());
    const auto second = fuzz::Search(config).run(dimm.analytic());
    EXPECT_EQ(first.best.gene, second.best.gene);
    EXPECT_EQ(first.best.activations, second.best.activations);
    EXPECT_EQ(first.generationBest, second.generationBest);

    auto reseeded = config;
    reseeded.seed = 8;
    const auto third = fuzz::Search(reseeded).run(dimm.analytic());
    // A different seed explores a different population (the seeded
    // uniform genes are shared, so compare the whole trace).
    EXPECT_NE(first.generationBest, third.generationBest);
}

TEST(FuzzSearchTest, ByteIdenticalAcrossJobCounts)
{
    PoolGuard guard;
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0, smallOptions());
    const unsigned last =
        dimm.module().geometry().rowsPerBank() - 2;
    const auto config = smallConfig(last);

    util::ThreadPool::configure(1);
    const auto serial = fuzz::Search(config).run(dimm.analytic());
    util::ThreadPool::configure(8);
    const auto parallel = fuzz::Search(config).run(dimm.analytic());

    EXPECT_EQ(serial.best.gene, parallel.best.gene);
    EXPECT_EQ(serial.best.activations, parallel.best.activations);
    EXPECT_EQ(serial.best.victim, parallel.best.victim);
    EXPECT_EQ(serial.generationBest, parallel.generationBest);
    EXPECT_EQ(serial.uniformActivations, parallel.uniformActivations);
}

TEST(FuzzSearchTest, BestNeverWorseThanUniformBaseline)
{
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::C, 0, smallOptions());
    const unsigned last =
        dimm.module().geometry().rowsPerBank() - 2;
    const auto result =
        fuzz::Search(smallConfig(last)).run(dimm.analytic());
    EXPECT_LT(result.uniformActivations, rhmodel::kNeverFlips);
    EXPECT_LE(result.best.activations, result.uniformActivations);
    // The trace is monotonically non-increasing best-so-far.
    for (std::size_t g = 1; g < result.generationBest.size(); ++g)
        EXPECT_LE(result.generationBest[g],
                  result.generationBest[g - 1]);
}

TEST(FuzzSearchTest, ZeroDeadlineReturnsGenerationZeroBest)
{
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::A, 1, smallOptions());
    const unsigned last =
        dimm.module().geometry().rowsPerBank() - 2;
    auto config = smallConfig(last);
    config.deadlineMs = 0.0;
    const auto result = fuzz::Search(config).run(dimm.analytic());
    EXPECT_TRUE(result.budgetExhausted);
    EXPECT_EQ(result.generationsCompleted, 1u);
    EXPECT_EQ(result.generationBest.size(), 1u);
    // Generation 0 completed in full, so the truncated run's best is
    // the full run's first trace entry.
    config.deadlineMs = -1.0;
    const auto full = fuzz::Search(config).run(dimm.analytic());
    EXPECT_FALSE(full.budgetExhausted);
    EXPECT_EQ(result.best.activations, full.generationBest.front());
}

// --- Concurrent searches over one tiny shared cache (tsan fodder) ----

TEST(FuzzCacheStressTest, ConcurrentSearchesOverTinyEvalCache)
{
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::D, 0, smallOptions());
    const unsigned last =
        dimm.module().geometry().rowsPerBank() - 2;
    // 8 total cache entries forces constant eviction/refill races.
    rhmodel::AnalyticEngine tiny(dimm.cellModel(), 8);

    constexpr unsigned kThreads = 4;
    std::vector<fuzz::SearchResult> results(kThreads);
    {
        std::vector<std::thread> threads;
        for (unsigned t = 0; t < kThreads; ++t)
            threads.emplace_back([&, t] {
                auto config = smallConfig(last);
                config.seed = 100 + t;
                config.generations = 2;
                results[t] = fuzz::Search(config).run(tiny);
            });
        for (auto &thread : threads)
            thread.join();
    }

    // Cache pressure may change cost, never values: each result must
    // match an uncontended re-run of the same config.
    for (unsigned t = 0; t < kThreads; ++t) {
        auto config = smallConfig(last);
        config.seed = 100 + t;
        config.generations = 2;
        const auto replay = fuzz::Search(config).run(dimm.analytic());
        EXPECT_EQ(results[t].best.gene, replay.best.gene) << t;
        EXPECT_EQ(results[t].best.activations,
                  replay.best.activations)
            << t;
        EXPECT_EQ(results[t].generationBest, replay.generationBest)
            << t;
    }
}

// --- The fuzz_best serve op ------------------------------------------

report::Json
parseOrDie(const std::string &text)
{
    report::Json value;
    std::string error;
    EXPECT_TRUE(report::Json::parse(text, value, error)) << error;
    return value;
}

TEST(FuzzServeTest, RejectsSeedlessAndOversizedRequests)
{
    serve::QueryEngine engine;

    // No seed: rejected with a message that names the fix.
    auto response = engine.execute(parseOrDie(
        R"({"op": "fuzz_best", "id": 1, "row0": 10})"));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));
    const auto *message = response.find("message");
    ASSERT_NE(message, nullptr);
    EXPECT_NE(message->asString().find("seed"), std::string::npos);

    response = engine.execute(parseOrDie(
        R"({"op": "fuzz_best", "id": 2, "seed": 1, "row0": 10,
            "population": 100000})"));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));

    response = engine.execute(parseOrDie(
        R"({"op": "fuzz_best", "id": 3, "seed": 1, "row0": 10,
            "generations": 9999})"));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));

    response = engine.execute(parseOrDie(
        R"({"op": "fuzz_best", "id": 4, "seed": 1})"));
    EXPECT_TRUE(serve::isError(response, serve::err::kBadRequest));
}

TEST(FuzzServeTest, DeadlineFreeRepliesAreByteIdentical)
{
    const std::string body =
        R"({"op": "fuzz_best", "id": 9, "seed": 42, "mfr": "B",
            "row0": 30, "count": 2, "population": 6,
            "generations": 2})";
    serve::QueryEngine engine;
    const std::string first = engine.executeRaw(body);
    EXPECT_EQ(engine.executeRaw(body), first);

    // A fresh engine (cold caches) produces the same bytes.
    serve::QueryEngine other;
    EXPECT_EQ(other.executeRaw(body), first);

    const auto parsed = parseOrDie(first);
    const auto *result = parsed.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->find("seed")->asInt(), 42);
    EXPECT_NE(result->find("best"), nullptr);
    EXPECT_FALSE(result->find("budget_exhausted")->asBool());
    EXPECT_EQ(result->find("generations_completed")->asInt(), 2);
    // The fuzzed winner is bounded by the uniform baseline.
    EXPECT_LE(result->find("best_activations")->asDouble(),
              result->find("uniform_activations")->asDouble());
}

TEST(FuzzServeTest, SeedBaseDiversifiesServedSearches)
{
    const std::string body =
        R"({"op": "fuzz_best", "id": 5, "seed": 42, "mfr": "A",
            "row0": 30, "count": 2, "population": 6,
            "generations": 2})";
    serve::QueryEngine plain;
    serve::QueryEngine::EngineOptions options;
    options.fuzzSeedBase = 0xdecafbad;
    serve::QueryEngine seeded(options);
    // Same request, different search space — but both deterministic.
    EXPECT_NE(plain.executeRaw(body), seeded.executeRaw(body));
    EXPECT_EQ(seeded.executeRaw(body), seeded.executeRaw(body));
}

TEST(FuzzServeTest, ZeroDeadlineSetsBudgetExhausted)
{
    serve::QueryEngine engine;
    const auto response = engine.execute(parseOrDie(
        R"({"op": "fuzz_best", "id": 6, "seed": 7, "row0": 30,
            "count": 2, "population": 6, "generations": 4,
            "deadline_ms": 0})"));
    const auto *result = response.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->find("budget_exhausted")->asBool());
    EXPECT_EQ(result->find("generations_completed")->asInt(), 1);
}

} // namespace

/**
 * @file
 * Tests for the SEC-DED codec and the RowHammer-vs-ECC analysis
 * (Defense Improvement 6).
 */

#include <gtest/gtest.h>

#include "ecc/rowhammer_ecc.hh"
#include "ecc/secded.hh"
#include "util/rng.hh"

namespace
{

using namespace rhs::ecc;

TEST(SecDedTest, CleanRoundTrip)
{
    for (std::uint64_t data :
         {0ull, ~0ull, 0xDEADBEEFCAFEF00Dull, 1ull, 1ull << 63}) {
        const auto decoded = decode(encode(data));
        EXPECT_EQ(decoded.status, DecodeStatus::Clean);
        EXPECT_EQ(decoded.data, data);
    }
}

class SingleBitTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SingleBitTest, EverySingleFlipIsCorrected)
{
    const std::uint64_t data = 0x0123456789ABCDEFull;
    auto codeword = encode(data);
    flipBit(codeword, GetParam());
    const auto decoded = decode(codeword);
    EXPECT_EQ(decoded.status, DecodeStatus::Corrected)
        << "position " << GetParam();
    EXPECT_EQ(decoded.data, data) << "position " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPositions, SingleBitTest,
                         ::testing::Range(0u, 72u));

TEST(SecDedTest, EveryDoubleFlipIsDetected)
{
    const std::uint64_t data = 0xFEDCBA9876543210ull;
    rhs::util::Rng rng(3);
    for (int trial = 0; trial < 500; ++trial) {
        const auto a = static_cast<unsigned>(rng.uniformInt(72));
        auto b = static_cast<unsigned>(rng.uniformInt(72));
        if (a == b)
            continue;
        auto codeword = encode(data);
        flipBit(codeword, a);
        flipBit(codeword, b);
        EXPECT_EQ(decode(codeword).status,
                  DecodeStatus::DetectedDouble)
            << "positions " << a << "," << b;
    }
}

TEST(SecDedTest, TripleFlipsCanSilentlyMiscorrect)
{
    // SEC-DED's known failure mode: odd flip counts >= 3 alias onto
    // single-error syndromes and decode "successfully" with wrong
    // data. At least some triples must do so.
    const std::uint64_t data = 0x1111222233334444ull;
    rhs::util::Rng rng(7);
    unsigned miscorrections = 0;
    for (int trial = 0; trial < 500; ++trial) {
        auto codeword = encode(data);
        unsigned a = static_cast<unsigned>(rng.uniformInt(72));
        unsigned b = static_cast<unsigned>(rng.uniformInt(72));
        unsigned c = static_cast<unsigned>(rng.uniformInt(72));
        if (a == b || b == c || a == c)
            continue;
        flipBit(codeword, a);
        flipBit(codeword, b);
        flipBit(codeword, c);
        const auto decoded = decode(codeword);
        if (decoded.status == DecodeStatus::Corrected &&
            decoded.data != data) {
            ++miscorrections;
        }
    }
    EXPECT_GT(miscorrections, 0u);
}

TEST(SecDedTest, DataBitPositionsAreDistinctNonParity)
{
    std::set<unsigned> positions;
    for (unsigned i = 0; i < 64; ++i) {
        const unsigned pos = dataBitPosition(i);
        EXPECT_GE(pos, 1u);
        EXPECT_LT(pos, 72u);
        EXPECT_NE(pos & (pos - 1), 0u) << "parity position " << pos;
        positions.insert(pos);
    }
    EXPECT_EQ(positions.size(), 64u);
}

TEST(WordLayoutTest, ContiguousMapping)
{
    EXPECT_EQ(wordOf(0, 1024, WordLayout::Contiguous), 0u);
    EXPECT_EQ(wordOf(7, 1024, WordLayout::Contiguous), 0u);
    EXPECT_EQ(wordOf(8, 1024, WordLayout::Contiguous), 1u);
    EXPECT_EQ(byteSlotOf(13, 1024, WordLayout::Contiguous), 5u);
}

TEST(WordLayoutTest, InterleavedMappingIsABijection)
{
    const unsigned columns = 64; // 8 words.
    std::set<std::pair<unsigned, unsigned>> seen;
    for (unsigned col = 0; col < columns; ++col) {
        const auto word = wordOf(col, columns, WordLayout::Interleaved);
        const auto slot =
            byteSlotOf(col, columns, WordLayout::Interleaved);
        EXPECT_LT(word, 8u);
        EXPECT_LT(slot, 8u);
        EXPECT_TRUE(seen.insert({word, slot}).second)
            << "collision at column " << col;
    }
}

TEST(WordLayoutTest, InterleavingSeparatesAdjacentColumns)
{
    // Two flips in adjacent columns share a word under the contiguous
    // layout but land in different words when interleaved.
    const unsigned columns = 1024;
    EXPECT_EQ(wordOf(16, columns, WordLayout::Contiguous),
              wordOf(17, columns, WordLayout::Contiguous));
    EXPECT_NE(wordOf(16, columns, WordLayout::Interleaved),
              wordOf(17, columns, WordLayout::Interleaved));
}

TEST(AnalyzeFlipsTest, SingleFlipsAreCorrected)
{
    rhs::dram::Geometry geometry;
    std::vector<rhs::dram::CellLocation> flips{
        {0, 0, 100, 24, 3, }, // chip 0, column 24.
        {1, 0, 100, 800, 0},  // chip 1.
    };
    const auto outcome =
        analyzeFlips(flips, geometry, WordLayout::Contiguous);
    EXPECT_EQ(outcome.words, 2u);
    EXPECT_EQ(outcome.corrected, 2u);
    EXPECT_EQ(outcome.silentCorruption, 0u);
}

TEST(AnalyzeFlipsTest, ClusteredFlipsAreDetectedContiguous)
{
    rhs::dram::Geometry geometry;
    // Two flips in the same 8-column group of the same chip.
    std::vector<rhs::dram::CellLocation> flips{
        {0, 0, 100, 24, 3},
        {0, 0, 100, 25, 6},
    };
    const auto contiguous =
        analyzeFlips(flips, geometry, WordLayout::Contiguous);
    EXPECT_EQ(contiguous.words, 1u);
    EXPECT_EQ(contiguous.detected, 1u);

    // Interleaving separates them into two correctable words.
    const auto interleaved =
        analyzeFlips(flips, geometry, WordLayout::Interleaved);
    EXPECT_EQ(interleaved.words, 2u);
    EXPECT_EQ(interleaved.corrected, 2u);
}

TEST(AnalyzeFlipsTest, TripleClusterRisksSilentCorruption)
{
    rhs::dram::Geometry geometry;
    std::vector<rhs::dram::CellLocation> flips{
        {0, 0, 100, 24, 1},
        {0, 0, 100, 25, 2},
        {0, 0, 100, 26, 3},
    };
    const auto outcome =
        analyzeFlips(flips, geometry, WordLayout::Contiguous);
    EXPECT_EQ(outcome.words, 1u);
    // A triple either miscorrects silently or (rarely) hits an
    // invalid syndrome and is detected.
    EXPECT_EQ(outcome.silentCorruption + outcome.detected, 1u);
}

TEST(AnalyzeFlipsTest, MergeAccumulates)
{
    EccOutcome a{10, 6, 3, 1};
    const EccOutcome b{5, 5, 0, 0};
    a.merge(b);
    EXPECT_EQ(a.words, 15u);
    EXPECT_EQ(a.corrected, 11u);
    EXPECT_NEAR(a.silentRate(), 1.0 / 15.0, 1e-12);
    EXPECT_NEAR(a.correctedRate(), 11.0 / 15.0, 1e-12);
}

} // namespace

/**
 * @file
 * Unit tests for the statistics library against hand-computed values
 * and distribution-level properties.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/bhattacharyya.hh"
#include "stats/descriptive.hh"
#include "stats/histogram.hh"
#include "stats/regression.hh"
#include "util/rng.hh"

namespace
{

using namespace rhs::stats;

TEST(DescriptiveTest, MeanAndStddevHandValues)
{
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    // Sample stddev with n-1: sqrt(32/7).
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, StddevOfSingletonIsZero)
{
    EXPECT_DOUBLE_EQ(stddev({42.0}), 0.0);
}

TEST(DescriptiveTest, CoefficientOfVariation)
{
    const std::vector<double> xs{10.0, 10.0, 10.0};
    EXPECT_DOUBLE_EQ(coefficientOfVariation(xs), 0.0);

    const std::vector<double> ys{5.0, 15.0};
    EXPECT_NEAR(coefficientOfVariation(ys),
                std::sqrt(50.0) / 10.0, 1e-12);
}

TEST(DescriptiveTest, QuantileInterpolates)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(median(xs), 2.5);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

class QuantileMonotonicityTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(QuantileMonotonicityTest, QuantilesNeverDecrease)
{
    rhs::util::Rng rng(GetParam());
    std::vector<double> xs;
    for (int i = 0; i < 257; ++i)
        xs.push_back(rng.gaussian(0.0, 10.0));
    double prev = quantile(xs, 0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        const double v = quantile(xs, q);
        EXPECT_GE(v, prev) << "at q=" << q;
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotonicityTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(DescriptiveTest, MinMax)
{
    const std::vector<double> xs{3.0, -1.0, 7.0};
    EXPECT_DOUBLE_EQ(minValue(xs), -1.0);
    EXPECT_DOUBLE_EQ(maxValue(xs), 7.0);
}

TEST(DescriptiveTest, ConfidenceIntervalShrinksWithSamples)
{
    rhs::util::Rng rng(9);
    std::vector<double> small, large;
    for (int i = 0; i < 20; ++i)
        small.push_back(rng.gaussian());
    for (int i = 0; i < 2000; ++i)
        large.push_back(rng.gaussian());
    EXPECT_GT(confidenceInterval95(small), confidenceInterval95(large));
}

TEST(DescriptiveTest, BoxSummaryOrdering)
{
    rhs::util::Rng rng(5);
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i)
        xs.push_back(rng.gaussian(100.0, 15.0));
    const auto box = boxSummary(xs);
    EXPECT_LE(box.whiskerLow, box.q1);
    EXPECT_LE(box.q1, box.median);
    EXPECT_LE(box.median, box.q3);
    EXPECT_LE(box.q3, box.whiskerHigh);
}

TEST(DescriptiveTest, BoxWhiskersClampToData)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 100.0};
    const auto box = boxSummary(xs);
    // 100 is an outlier beyond 1.5 IQR; the whisker must not reach it.
    EXPECT_LT(box.whiskerHigh, 100.0);
    EXPECT_GE(box.whiskerLow, 1.0);
}

TEST(DescriptiveTest, LetterValuesNested)
{
    rhs::util::Rng rng(6);
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i)
        xs.push_back(rng.gaussian());
    const auto lv = letterValues(xs, 4);
    ASSERT_GE(lv.boxes.size(), 2u);
    for (std::size_t i = 1; i < lv.boxes.size(); ++i) {
        EXPECT_LE(lv.boxes[i].first, lv.boxes[i - 1].first);
        EXPECT_GE(lv.boxes[i].second, lv.boxes[i - 1].second);
    }
}

TEST(DescriptiveTest, LetterValuesStopOnSmallData)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    const auto lv = letterValues(xs, 8);
    EXPECT_LE(lv.boxes.size(), 1u);
}

TEST(DescriptiveTest, SortedDescending)
{
    const auto out = sortedDescending({1.0, 5.0, 3.0});
    EXPECT_EQ(out, (std::vector<double>{5.0, 3.0, 1.0}));
}

TEST(DescriptiveTest, FractionPositive)
{
    EXPECT_DOUBLE_EQ(fractionPositive({1.0, -1.0, 2.0, 0.0}), 0.5);
    EXPECT_DOUBLE_EQ(fractionPositive({}), 0.0);
}

TEST(DescriptiveTest, CumulativeMagnitude)
{
    EXPECT_DOUBLE_EQ(cumulativeMagnitude({1.0, -2.0, 3.0}), 6.0);
}

TEST(HistogramTest, CountsAndNormalization)
{
    Histogram h(0.0, 10.0, 10);
    h.addAll({0.5, 1.5, 1.6, 9.9});
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.total(), 4u);
    const auto norm = h.normalized();
    double sum = 0.0;
    for (double v : norm)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, OutOfRangeClamps)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(5.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 1u);
}

TEST(HistogramTest, BinCenters)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

TEST(Histogram2dTest, FractionsAndClamping)
{
    Histogram2d h(0.0, 1.0, 2, 0.0, 1.0, 2);
    h.add(0.1, 0.1);
    h.add(0.9, 0.9);
    h.add(0.9, 0.9);
    h.add(2.0, -1.0); // Clamps to (1,0) bucket.
    EXPECT_EQ(h.count(0, 0), 1u);
    EXPECT_EQ(h.count(1, 1), 2u);
    EXPECT_EQ(h.count(1, 0), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(1, 1), 0.5);
    EXPECT_EQ(h.total(), 4u);
}

TEST(RegressionTest, ExactLineRecovered)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back(i);
        ys.push_back(0.46 * i + 3773.0);
    }
    const auto fit = linearFit(xs, ys);
    EXPECT_NEAR(fit.slope, 0.46, 1e-9);
    EXPECT_NEAR(fit.intercept, 3773.0, 1e-6);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(RegressionTest, NoiseLowersR2)
{
    rhs::util::Rng rng(8);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        xs.push_back(i);
        ys.push_back(2.0 * i + rng.gaussian(0.0, 100.0));
    }
    const auto fit = linearFit(xs, ys);
    EXPECT_GT(fit.r2, 0.3);
    EXPECT_LT(fit.r2, 0.99);
    EXPECT_NEAR(fit.slope, 2.0, 0.5);
}

TEST(RegressionTest, PredictEvaluatesLine)
{
    const LinearFit fit{2.0, 1.0, 1.0};
    EXPECT_DOUBLE_EQ(fit.predict(3.0), 7.0);
}

TEST(BhattacharyyaTest, IdenticalDistributionsHaveCoefficientOne)
{
    std::vector<double> a;
    rhs::util::Rng rng(10);
    for (int i = 0; i < 2000; ++i)
        a.push_back(rng.gaussian(50.0, 5.0));
    EXPECT_NEAR(bhattacharyyaCoefficient(a, a), 1.0, 1e-9);
    EXPECT_NEAR(bhattacharyyaDistance(a, a), 0.0, 1e-9);
}

TEST(BhattacharyyaTest, DisjointSupportsAreFar)
{
    std::vector<double> a, b;
    for (int i = 0; i < 100; ++i) {
        a.push_back(i);
        b.push_back(1000.0 + i);
    }
    EXPECT_GT(bhattacharyyaDistance(a, b), 5.0);
}

TEST(BhattacharyyaTest, NormalizedNearOneForSameDistribution)
{
    rhs::util::Rng rng(12);
    std::vector<double> a, b;
    for (int i = 0; i < 4000; ++i) {
        a.push_back(rng.gaussian(100.0, 10.0));
        b.push_back(rng.gaussian(100.0, 10.0));
    }
    const double norm = bhattacharyyaNormalized(a, b);
    EXPECT_GT(norm, 0.7);
    EXPECT_LE(norm, 1.2);
}

TEST(BhattacharyyaTest, NormalizedFallsForShiftedDistribution)
{
    rhs::util::Rng rng(14);
    std::vector<double> a, b;
    for (int i = 0; i < 4000; ++i) {
        a.push_back(rng.gaussian(100.0, 10.0));
        b.push_back(rng.gaussian(140.0, 10.0));
    }
    EXPECT_LT(bhattacharyyaNormalized(a, b),
              bhattacharyyaNormalized(a, a));
}

} // namespace

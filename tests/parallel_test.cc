/**
 * @file
 * Parallel characterization engine tests: the thread pool itself,
 * determinism of the parallel sweeps (byte-identical results at any
 * worker count), and concurrent access to the sharded cellsOfRow
 * cache. These are the tests the TSan preset (`cmake --preset tsan`)
 * runs under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "core/campaign.hh"
#include "core/profile_io.hh"
#include "core/spatial.hh"
#include "core/temp_analysis.hh"
#include "core/tester.hh"
#include "core/timing_analysis.hh"
#include "rhmodel/dimm.hh"
#include "util/hash.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace rhs;

/** Restore the global pool to its default width after each test. */
class ParallelTest : public ::testing::Test
{
  protected:
    void TearDown() override { util::ThreadPool::configure(0); }
};

// --- ThreadPool unit tests -----------------------------------------

TEST_F(ParallelTest, ParallelForCoversEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 8u}) {
        util::ThreadPool pool(jobs);
        std::vector<std::atomic<int>> hits(1000);
        pool.parallelFor(0, hits.size(), [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i
                                         << " jobs " << jobs;
    }
}

TEST_F(ParallelTest, ParallelForEmptyAndSingleRanges)
{
    util::ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(5, 5, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(7, 8, [&](std::size_t i) {
        EXPECT_EQ(i, 7u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, ParallelMapPreservesIndexOrder)
{
    util::ThreadPool pool(8);
    const auto squares = pool.parallelMap(
        100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST_F(ParallelTest, NestedParallelForRunsInlineWithoutDeadlock)
{
    util::ThreadPool::configure(4);
    std::atomic<int> total{0};
    util::parallelFor(0, 8, [&](std::size_t) {
        // Inner call must not wait on pool workers that are all busy
        // running the outer loop — it runs inline on this thread.
        util::parallelFor(0, 8, [&](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST_F(ParallelTest, ConfigureOneForcesSerialExecution)
{
    util::ThreadPool::configure(1);
    const auto main_id = std::this_thread::get_id();
    util::parallelFor(0, 32, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), main_id);
    });
}

// --- Determinism: identical bytes at jobs=1 and jobs=8 -------------

std::string
campaignDigest(unsigned jobs)
{
    util::ThreadPool::configure(jobs);
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0);
    core::Tester tester(dimm);
    core::CampaignConfig config;
    config.maxRows = 12;
    config.rowsPerRegion = 4;
    const auto report = core::runCampaign(tester, config);
    std::ostringstream out;
    out << report.summary();
    core::saveProfile(out, report.profile);
    for (double hc : report.rowHcFirst)
        out << hc << '\n';
    return out.str();
}

TEST_F(ParallelTest, CampaignByteIdenticalAcrossThreadCounts)
{
    const auto serial = campaignDigest(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(campaignDigest(8), serial);
}

std::string
sweepDigest(unsigned jobs)
{
    util::ThreadPool::configure(jobs);
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::D, 0);
    core::Tester tester(dimm);
    const rhmodel::DataPattern wcdp(rhmodel::PatternId::Checkered,
                                    dimm.module().info().serial);
    const auto all = core::testedRows(dimm.module().geometry(), 6);
    const std::vector<unsigned> rows(all.begin(), all.begin() + 12);

    std::ostringstream out;
    const auto ranges = core::analyzeTempRanges(tester, 0, rows, wcdp);
    out << ranges.vulnerableCells << ' ' << ranges.noGapCells << ' '
        << ranges.oneGapCells << '\n';
    for (const auto &bucket : ranges.rangeCount)
        for (auto count : bucket)
            out << count << ' ';

    const auto shift =
        core::analyzeHcFirstVsTemperature(tester, 0, rows, wcdp);
    for (double pct : shift.changePct55)
        out << pct << ' ';
    for (double pct : shift.changePct90)
        out << pct << ' ';

    const auto on_sweep =
        core::sweepAggressorOnTime(tester, 0, rows, wcdp);
    out << on_sweep.berRatio() << ' ' << on_sweep.hcFirstChange();
    return out.str();
}

TEST_F(ParallelTest, TemperatureAndTimingSweepsByteIdentical)
{
    const auto serial = sweepDigest(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(sweepDigest(8), serial);
}

TEST_F(ParallelTest, SubarraySurveyIdenticalAcrossThreadCounts)
{
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::C, 0);
    core::Tester tester(dimm);
    const rhmodel::DataPattern wcdp(rhmodel::PatternId::Checkered,
                                    dimm.module().info().serial);
    util::ThreadPool::configure(1);
    const auto serial = core::subarraySurvey(tester, 0, 4, 6, wcdp);
    util::ThreadPool::configure(8);
    const auto parallel = core::subarraySurvey(tester, 0, 4, 6, wcdp);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t s = 0; s < serial.size(); ++s) {
        EXPECT_EQ(parallel[s].subarray, serial[s].subarray);
        EXPECT_EQ(parallel[s].averageHcFirst, serial[s].averageHcFirst);
        EXPECT_EQ(parallel[s].minimumHcFirst, serial[s].minimumHcFirst);
        EXPECT_EQ(parallel[s].hcFirstValues, serial[s].hcFirstValues);
    }
}

/**
 * Digest of every kernel-backed query the RowEval cache serves:
 * hcFirstSearch (all trials), berDetail flip locations, and the WCDP
 * scan. Hit/miss and eviction order differ between thread counts; the
 * bytes must not.
 */
std::string
searchDigest(unsigned jobs)
{
    util::ThreadPool::configure(jobs);
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::A, 0);
    core::Tester tester(dimm);
    const auto all = core::testedRows(dimm.module().geometry(), 8);
    const std::vector<unsigned> rows(all.begin(), all.begin() + 16);
    rhmodel::Conditions conditions;

    std::ostringstream out;
    const auto wcdp = tester.findWorstCasePattern(0, rows, conditions);
    out << to_string(wcdp.id()) << '\n';

    std::vector<std::string> slots(rows.size() * core::kRepetitions);
    util::parallelFor(0, slots.size(), [&](std::size_t i) {
        const unsigned row = rows[i / core::kRepetitions];
        const auto trial =
            static_cast<unsigned>(i % core::kRepetitions);
        std::ostringstream line;
        line << tester.hcFirstSearch(0, row, conditions, wcdp, trial);
        const auto detail = tester.berDetail(
            0, row, conditions, wcdp, core::kBerHammers, trial);
        line << ' ' << detail.vulnerableCells;
        for (const auto &loc : detail.flips)
            line << ' ' << loc.chip << ':' << loc.column << ':'
                 << static_cast<unsigned>(loc.bit);
        slots[i] = line.str();
    });
    for (const auto &slot : slots)
        out << slot << '\n';
    return out.str();
}

TEST_F(ParallelTest, SearchBerAndWcdpByteIdenticalAcrossThreadCounts)
{
    const auto serial = searchDigest(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(searchDigest(8), serial);
}

// --- Concurrent cellsOfRow cache stress ----------------------------

std::uint64_t
rowChecksum(const std::vector<rhmodel::VulnerableCell> &cells)
{
    std::uint64_t sum = 0;
    for (const auto &cell : cells)
        sum = util::hashTuple(sum, cell.loc.column, cell.loc.bit,
                              cell.seed);
    return sum;
}

TEST_F(ParallelTest, ConcurrentCellsOfRowMatchesSerialChecksums)
{
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::A, 0);
    const auto &model = dimm.cellModel();
    constexpr unsigned kRows = 200;

    // Serial reference checksums, computed before any concurrency.
    std::vector<std::uint64_t> expected(kRows);
    for (unsigned r = 0; r < kRows; ++r)
        expected[r] = rowChecksum(model.cellsOfRow(0, 2 + r));

    // 8 threads hammer the same rows through the sharded LRU; the
    // walk is longer than kCacheCapacity so eviction happens under
    // contention while other threads still read their pinned rows.
    static_assert(kRows > rhmodel::CellModel::kCacheCapacity / 2);
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            for (unsigned pass = 0; pass < 3; ++pass) {
                for (unsigned i = 0; i < kRows; ++i) {
                    const unsigned r = (i * (t + 1) + pass) % kRows;
                    const auto &cells = model.cellsOfRow(0, 2 + r);
                    if (rowChecksum(cells) != expected[r])
                        mismatches.fetch_add(1);
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(mismatches.load(), 0);
}

// --- Concurrent RowEval cache stress -------------------------------

std::uint64_t
evalChecksum(const rhmodel::RowEval &eval)
{
    std::uint64_t sum = util::hashTuple(
        eval.vulnerableCells,
        std::bit_cast<std::uint64_t>(eval.minHcFirst));
    for (std::size_t i = 0; i < eval.hcFirst.size(); ++i) {
        sum = util::hashTuple(
            sum, std::bit_cast<std::uint64_t>(eval.hcFirst[i]),
            eval.loc[i].chip, eval.loc[i].column, eval.loc[i].bit);
    }
    return sum;
}

TEST_F(ParallelTest, ConcurrentRowEvalMatchesSerialChecksums)
{
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0);
    core::Tester tester(dimm);
    const rhmodel::DataPattern pattern(rhmodel::PatternId::Checkered);
    rhmodel::Conditions conditions;

    // More keys than the whole eval cache holds, so eviction and
    // re-evaluation happen under contention.
    constexpr unsigned kRows = 220;
    constexpr unsigned kTrials = 5;
    static_assert(kRows * kTrials >
                  rhmodel::AnalyticEngine::kEvalCacheCapacity);

    std::vector<std::uint64_t> expected(kRows * kTrials);
    for (unsigned i = 0; i < expected.size(); ++i) {
        expected[i] = evalChecksum(*tester.rowEval(
            0, 2 + i / kTrials, conditions, pattern, i % kTrials));
    }

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            for (unsigned pass = 0; pass < 2; ++pass) {
                for (unsigned i = 0; i < expected.size(); ++i) {
                    // Per-thread visit order: different threads collide
                    // on different keys at any instant.
                    const unsigned k = (i * (t + 1) + pass) %
                                       (kRows * kTrials);
                    const auto eval = tester.rowEval(
                        0, 2 + k / kTrials, conditions, pattern,
                        k % kTrials);
                    if (evalChecksum(*eval) != expected[k])
                        mismatches.fetch_add(1);
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ParallelTest, CellsOfRowReferenceSurvivesKeepAliveWindow)
{
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::A, 0);
    const auto &model = dimm.cellModel();
    const auto &pinned = model.cellsOfRow(0, 50);
    const auto snapshot = pinned; // deep copy
    // Up to kKeepAlive-1 further calls may not invalidate `pinned`,
    // even though the touched rows evict it from the shared cache.
    for (unsigned i = 1; i < rhmodel::CellModel::kKeepAlive; ++i)
        model.cellsOfRow(0, 1000 + i * 16);
    EXPECT_EQ(pinned.size(), snapshot.size());
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        EXPECT_EQ(pinned[i].loc, snapshot[i].loc);
        EXPECT_EQ(pinned[i].seed, snapshot[i].seed);
    }
}

} // namespace

/**
 * @file
 * Tests for the manufacturer profiles and the calibration solver:
 * the derived constants must reproduce the paper's HCfirst endpoint
 * numbers exactly, by construction.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rhmodel/profile.hh"

namespace
{

using namespace rhs::rhmodel;

TEST(NormalCdfTest, KnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normalCdf(-1.96), 0.025, 1e-3);
    EXPECT_GT(normalCdf(8.0), 0.9999);
}

class ProfileTest : public ::testing::TestWithParam<Mfr>
{
  protected:
    const ManufacturerProfile &profile() const
    {
        return profileFor(GetParam());
    }
};

TEST_P(ProfileTest, DerivedConstantsAreSane)
{
    const auto &p = profile();
    EXPECT_GT(p.wCouple, 0.0);
    EXPECT_LT(p.wCouple, 1.0);
    EXPECT_GT(p.kOn, 0.0);
    EXPECT_GT(p.cellSigma, 0.0);
    EXPECT_LE(p.cellSigma, p.sigmaCap + 1e-12);
    EXPECT_LT(p.zBase, 0.0); // 150K sits in the lower tail.
    EXPECT_GT(std::exp(p.hcMedianLog), 150e3);
}

TEST_P(ProfileTest, TimingDerivationReproducesHcFirstEndpoints)
{
    const auto &p = profile();
    const double t_ras = 34.5, t_rp = 16.5;

    // Damage at the on-time sweep endpoint.
    const double g_on =
        1.0 + p.kOn * (154.5 - t_ras) / t_ras;
    const double d_on = (1.0 - p.wCouple) * g_on + p.wCouple * 1.0;
    // HCfirst scales with 1/damage: reduction = 1 - 1/d_on.
    EXPECT_NEAR(1.0 - 1.0 / d_on, p.targets.hcOnReduction, 1e-9);

    // Damage at the off-time sweep endpoint.
    const double g_off = t_rp / 40.5;
    const double d_off = (1.0 - p.wCouple) * 1.0 + p.wCouple * g_off;
    EXPECT_NEAR(1.0 / d_off - 1.0, p.targets.hcOffIncrease, 1e-9);
}

TEST_P(ProfileTest, MixtureFractionsSumToOne)
{
    double total = 0.0;
    for (const auto &comp : profile().tempMixture)
        total += comp.fraction;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(ProfileTest, MixtureWidthsOrdered)
{
    for (const auto &comp : profile().tempMixture) {
        EXPECT_GT(comp.widthMin, 0.0);
        EXPECT_GE(comp.widthMax, comp.widthMin);
        EXPECT_GT(comp.sigmaScale, 0.0);
    }
}

TEST_P(ProfileTest, BerSolveTargetsOrderedAbovePublished)
{
    const auto &p = profile();
    if (p.solveBerOnRatio > 0.0) {
        EXPECT_GE(p.solveBerOnRatio, p.targets.berOnRatio * 0.8);
    }
    if (p.solveBerOffRatio > 0.0) {
        EXPECT_GE(p.solveBerOffRatio, p.targets.berOffRatio * 0.8);
    }
}

INSTANTIATE_TEST_SUITE_P(AllMfrs, ProfileTest,
                         ::testing::ValuesIn(allMfrs));

TEST(ProfileTest, PublishedTargetsMatchPaperTable)
{
    // Obsv. 8/10 endpoint numbers, straight from the paper.
    EXPECT_NEAR(profileFor(Mfr::A).targets.hcOnReduction, 0.400, 1e-9);
    EXPECT_NEAR(profileFor(Mfr::B).targets.hcOnReduction, 0.283, 1e-9);
    EXPECT_NEAR(profileFor(Mfr::C).targets.hcOnReduction, 0.327, 1e-9);
    EXPECT_NEAR(profileFor(Mfr::D).targets.hcOnReduction, 0.373, 1e-9);

    EXPECT_NEAR(profileFor(Mfr::A).targets.hcOffIncrease, 0.338, 1e-9);
    EXPECT_NEAR(profileFor(Mfr::B).targets.hcOffIncrease, 0.247, 1e-9);
    EXPECT_NEAR(profileFor(Mfr::C).targets.hcOffIncrease, 0.501, 1e-9);
    EXPECT_NEAR(profileFor(Mfr::D).targets.hcOffIncrease, 0.337, 1e-9);

    EXPECT_NEAR(profileFor(Mfr::A).targets.berOnRatio, 10.2, 1e-9);
    EXPECT_NEAR(profileFor(Mfr::B).targets.berOnRatio, 3.1, 1e-9);
    EXPECT_NEAR(profileFor(Mfr::C).targets.berOnRatio, 4.4, 1e-9);
    EXPECT_NEAR(profileFor(Mfr::D).targets.berOnRatio, 9.6, 1e-9);
}

TEST(ProfileTest, FinalizeRejectsBadTargets)
{
    ManufacturerProfile p = profileFor(Mfr::A);
    p.targets.hcOnReduction = 1.5;
    EXPECT_DEATH(p.finalize(), "assertion failed");
}

TEST(ProfileTest, FinalizeRejectsBadMixture)
{
    ManufacturerProfile p = profileFor(Mfr::A);
    p.tempMixture = {{0.4, 50.0, 5.0, 10.0, 20.0, 1.0, 0.0}};
    EXPECT_DEATH(p.finalize(), "sum to 1");
}

TEST(ProfileTest, MfrNames)
{
    EXPECT_EQ(to_string(Mfr::A), "Mfr. A");
    EXPECT_EQ(letterOf(Mfr::D), 'D');
    EXPECT_EQ(profileFor(Mfr::C).name, "Mfr. C");
}

TEST(ProfileTest, ProfilesAreSingletons)
{
    EXPECT_EQ(&profileFor(Mfr::B), &profileFor(Mfr::B));
}

} // namespace

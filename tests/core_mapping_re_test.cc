/**
 * @file
 * Tests for the logical-to-physical row mapping reverse engineering
 * (§4.2): single-sided hammering must identify the true physical
 * neighbours for every mapping scheme the manufacturers use.
 */

#include <gtest/gtest.h>

#include "core/row_mapping_re.hh"

namespace
{

using namespace rhs;
using namespace rhs::core;
using namespace rhs::rhmodel;

class MappingReTest : public ::testing::TestWithParam<Mfr>
{
};

TEST_P(MappingReTest, RecoversPhysicalAdjacency)
{
    SimulatedDimm dimm(GetParam(), 0);
    Tester tester(dimm);

    std::vector<unsigned> probes;
    for (unsigned row = 64; row < 96; ++row)
        probes.push_back(row);

    const auto inferred = inferAdjacency(tester, 0, probes);
    ASSERT_EQ(inferred.size(), probes.size());
    const double accuracy = adjacencyAccuracy(tester, inferred);
    EXPECT_GE(accuracy, 0.9) << "mapping "
                             << dimm.module().rowMapping().name();
}

INSTANTIATE_TEST_SUITE_P(AllMfrs, MappingReTest,
                         ::testing::ValuesIn(allMfrs));

TEST(MappingReTest, NonTrivialMappingSeparatesLogicalNeighbours)
{
    // With the XOR swizzle, logically-adjacent rows are often not
    // physically adjacent; the inference must find the remapped ones.
    SimulatedDimm dimm(Mfr::A, 0); // Mfr. A uses the XOR swizzle.
    Tester tester(dimm);

    const auto inferred = inferAdjacency(tester, 0, {8});
    ASSERT_EQ(inferred.size(), 1u);
    const auto &mapping = dimm.module().rowMapping();
    const unsigned phys = mapping.toPhysical(8);
    ASSERT_TRUE(inferred[0].victimLow.has_value());
    ASSERT_TRUE(inferred[0].victimHigh.has_value());
    const std::set<unsigned> got{*inferred[0].victimLow,
                                 *inferred[0].victimHigh};
    const std::set<unsigned> expected{mapping.toLogical(phys - 1),
                                      mapping.toLogical(phys + 1)};
    EXPECT_EQ(got, expected);
}

} // namespace

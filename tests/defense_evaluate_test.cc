/**
 * @file
 * Integration tests: defenses against a live double-sided attack on a
 * simulated DIMM. A correctly-configured defense must prevent every
 * bit flip the undefended attack achieves.
 */

#include <gtest/gtest.h>

#include "core/tester.hh"
#include "defense/blockhammer.hh"
#include "defense/evaluate.hh"
#include "defense/graphene.hh"
#include "defense/para.hh"
#include "defense/twice.hh"

namespace
{

using namespace rhs;
using namespace rhs::defense;
using namespace rhs::rhmodel;

/** Find a clearly vulnerable victim row for Mfr. B. */
unsigned
vulnerableVictim(SimulatedDimm &dimm, std::uint64_t hammers)
{
    core::Tester tester(dimm);
    DataPattern pattern(PatternId::Checkered);
    Conditions conditions;
    for (unsigned row = 100; row < 400; ++row) {
        if (tester.berOfRow(0, row, conditions, pattern, hammers) >= 3)
            return row;
    }
    ADD_FAILURE() << "no vulnerable row found";
    return 100;
}

class EvaluateTest : public ::testing::Test
{
  protected:
    EvaluateTest() : dimm(Mfr::B, 0, smallOptions()),
                     pattern(PatternId::Checkered)
    {
        config.victimPhysicalRow = vulnerableVictim(dimm, config.hammers);
    }

    static DimmOptions
    smallOptions()
    {
        DimmOptions options;
        options.subarraysPerBank = 4;
        return options;
    }

    SimulatedDimm dimm;
    DataPattern pattern;
    AttackConfig config;
};

TEST_F(EvaluateTest, UndefendedAttackFlipsBits)
{
    const auto result = evaluateUndefended(dimm, pattern, config);
    EXPECT_GE(result.flips, 3u);
    EXPECT_EQ(result.refreshes, 0u);
    EXPECT_EQ(result.activations, 2 * config.hammers);
}

TEST_F(EvaluateTest, GrapheneStopsTheAttack)
{
    // Threshold far below any HCfirst in the module.
    Graphene graphene(8'000, 2 * config.hammers);
    const auto result = evaluateDefense(dimm, graphene, pattern, config);
    EXPECT_EQ(result.flips, 0u);
    EXPECT_GT(result.refreshes, 0u);
    EXPECT_LT(result.refreshOverhead(), 0.01);
}

TEST_F(EvaluateTest, TwiceStopsTheAttack)
{
    Twice twice(8'000, 2 * config.hammers, 4'096);
    const auto result = evaluateDefense(dimm, twice, pattern, config);
    EXPECT_EQ(result.flips, 0u);
    EXPECT_GT(result.refreshes, 0u);
}

TEST_F(EvaluateTest, ParaStopsTheAttackWithHighProbability)
{
    // Configure for a failure probability of 1e-12 at HCfirst 20K.
    Para para(Para::probabilityFor(20'000.0, 1e-12), 17);
    const auto result = evaluateDefense(dimm, para, pattern, config);
    EXPECT_EQ(result.flips, 0u);
    EXPECT_GT(result.refreshes, 0u);
}

TEST_F(EvaluateTest, BlockHammerThrottlesInsteadOfRefreshing)
{
    BlockHammer blockhammer(8'000, 2 * config.hammers);
    const auto result =
        evaluateDefense(dimm, blockhammer, pattern, config);
    EXPECT_EQ(result.flips, 0u);
    EXPECT_EQ(result.refreshes, 0u);
    EXPECT_GT(result.throttledActs, 0u);
    // Throttling suppressed nearly all aggressor activations beyond
    // the blacklist threshold.
    EXPECT_LT(result.activations, 2 * config.hammers);
}

TEST_F(EvaluateTest, UnderProvisionedGrapheneFails)
{
    // A threshold far above the row's HCfirst refreshes too late: the
    // defense must NOT stop the attack (sanity check that the harness
    // does not silently heal victims).
    Graphene graphene(700'000, 4 * config.hammers);
    const auto result = evaluateDefense(dimm, graphene, pattern, config);
    EXPECT_GT(result.flips, 0u);
}

TEST_F(EvaluateTest, RefreshOverheadScalesWithThreshold)
{
    Graphene tight(4'000, 2 * config.hammers);
    Graphene loose(64'000, 2 * config.hammers);
    const auto tight_result =
        evaluateDefense(dimm, tight, pattern, config);
    const auto loose_result =
        evaluateDefense(dimm, loose, pattern, config);
    EXPECT_GT(tight_result.refreshes, loose_result.refreshes);
    EXPECT_GT(tight.storageBits(), loose.storageBits());
}

} // namespace

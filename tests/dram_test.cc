/**
 * @file
 * Unit tests for the DRAM substrate: geometry, timing conversion,
 * address mappings, chip data store, and module command dispatch.
 */

#include <gtest/gtest.h>

#include "dram/address_mapping.hh"
#include "dram/chip.hh"
#include "dram/module.hh"
#include "dram/timing.hh"

namespace
{

using namespace rhs::dram;

TEST(GeometryTest, DerivedQuantities)
{
    Geometry g;
    g.banks = 4;
    g.subarraysPerBank = 16;
    g.rowsPerSubarray = 512;
    g.columnsPerRow = 1024;
    g.bitsPerColumn = 8;
    EXPECT_EQ(g.rowsPerBank(), 8192u);
    EXPECT_EQ(g.bitsPerRow(), 8192u);
    EXPECT_EQ(g.bytesPerRow(), 1024u);
    EXPECT_EQ(g.subarrayOf(0), 0u);
    EXPECT_EQ(g.subarrayOf(511), 0u);
    EXPECT_EQ(g.subarrayOf(512), 1u);
    EXPECT_EQ(g.rowInSubarray(513), 1u);
}

TEST(TimingTest, Presets)
{
    const auto ddr4 = ddr4_2400();
    EXPECT_EQ(ddr4.standard, Standard::DDR4);
    EXPECT_DOUBLE_EQ(ddr4.tRAS, 34.5); // Paper baseline on-time.
    EXPECT_DOUBLE_EQ(ddr4.tRP, 16.5);  // Paper baseline off-time.
    EXPECT_DOUBLE_EQ(ddr4.clock, 1.25); // SoftMC DDR4 granularity.

    const auto ddr3 = ddr3_1600();
    EXPECT_EQ(ddr3.standard, Standard::DDR3);
    EXPECT_DOUBLE_EQ(ddr3.clock, 2.5);
}

TEST(TimingTest, CycleConversionRoundsUp)
{
    const auto t = ddr4_2400();
    EXPECT_EQ(t.toCycles(1.25), 1u);
    EXPECT_EQ(t.toCycles(1.26), 2u);
    EXPECT_EQ(t.toCycles(34.5), 28u); // 34.5 / 1.25 = 27.6 -> 28.
    EXPECT_DOUBLE_EQ(t.toNs(28), 35.0);
}

TEST(TimingTest, HammerPeriod)
{
    const auto t = ddr4_2400();
    EXPECT_DOUBLE_EQ(t.hammerPeriod(), 51.0);
}

class MappingTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MappingTest, BijectiveOverFirstRows)
{
    const auto mapping = makeMapping(GetParam());
    std::set<unsigned> images;
    for (unsigned row = 0; row < 4096; ++row) {
        const unsigned phys = mapping->toPhysical(row);
        EXPECT_EQ(mapping->toLogical(phys), row) << "row " << row;
        images.insert(phys);
    }
    EXPECT_EQ(images.size(), 4096u); // Injective.
}

INSTANTIATE_TEST_SUITE_P(Schemes, MappingTest,
                         ::testing::Values("identity", "msb-pair", "xor"));

TEST(MappingTest, IdentityIsIdentity)
{
    const auto mapping = makeIdentityMapping();
    EXPECT_EQ(mapping->toPhysical(1234), 1234u);
}

TEST(MappingTest, MsbPairFoldsUpperHalf)
{
    const auto mapping = makeMsbPairMapping();
    EXPECT_EQ(mapping->toPhysical(0x8), 0xFu);
    EXPECT_EQ(mapping->toPhysical(0xF), 0x8u);
    EXPECT_EQ(mapping->toPhysical(0x3), 0x3u);
}

TEST(MappingTest, XorSwizzleScramblesNeighbours)
{
    const auto mapping = makeXorSwizzleMapping(0x3);
    // Logical 8 has (8>>3)&3 = 1 -> physical 9.
    EXPECT_EQ(mapping->toPhysical(8), 9u);
    EXPECT_EQ(mapping->toPhysical(9), 8u);
}

TEST(MappingDeathTest, UnknownSchemeIsFatal)
{
    EXPECT_EXIT(makeMapping("nonsense"), ::testing::ExitedWithCode(1),
                "unknown row mapping");
}

Geometry
testGeometry()
{
    Geometry g;
    g.banks = 2;
    g.subarraysPerBank = 2;
    g.rowsPerSubarray = 64;
    g.columnsPerRow = 32;
    g.bitsPerColumn = 8;
    return g;
}

TEST(ChipTest, UnwrittenRowsReadAsZero)
{
    const auto g = testGeometry();
    Chip chip(g, 0);
    EXPECT_FALSE(chip.hasRow(0, 5));
    const auto row = chip.readRow(0, 5);
    EXPECT_EQ(row.size(), g.bytesPerRow());
    for (auto b : row)
        EXPECT_EQ(b, 0);
}

TEST(ChipTest, WriteReadRoundTrip)
{
    const auto g = testGeometry();
    Chip chip(g, 0);
    std::vector<std::uint8_t> data(g.bytesPerRow(), 0xA5);
    chip.writeRow(1, 7, data);
    EXPECT_TRUE(chip.hasRow(1, 7));
    EXPECT_EQ(chip.readRow(1, 7), data);
    EXPECT_EQ(chip.readByte(1, 7, 3), 0xA5);
}

TEST(ChipTest, FlipBitTogglesExactlyOneBit)
{
    const auto g = testGeometry();
    Chip chip(g, 0);
    chip.writeByte(0, 1, 2, 0x00);
    chip.flipBit(0, 1, 2, 4);
    EXPECT_EQ(chip.readByte(0, 1, 2), 0x10);
    chip.flipBit(0, 1, 2, 4);
    EXPECT_EQ(chip.readByte(0, 1, 2), 0x00);
}

TEST(ChipTest, FlipBitMaterializesRow)
{
    const auto g = testGeometry();
    Chip chip(g, 0);
    chip.flipBit(0, 9, 0, 0);
    EXPECT_TRUE(chip.hasRow(0, 9));
    EXPECT_EQ(chip.readByte(0, 9, 0), 0x01);
}

TEST(ChipTest, ClearDropsEverything)
{
    const auto g = testGeometry();
    Chip chip(g, 0);
    chip.writeByte(0, 1, 0, 0xFF);
    chip.clear();
    EXPECT_FALSE(chip.hasRow(0, 1));
}

TEST(ChipDeathTest, OutOfRangeAddressesPanic)
{
    const auto g = testGeometry();
    Chip chip(g, 0);
    EXPECT_DEATH(chip.readByte(5, 0, 0), "bank");
    EXPECT_DEATH(chip.readByte(0, 9999, 0), "row");
    EXPECT_DEATH(chip.readByte(0, 0, 9999), "column");
}

ModuleInfo
testInfo()
{
    ModuleInfo info;
    info.label = "T0";
    info.manufacturer = "Test";
    info.chips = 4;
    info.serial = 0x1234;
    return info;
}

TEST(ModuleTest, ActPreReadbackThroughBus)
{
    Module module(testInfo(), testGeometry(), ddr4_2400(),
                  makeIdentityMapping());
    // Install data directly, then read through the command interface.
    std::vector<std::vector<std::uint8_t>> images(
        4, std::vector<std::uint8_t>(module.geometry().bytesPerRow(),
                                     0x5A));
    module.storeRowDirect(0, 10, images);

    Command act{CommandType::Act, 0, 10, 0, 100};
    module.issue(act);
    const auto t = module.timing();
    const auto data =
        module.readColumn(0, 3, 100 + t.toCycles(t.tRCD));
    ASSERT_EQ(data.size(), 4u);
    for (auto byte : data)
        EXPECT_EQ(byte, 0x5A);
}

TEST(ModuleTest, WriteColumnThroughBus)
{
    Module module(testInfo(), testGeometry(), ddr4_2400(),
                  makeIdentityMapping());
    const auto t = module.timing();
    module.issue({CommandType::Act, 0, 3, 0, 0});
    module.writeColumn(0, 7, {1, 2, 3, 4}, t.toCycles(t.tRCD));
    EXPECT_EQ(module.chip(0).readByte(0, 3, 7), 1);
    EXPECT_EQ(module.chip(3).readByte(0, 3, 7), 4);
}

TEST(ModuleTest, MappingAppliedOnActivate)
{
    Module module(testInfo(), testGeometry(), ddr4_2400(),
                  makeXorSwizzleMapping(0x3));
    module.issue({CommandType::Act, 0, 8, 0, 0}); // Physical row 9.
    EXPECT_EQ(module.bank(0).openRow(), 9u);
}

TEST(ModuleTest, RefreshIsRejectedDuringTests)
{
    Module module(testInfo(), testGeometry(), ddr4_2400(),
                  makeIdentityMapping());
    EXPECT_THROW(module.issue({CommandType::Ref, 0, 0, 0, 0}),
                 TimingError);
}

TEST(ModuleTest, PreAllClosesEveryBank)
{
    Module module(testInfo(), testGeometry(), ddr4_2400(),
                  makeIdentityMapping());
    const auto t = module.timing();
    module.issue({CommandType::Act, 0, 1, 0, 0});
    module.issue({CommandType::Act, 1, 2, 0, t.toCycles(t.tRRD)});
    module.issue(
        {CommandType::PreA, 0, 0, 0,
         t.toCycles(t.tRRD) + t.toCycles(t.tRAS)});
    EXPECT_FALSE(module.bank(0).isActive());
    EXPECT_FALSE(module.bank(1).isActive());
    EXPECT_EQ(module.totalActivations(), 2u);
}

struct RecordingListener : ActivationListener
{
    std::vector<ActivationRecord> records;

    void
    onActivation(const ActivationRecord &record) override
    {
        records.push_back(record);
    }
};

TEST(ModuleTest, ListenersSeeMeasuredTimes)
{
    Module module(testInfo(), testGeometry(), ddr4_2400(),
                  makeIdentityMapping());
    RecordingListener listener;
    module.addListener(&listener);

    const auto t = module.timing();
    const Cycles on = t.toCycles(60.0);
    module.issue({CommandType::Act, 0, 5, 0, 0});
    module.issue({CommandType::Pre, 0, 0, 0, on});
    ASSERT_EQ(listener.records.size(), 1u);
    EXPECT_EQ(listener.records[0].physicalRow, 5u);
    EXPECT_DOUBLE_EQ(listener.records[0].onTime, t.toNs(on));
    // First activation reports the nominal tRP as its off-time.
    EXPECT_DOUBLE_EQ(listener.records[0].offTime, t.tRP);
}

TEST(ModuleTest, RankTrrdIsEnforcedAcrossBanks)
{
    Module module(testInfo(), testGeometry(), ddr4_2400(),
                  makeIdentityMapping());
    const auto t = module.timing();
    module.issue({CommandType::Act, 0, 1, 0, 100});
    // An ACT to another bank inside tRRD is rejected.
    EXPECT_THROW(module.issue({CommandType::Act, 1, 2, 0, 101}),
                 TimingError);
    EXPECT_NO_THROW(module.issue(
        {CommandType::Act, 1, 2, 0, 100 + t.toCycles(t.tRRD)}));
}

TEST(ModuleTest, RankTfawLimitsActivationBursts)
{
    // Geometry with enough banks for a 5-ACT burst.
    Geometry g = testGeometry();
    g.banks = 8;
    Module module(testInfo(), g, ddr4_2400(), makeIdentityMapping());
    const auto t = module.timing();
    const auto rrd = t.toCycles(t.tRRD);

    Cycles cycle = 0;
    for (unsigned bank = 0; bank < 4; ++bank) {
        module.issue({CommandType::Act, bank, 1, 0, cycle});
        cycle += rrd;
    }
    // The fifth ACT at tRRD pace falls inside the four-activation
    // window (4 * tRRD = 20ns < tFAW = 25ns) and must wait.
    EXPECT_THROW(module.issue({CommandType::Act, 4, 1, 0, cycle}),
                 TimingError);
    EXPECT_NO_THROW(module.issue(
        {CommandType::Act, 4, 1, 0, module.earliestRankAct(cycle)}));
}

TEST(ModuleTest, EarliestRankActRespectsBothConstraints)
{
    Module module(testInfo(), testGeometry(), ddr4_2400(),
                  makeIdentityMapping());
    const auto t = module.timing();
    EXPECT_EQ(module.earliestRankAct(7), 7u); // No history yet.
    module.issue({CommandType::Act, 0, 1, 0, 10});
    EXPECT_EQ(module.earliestRankAct(0), 10 + t.toCycles(t.tRRD));
}

TEST(ModuleTest, PowerCycleResetsState)
{
    Module module(testInfo(), testGeometry(), ddr4_2400(),
                  makeIdentityMapping());
    module.issue({CommandType::Act, 0, 1, 0, 0});
    module.chip(0).writeByte(0, 1, 0, 0xFF);
    module.powerCycle();
    EXPECT_FALSE(module.bank(0).isActive());
    EXPECT_EQ(module.chip(0).readByte(0, 1, 0), 0);
    EXPECT_EQ(module.totalActivations(), 0u);
}

} // namespace

/**
 * @file
 * Tests for the analysis modules: temperature ranges, BER/HCfirst
 * temperature trends, timing sweeps, spatial variation, subarray
 * statistics, and the sampling profiler.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/profiler.hh"
#include "core/spatial.hh"
#include "core/temp_analysis.hh"
#include "core/timing_analysis.hh"

namespace
{

using namespace rhs;
using namespace rhs::core;
using namespace rhs::rhmodel;

std::vector<unsigned>
sampleRows(unsigned from, unsigned count)
{
    std::vector<unsigned> rows(count);
    std::iota(rows.begin(), rows.end(), from);
    return rows;
}

class AnalysisTest : public ::testing::Test
{
  protected:
    AnalysisTest()
        : dimm(Mfr::B, 0), tester(dimm), pattern(PatternId::Checkered)
    {
    }

    SimulatedDimm dimm;
    Tester tester;
    DataPattern pattern;
};

TEST(TempAnalysisTest, StandardTemperaturesMatchPaper)
{
    const auto temps = standardTemperatures();
    ASSERT_EQ(temps.size(), 9u);
    EXPECT_DOUBLE_EQ(temps.front(), 50.0);
    EXPECT_DOUBLE_EQ(temps.back(), 90.0);
    for (std::size_t i = 1; i < temps.size(); ++i)
        EXPECT_DOUBLE_EQ(temps[i] - temps[i - 1], 5.0);
}

TEST_F(AnalysisTest, TempRangeFractionsAreConsistent)
{
    const auto analysis =
        analyzeTempRanges(tester, 0, sampleRows(100, 30), pattern);
    ASSERT_GT(analysis.vulnerableCells, 0u);

    // Bucket fractions over the upper triangle must sum to 1.
    double total = 0.0;
    for (std::size_t lo = 0; lo < analysis.temps.size(); ++lo)
        for (std::size_t hi = lo; hi < analysis.temps.size(); ++hi)
            total += analysis.rangeFraction(lo, hi);
    EXPECT_NEAR(total, 1.0, 1e-9);

    EXPECT_LE(analysis.noGapCells, analysis.vulnerableCells);
    EXPECT_GE(analysis.noGapFraction(), 0.9); // Obsv. 1 shape.
    EXPECT_GT(analysis.fullRangeFraction(), 0.0); // Obsv. 2.
    EXPECT_GT(analysis.singlePointFraction(), 0.0); // Obsv. 3.
}

TEST_F(AnalysisTest, TempRangeMergeAccumulates)
{
    auto a = analyzeTempRanges(tester, 0, sampleRows(100, 10), pattern);
    const auto b =
        analyzeTempRanges(tester, 0, sampleRows(200, 10), pattern);
    const auto a_cells = a.vulnerableCells;
    a.merge(b);
    EXPECT_EQ(a.vulnerableCells, a_cells + b.vulnerableCells);
    EXPECT_EQ(a.noGapCells >= b.noGapCells, true);
}

TEST_F(AnalysisTest, BerVsTemperatureStartsAtZeroChange)
{
    const auto result = analyzeBerVsTemperature(
        tester, 0, sampleRows(300, 25), pattern);
    for (int offset : {-2, 0, 2}) {
        ASSERT_EQ(result.meanChangePct.at(offset).size(),
                  result.temps.size());
        EXPECT_NEAR(result.meanChangePct.at(offset).front(), 0.0, 15.0);
    }
}

TEST_F(AnalysisTest, BerVsTemperatureTrendMatchesMfrB)
{
    // Mfr. B's BER decreases with temperature (Obsv. 4).
    const auto result = analyzeBerVsTemperature(
        tester, 0, sampleRows(300, 40), pattern);
    EXPECT_LT(result.meanChangePct.at(0).back(), 0.0);
}

TEST(BerVsTempTest, TrendIncreasesForMfrD)
{
    SimulatedDimm dimm(Mfr::D, 0);
    Tester tester(dimm);
    DataPattern pattern(PatternId::Checkered);
    const auto result = analyzeBerVsTemperature(
        tester, 0, sampleRows(300, 40), pattern);
    EXPECT_GT(result.meanChangePct.at(0).back(), 20.0);
}

TEST_F(AnalysisTest, HcShiftCrossingsAndMagnitude)
{
    const auto result = analyzeHcFirstVsTemperature(
        tester, 0, sampleRows(500, 25), pattern);
    ASSERT_FALSE(result.changePct55.empty());
    EXPECT_EQ(result.changePct55.size(), result.changePct90.size());
    EXPECT_GE(result.crossing55(), 0.0);
    EXPECT_LE(result.crossing55(), 1.0);
    // Obsv. 7: the 50->90 shift has larger cumulative magnitude.
    EXPECT_GT(result.magnitudeRatio(), 1.0);
}

TEST_F(AnalysisTest, OnTimeSweepMatchesObsv8)
{
    const auto rows = sampleRows(700, 25);
    const auto sweep = sweepAggressorOnTime(tester, 0, rows, pattern);
    ASSERT_EQ(sweep.values.size(), 5u);
    EXPECT_DOUBLE_EQ(sweep.values.front(), 34.5);
    EXPECT_DOUBLE_EQ(sweep.values.back(), 154.5);

    // BER grows and HCfirst falls with on-time.
    EXPECT_GT(sweep.berRatio(), 1.5);
    EXPECT_LT(sweep.hcFirstChange(), -0.15);

    // Monotone across intermediate points.
    for (std::size_t v = 1; v < sweep.values.size(); ++v) {
        const double prev = std::accumulate(
            sweep.flipsPerRowPerChip[v - 1].begin(),
            sweep.flipsPerRowPerChip[v - 1].end(), 0.0);
        const double now = std::accumulate(
            sweep.flipsPerRowPerChip[v].begin(),
            sweep.flipsPerRowPerChip[v].end(), 0.0);
        EXPECT_GE(now, prev);
    }
}

TEST_F(AnalysisTest, OffTimeSweepMatchesObsv10)
{
    const auto rows = sampleRows(900, 25);
    const auto sweep = sweepAggressorOffTime(tester, 0, rows, pattern);
    ASSERT_EQ(sweep.values.size(), 4u);
    EXPECT_DOUBLE_EQ(sweep.values.front(), 16.5);
    EXPECT_DOUBLE_EQ(sweep.values.back(), 40.5);
    EXPECT_LT(sweep.berRatio(), 0.7);      // Fewer flips.
    EXPECT_GT(sweep.hcFirstChange(), 0.1); // Higher HCfirst.
}

TEST_F(AnalysisTest, RowSurveySummary)
{
    const auto hcs =
        rowHcFirstSurvey(tester, 0, sampleRows(1100, 60), pattern);
    ASSERT_GT(hcs.size(), 10u);
    const auto summary = summarizeRowVariation(hcs);
    EXPECT_GT(summary.minHcFirst, 0.0);
    EXPECT_GE(summary.p1Ratio, 1.0);
    EXPECT_GE(summary.p5Ratio, summary.p1Ratio);
    EXPECT_GE(summary.p10Ratio, summary.p5Ratio);
}

TEST_F(AnalysisTest, ColumnFlipSurveyCountsMatchBerTotals)
{
    const auto rows = sampleRows(1300, 20);
    const auto counts = columnFlipSurvey(tester, 0, rows, pattern);
    std::uint64_t from_columns = 0;
    for (const auto &chip : counts.counts)
        for (auto c : chip)
            from_columns += c;

    std::uint64_t from_rows = 0;
    const auto conditions = spatialConditions();
    for (unsigned row : rows)
        from_rows += tester.berOfRow(0, row, conditions, pattern);
    EXPECT_EQ(from_columns, from_rows);
}

TEST(ColumnVariationTest, HandCraftedCvClasses)
{
    // Two chips with identical counts -> CV 0; two chips with very
    // different counts -> CV saturated.
    ColumnFlipCounts counts;
    counts.counts = {
        {10, 0, 50, 2},
        {10, 0, 1, 2},
    };
    const auto variation = analyzeColumnVariation(counts);
    EXPECT_DOUBLE_EQ(variation.cvAcrossChips[0], 0.0);
    EXPECT_DOUBLE_EQ(variation.cvAcrossChips[3], 0.0);
    EXPECT_GT(variation.cvAcrossChips[2], 0.9);
    EXPECT_DOUBLE_EQ(variation.relativeVulnerability[1], 0.0);
    // Column 2's mean relative vulnerability: (50+1)/2/50.
    EXPECT_NEAR(variation.relativeVulnerability[2], 0.51, 1e-9);
    EXPECT_NEAR(variation.designConsistentFraction(), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(variation.processDominatedFraction(), 1.0 / 3.0, 1e-9);
}

TEST(ColumnVariationTest, EmptyCountsAreHandled)
{
    ColumnFlipCounts counts;
    counts.counts = {{0, 0}, {0, 0}};
    const auto variation = analyzeColumnVariation(counts);
    EXPECT_DOUBLE_EQ(variation.designConsistentFraction(), 0.0);
    EXPECT_DOUBLE_EQ(counts.zeroFraction(), 1.0);
}

TEST_F(AnalysisTest, SubarraySurveyAndModelFit)
{
    const auto survey = subarraySurvey(tester, 0, 8, 6, pattern);
    ASSERT_GE(survey.size(), 4u);
    for (const auto &entry : survey) {
        EXPECT_GE(entry.averageHcFirst, entry.minimumHcFirst);
        EXPECT_FALSE(entry.hcFirstValues.empty());
    }
    const auto fit = fitSubarrayModel(survey);
    EXPECT_GT(fit.slope, 0.0); // Obsv. 15: min grows with average.
}

TEST_F(AnalysisTest, ProfilerEstimateIsConservative)
{
    const auto survey = subarraySurvey(tester, 0, 8, 6, pattern);
    const auto model = fitSubarrayModel(survey);
    const auto estimate =
        profileBySampling(tester, 0, 4, 4, pattern, model);
    EXPECT_GT(estimate.rowsTested, 0u);
    EXPECT_GT(estimate.sampledMinimumHcFirst, 0.0);
    EXPECT_LE(estimate.recommendedThreshold(),
              estimate.sampledMinimumHcFirst);
    EXPECT_GE(estimate.sampledAverageHcFirst,
              estimate.sampledMinimumHcFirst);
}

} // namespace

/**
 * @file
 * Tests of the rhs-snap/1 store (src/snap): snapshot round-trips,
 * every corruption/compatibility rejection path, the bounded eviction
 * spill tier (standalone and behind a tiny-capacity AnalyticEngine),
 * and concurrent readers over one mmapped snapshot.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "rhmodel/curve_io.hh"
#include "rhmodel/dimm.hh"
#include "util/hash.hh"
#include "snap/format.hh"
#include "snap/reader.hh"
#include "snap/spill.hh"
#include "snap/store.hh"
#include "snap/writer.hh"
#include "util/logging.hh"

namespace
{

using namespace rhs;

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() /
            ("rhs_snap_test_" + std::to_string(::getpid()) + "_" + name))
        .string();
}

/** RAII deletion of a test scratch file. */
struct ScratchFile
{
    explicit ScratchFile(std::string name) : path(tempPath(std::move(name)))
    {
    }
    ~ScratchFile() { std::remove(path.c_str()); }
    const std::string path;
};

/** Deterministic synthetic curve #i (i % 7 cells; 0 cells at i == 0). */
rhmodel::RowEval
makeEval(unsigned i)
{
    const unsigned n = i % 7;
    std::vector<double> hc;
    std::vector<dram::CellLocation> loc;
    double min_hc = rhmodel::kNeverFlips;
    for (unsigned j = 0; j < n; ++j) {
        hc.push_back(1000.0 + 13.5 * j + i);
        loc.push_back({j % 4, 0, i, 17 * j, j % 8});
        min_hc = std::min(min_hc, hc.back());
    }
    rhmodel::RowEval eval;
    eval.adopt(std::move(hc), std::move(loc));
    eval.vulnerableCells = n + 2;
    eval.minHcFirst = min_hc;
    return eval;
}

std::vector<std::uint8_t>
makeKey(unsigned i)
{
    // Variable-length keys exercise the padding paths.
    std::vector<std::uint8_t> key{static_cast<std::uint8_t>(i),
                                  static_cast<std::uint8_t>(i >> 8),
                                  0xab};
    for (unsigned j = 0; j < i % 5; ++j)
        key.push_back(static_cast<std::uint8_t>(j));
    return key;
}

void
expectSameCurve(const rhmodel::RowEval &expected,
                const rhmodel::RowEvalPtr &actual)
{
    ASSERT_NE(actual, nullptr);
    ASSERT_EQ(actual->hcFirst.size(), expected.hcFirst.size());
    for (std::size_t i = 0; i < expected.hcFirst.size(); ++i) {
        EXPECT_EQ(actual->hcFirst[i], expected.hcFirst[i]);
        EXPECT_EQ(actual->loc[i], expected.loc[i]);
    }
    EXPECT_EQ(actual->vulnerableCells, expected.vulnerableCells);
    EXPECT_EQ(actual->minHcFirst, expected.minHcFirst);
}

/** Write a snapshot with `count` synthetic curves; returns success. */
bool
writeSnapshot(const std::string &path, unsigned count,
              snap::Builder::Options options = {})
{
    snap::Builder builder(options);
    for (unsigned i = 0; i < count; ++i) {
        const auto eval = makeEval(i);
        builder.add(makeKey(i), eval);
    }
    std::string error;
    return builder.write(path, error);
}

std::vector<char>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeFile(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SnapshotTest, RoundTripServesIdenticalCurves)
{
    const ScratchFile file("roundtrip.snap");
    ASSERT_TRUE(writeSnapshot(file.path, 40));

    std::string error;
    auto reader = snap::Reader::open(file.path, error);
    ASSERT_NE(reader, nullptr) << error;
    EXPECT_EQ(reader->header().recordCount, 40u);

    for (unsigned i = 0; i < 40; ++i) {
        const auto expected = makeEval(i);
        expectSameCurve(expected, reader->lookup(makeKey(i)));
    }
    EXPECT_EQ(reader->hits(), 40u);
    EXPECT_EQ(reader->corrupt(), 0u);

    // A key that was never stored is a miss, not an error.
    EXPECT_EQ(reader->lookup(makeKey(999)), nullptr);
    EXPECT_EQ(reader->misses(), 1u);

    EXPECT_TRUE(reader->verifyDeep(error)) << error;
}

TEST(SnapshotTest, CurveOutlivesReaderHandle)
{
    const ScratchFile file("keepalive.snap");
    ASSERT_TRUE(writeSnapshot(file.path, 8));

    std::string error;
    rhmodel::RowEvalPtr curve;
    {
        auto reader = snap::Reader::open(file.path, error);
        ASSERT_NE(reader, nullptr) << error;
        curve = reader->lookup(makeKey(3));
        ASSERT_NE(curve, nullptr);
    }
    // The zero-copy view pins the mapping via shared_ptr even after
    // the last explicit Reader handle is gone.
    expectSameCurve(makeEval(3), curve);
}

TEST(SnapshotTest, EmptySnapshotOpensAndMisses)
{
    const ScratchFile file("empty.snap");
    ASSERT_TRUE(writeSnapshot(file.path, 0));

    std::string error;
    auto reader = snap::Reader::open(file.path, error);
    ASSERT_NE(reader, nullptr) << error;
    EXPECT_EQ(reader->header().recordCount, 0u);
    EXPECT_EQ(reader->lookup(makeKey(0)), nullptr);
    EXPECT_TRUE(reader->verifyDeep(error)) << error;
}

TEST(SnapshotTest, BadMagicIsRejected)
{
    const ScratchFile file("badmagic.snap");
    ASSERT_TRUE(writeSnapshot(file.path, 4));
    auto bytes = readFile(file.path);
    bytes[0] ^= 0x5a;
    writeFile(file.path, bytes);

    std::string error;
    EXPECT_EQ(snap::Reader::open(file.path, error), nullptr);
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(SnapshotTest, TruncatedFileIsRejected)
{
    const ScratchFile file("truncated.snap");
    ASSERT_TRUE(writeSnapshot(file.path, 16));
    const auto bytes = readFile(file.path);

    // Any truncation point must fail cleanly: below one header, and
    // with the sections cut short.
    for (const std::size_t keep :
         {std::size_t{16}, sizeof(snap::FileHeader), bytes.size() / 2}) {
        writeFile(file.path, {bytes.begin(),
                              bytes.begin() +
                                  static_cast<std::ptrdiff_t>(keep)});
        std::string error;
        EXPECT_EQ(snap::Reader::open(file.path, error), nullptr)
            << "kept " << keep << " bytes";
        EXPECT_FALSE(error.empty());
    }
}

TEST(SnapshotTest, VersionMismatchIsRejected)
{
    const ScratchFile file("version.snap");
    snap::Builder::Options options;
    options.version = snap::kVersion + 1;
    ASSERT_TRUE(writeSnapshot(file.path, 4, options));

    std::string error;
    EXPECT_EQ(snap::Reader::open(file.path, error), nullptr);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(SnapshotTest, FingerprintMismatchIsRejected)
{
    const ScratchFile file("fingerprint.snap");
    snap::Builder::Options options;
    options.fingerprint = 0xdeadbeef;
    ASSERT_TRUE(writeSnapshot(file.path, 4, options));

    std::string error;
    EXPECT_EQ(snap::Reader::open(file.path, error), nullptr);
    EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

TEST(SnapshotTest, CorruptHeaderIsRejected)
{
    const ScratchFile file("header.snap");
    ASSERT_TRUE(writeSnapshot(file.path, 4));
    auto bytes = readFile(file.path);
    // Flip a bit in recordCount: the header digest must catch it.
    bytes[offsetof(snap::FileHeader, recordCount)] ^= 0x01;
    writeFile(file.path, bytes);

    std::string error;
    EXPECT_EQ(snap::Reader::open(file.path, error), nullptr);
    EXPECT_NE(error.find("header digest"), std::string::npos) << error;
}

TEST(SnapshotTest, FlippedPayloadByteFallsBackToMiss)
{
    const ScratchFile file("payload.snap");
    ASSERT_TRUE(writeSnapshot(file.path, 8));
    auto bytes = readFile(file.path);

    snap::FileHeader header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    // Find the record of key #5 through the real index, then flip a
    // byte in its curve payload (past header + padded key).
    const auto *index = reinterpret_cast<const snap::IndexEntry *>(
        bytes.data() + header.indexOffset);
    const auto key = makeKey(5);
    const std::uint64_t hash =
        util::bytesHash64(key.data(), key.size());
    std::size_t record_offset = SIZE_MAX;
    for (std::uint64_t i = 0; i < header.recordCount; ++i)
        if (index[i].hash == hash)
            record_offset = header.pagesOffset + index[i].offset;
    ASSERT_NE(record_offset, SIZE_MAX);
    std::uint32_t key_bytes = 0;
    std::memcpy(&key_bytes, bytes.data() + record_offset,
                sizeof(key_bytes));
    bytes[record_offset + sizeof(rhmodel::curve_io::RecordHeader) +
          ((key_bytes + 7) & ~std::size_t{7}) + 1] ^= 0x10;
    writeFile(file.path, bytes);

    std::string error;
    auto reader = snap::Reader::open(file.path, error);
    ASSERT_NE(reader, nullptr) << error;

    // The corrupt record degrades to a miss (twice: the verify-once
    // bitmap must not mark failures as verified); other records and
    // verifyDeep see the damage as expected.
    EXPECT_EQ(reader->lookup(key), nullptr);
    EXPECT_EQ(reader->lookup(key), nullptr);
    EXPECT_EQ(reader->corrupt(), 2u);
    expectSameCurve(makeEval(2), reader->lookup(makeKey(2)));
    EXPECT_FALSE(reader->verifyDeep(error));
}

TEST(SnapshotTest, DuplicateAddsCollapse)
{
    snap::Builder builder;
    const auto eval = makeEval(9);
    builder.add(makeKey(9), eval);
    builder.add(makeKey(9), eval);
    EXPECT_EQ(builder.records(), 1u);
}

TEST(SnapshotSpillTest, StoreAndLoadRoundTrip)
{
    const ScratchFile file("spill.bin");
    std::string error;
    auto spill = snap::SpillTier::create(file.path, 1 << 20, error);
    ASSERT_NE(spill, nullptr) << error;

    for (unsigned i = 1; i < 20; ++i) {
        const auto eval = makeEval(i);
        EXPECT_TRUE(spill->store(makeKey(i), eval));
    }
    EXPECT_EQ(spill->stores(), 19u);
    for (unsigned i = 1; i < 20; ++i)
        expectSameCurve(makeEval(i), spill->load(makeKey(i)));
    EXPECT_EQ(spill->hits(), 19u);

    EXPECT_EQ(spill->load(makeKey(500)), nullptr);
    EXPECT_EQ(spill->misses(), 1u);

    // Re-spilling an already-stored key is skipped, not duplicated.
    const std::uint64_t used = spill->bytesUsed();
    EXPECT_FALSE(spill->store(makeKey(7), makeEval(7)));
    EXPECT_EQ(spill->bytesUsed(), used);
}

TEST(SnapshotSpillTest, CapBoundsTheFileAndCountsDrops)
{
    const ScratchFile file("spill_cap.bin");
    std::string error;
    auto spill = snap::SpillTier::create(file.path, 160, error);
    ASSERT_NE(spill, nullptr) << error;

    // The first small record fits; later ones overflow the cap.
    EXPECT_TRUE(spill->store(makeKey(1), makeEval(1)));
    unsigned dropped = 0;
    for (unsigned i = 2; i < 8; ++i)
        dropped += spill->store(makeKey(i), makeEval(i)) ? 0 : 1;
    EXPECT_GT(dropped, 0u);
    EXPECT_EQ(spill->dropped(), dropped);
    EXPECT_LE(spill->bytesUsed(), 160u);

    // The stored record still loads; dropped ones are plain misses.
    expectSameCurve(makeEval(1), spill->load(makeKey(1)));
    EXPECT_EQ(spill->load(makeKey(2)), nullptr);
}

TEST(SnapshotSpillTest, CorruptReadBackDegradesToMiss)
{
    const ScratchFile file("spill_corrupt.bin");
    std::string error;
    auto spill = snap::SpillTier::create(file.path, 1 << 20, error);
    ASSERT_NE(spill, nullptr) << error;
    ASSERT_TRUE(spill->store(makeKey(4), makeEval(4)));

    // Flip a payload byte through a second handle to the same file.
    {
        std::fstream patch(file.path, std::ios::binary | std::ios::in |
                                          std::ios::out);
        patch.seekg(30);
        char byte = 0;
        patch.get(byte);
        patch.seekp(30);
        patch.put(static_cast<char>(byte ^ 0x20));
    }
    EXPECT_EQ(spill->load(makeKey(4)), nullptr);
    EXPECT_EQ(spill->corrupt(), 1u);
}

TEST(SnapshotSpillTest, EngineEvictionsSpillAndReload)
{
    // A 16-entry cache (one per shard) over a 40-row working set
    // forces evictions through the store; the second sweep must be
    // served back from the spill file byte-identically.
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::A, 0);
    rhmodel::AnalyticEngine engine(dimm.cellModel(), 16);
    rhmodel::AnalyticEngine reference(dimm.cellModel());

    const ScratchFile file("spill_engine.bin");
    std::string error;
    auto spill = snap::SpillTier::create(file.path, 64 << 20, error);
    ASSERT_NE(spill, nullptr) << error;
    snap::StoreFactory factory;
    factory.attachSpill(spill);
    engine.setEvalStore(factory.storeFor(rhmodel::Mfr::A, 0, 0));

    const rhmodel::Conditions conditions;
    const rhmodel::DataPattern pattern(rhmodel::PatternId::Checkered);
    const auto sweep = [&](rhmodel::AnalyticEngine &e, unsigned row) {
        return e.rowEval(row,
                         rhmodel::HammerAttack::doubleSided(0, row),
                         conditions, pattern, 0);
    };

    for (unsigned row = 1; row <= 40; ++row)
        sweep(engine, row);
    EXPECT_GT(spill->stores(), 0u);

    for (unsigned row = 1; row <= 40; ++row) {
        const auto stored = sweep(engine, row);
        const auto expected = sweep(reference, row);
        ASSERT_EQ(stored->hcFirst.size(), expected->hcFirst.size());
        for (std::size_t i = 0; i < expected->hcFirst.size(); ++i) {
            EXPECT_EQ(stored->hcFirst[i], expected->hcFirst[i]);
            EXPECT_EQ(stored->loc[i], expected->loc[i]);
        }
        EXPECT_EQ(stored->minHcFirst, expected->minHcFirst);
    }
    EXPECT_GT(spill->hits(), 0u);
}

TEST(SnapshotConcurrencyTest, ParallelReadersOverOneSnapshot)
{
    const ScratchFile file("concurrent.snap");
    constexpr unsigned kRecords = 64;
    ASSERT_TRUE(writeSnapshot(file.path, kRecords));

    std::string error;
    auto reader = snap::Reader::open(file.path, error);
    ASSERT_NE(reader, nullptr) << error;

    // 8 threads hammer the same reader — every record (racing on the
    // verify-once bitmap), plus guaranteed misses — and each verifies
    // every curve it gets. Run under TSan via the tsan test preset.
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            for (unsigned pass = 0; pass < 6; ++pass) {
                for (unsigned i = 0; i < kRecords; ++i) {
                    const auto curve =
                        reader->lookup(makeKey((i + 7 * t) % kRecords));
                    const auto expected = makeEval((i + 7 * t) % kRecords);
                    if (!curve ||
                        curve->hcFirst.size() !=
                            expected.hcFirst.size() ||
                        curve->minHcFirst != expected.minHcFirst)
                        failures.fetch_add(1);
                }
                if (reader->lookup(makeKey(4000 + t)) != nullptr)
                    failures.fetch_add(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(reader->corrupt(), 0u);
    EXPECT_EQ(reader->hits(), 8u * 6u * kRecords);
}

TEST(SnapshotConcurrencyTest, ParallelSpillStoresAndLoads)
{
    const ScratchFile file("concurrent_spill.bin");
    std::string error;
    auto spill = snap::SpillTier::create(file.path, 8 << 20, error);
    ASSERT_NE(spill, nullptr) << error;

    std::atomic<unsigned> failures{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            for (unsigned i = 1; i <= 24; ++i) {
                const unsigned id = t * 100 + i;
                if (!spill->store(makeKey(id), makeEval(id)))
                    failures.fetch_add(1);
                const auto curve = spill->load(makeKey(id));
                if (!curve ||
                    curve->minHcFirst != makeEval(id).minHcFirst)
                    failures.fetch_add(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(spill->stores(), 8u * 24u);
    EXPECT_EQ(spill->corrupt(), 0u);
}

} // namespace

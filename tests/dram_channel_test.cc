/**
 * @file
 * Tests for the channel/rank layer: shared-bus serialization across
 * ranks (§2.1) on top of the per-rank FSMs.
 */

#include <gtest/gtest.h>

#include "dram/channel.hh"

namespace
{

using namespace rhs::dram;

std::unique_ptr<Module>
makeRank(std::uint64_t serial)
{
    Geometry g;
    g.banks = 2;
    g.subarraysPerBank = 2;
    g.rowsPerSubarray = 64;
    g.columnsPerRow = 32;
    ModuleInfo info;
    info.label = "R" + std::to_string(serial);
    info.chips = 2;
    info.serial = serial;
    return std::make_unique<Module>(info, g, ddr4_2400(),
                                    makeIdentityMapping());
}

TEST(ChannelTest, RanksAttachAndResolve)
{
    Channel channel("ch0");
    const auto r0 = channel.addRank(makeRank(1));
    const auto r1 = channel.addRank(makeRank(2));
    EXPECT_EQ(r0, 0u);
    EXPECT_EQ(r1, 1u);
    EXPECT_EQ(channel.rankCount(), 2u);
    EXPECT_EQ(channel.rank(0).info().serial, 1u);
    EXPECT_EQ(channel.rank(1).info().serial, 2u);
}

TEST(ChannelTest, CommandsToDifferentRanksAreSerialized)
{
    Channel channel("ch0");
    channel.addRank(makeRank(1));
    channel.addRank(makeRank(2));

    channel.issue(0, {CommandType::Act, 0, 10, 0, 100});
    // Same bus cycle, different rank: the shared bus forbids it.
    EXPECT_THROW(channel.issue(1, {CommandType::Act, 0, 20, 0, 100}),
                 TimingError);
    // One cycle later is fine.
    EXPECT_NO_THROW(
        channel.issue(1, {CommandType::Act, 0, 20, 0, 101}));
}

TEST(ChannelTest, BusTimeOnlyMovesForward)
{
    Channel channel("ch0");
    channel.addRank(makeRank(1));
    channel.issue(0, {CommandType::Act, 0, 10, 0, 50});
    EXPECT_THROW(channel.issue(0, {CommandType::Pre, 0, 0, 0, 40}),
                 TimingError);
    EXPECT_EQ(channel.lastBusCycle(), 50u);
}

TEST(ChannelTest, PerRankTimingStillEnforced)
{
    Channel channel("ch0");
    channel.addRank(makeRank(1));
    const auto &timing = channel.rank(0).timing();
    channel.issue(0, {CommandType::Act, 0, 10, 0, 0});
    // The bus is free at cycle 5, but the rank's tRAS is not elapsed.
    EXPECT_THROW(channel.issue(0, {CommandType::Pre, 0, 0, 0, 5}),
                 TimingError);
    EXPECT_NO_THROW(channel.issue(
        0, {CommandType::Pre, 0, 0, 0, timing.toCycles(timing.tRAS)}));
}

TEST(ChannelTest, InterleavedRankHammering)
{
    // Hammering two ranks in alternation doubles throughput per rank
    // bank budget while respecting the shared bus.
    Channel channel("ch0");
    channel.addRank(makeRank(1));
    channel.addRank(makeRank(2));
    const auto &timing = channel.rank(0).timing();
    const auto on = timing.toCycles(timing.tRAS);
    const auto off = timing.toCycles(timing.tRP);

    Cycles base = 0;
    for (int h = 0; h < 200; ++h) {
        channel.issue(0, {CommandType::Act, 0, 10, 0, base});
        channel.issue(1, {CommandType::Act, 0, 30, 0, base + 1});
        channel.issue(0, {CommandType::Pre, 0, 0, 0, base + on});
        channel.issue(1, {CommandType::Pre, 0, 0, 0, base + on + 1});
        base += on + off + 2;
    }
    EXPECT_EQ(channel.rank(0).totalActivations(), 200u);
    EXPECT_EQ(channel.rank(1).totalActivations(), 200u);
    EXPECT_EQ(channel.busCommands(), 800u);
}

TEST(ChannelTest, ReadColumnUsesTheBus)
{
    Channel channel("ch0");
    channel.addRank(makeRank(1));
    const auto &timing = channel.rank(0).timing();
    channel.issue(0, {CommandType::Act, 0, 3, 0, 0});
    const auto at = timing.toCycles(timing.tRCD);
    const auto data = channel.readColumn(0, 0, 5, at);
    EXPECT_EQ(data.size(), 2u);
    // The read occupied the bus at `at`.
    EXPECT_THROW(channel.issue(0, {CommandType::Pre, 0, 0, 0, at}),
                 TimingError);
}

TEST(ChannelTest, NopsDoNotOccupyTheBus)
{
    Channel channel("ch0");
    channel.addRank(makeRank(1));
    channel.issue(0, {CommandType::Act, 0, 1, 0, 10});
    EXPECT_NO_THROW(
        channel.issue(0, {CommandType::Nop, 0, 0, 0, 10}));
    EXPECT_EQ(channel.busCommands(), 1u);
}

} // namespace

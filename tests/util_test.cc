/**
 * @file
 * Unit tests for util: hashing, RNG distributions, CLI parsing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <iostream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/cli.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace
{

using namespace rhs::util;

TEST(HashTest, SplitMixIsDeterministic)
{
    EXPECT_EQ(splitMix64(42), splitMix64(42));
    EXPECT_NE(splitMix64(42), splitMix64(43));
}

TEST(HashTest, TupleOrderMatters)
{
    EXPECT_NE(hashTuple(1, 2, 3), hashTuple(3, 2, 1));
    EXPECT_NE(hashTuple(1, 2), hashTuple(1, 2, 0));
}

TEST(HashTest, AvalancheFlipsRoughlyHalfTheBits)
{
    // Flipping one input bit should flip ~32 of 64 output bits.
    double total = 0.0;
    const int samples = 200;
    for (int i = 0; i < samples; ++i) {
        const auto a = splitMix64(i);
        const auto b = splitMix64(i ^ 1);
        total += __builtin_popcountll(a ^ b);
    }
    const double avg = total / samples;
    EXPECT_GT(avg, 24.0);
    EXPECT_LT(avg, 40.0);
}

TEST(HashTest, UnitDoubleInRange)
{
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const double u = toUnitDouble(splitMix64(i));
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMoments)
{
    Rng rng(7);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        sum += u;
        sq += u * u;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.01);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, GaussianScaled)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, LogNormalIsPositive)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.logNormal(0.0, 1.0), 0.0);
}

class PoissonTest : public ::testing::TestWithParam<double>
{
};

TEST_P(PoissonTest, MeanMatches)
{
    const double mean = GetParam();
    Rng rng(23);
    double sum = 0.0;
    const int n = 8000;
    for (int i = 0; i < n; ++i)
        sum += rng.poisson(mean);
    EXPECT_NEAR(sum / n, mean, std::max(0.1, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonTest,
                         ::testing::Values(0.5, 2.0, 8.0, 30.0, 100.0,
                                           400.0));

TEST(PoissonTest, ZeroMeanGivesZero)
{
    Rng rng(29);
    EXPECT_EQ(rng.poisson(0.0), 0u);
    EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(RngTest, UniformIntInRange)
{
    Rng rng(31);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(8);
        EXPECT_LT(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 8u); // All buckets hit.
}

TEST(RngTest, BernoulliRate)
{
    Rng rng(37);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(CliTest, ParsesSpaceSeparatedValues)
{
    const char *argv[] = {"prog", "--rows", "128", "--label", "abc"};
    Cli cli(5, argv, {"rows", "label"});
    EXPECT_EQ(cli.getInt("rows", 0), 128);
    EXPECT_EQ(cli.get("label", ""), "abc");
}

TEST(CliTest, ParsesEqualsForm)
{
    const char *argv[] = {"prog", "--temp=72.5"};
    Cli cli(2, argv, {"temp"});
    EXPECT_DOUBLE_EQ(cli.getDouble("temp", 0.0), 72.5);
}

TEST(CliTest, BooleanFlagAndDefaults)
{
    const char *argv[] = {"prog", "--full"};
    Cli cli(2, argv, {"full", "rows"});
    EXPECT_TRUE(cli.has("full"));
    EXPECT_FALSE(cli.has("rows"));
    EXPECT_EQ(cli.getInt("rows", 64), 64);
}

TEST(CliTest, TokenizedArgumentListForm)
{
    // Subcommand drivers strip the positional and hand the rest over
    // pre-tokenized; both constructors must parse identically.
    Cli cli(std::vector<std::string>{"--rows", "12", "--full",
                                     "--temp=60"},
            {"rows", "full", "temp"});
    EXPECT_EQ(cli.getInt("rows", 0), 12);
    EXPECT_TRUE(cli.has("full"));
    EXPECT_DOUBLE_EQ(cli.getDouble("temp", 0.0), 60.0);
}

TEST(CliTest, NegativeAndSignedNumbers)
{
    const char *argv[] = {"prog", "--offset=-3", "--gain=+2.5"};
    Cli cli(3, argv, {"offset", "gain"});
    EXPECT_EQ(cli.getInt("offset", 0), -3);
    EXPECT_DOUBLE_EQ(cli.getDouble("gain", 0.0), 2.5);
}

TEST(CliDeathTest, UnknownOptionIsFatal)
{
    const char *argv[] = {"prog", "--bogus"};
    EXPECT_EXIT((Cli(2, argv, {"rows"})),
                ::testing::ExitedWithCode(1), "unknown option");
}

TEST(CliDeathTest, TrailingGarbageIntegerIsFatal)
{
    // "40x" must be rejected, not truncated to 40.
    const char *argv[] = {"prog", "--rows", "40x"};
    Cli cli(3, argv, {"rows"});
    EXPECT_EXIT(cli.getInt("rows", 0), ::testing::ExitedWithCode(1),
                "malformed integer for --rows");
}

TEST(CliDeathTest, NonNumericIntegerIsFatal)
{
    const char *argv[] = {"prog", "--rows=abc"};
    Cli cli(2, argv, {"rows"});
    EXPECT_EXIT(cli.getInt("rows", 0), ::testing::ExitedWithCode(1),
                "malformed integer for --rows");
}

TEST(CliDeathTest, MalformedDoubleIsFatal)
{
    const char *argv[] = {"prog", "--temp", "72.5C"};
    Cli cli(3, argv, {"temp"});
    EXPECT_EXIT(cli.getDouble("temp", 0.0),
                ::testing::ExitedWithCode(1),
                "malformed number for --temp");
}

TEST(CliDeathTest, PositionalArgumentIsFatal)
{
    const char *argv[] = {"prog", "stray"};
    EXPECT_EXIT((Cli(2, argv, {"rows"})),
                ::testing::ExitedWithCode(1),
                "unexpected positional argument");
}

TEST(LoggingTest, LevelsAreOrdered)
{
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(logLevel(), LogLevel::Info);
}

TEST(LoggingDeathTest, AssertAborts)
{
    EXPECT_DEATH(RHS_ASSERT(1 == 2, "impossible"), "assertion failed");
}

TEST(LoggingTest, LinesCarryThreadTag)
{
    setLogLevel(LogLevel::Warn);
    std::ostringstream captured;
    auto *old = std::cerr.rdbuf(captured.rdbuf());
    setLogThreadTag("main-tag");
    warn("tagged line");
    std::cerr.rdbuf(old);
    EXPECT_NE(captured.str().find("warn: [main-tag] tagged line"),
              std::string::npos);
}

TEST(LoggingTest, ConcurrentWritersNeverInterleave)
{
    setLogLevel(LogLevel::Warn);
    std::ostringstream captured;
    auto *old = std::cerr.rdbuf(captured.rdbuf());

    const unsigned writers = 4, lines = 50;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < writers; ++t) {
        threads.emplace_back([t] {
            setLogThreadTag("w" + std::to_string(t));
            for (unsigned i = 0; i < lines; ++i)
                warn("payload-" + std::to_string(t));
        });
    }
    for (auto &thread : threads)
        thread.join();
    std::cerr.rdbuf(old);

    // Every line must be whole: "warn: [w<T>] payload-<T>", with the
    // tag matching the payload (fragmented writes would mix them).
    std::istringstream lines_in(captured.str());
    std::string line;
    unsigned count = 0;
    while (std::getline(lines_in, line)) {
        ++count;
        ASSERT_EQ(line.rfind("warn: [w", 0), 0u) << line;
        const auto close = line.find(']');
        ASSERT_NE(close, std::string::npos) << line;
        const std::string tag = line.substr(8, close - 8);
        EXPECT_EQ(line.substr(close + 2), "payload-" + tag) << line;
    }
    EXPECT_EQ(count, writers * lines);
}

TEST(LoggingTest, UntaggedThreadsGetDistinctAutoTags)
{
    std::string first, second;
    std::thread a([&first] { first = logThreadTag(); });
    std::thread b([&second] { second = logThreadTag(); });
    a.join();
    b.join();
    EXPECT_EQ(first.rfind("t", 0), 0u);
    EXPECT_EQ(second.rfind("t", 0), 0u);
    EXPECT_NE(first, second);
}

} // namespace

/**
 * @file
 * Unit tests for the defense mechanisms: PARA probability math,
 * Graphene's Misra-Gries guarantee, TWiCe pruning, BlockHammer's
 * counting Bloom filters, and the non-uniform wrapper.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "defense/blockhammer.hh"
#include "defense/graphene.hh"
#include "defense/nonuniform.hh"
#include "defense/para.hh"
#include "defense/twice.hh"
#include "util/rng.hh"

namespace
{

using namespace rhs::defense;

TEST(ParaTest, ProbabilityForFailureBound)
{
    const double p = Para::probabilityFor(50'000.0, 1e-15);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
    // Check the bound: (1 - p/2)^HC <= failure.
    const double log_survive = 50'000.0 * std::log1p(-p / 2.0);
    EXPECT_LE(log_survive, std::log(1e-15) + 1e-6);
}

TEST(ParaTest, LowerThresholdNeedsHigherProbability)
{
    EXPECT_GT(Para::probabilityFor(10'000.0),
              Para::probabilityFor(100'000.0));
}

TEST(ParaTest, RefreshRateMatchesProbability)
{
    Para para(0.25, 7);
    unsigned refreshes = 0;
    const unsigned acts = 20'000;
    for (unsigned i = 0; i < acts; ++i)
        refreshes += !para.onActivation({0, 100}).refreshRows.empty();
    EXPECT_NEAR(static_cast<double>(refreshes) / acts, 0.25, 0.02);
}

TEST(ParaTest, RefreshTargetsAreNeighbours)
{
    Para para(1.0, 3);
    for (int i = 0; i < 100; ++i) {
        const auto action = para.onActivation({0, 50});
        ASSERT_EQ(action.refreshRows.size(), 1u);
        const unsigned row = action.refreshRows[0];
        EXPECT_TRUE(row == 49 || row == 51);
        EXPECT_FALSE(action.throttle);
    }
}

TEST(GrapheneTest, TracksHotRowAndRefreshes)
{
    Graphene graphene(1000, 100'000);
    unsigned refreshes = 0;
    for (int i = 0; i < 5000; ++i) {
        const auto action = graphene.onActivation({0, 7});
        refreshes += action.refreshRows.size();
    }
    // Threshold 1000: five trigger points, two victims each.
    EXPECT_EQ(refreshes, 10u);
}

TEST(GrapheneTest, MisraGriesErrorBound)
{
    // Adversarial stream over many distinct rows: the estimate of any
    // row may undercount its true frequency by at most the spillover.
    Graphene graphene(100'000, 1'000'000); // Capacity ~11 entries.
    std::map<unsigned, std::uint64_t> truth;
    rhs::util::Rng rng(99);
    for (int i = 0; i < 50'000; ++i) {
        // Skewed access pattern across 64 rows.
        const auto row =
            static_cast<unsigned>(rng.uniformInt(8) * rng.uniformInt(8));
        ++truth[row];
        graphene.onActivation({0, row});
    }
    for (const auto &[row, count] : truth) {
        const auto estimate = graphene.estimatedCount(0, row);
        EXPECT_LE(estimate, count + graphene.spillover());
        EXPECT_GE(estimate + graphene.spillover(), count);
    }
}

TEST(GrapheneTest, CapacityFromWindowAndThreshold)
{
    Graphene graphene(1000, 32'000);
    EXPECT_EQ(graphene.tableCapacity(), 33u);
    EXPECT_GT(graphene.storageBits(), 0.0);
}

TEST(GrapheneTest, ResetClearsState)
{
    Graphene graphene(10, 1000);
    for (int i = 0; i < 50; ++i)
        graphene.onActivation({0, 3});
    graphene.reset();
    EXPECT_EQ(graphene.estimatedCount(0, 3), 0u);
    EXPECT_EQ(graphene.spillover(), 0u);
}

TEST(TwiceTest, HotRowTriggersRefresh)
{
    Twice twice(500, 100'000, 1000);
    unsigned refreshes = 0;
    for (int i = 0; i < 1000; ++i)
        refreshes += twice.onActivation({0, 9}).refreshRows.size();
    EXPECT_EQ(refreshes, 4u); // Two triggers, two victims each.
}

TEST(TwiceTest, PruningDropsColdRows)
{
    Twice twice(10'000, 100'000, 512);
    // Touch many cold rows once each; pruning keeps the table small.
    for (unsigned row = 0; row < 4096; ++row)
        twice.onActivation({0, row});
    EXPECT_LT(twice.tableSize(), 1024u);
    EXPECT_LE(twice.tableSize(), twice.tableHighWater());
}

TEST(TwiceTest, HotRowSurvivesPruning)
{
    Twice twice(2000, 100'000, 256);
    unsigned refreshes = 0;
    for (int round = 0; round < 3000; ++round) {
        refreshes += twice.onActivation({0, 77}).refreshRows.size();
        // Interleave cold noise.
        twice.onActivation({0, 10'000u + static_cast<unsigned>(round % 512)});
    }
    EXPECT_GE(refreshes, 2u);
}

TEST(CountingBloomFilterTest, NeverUndercounts)
{
    CountingBloomFilter filter(256, 3, 42);
    std::map<std::uint64_t, std::uint64_t> truth;
    rhs::util::Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        const auto key = rng.uniformInt(100);
        ++truth[key];
        filter.insert(key);
    }
    for (const auto &[key, count] : truth)
        EXPECT_GE(filter.estimate(key), count);
}

TEST(CountingBloomFilterTest, ClearZeroes)
{
    CountingBloomFilter filter(64, 2, 1);
    filter.insert(5);
    filter.clear();
    EXPECT_EQ(filter.estimate(5), 0u);
}

TEST(BlockHammerTest, ThrottlesHotRow)
{
    BlockHammer defense(1000, 1'000'000);
    bool throttled = false;
    for (int i = 0; i < 2000; ++i)
        throttled |= defense.onActivation({0, 11}).throttle;
    EXPECT_TRUE(throttled);
    EXPECT_GT(defense.throttledCount(), 0u);
}

TEST(BlockHammerTest, ColdRowsPassFreely)
{
    BlockHammer defense(1000, 1'000'000);
    for (unsigned row = 0; row < 500; ++row)
        EXPECT_FALSE(defense.onActivation({0, row}).throttle);
}

TEST(BlockHammerTest, EpochRotationForgetsHistory)
{
    // With a short window, an old epoch's counts are cleared and a
    // previously-hot row becomes activatable again.
    BlockHammer defense(100, 400); // Epoch = 200 activations.
    for (int i = 0; i < 150; ++i)
        defense.onActivation({0, 3});
    EXPECT_GE(defense.estimate(0, 3), 100u);
    // Push two full epochs of other traffic.
    for (int i = 0; i < 400; ++i)
        defense.onActivation({0, 1000u + (i % 50)});
    EXPECT_LT(defense.estimate(0, 3), 100u);
}

TEST(BlockHammerTest, ResetClears)
{
    BlockHammer defense(100, 1000);
    for (int i = 0; i < 200; ++i)
        defense.onActivation({0, 5});
    defense.reset();
    EXPECT_EQ(defense.estimate(0, 5), 0u);
    EXPECT_EQ(defense.throttledCount(), 0u);
}

TEST(NonUniformTest, RoutesWeakRowsToTightPath)
{
    auto strong = std::make_unique<Graphene>(2000, 100'000);
    auto weak = std::make_unique<Graphene>(1000, 100'000);
    auto *weak_raw = weak.get();
    NonUniform defense(std::move(strong), std::move(weak),
                       {50u});

    // Activations adjacent to the weak row go to the tight path.
    for (int i = 0; i < 1500; ++i)
        defense.onActivation({0, 49});
    EXPECT_GE(weak_raw->estimatedCount(0, 49), 1000u);
}

TEST(NonUniformTest, StorageIncludesWeakRowList)
{
    auto strong = std::make_unique<Graphene>(2000, 100'000);
    auto weak = std::make_unique<Graphene>(1000, 100'000);
    const double strong_bits = strong->storageBits();
    const double weak_bits = weak->storageBits();
    NonUniform defense(std::move(strong), std::move(weak),
                       {1u, 2u, 3u});
    EXPECT_NEAR(defense.storageBits(),
                strong_bits + weak_bits + 3 * 32.0, 1e-9);
}

TEST(AreaCostTest, Improvement1Savings)
{
    // Obsv. 12 configuration: 5% of rows at worst case, 95% at 2x.
    const auto report =
        counterAreaSavings(33'000.0, 0.05, 2.0, 1'000'000.0);
    EXPECT_GT(report.savingsPct, 30.0);
    EXPECT_LT(report.nonUniformBits, report.uniformBits);
}

TEST(AreaCostTest, NoWeakRowsHalvesTable)
{
    const auto report =
        counterAreaSavings(50'000.0, 0.0, 2.0, 1'000'000.0);
    EXPECT_NEAR(report.savingsPct, 50.0, 1e-9);
}

} // namespace

/**
 * @file
 * Tests for the retention-error model that underpins the §4.2
 * methodology constraint: every RowHammer test must complete within
 * the refresh window (~64 ms) so retention errors cannot contaminate
 * the measured bit flips.
 */

#include <gtest/gtest.h>

#include "rhmodel/retention.hh"
#include "rhmodel/dimm.hh"

namespace
{

using namespace rhs;
using namespace rhs::rhmodel;

class RetentionTest : public ::testing::Test
{
  protected:
    RetentionTest()
        : dimm(Mfr::A, 0),
          model(dimm.module().info().serial, dimm.module().geometry(),
                dimm.module().chipCount())
    {
    }

    SimulatedDimm dimm;
    RetentionModel model;
};

TEST_F(RetentionTest, PaperTestBudgetIsSafeAcrossTemperatures)
{
    // 512K hammers x ~51 ns x 2 activations ≈ 52 ms: the paper's
    // largest test. It must be retention-clean at every tested
    // temperature, matching the paper's observation of no retention
    // errors.
    for (double temp = 50.0; temp <= 90.0; temp += 5.0) {
        for (unsigned row = 100; row < 400; ++row) {
            EXPECT_TRUE(
                model.testIsRetentionSafe(0, row, 52.0, temp))
                << "row " << row << " at " << temp << " degC";
        }
    }
}

TEST_F(RetentionTest, LongRefreshFreeIntervalsLeakData)
{
    // Multiple seconds without refresh: the weak tail must surface.
    unsigned rows_with_failures = 0;
    for (unsigned row = 0; row < 2000; ++row) {
        if (!model.failuresInRow(0, row, 8'000.0, 50.0).empty())
            ++rows_with_failures;
    }
    EXPECT_GT(rows_with_failures, 0u);
}

TEST_F(RetentionTest, FailuresGrowWithElapsedTime)
{
    std::size_t at_2s = 0, at_30s = 0;
    for (unsigned row = 0; row < 500; ++row) {
        at_2s += model.failuresInRow(0, row, 2'000.0, 50.0).size();
        at_30s += model.failuresInRow(0, row, 30'000.0, 50.0).size();
    }
    EXPECT_GE(at_30s, at_2s);
    EXPECT_GT(at_30s, 0u);
}

TEST_F(RetentionTest, TemperatureShortensRetention)
{
    EXPECT_DOUBLE_EQ(model.temperatureDerating(50.0), 1.0);
    EXPECT_LT(model.temperatureDerating(90.0), 0.2);
    EXPECT_GT(model.temperatureDerating(90.0), 0.05);

    // The same interval fails more cells when hot.
    std::size_t cold = 0, hot = 0;
    for (unsigned row = 0; row < 500; ++row) {
        cold += model.failuresInRow(0, row, 1'500.0, 50.0).size();
        hot += model.failuresInRow(0, row, 1'500.0, 90.0).size();
    }
    EXPECT_GT(hot, cold);
}

TEST_F(RetentionTest, FailuresAreDeterministic)
{
    RetentionModel twin(dimm.module().info().serial,
                        dimm.module().geometry(),
                        dimm.module().chipCount());
    for (unsigned row = 0; row < 50; ++row) {
        const auto a = model.failuresInRow(0, row, 5'000.0, 70.0);
        const auto b = twin.failuresInRow(0, row, 5'000.0, 70.0);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i].location, b[i].location);
    }
}

TEST_F(RetentionTest, PerCellRetentionIsPositiveAndStable)
{
    for (unsigned col = 0; col < 64; ++col) {
        dram::CellLocation loc{0, 0, 123, col, 3};
        const double r = model.retentionMsAt50C(loc);
        EXPECT_GT(r, 0.0);
        EXPECT_DOUBLE_EQ(r, model.retentionMsAt50C(loc));
    }
}

TEST_F(RetentionTest, FailureLocationsAreInRange)
{
    const auto &geometry = dimm.module().geometry();
    for (unsigned row = 0; row < 200; ++row) {
        for (const auto &failure :
             model.failuresInRow(0, row, 20'000.0, 90.0)) {
            EXPECT_LT(failure.location.chip, dimm.module().chipCount());
            EXPECT_EQ(failure.location.row, row);
            EXPECT_LT(failure.location.column, geometry.columnsPerRow);
            EXPECT_LT(failure.location.bit, geometry.bitsPerColumn);
            EXPECT_LE(failure.retentionMs, 20'000.0);
        }
    }
}

} // namespace

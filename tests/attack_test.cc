/**
 * @file
 * Tests for the §8.1 attack improvements.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "attack/long_aggressor.hh"
#include "attack/temperature_aware.hh"
#include "attack/trigger_cell.hh"

namespace
{

using namespace rhs;
using namespace rhs::attack;
using namespace rhs::rhmodel;

std::vector<unsigned>
sampleRows(unsigned from, unsigned count)
{
    std::vector<unsigned> rows(count);
    std::iota(rows.begin(), rows.end(), from);
    return rows;
}

class AttackTest : public ::testing::Test
{
  protected:
    AttackTest()
        : dimm(Mfr::B, 0), tester(dimm), pattern(PatternId::Checkered)
    {
    }

    SimulatedDimm dimm;
    core::Tester tester;
    DataPattern pattern;
};

TEST_F(AttackTest, TemperatureAwareChoiceBeatsMedian)
{
    const auto choice = pickRowForTemperature(
        tester, 0, sampleRows(100, 50), 80.0, pattern);
    ASSERT_NE(choice.bestHcFirst, 0u);
    ASSERT_NE(choice.medianHcFirst, 0u);
    EXPECT_LE(choice.bestHcFirst, choice.medianHcFirst);
    EXPECT_GE(choice.reduction(), 0.0);
    EXPECT_GT(choice.reduction(), 0.15); // Informed choice pays off.
}

TEST_F(AttackTest, TemperatureAwareChoiceDependsOnTemperature)
{
    const auto rows = sampleRows(200, 40);
    const auto cold = pickRowForTemperature(tester, 0, rows, 50.0,
                                            pattern);
    const auto hot = pickRowForTemperature(tester, 0, rows, 90.0,
                                           pattern);
    // The best row or its HCfirst must differ with temperature.
    EXPECT_TRUE(cold.bestRow != hot.bestRow ||
                cold.bestHcFirst != hot.bestHcFirst);
}

TEST_F(AttackTest, TriggerCellsFireOnlyNearTarget)
{
    const double target = 70.0;
    const auto triggers = findTriggerCells(
        tester, 0, sampleRows(300, 60), pattern, target, 5.0);
    // Narrow-range cells are rare but must exist in a 60-row sample
    // (Obsv. 3: a few per mille of vulnerable cells).
    if (triggers.empty())
        GTEST_SKIP() << "no narrow-range cell in this sample";

    const auto &trigger = triggers.front();
    EXPECT_LE(trigger.rangeHigh - trigger.rangeLow, 10.0);
    EXPECT_TRUE(triggerFires(tester, trigger, 0, pattern, target));
    // Far away from the range, the trigger stays silent.
    if (trigger.rangeLow >= 60.0) {
        EXPECT_FALSE(triggerFires(tester, trigger, 0, pattern, 50.0));
    }
    if (trigger.rangeHigh <= 80.0) {
        EXPECT_FALSE(triggerFires(tester, trigger, 0, pattern, 90.0));
    }
}

TEST_F(AttackTest, EffectiveOnTimeFormula)
{
    const auto &timing = dimm.module().timing();
    EXPECT_DOUBLE_EQ(effectiveOnTime(timing, 0), timing.tRAS);
    // A short burst stays within tRAS.
    EXPECT_DOUBLE_EQ(effectiveOnTime(timing, 1), timing.tRAS);
    // 12 reads: tRCD + 11 tCCD + tRTP = 14.16 + 55 + 7.5 > tRAS.
    const double expected = timing.tRCD + 11 * timing.tCCD + timing.tRTP;
    EXPECT_DOUBLE_EQ(effectiveOnTime(timing, 12), expected);
}

TEST_F(AttackTest, LongAggressorAmplifiesAttack)
{
    const auto report = analyzeLongAggressor(
        tester, 0, sampleRows(400, 30), pattern, 15);
    EXPECT_GT(report.effectiveOnTimeNs, 34.5);
    EXPECT_GT(report.berGain(), 1.3);       // Obsv. 8 direction.
    EXPECT_GT(report.hcFirstReduction(), 0.1);
    EXPECT_TRUE(report.defeatsBaselineThreshold());
}

TEST_F(AttackTest, MoreReadsMoreDamage)
{
    const auto rows = sampleRows(500, 20);
    const auto few = analyzeLongAggressor(tester, 0, rows, pattern, 10);
    const auto many = analyzeLongAggressor(tester, 0, rows, pattern, 15);
    EXPECT_GE(many.effectiveOnTimeNs, few.effectiveOnTimeNs);
    EXPECT_GE(many.berExtended, few.berExtended);
}

} // namespace

/**
 * @file
 * DDR3 coverage: the paper also characterizes 24 DDR3 chips (Table 4)
 * and verifies its key observations hold on them. These tests exercise
 * the DDR3 timing set, the coarser 2.5 ns SoftMC granularity, and the
 * core observations on simulated DDR3 SODIMMs.
 */

#include <gtest/gtest.h>

#include "core/hammer_session.hh"
#include "core/temp_analysis.hh"
#include "core/tester.hh"
#include "rhmodel/dimm.hh"

namespace
{

using namespace rhs;
using namespace rhs::rhmodel;

DimmOptions
ddr3Options()
{
    DimmOptions options;
    options.standard = dram::Standard::DDR3;
    options.subarraysPerBank = 4;
    return options;
}

class Ddr3Test : public ::testing::TestWithParam<Mfr>
{
  protected:
    Ddr3Test() : dimm(GetParam(), 0, ddr3Options()) {}

    SimulatedDimm dimm;
};

TEST_P(Ddr3Test, UsesDdr3TimingAndGranularity)
{
    const auto &timing = dimm.module().timing();
    EXPECT_EQ(timing.standard, dram::Standard::DDR3);
    EXPECT_DOUBLE_EQ(timing.clock, 2.5); // SoftMC DDR3 granularity.
    EXPECT_EQ(dimm.module().chipCount(), 8u); // Table 4: all x8.
}

TEST_P(Ddr3Test, CycleHammerTestProducesFlips)
{
    core::CycleTestConfig config;
    config.victimPhysicalRow = 150;
    config.hammers = 400'000;
    const auto result = core::runCycleHammerTest(
        dimm, DataPattern(PatternId::Checkered), config);
    EXPECT_GT(result.victimFlips(), 0u);
}

TEST_P(Ddr3Test, TimingFactorIsOneAtDdr3Baseline)
{
    // The damage model's baseline is the module's own tRAS/tRP.
    Conditions baseline;
    baseline.tAggOn = dimm.module().timing().tRAS;
    baseline.tAggOff = dimm.module().timing().tRP;
    EXPECT_NEAR(dimm.cellModel().timingFactor(baseline), 1.0, 1e-9);
}

TEST_P(Ddr3Test, Observation2HoldsOnDdr3)
{
    // Obsv. 2: a significant fraction of vulnerable cells flips at
    // every tested temperature — the paper explicitly re-verifies
    // this on its DDR3 SODIMMs.
    core::Tester tester(dimm);
    std::vector<unsigned> rows;
    for (unsigned row = 100; row < 130; ++row)
        rows.push_back(row);
    const auto analysis = core::analyzeTempRanges(
        tester, 0, rows, DataPattern(PatternId::Checkered));
    ASSERT_GT(analysis.vulnerableCells, 0u);
    EXPECT_GT(analysis.fullRangeFraction(), 0.02);
    EXPECT_GT(analysis.noGapFraction(), 0.9);
}

TEST_P(Ddr3Test, SeparateSerialFromDdr4Twin)
{
    // A DDR3 module and a DDR4 module of the same manufacturer and
    // index are distinct devices with distinct cell populations.
    SimulatedDimm ddr4(GetParam(), 0);
    EXPECT_NE(dimm.module().info().serial, ddr4.module().info().serial);
}

INSTANTIATE_TEST_SUITE_P(PaperSodimms, Ddr3Test,
                         ::testing::Values(Mfr::A, Mfr::B, Mfr::C));

TEST(Ddr3HammerProgramTest, QuantizationAtCoarserClock)
{
    const auto timing = dram::ddr3_1600();
    // tRAS = 35 ns at 2.5 ns granularity = 14 cycles exactly.
    EXPECT_EQ(timing.toCycles(timing.tRAS), 14u);
    EXPECT_DOUBLE_EQ(timing.toNs(14), 35.0);
    // tRP = 13.75 ns rounds up to 6 cycles = 15 ns.
    EXPECT_EQ(timing.toCycles(timing.tRP), 6u);
}

} // namespace

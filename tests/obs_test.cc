/**
 * @file
 * Tests for the obs:: metrics and trace subsystem: recording
 * correctness under contention (run under the tsan preset — the
 * "ObsT" filter matches this suite), snapshot stability, the Chrome
 * trace-event export shape, and ring-buffer wraparound.
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "report/writer.hh"

namespace
{

using namespace rhs;

constexpr unsigned kThreads = 8;
constexpr std::uint64_t kAddsPerThread = 20000;

TEST(ObsTest, CounterContention)
{
    obs::Registry registry;
    auto &counter = registry.counter("hits");
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                counter.add(1);
        });
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
}

// The serve stats op reads `responses` before `enqueued` and relies on
// seq_cst increments to never observe more responses than enqueues —
// the torn-read bug the old hand-rolled ServerStats had. Model that
// exact access pattern under contention.
TEST(ObsTest, CounterPairNeverTearsAcrossReads)
{
    obs::Registry registry;
    auto &enqueued = registry.counter("enqueued");
    auto &responses = registry.counter("responses");
    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kThreads; ++t)
        writers.emplace_back([&] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
                enqueued.add(1);
                responses.add(1);
            }
        });
    std::thread reader([&] {
        while (!done.load()) {
            const std::uint64_t r = responses.value();
            const std::uint64_t e = enqueued.value();
            ASSERT_LE(r, e);
        }
    });
    for (auto &writer : writers)
        writer.join();
    done.store(true);
    reader.join();
    EXPECT_EQ(responses.value(), kThreads * kAddsPerThread);
}

TEST(ObsTest, HistogramContention)
{
    obs::Registry registry;
    auto &histogram = registry.histogram(
        "samples", obs::exponentialBounds(1.0, 2.0, 10));
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([t, &histogram] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                histogram.observe(double(1 + (t + i) % 100));
        });
    for (auto &thread : threads)
        thread.join();

    const obs::HistogramData data = histogram.snapshot();
    EXPECT_EQ(data.count, kThreads * kAddsPerThread);
    EXPECT_EQ(data.min, 1.0);
    EXPECT_EQ(data.max, 100.0);
    std::uint64_t bucket_total = 0;
    for (auto count : data.counts)
        bucket_total += count;
    EXPECT_EQ(bucket_total, data.count);
    EXPECT_GT(data.sum, 0.0);
}

TEST(ObsTest, HistogramQuantile)
{
    obs::Histogram histogram(obs::exponentialBounds(1.0, 2.0, 12));
    for (int i = 1; i <= 1000; ++i)
        histogram.observe(double(i));
    const obs::HistogramData data = histogram.snapshot();
    // Quantiles are monotone, clamped to the observed range, and a
    // pure function of the folded state.
    EXPECT_EQ(data.quantile(0.0), data.min);
    EXPECT_EQ(data.quantile(1.0), data.max);
    const double p50 = data.quantile(0.50);
    const double p99 = data.quantile(0.99);
    EXPECT_LE(p50, p99);
    EXPECT_GE(p50, data.min);
    EXPECT_LE(p99, data.max);
    // Within bucket resolution of the true median (bucket [512, 1024]
    // contains it, so interpolation cannot stray outside).
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1024.0);
}

TEST(ObsTest, GaugeRecordMaxUnderContention)
{
    obs::Registry registry;
    auto &gauge = registry.gauge("max_batch");
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([t, &gauge] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                gauge.recordMax(
                    std::int64_t(t * kAddsPerThread + i));
        });
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(gauge.value(),
              std::int64_t(kThreads * kAddsPerThread - 1));
}

TEST(ObsTest, RegistryReturnsStableReferences)
{
    obs::Registry registry;
    auto &a = registry.counter("same");
    auto &b = registry.counter("same");
    EXPECT_EQ(&a, &b);
    auto &h1 = registry.histogram("h", {1.0, 2.0});
    // Bounds are fixed by the first registration.
    auto &h2 = registry.histogram("h", {5.0, 6.0, 7.0});
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.snapshot().bounds.size(), 2u);
}

TEST(ObsTest, SnapshotStableWhenIdle)
{
    obs::Registry registry;
    registry.counter("c").add(7);
    registry.gauge("g").set(-3);
    registry.histogram("h", obs::latencyBoundsMs()).observe(1.5);

    const report::JsonWriter writer;
    const std::string first =
        writer.toString(obs::registryJson(registry));
    const std::string second =
        writer.toString(obs::registryJson(registry));
    // No writers between snapshots: byte-identical output (names
    // sorted, no iteration-order or timing dependence).
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"c\": 7"), std::string::npos);
}

TEST(ObsTest, SetEnabledFreezesRecording)
{
    obs::Registry registry;
    auto &counter = registry.counter("frozen");
    auto &gauge = registry.gauge("frozen_gauge");
    auto &histogram = registry.histogram("frozen_hist", {1.0});
    counter.add(2);
    obs::setEnabled(false);
    counter.add(5);
    gauge.set(9);
    histogram.observe(0.5);
    obs::setEnabled(true);
    EXPECT_EQ(counter.value(), 2u);
    EXPECT_EQ(gauge.value(), 0);
    EXPECT_EQ(histogram.count(), 0u);
    counter.add(1); // Flipping the switch never loses data.
    EXPECT_EQ(counter.value(), 3u);
}

TEST(ObsTest, ChromeTraceJsonShape)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "spans compiled out (RHS_OBS=OFF)";
    obs::clearTrace();
    {
        OBS_SPAN("obs_test.outer");
        obs::Span inner("obs_test.inner");
    }
    const report::Json trace = obs::chromeTraceJson();
    const report::Json &events = trace.at("traceEvents");
    ASSERT_GE(events.size(), 2u);
    bool saw_outer = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const report::Json &event = events.at(i);
        ASSERT_TRUE(event.contains("name"));
        EXPECT_EQ(event.at("ph").asString(), "X");
        EXPECT_GE(event.at("ts").asDouble(), 0.0);
        EXPECT_GE(event.at("dur").asDouble(), 0.0);
        EXPECT_EQ(event.at("pid").asInt(), 1);
        EXPECT_GE(event.at("tid").asInt(), 0);
        saw_outer = saw_outer ||
                    event.at("name").asString() == "obs_test.outer";
    }
    EXPECT_TRUE(saw_outer);
    EXPECT_EQ(trace.at("otherData").at("dropped").asInt(), 0);
    obs::clearTrace();
}

TEST(ObsTest, TraceRingWraparoundDropsOldest)
{
    obs::clearTrace();
    const std::uint64_t extra = 100;
    const std::uint64_t total = obs::kTraceRingCapacity + extra;
    // recordSpan appends to the calling thread's ring regardless of
    // the enabled() switch (gating lives in Span), so this exercises
    // wraparound deterministically in every build configuration.
    for (std::uint64_t i = 0; i < total; ++i)
        obs::recordSpan("wrap", i, i + 1);

    const auto spans = obs::traceSnapshot();
    ASSERT_EQ(spans.size(), obs::kTraceRingCapacity);
    EXPECT_EQ(obs::traceDropped(), extra);
    EXPECT_EQ(obs::traceRecorded(), total);
    // The oldest `extra` events were overwritten; the retained ones
    // are the newest, contiguous, and uncorrupted.
    for (std::size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].name, "wrap");
        EXPECT_EQ(spans[i].beginUs, extra + i);
        EXPECT_EQ(spans[i].endUs, extra + i + 1);
    }
    obs::clearTrace();
}

} // namespace

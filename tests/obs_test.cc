/**
 * @file
 * Tests for the obs:: metrics and trace subsystem: recording
 * correctness under contention (run under the tsan preset — the
 * "ObsT" filter matches this suite), snapshot stability, the Chrome
 * trace-event export shape, and ring-buffer wraparound.
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "report/writer.hh"

namespace
{

using namespace rhs;

constexpr unsigned kThreads = 8;
constexpr std::uint64_t kAddsPerThread = 20000;

TEST(ObsTest, CounterContention)
{
    obs::Registry registry;
    auto &counter = registry.counter("hits");
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                counter.add(1);
        });
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
}

// The serve stats op reads `responses` before `enqueued` and relies on
// seq_cst increments to never observe more responses than enqueues —
// the torn-read bug the old hand-rolled ServerStats had. Model that
// exact access pattern under contention.
TEST(ObsTest, CounterPairNeverTearsAcrossReads)
{
    obs::Registry registry;
    auto &enqueued = registry.counter("enqueued");
    auto &responses = registry.counter("responses");
    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kThreads; ++t)
        writers.emplace_back([&] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
                enqueued.add(1);
                responses.add(1);
            }
        });
    std::thread reader([&] {
        while (!done.load()) {
            const std::uint64_t r = responses.value();
            const std::uint64_t e = enqueued.value();
            ASSERT_LE(r, e);
        }
    });
    for (auto &writer : writers)
        writer.join();
    done.store(true);
    reader.join();
    EXPECT_EQ(responses.value(), kThreads * kAddsPerThread);
}

TEST(ObsTest, HistogramContention)
{
    obs::Registry registry;
    auto &histogram = registry.histogram(
        "samples", obs::exponentialBounds(1.0, 2.0, 10));
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([t, &histogram] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                histogram.observe(double(1 + (t + i) % 100));
        });
    for (auto &thread : threads)
        thread.join();

    const obs::HistogramData data = histogram.snapshot();
    EXPECT_EQ(data.count, kThreads * kAddsPerThread);
    EXPECT_EQ(data.min, 1.0);
    EXPECT_EQ(data.max, 100.0);
    std::uint64_t bucket_total = 0;
    for (auto count : data.counts)
        bucket_total += count;
    EXPECT_EQ(bucket_total, data.count);
    EXPECT_GT(data.sum, 0.0);
}

TEST(ObsTest, HistogramQuantile)
{
    obs::Histogram histogram(obs::exponentialBounds(1.0, 2.0, 12));
    for (int i = 1; i <= 1000; ++i)
        histogram.observe(double(i));
    const obs::HistogramData data = histogram.snapshot();
    // Quantiles are monotone, clamped to the observed range, and a
    // pure function of the folded state.
    EXPECT_EQ(data.quantile(0.0), data.min);
    EXPECT_EQ(data.quantile(1.0), data.max);
    const double p50 = data.quantile(0.50);
    const double p99 = data.quantile(0.99);
    EXPECT_LE(p50, p99);
    EXPECT_GE(p50, data.min);
    EXPECT_LE(p99, data.max);
    // Within bucket resolution of the true median (bucket [512, 1024]
    // contains it, so interpolation cannot stray outside).
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1024.0);
}

TEST(ObsTest, GaugeRecordMaxUnderContention)
{
    obs::Registry registry;
    auto &gauge = registry.gauge("max_batch");
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([t, &gauge] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                gauge.recordMax(
                    std::int64_t(t * kAddsPerThread + i));
        });
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(gauge.value(),
              std::int64_t(kThreads * kAddsPerThread - 1));
}

TEST(ObsTest, RegistryReturnsStableReferences)
{
    obs::Registry registry;
    auto &a = registry.counter("same");
    auto &b = registry.counter("same");
    EXPECT_EQ(&a, &b);
    auto &h1 = registry.histogram("h", {1.0, 2.0});
    // Bounds are fixed by the first registration.
    auto &h2 = registry.histogram("h", {5.0, 6.0, 7.0});
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.snapshot().bounds.size(), 2u);
}

TEST(ObsTest, SnapshotStableWhenIdle)
{
    obs::Registry registry;
    registry.counter("c").add(7);
    registry.gauge("g").set(-3);
    registry.histogram("h", obs::latencyBoundsMs()).observe(1.5);

    const report::JsonWriter writer;
    const std::string first =
        writer.toString(obs::registryJson(registry));
    const std::string second =
        writer.toString(obs::registryJson(registry));
    // No writers between snapshots: byte-identical output (names
    // sorted, no iteration-order or timing dependence).
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"c\": 7"), std::string::npos);
}

TEST(ObsTest, SetEnabledFreezesRecording)
{
    obs::Registry registry;
    auto &counter = registry.counter("frozen");
    auto &gauge = registry.gauge("frozen_gauge");
    auto &histogram = registry.histogram("frozen_hist", {1.0});
    counter.add(2);
    obs::setEnabled(false);
    counter.add(5);
    gauge.set(9);
    histogram.observe(0.5);
    obs::setEnabled(true);
    EXPECT_EQ(counter.value(), 2u);
    EXPECT_EQ(gauge.value(), 0);
    EXPECT_EQ(histogram.count(), 0u);
    counter.add(1); // Flipping the switch never loses data.
    EXPECT_EQ(counter.value(), 3u);
}

TEST(ObsTest, ChromeTraceJsonShape)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "spans compiled out (RHS_OBS=OFF)";
    obs::clearTrace();
    {
        OBS_SPAN("obs_test.outer");
        obs::Span inner("obs_test.inner");
    }
    const report::Json trace = obs::chromeTraceJson();
    const report::Json &events = trace.at("traceEvents");
    ASSERT_GE(events.size(), 2u);
    bool saw_outer = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const report::Json &event = events.at(i);
        ASSERT_TRUE(event.contains("name"));
        EXPECT_EQ(event.at("ph").asString(), "X");
        EXPECT_GE(event.at("ts").asDouble(), 0.0);
        EXPECT_GE(event.at("dur").asDouble(), 0.0);
        EXPECT_EQ(event.at("pid").asInt(), 1);
        EXPECT_GE(event.at("tid").asInt(), 0);
        saw_outer = saw_outer ||
                    event.at("name").asString() == "obs_test.outer";
    }
    EXPECT_TRUE(saw_outer);
    EXPECT_EQ(trace.at("otherData").at("dropped").asInt(), 0);
    obs::clearTrace();
}

// --- PR 10: fleet merge and distributed-trace plumbing --------------

TEST(ObsTest, MergeHistogramsEmptyInput)
{
    const obs::HistogramData merged = obs::mergeHistograms({});
    EXPECT_EQ(merged.count, 0u);
    EXPECT_EQ(merged.sum, 0.0);
    EXPECT_TRUE(merged.bounds.empty());
    EXPECT_EQ(merged.quantile(0.5), 0.0);
}

TEST(ObsTest, MergeHistogramsSingleShardIsIdentity)
{
    obs::Histogram histogram(obs::exponentialBounds(1.0, 2.0, 8));
    for (int i = 1; i <= 50; ++i)
        histogram.observe(double(i));
    const obs::HistogramData part = histogram.snapshot();
    const obs::HistogramData merged = obs::mergeHistograms({part});
    EXPECT_EQ(merged.count, part.count);
    EXPECT_EQ(merged.sum, part.sum);
    EXPECT_EQ(merged.min, part.min);
    EXPECT_EQ(merged.max, part.max);
    ASSERT_EQ(merged.counts.size(), part.counts.size());
    for (std::size_t i = 0; i < part.counts.size(); ++i)
        EXPECT_EQ(merged.counts[i], part.counts[i]);
    EXPECT_EQ(merged.quantile(0.5), part.quantile(0.5));
}

// A version-skewed shard (different bucket layout) must contribute its
// scalars but not its buckets: quantiles stay exact over the matching
// inputs instead of guessing a fold between incompatible layouts.
TEST(ObsTest, MergeHistogramsMismatchedBucketLayout)
{
    obs::Histogram a(obs::exponentialBounds(1.0, 2.0, 8));
    obs::Histogram b(obs::exponentialBounds(1.0, 2.0, 8));
    obs::Histogram skewed({5.0, 50.0});
    for (int i = 1; i <= 40; ++i)
        a.observe(double(i));
    for (int i = 41; i <= 100; ++i)
        b.observe(double(i));
    for (int i = 0; i < 10; ++i)
        skewed.observe(1000.0);

    const obs::HistogramData merged = obs::mergeHistograms(
        {a.snapshot(), b.snapshot(), skewed.snapshot()});
    // Scalars fold across all three parts...
    EXPECT_EQ(merged.count, 110u);
    EXPECT_EQ(merged.min, 1.0);
    EXPECT_EQ(merged.max, 1000.0);
    // ...but the buckets keep the first layout: bucket totals cover
    // only the two matching shards.
    ASSERT_EQ(merged.bounds.size(), a.snapshot().bounds.size());
    std::uint64_t bucket_total = 0;
    for (auto count : merged.counts)
        bucket_total += count;
    EXPECT_EQ(bucket_total, 100u);
}

// The fleet p50/p99 must come from the merged buckets — identical to
// a single histogram that saw every shard's samples — never from
// averaging per-shard quantiles.
TEST(ObsTest, MergeHistogramsFleetQuantilesMatchCombined)
{
    const auto bounds = obs::exponentialBounds(1.0, 2.0, 12);
    obs::Histogram shard0(bounds);
    obs::Histogram shard1(bounds);
    obs::Histogram combined(bounds);
    // Deliberately skewed split: shard 0 sees the fast half, shard 1
    // the slow tail, so averaged per-shard quantiles would be wrong.
    for (int i = 1; i <= 900; ++i) {
        shard0.observe(double(i % 10 + 1));
        combined.observe(double(i % 10 + 1));
    }
    for (int i = 0; i < 100; ++i) {
        shard1.observe(double(500 + i));
        combined.observe(double(500 + i));
    }
    const obs::HistogramData merged =
        obs::mergeHistograms({shard0.snapshot(), shard1.snapshot()});
    const obs::HistogramData reference = combined.snapshot();
    EXPECT_EQ(merged.count, reference.count);
    EXPECT_EQ(merged.sum, reference.sum);
    EXPECT_EQ(merged.quantile(0.50), reference.quantile(0.50));
    EXPECT_EQ(merged.quantile(0.99), reference.quantile(0.99));
    // Hand-computed: 1000 samples, 900 of them <= 10 — the median sits
    // in a low bucket, the p99 inside the slow tail.
    EXPECT_LE(merged.quantile(0.50), 16.0);
    EXPECT_GE(merged.quantile(0.99), 256.0);
    EXPECT_LE(merged.quantile(0.99), merged.max);
}

TEST(ObsTest, HistogramJsonRoundtrip)
{
    obs::Histogram histogram(obs::latencyBoundsMs());
    histogram.observe(0.3);
    histogram.observe(7.5);
    histogram.observe(120.0);
    const obs::HistogramData data = histogram.snapshot();
    obs::HistogramData parsed;
    ASSERT_TRUE(
        obs::histogramFromJson(obs::histogramJson(data), parsed));
    EXPECT_EQ(parsed.count, data.count);
    EXPECT_EQ(parsed.sum, data.sum);
    EXPECT_EQ(parsed.min, data.min);
    EXPECT_EQ(parsed.max, data.max);
    ASSERT_EQ(parsed.bounds.size(), data.bounds.size());
    ASSERT_EQ(parsed.counts.size(), data.counts.size());
    EXPECT_EQ(parsed.quantile(0.5), data.quantile(0.5));

    obs::HistogramData rejected;
    EXPECT_FALSE(
        obs::histogramFromJson(report::Json::array(), rejected));
}

TEST(ObsTest, MergeRegistryJsonSumsCountersKeepsGauges)
{
    obs::Registry r0, r1;
    r0.counter("requests").add(10);
    r1.counter("requests").add(32);
    r0.gauge("queue_depth").set(3);
    r1.gauge("queue_depth").set(9);
    r0.histogram("latency_ms", obs::latencyBoundsMs()).observe(1.0);
    r1.histogram("latency_ms", obs::latencyBoundsMs()).observe(64.0);

    const report::Json merged = obs::mergeRegistryJson(
        {{"s0r0", obs::registryJson(r0)},
         {"s1r0", obs::registryJson(r1)}});
    EXPECT_EQ(merged.at("counters").at("requests").asInt(), 42);
    // Gauges have no meaningful fleet sum: per-replica under labels.
    EXPECT_EQ(merged.at("gauges")
                  .at("queue_depth")
                  .at("s0r0")
                  .asInt(),
              3);
    EXPECT_EQ(merged.at("gauges")
                  .at("queue_depth")
                  .at("s1r0")
                  .asInt(),
              9);
    const report::Json &hist =
        merged.at("histograms").at("latency_ms");
    EXPECT_EQ(hist.at("count").asInt(), 2);
    EXPECT_EQ(hist.at("min").asDouble(), 1.0);
    EXPECT_EQ(hist.at("max").asDouble(), 64.0);
    const report::Json &replicas = merged.at("replicas");
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_EQ(replicas.at(0).asString(), "s0r0");
}

TEST(ObsTest, TraceIdHexRoundtrip)
{
    const std::string hex =
        obs::traceIdToHex(0x0123456789abcdefull, 0xfedcba9876543210ull);
    EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
    std::uint64_t hi = 0, lo = 0;
    ASSERT_TRUE(obs::traceIdFromHex(hex, hi, lo));
    EXPECT_EQ(hi, 0x0123456789abcdefull);
    EXPECT_EQ(lo, 0xfedcba9876543210ull);
    // Short forms parse (right-aligned into lo).
    ASSERT_TRUE(obs::traceIdFromHex("Ff", hi, lo));
    EXPECT_EQ(hi, 0u);
    EXPECT_EQ(lo, 0xffu);
    // Empty, overlong, and non-hex are rejected.
    EXPECT_FALSE(obs::traceIdFromHex("", hi, lo));
    EXPECT_FALSE(obs::traceIdFromHex(std::string(33, 'a'), hi, lo));
    EXPECT_FALSE(obs::traceIdFromHex("xyz", hi, lo));
    // makeTraceId never returns the "no trace" sentinel.
    const obs::TraceContext fresh = obs::makeTraceId();
    EXPECT_TRUE(fresh.valid());
}

TEST(ObsTest, SpansJsonRoundtripAndTruncation)
{
    std::vector<obs::SpanEvent> spans;
    for (std::uint64_t i = 0; i < 5; ++i) {
        obs::SpanEvent span;
        span.name = "s" + std::to_string(i);
        span.beginUs = 10 * i;
        span.endUs = 10 * i + 5;
        span.tid = static_cast<std::uint32_t>(i % 2);
        span.traceHi = 0xabc;
        span.traceLo = i;
        span.spanId = i + 1;
        span.parentId = i;
        spans.push_back(std::move(span));
    }
    bool truncated = false;
    auto payload = report::Json::object();
    payload.set("node", "serve:7001");
    payload.set("epoch_unix_us", std::int64_t{123456});
    payload.set("recorded", std::int64_t{5});
    payload.set("dropped", std::int64_t{0});
    payload.set("spans", obs::spansJson(spans, 3, truncated));
    payload.set("truncated", truncated);
    EXPECT_TRUE(truncated); // 5 spans, cap 3.

    obs::NodeTrace parsed;
    ASSERT_TRUE(obs::nodeTraceFromJson(payload, parsed));
    EXPECT_EQ(parsed.node, "serve:7001");
    EXPECT_EQ(parsed.epochUnixUs, 123456u);
    EXPECT_TRUE(parsed.truncated);
    // The newest spans are kept — the tail is the interesting end of
    // a flight recorder.
    ASSERT_EQ(parsed.spans.size(), 3u);
    EXPECT_EQ(parsed.spans.front().name, "s2");
    EXPECT_EQ(parsed.spans.back().name, "s4");
    EXPECT_EQ(parsed.spans.back().traceHi, 0xabcu);
    EXPECT_EQ(parsed.spans.back().traceLo, 4u);
    EXPECT_EQ(parsed.spans.back().spanId, 5u);
    EXPECT_EQ(parsed.spans.back().parentId, 4u);

    obs::NodeTrace rejected;
    EXPECT_FALSE(
        obs::nodeTraceFromJson(report::Json::array(), rejected));
    auto spanless = report::Json::object();
    spanless.set("node", "serve:1");
    EXPECT_FALSE(obs::nodeTraceFromJson(spanless, rejected));
}

TEST(ObsTest, StitchedChromeTraceNamesEveryNode)
{
    std::vector<obs::NodeTrace> nodes;
    for (unsigned n = 0; n < 2; ++n) {
        obs::NodeTrace node;
        node.node = (n == 0 ? "route:1" : "serve:7001");
        node.epochUnixUs = 1'000'000 + n * 50;
        obs::SpanEvent span;
        span.name = n == 0 ? "route.forward" : "serve.exec";
        span.beginUs = 10;
        span.endUs = 60;
        span.traceHi = 0xdead;
        span.traceLo = 0xbeef;
        span.spanId = n + 1;
        node.spans.push_back(std::move(span));
        nodes.push_back(std::move(node));
    }
    const report::Json trace = obs::chromeTraceJson(nodes);
    const report::Json &events = trace.at("traceEvents");
    unsigned named = 0, complete = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const report::Json &event = events.at(i);
        const std::string ph = event.at("ph").asString();
        if (ph == "M" &&
            event.at("name").asString() == "process_name") {
            ++named;
            continue;
        }
        if (ph != "X")
            continue;
        ++complete;
        // pid = 1-based node index; timestamps on the absolute axis
        // via each node's epoch, so the shard span (later epoch)
        // starts after the router span.
        EXPECT_GE(event.at("pid").asInt(), 1);
        EXPECT_LE(event.at("pid").asInt(), 2);
        EXPECT_EQ(event.at("args").at("trace").asString(),
                  obs::traceIdToHex(0xdead, 0xbeef));
    }
    EXPECT_EQ(named, nodes.size());
    EXPECT_EQ(complete, 2u);
}

TEST(ObsTest, SpanNestingBuildsParentChain)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "spans compiled out (RHS_OBS=OFF)";
    obs::clearTrace();
    std::uint64_t outer_id = 0, inner_id = 0;
    {
        obs::Span outer("nest.outer");
        outer_id = outer.id();
        obs::Span inner("nest.inner");
        inner_id = inner.id();
    }
    ASSERT_NE(outer_id, 0u);
    ASSERT_NE(inner_id, 0u);
    const auto spans = obs::traceSnapshot();
    const obs::SpanEvent *outer_span = nullptr;
    const obs::SpanEvent *inner_span = nullptr;
    for (const auto &span : spans) {
        if (span.name == "nest.outer")
            outer_span = &span;
        if (span.name == "nest.inner")
            inner_span = &span;
    }
    ASSERT_NE(outer_span, nullptr);
    ASSERT_NE(inner_span, nullptr);
    EXPECT_EQ(inner_span->parentId, outer_id);
    EXPECT_EQ(outer_span->spanId, outer_id);

    // A ContextScope continues a remote caller's trace: spans under it
    // carry the remote id and chain to the remote parent.
    obs::TraceContext remote;
    remote.hi = 0x1122;
    remote.lo = 0x3344;
    remote.parent = 77;
    std::uint64_t scoped_id = 0;
    {
        obs::ContextScope scope(remote);
        obs::Span handler("nest.handler");
        scoped_id = handler.id();
    }
    for (const auto &span : obs::traceSnapshot())
        if (span.name == "nest.handler") {
            EXPECT_EQ(span.traceHi, 0x1122u);
            EXPECT_EQ(span.traceLo, 0x3344u);
            EXPECT_EQ(span.parentId, 77u);
            EXPECT_EQ(span.spanId, scoped_id);
        }
    obs::clearTrace();
}

TEST(ObsTest, TraceRingWraparoundDropsOldest)
{
    obs::clearTrace();
    const std::uint64_t extra = 100;
    const std::uint64_t total = obs::kTraceRingCapacity + extra;
    // recordSpan appends to the calling thread's ring regardless of
    // the enabled() switch (gating lives in Span), so this exercises
    // wraparound deterministically in every build configuration.
    for (std::uint64_t i = 0; i < total; ++i)
        obs::recordSpan("wrap", i, i + 1);

    const auto spans = obs::traceSnapshot();
    ASSERT_EQ(spans.size(), obs::kTraceRingCapacity);
    EXPECT_EQ(obs::traceDropped(), extra);
    EXPECT_EQ(obs::traceRecorded(), total);
    // The oldest `extra` events were overwritten; the retained ones
    // are the newest, contiguous, and uncorrupted.
    for (std::size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].name, "wrap");
        EXPECT_EQ(spans[i].beginUs, extra + i);
        EXPECT_EQ(spans[i].endUs, extra + i + 1);
    }
    obs::clearTrace();
}

} // namespace

/**
 * @file
 * Unit tests for the experiment layer: registry lookup and filtering,
 * scale resolution, and FleetCache instance sharing (the tentpole
 * guarantee that one rhs-bench invocation builds each module, fleet,
 * and WCDP once).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "exp/fleet_cache.hh"
#include "exp/registry.hh"
#include "exp/scale.hh"
#include "obs/metrics.hh"
#include "util/cli.hh"

namespace
{

using namespace rhs;

/** Minimal registrable experiment for registry tests. */
class StubExperiment final : public exp::Experiment
{
  public:
    explicit StubExperiment(std::string name) : name_(std::move(name))
    {
    }

    std::string
    name() const override
    {
        return name_;
    }

    std::string
    title() const override
    {
        return "stub: " + name_;
    }

    std::string
    source() const override
    {
        return "tests/exp_test.cc";
    }

    report::Document
    run(exp::RunContext &) override
    {
        auto doc = makeDocument();
        doc.check("stub", "test", "always passes", true);
        return doc;
    }

  private:
    std::string name_;
};

/** The registry is process-global; isolate every test. */
class RegistryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        exp::Registry::clearForTest();
    }

    void
    TearDown() override
    {
        exp::Registry::clearForTest();
    }
};

TEST_F(RegistryTest, FindReturnsRegisteredExperiment)
{
    exp::Registry::add(std::make_unique<StubExperiment>("fig1_stub"));
    auto *found = exp::Registry::find("fig1_stub");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name(), "fig1_stub");
    EXPECT_EQ(exp::Registry::find("nonexistent"), nullptr);
}

TEST_F(RegistryTest, AllPreservesRegistrationOrder)
{
    exp::Registry::add(std::make_unique<StubExperiment>("zeta"));
    exp::Registry::add(std::make_unique<StubExperiment>("alpha"));
    exp::Registry::add(std::make_unique<StubExperiment>("mid"));
    const auto &all = exp::Registry::all();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0]->name(), "zeta");
    EXPECT_EQ(all[1]->name(), "alpha");
    EXPECT_EQ(all[2]->name(), "mid");
}

TEST_F(RegistryTest, FilterMatchesSubstringInOrder)
{
    exp::Registry::add(std::make_unique<StubExperiment>("fig4_temp"));
    exp::Registry::add(std::make_unique<StubExperiment>("fig5_temp"));
    exp::Registry::add(std::make_unique<StubExperiment>("ablations"));

    const auto temps = exp::Registry::filter("temp");
    ASSERT_EQ(temps.size(), 2u);
    EXPECT_EQ(temps[0]->name(), "fig4_temp");
    EXPECT_EQ(temps[1]->name(), "fig5_temp");

    // The empty filter selects everything (the --all behavior).
    EXPECT_EQ(exp::Registry::filter("").size(), 3u);
    EXPECT_TRUE(exp::Registry::filter("nomatch").empty());
}

TEST_F(RegistryTest, FilterAcceptsCommaSeparatedPatterns)
{
    exp::Registry::add(std::make_unique<StubExperiment>("fig4_temp"));
    exp::Registry::add(std::make_unique<StubExperiment>("ablations"));
    exp::Registry::add(std::make_unique<StubExperiment>("fig5_temp"));

    // The union of both patterns, in registration order.
    const auto both = exp::Registry::filter("ablat,temp");
    ASSERT_EQ(both.size(), 3u);
    EXPECT_EQ(both[0]->name(), "fig4_temp");
    EXPECT_EQ(both[1]->name(), "ablations");
    EXPECT_EQ(both[2]->name(), "fig5_temp");

    // An experiment matching several patterns appears only once.
    const auto once = exp::Registry::filter("fig4,temp");
    ASSERT_EQ(once.size(), 2u);
    EXPECT_EQ(once[0]->name(), "fig4_temp");
    EXPECT_EQ(once[1]->name(), "fig5_temp");

    // Empty segments (trailing or doubled commas) are ignored.
    const auto trailing = exp::Registry::filter("ablat,,");
    ASSERT_EQ(trailing.size(), 1u);
    EXPECT_EQ(trailing[0]->name(), "ablations");
}

using RegistryDeathTest = RegistryTest;

TEST_F(RegistryDeathTest, DuplicateNameIsFatal)
{
    exp::Registry::add(std::make_unique<StubExperiment>("twin"));
    EXPECT_EXIT(exp::Registry::add(
                    std::make_unique<StubExperiment>("twin")),
                ::testing::ExitedWithCode(1),
                "duplicate experiment registration");
}

// --- Scale resolution -----------------------------------------------

exp::Scale
resolve(const std::vector<std::string> &args,
        const exp::ScaleDefaults &defaults = {})
{
    const util::Cli cli(
        args, {"rows", "modules", "full", "smoke", "jobs", "seed"});
    return exp::resolveScale(cli, defaults);
}

TEST(ScaleTest, DefaultsComeFromTheExperiment)
{
    const auto scale = resolve({}, {400, 2, 120, 18});
    EXPECT_EQ(scale.maxRows, 120u);
    EXPECT_EQ(scale.modulesPerMfr, 1u);
    EXPECT_EQ(scale.rowsPerRegion, 120u / 3 + 1);
    EXPECT_FALSE(scale.smoke);
}

TEST(ScaleTest, FullSelectsPaperScale)
{
    const auto scale = resolve({"--full"}, {400, 2, 120, 18});
    EXPECT_EQ(scale.maxRows, 400u);
    EXPECT_EQ(scale.modulesPerMfr, 2u);
}

TEST(ScaleTest, ExplicitRowsOverrideFull)
{
    const auto scale =
        resolve({"--full", "--rows", "50"}, {400, 2, 120, 18});
    EXPECT_EQ(scale.maxRows, 50u);
    EXPECT_EQ(scale.modulesPerMfr, 2u); // --full still sets modules.
    EXPECT_EQ(scale.rowsPerRegion, 50u / 3 + 1);
}

TEST(ScaleTest, SmokeCapsUnlessPinned)
{
    const auto capped = resolve({"--smoke"}, {400, 2, 120, 18});
    EXPECT_TRUE(capped.smoke);
    EXPECT_EQ(capped.maxRows, 18u);
    EXPECT_EQ(capped.modulesPerMfr, 1u);

    // An explicit --rows wins over the smoke cap.
    const auto pinned =
        resolve({"--smoke", "--rows", "64"}, {400, 2, 120, 18});
    EXPECT_TRUE(pinned.smoke);
    EXPECT_EQ(pinned.maxRows, 64u);
}

// --- FleetCache sharing ---------------------------------------------

exp::Scale
tinyScale()
{
    exp::Scale scale;
    scale.modulesPerMfr = 1;
    scale.maxRows = 6;
    scale.rowsPerRegion = 3;
    return scale;
}

TEST(FleetCacheTest, ModuleIsBuiltOnceAndShared)
{
    exp::FleetCache cache;
    auto &first = cache.module(rhmodel::Mfr::B, 0);
    auto &second = cache.module(rhmodel::Mfr::B, 0);
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(first.dimm.get(), second.dimm.get());
    EXPECT_EQ(cache.modulesBuilt(), 1u);

    // A different index or a custom geometry is a different module.
    cache.module(rhmodel::Mfr::B, 1);
    cache.module(rhmodel::Mfr::B, 0, 4);
    EXPECT_EQ(cache.modulesBuilt(), 3u);
}

TEST(FleetCacheTest, FleetIsCachedPerScale)
{
    exp::FleetCache cache;
    const auto scale = tinyScale();
    const auto &first = cache.fleet(scale);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(cache.fleetsBuilt(), 1u);
    EXPECT_EQ(cache.fleetHits(), 0u);

    const auto &second = cache.fleet(scale);
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(cache.fleetsBuilt(), 1u);
    EXPECT_EQ(cache.fleetHits(), 1u);

    // A different scale builds a fresh fleet over the same modules.
    auto wider = scale;
    wider.maxRows = 9;
    wider.rowsPerRegion = 4;
    const auto &third = cache.fleet(wider);
    EXPECT_NE(&first, &third);
    EXPECT_EQ(cache.fleetsBuilt(), 2u);
}

TEST(FleetCacheTest, WcdpIsCachedPerSample)
{
    exp::FleetCache cache;
    auto &module = cache.module(rhmodel::Mfr::A, 0);
    const std::vector<unsigned> sample{100, 2000, 6000};

    const auto &first = cache.wcdp(module, 0, sample);
    EXPECT_EQ(cache.wcdpSearches(), 1u);
    EXPECT_EQ(cache.wcdpHits(), 0u);

    const auto &second = cache.wcdp(module, 0, sample);
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(cache.wcdpSearches(), 2u);
    EXPECT_EQ(cache.wcdpHits(), 1u);

    // Another sample triggers a fresh search.
    const auto &other = cache.wcdp(module, 0, {1, 2, 3});
    EXPECT_EQ(cache.wcdpSearches(), 3u);
    EXPECT_EQ(cache.wcdpHits(), 1u);
    (void)other;
}

TEST(FleetCacheTest, PublishesObsCounters)
{
    // The per-instance accessors above stay test-local; the same
    // events also land in the global registry so a long-lived
    // rhs-serve process can report fleet construction in `stats`.
    // Counters are process-global and cumulative, so assert deltas.
    auto &registry = obs::Registry::global();
    const auto built0 = registry.counter("fleet.modules.built").value();
    const auto fhits0 = registry.counter("fleet.cache.hits").value();
    const auto fmiss0 = registry.counter("fleet.cache.misses").value();
    const auto whits0 = registry.counter("fleet.wcdp.hits").value();
    const auto wmiss0 = registry.counter("fleet.wcdp.misses").value();

    exp::FleetCache cache;
    const auto scale = tinyScale();
    cache.fleet(scale); // miss: builds modules and runs WCDP searches
    cache.fleet(scale); // hit
    auto &module = cache.module(rhmodel::Mfr::A, 0);
    const std::vector<unsigned> sample{100, 2000};
    cache.wcdp(module, 0, sample); // miss
    cache.wcdp(module, 0, sample); // hit

    EXPECT_EQ(registry.counter("fleet.modules.built").value() - built0,
              cache.modulesBuilt());
    EXPECT_EQ(registry.counter("fleet.cache.hits").value() - fhits0,
              cache.fleetHits());
    EXPECT_EQ(registry.counter("fleet.cache.misses").value() - fmiss0,
              cache.fleetsBuilt());
    EXPECT_EQ(registry.counter("fleet.wcdp.hits").value() - whits0,
              cache.wcdpHits());
    EXPECT_EQ(registry.counter("fleet.wcdp.misses").value() - wmiss0,
              cache.wcdpSearches() - cache.wcdpHits());
}

TEST(FleetCacheTest, SharedFleetIsValuePreserving)
{
    // Two consumers of one cache must see the numbers a cold cache
    // would produce: the engine's caches are value-preserving, which
    // is what makes cross-experiment sharing sound.
    const auto scale = tinyScale();

    exp::FleetCache shared;
    const auto &warm = shared.fleet(scale);
    rhmodel::Conditions reference;
    std::vector<double> first_pass, second_pass;
    for (const auto &entry : warm)
        for (unsigned row : entry.rows)
            first_pass.push_back(entry.tester->berOfRow(
                0, row, reference, entry.wcdp));
    for (const auto &entry : shared.fleet(scale))
        for (unsigned row : entry.rows)
            second_pass.push_back(entry.tester->berOfRow(
                0, row, reference, entry.wcdp));
    EXPECT_EQ(first_pass, second_pass);

    exp::FleetCache cold;
    std::vector<double> cold_pass;
    for (const auto &entry : cold.fleet(scale))
        for (unsigned row : entry.rows)
            cold_pass.push_back(entry.tester->berOfRow(
                0, row, reference, entry.wcdp));
    EXPECT_EQ(first_pass, cold_pass);
}

} // namespace

/**
 * @file
 * Tests for the one-call characterization campaign.
 */

#include <gtest/gtest.h>

#include "core/campaign.hh"

namespace
{

using namespace rhs;
using namespace rhs::core;

class CampaignTest : public ::testing::TestWithParam<rhmodel::Mfr>
{
};

TEST_P(CampaignTest, ProducesACompleteReport)
{
    rhmodel::SimulatedDimm dimm(GetParam(), 0);
    Tester tester(dimm);
    CampaignConfig config;
    config.maxRows = 30;
    config.rowsPerRegion = 10;
    const auto report = runCampaign(tester, config);

    EXPECT_EQ(report.moduleLabel, dimm.label());
    EXPECT_GT(report.temperatureRanges.vulnerableCells, 0u);
    EXPECT_GT(report.onTimeSweep.berRatio(), 1.0);
    EXPECT_LT(report.offTimeSweep.berRatio(), 1.0);
    EXPECT_FALSE(report.rowHcFirst.empty());
    EXPECT_GE(report.subarrays.size(), 3u);
    EXPECT_LE(report.profile.rows.size(), 30u);
    EXPECT_GE(report.profile.rows.size(), 20u);
    EXPECT_GT(report.profile.worstCase(), 0u);

    const auto text = report.summary();
    EXPECT_NE(text.find(dimm.label()), std::string::npos);
    EXPECT_NE(text.find("tAggOn"), std::string::npos);
}

TEST_P(CampaignTest, ProfileRoundTripsThroughPersistence)
{
    rhmodel::SimulatedDimm dimm(GetParam(), 0);
    Tester tester(dimm);
    CampaignConfig config;
    config.maxRows = 15;
    config.rowsPerRegion = 5;
    const auto report = runCampaign(tester, config);

    const auto reloaded =
        loadProfileFromString(saveProfileToString(report.profile));
    EXPECT_EQ(reloaded.serial, dimm.module().info().serial);
    EXPECT_EQ(reloaded.worstCase(), report.profile.worstCase());
    EXPECT_EQ(reloaded.wcdp, report.wcdp);
}

INSTANTIATE_TEST_SUITE_P(AllMfrs, CampaignTest,
                         ::testing::ValuesIn(rhmodel::allMfrs));

TEST(CampaignTest, RejectsTinySamples)
{
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::A, 0);
    Tester tester(dimm);
    CampaignConfig config;
    config.maxRows = 3;
    EXPECT_DEATH(runCampaign(tester, config), "usable sample");
}

} // namespace

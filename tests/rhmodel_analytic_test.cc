/**
 * @file
 * Tests for the closed-form analytic engine: attack construction,
 * damage monotonicity properties, and BER/HCfirst semantics.
 */

#include <gtest/gtest.h>

#include "rhmodel/dimm.hh"

namespace
{

using namespace rhs::rhmodel;

TEST(HammerAttackTest, DoubleSidedHasBothNeighbours)
{
    const auto attack = HammerAttack::doubleSided(1, 100);
    EXPECT_EQ(attack.bank, 1u);
    EXPECT_EQ(attack.patternCenter, 100u);
    ASSERT_EQ(attack.aggressorRows.size(), 2u);
    EXPECT_EQ(attack.aggressorRows[0], 99u);
    EXPECT_EQ(attack.aggressorRows[1], 101u);
}

TEST(HammerAttackDeathTest, DoubleSidedAtEdgePanics)
{
    // Row 0 has no lower neighbour. The attack must not silently
    // degrade to single-sided — the cycle path (runCycleHammerTest)
    // asserts the same precondition.
    EXPECT_DEATH(HammerAttack::doubleSided(0, 0), "both neighbours");
}

TEST(HammerAttackTest, SingleSided)
{
    const auto attack = HammerAttack::singleSided(0, 42);
    ASSERT_EQ(attack.aggressorRows.size(), 1u);
    EXPECT_EQ(attack.aggressorRows[0], 42u);
}

class AnalyticTest : public ::testing::TestWithParam<Mfr>
{
  protected:
    AnalyticTest() : dimm(GetParam(), 0), pattern(PatternId::Checkered)
    {
    }

    SimulatedDimm dimm;
    DataPattern pattern;
};

TEST_P(AnalyticTest, DoubleSidedVictimGetsMostDamage)
{
    const auto &engine = dimm.analytic();
    const unsigned victim = 500;
    const auto attack = HammerAttack::doubleSided(0, victim);
    Conditions conditions;
    for (const auto &cell : dimm.cellModel().cellsOfRow(0, victim)) {
        const double centre = engine.hammerDamage(cell, victim, attack,
                                                  conditions, pattern);
        EXPECT_GT(centre, 0.0);
    }
    // A cell two rows away receives strictly less damage per hammer.
    for (const auto &cell :
         dimm.cellModel().cellsOfRow(0, victim + 2)) {
        const double side = engine.hammerDamage(
            cell, victim + 2, attack, conditions, pattern);
        EXPECT_LT(side, 2.0 * dimm.profile().distance1Damage *
                            dimm.cellModel().timingFactor(conditions));
    }
}

TEST_P(AnalyticTest, FarRowsReceiveNoDamage)
{
    const auto &engine = dimm.analytic();
    const auto attack = HammerAttack::doubleSided(0, 500);
    Conditions conditions;
    for (const auto &cell : dimm.cellModel().cellsOfRow(0, 510)) {
        EXPECT_DOUBLE_EQ(engine.hammerDamage(cell, 510, attack,
                                             conditions, pattern),
                         0.0);
        EXPECT_EQ(engine.cellHcFirst(cell, 510, attack, conditions,
                                     pattern, 0),
                  kNeverFlips);
    }
}

TEST_P(AnalyticTest, DamageIncreasesWithOnTime)
{
    const auto &engine = dimm.analytic();
    const unsigned victim = 600;
    const auto attack = HammerAttack::doubleSided(0, victim);
    for (const auto &cell : dimm.cellModel().cellsOfRow(0, victim)) {
        double prev = 0.0;
        for (double t_on : {34.5, 64.5, 94.5, 124.5, 154.5}) {
            Conditions c;
            c.tAggOn = t_on;
            const double damage = engine.hammerDamage(cell, victim,
                                                      attack, c,
                                                      pattern);
            EXPECT_GT(damage, prev);
            prev = damage;
        }
    }
}

TEST_P(AnalyticTest, DamageDecreasesWithOffTime)
{
    const auto &engine = dimm.analytic();
    const unsigned victim = 700;
    const auto attack = HammerAttack::doubleSided(0, victim);
    for (const auto &cell : dimm.cellModel().cellsOfRow(0, victim)) {
        double prev = 1e18;
        for (double t_off : {16.5, 24.5, 32.5, 40.5}) {
            Conditions c;
            c.tAggOff = t_off;
            const double damage = engine.hammerDamage(cell, victim,
                                                      attack, c,
                                                      pattern);
            EXPECT_LT(damage, prev);
            prev = damage;
        }
    }
}

TEST_P(AnalyticTest, CellHcFirstMatchesThresholdOverDamage)
{
    const auto &engine = dimm.analytic();
    const unsigned victim = 800;
    const auto attack = HammerAttack::doubleSided(0, victim);
    Conditions conditions;
    for (const auto &cell : dimm.cellModel().cellsOfRow(0, victim)) {
        const double hc = engine.cellHcFirst(cell, victim, attack,
                                             conditions, pattern, 0);
        if (hc == kNeverFlips)
            continue;
        const double damage = engine.hammerDamage(cell, victim, attack,
                                                  conditions, pattern);
        const double noise =
            dimm.cellModel().trialNoise(cell, 0, 50.0);
        EXPECT_NEAR(hc, cell.threshold * noise / damage,
                    hc * 1e-12);
    }
}

TEST_P(AnalyticTest, PatternPolarityGatesFlips)
{
    // Cells whose charged value does not match the stored pattern bit
    // must never flip.
    const auto &engine = dimm.analytic();
    const unsigned victim = 900;
    const auto attack = HammerAttack::doubleSided(0, victim);
    Conditions conditions;
    for (const auto &cell : dimm.cellModel().cellsOfRow(0, victim)) {
        const bool stored = pattern.bitAt(victim, victim,
                                          cell.loc.column, cell.loc.bit);
        const double hc = engine.cellHcFirst(cell, victim, attack,
                                             conditions, pattern, 0);
        if (stored != cell.chargedValue) {
            EXPECT_EQ(hc, kNeverFlips);
        }
    }
}

TEST_P(AnalyticTest, BerTestCountsCellsUnderHammerCount)
{
    const auto &engine = dimm.analytic();
    const unsigned victim = 1000;
    const auto attack = HammerAttack::doubleSided(0, victim);
    Conditions conditions;
    const auto result = engine.berTest(victim, attack, conditions,
                                       pattern, 150'000, 0);
    unsigned expected = 0;
    for (const auto &cell : dimm.cellModel().cellsOfRow(0, victim)) {
        const double hc = engine.cellHcFirst(cell, victim, attack,
                                             conditions, pattern, 0);
        if (hc <= 150'000.0)
            ++expected;
    }
    EXPECT_EQ(result.flips.size(), expected);
    EXPECT_EQ(result.vulnerableCells,
              dimm.cellModel().cellsOfRow(0, victim).size());
}

TEST_P(AnalyticTest, BerMonotoneInHammerCount)
{
    const auto &engine = dimm.analytic();
    const unsigned victim = 1100;
    const auto attack = HammerAttack::doubleSided(0, victim);
    Conditions conditions;
    std::size_t prev = 0;
    for (std::uint64_t hammers : {50'000ull, 150'000ull, 512'000ull}) {
        const auto result = engine.berTest(victim, attack, conditions,
                                           pattern, hammers, 0);
        EXPECT_GE(result.flips.size(), prev);
        prev = result.flips.size();
    }
}

TEST_P(AnalyticTest, RowHcFirstIsMinOverCells)
{
    const auto &engine = dimm.analytic();
    const unsigned victim = 1200;
    const auto attack = HammerAttack::doubleSided(0, victim);
    Conditions conditions;
    const double row_hc = engine.rowHcFirst(victim, attack, conditions,
                                            pattern, 0);
    double expected = kNeverFlips;
    for (const auto &cell : dimm.cellModel().cellsOfRow(0, victim)) {
        expected = std::min(
            expected, engine.cellHcFirst(cell, victim, attack,
                                         conditions, pattern, 0));
    }
    EXPECT_DOUBLE_EQ(row_hc, expected);
}

TEST_P(AnalyticTest, HigherTemperatureChangesOutcomes)
{
    // At least some rows must have temperature-dependent flips.
    const auto &engine = dimm.analytic();
    Conditions cold, hot;
    hot.temperature = 90.0;
    unsigned differing = 0;
    for (unsigned victim = 100; victim < 160; ++victim) {
        const auto attack = HammerAttack::doubleSided(0, victim);
        const auto a = engine.berTest(victim, attack, cold, pattern,
                                      150'000, 0);
        const auto b = engine.berTest(victim, attack, hot, pattern,
                                      150'000, 0);
        if (a.flips.size() != b.flips.size())
            ++differing;
    }
    EXPECT_GT(differing, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMfrs, AnalyticTest,
                         ::testing::ValuesIn(allMfrs));

TEST(PatternTest, Table1Bytes)
{
    const unsigned victim = 1000; // Even victim row.
    DataPattern colstripe(PatternId::ColStripe);
    DataPattern checkered(PatternId::Checkered);
    DataPattern rowstripe(PatternId::RowStripe);

    // V and V±even share the victim's parity.
    EXPECT_EQ(colstripe.byteAt(victim, victim, 0), 0x55);
    EXPECT_EQ(colstripe.byteAt(victim + 1, victim, 0), 0x55);
    EXPECT_EQ(checkered.byteAt(victim, victim, 0), 0x55);
    EXPECT_EQ(checkered.byteAt(victim + 1, victim, 0), 0xaa);
    EXPECT_EQ(checkered.byteAt(victim + 2, victim, 0), 0x55);
    EXPECT_EQ(rowstripe.byteAt(victim, victim, 0), 0x00);
    EXPECT_EQ(rowstripe.byteAt(victim - 1, victim, 0), 0xff);
}

TEST(PatternTest, ComplementsInvert)
{
    const unsigned victim = 501; // Odd victim row.
    DataPattern checkered(PatternId::Checkered);
    DataPattern inv(PatternId::CheckeredInv);
    for (unsigned row = victim - 2; row <= victim + 2; ++row) {
        EXPECT_EQ(checkered.byteAt(row, victim, 0) ^ 0xff,
                  inv.byteAt(row, victim, 0));
    }
}

TEST(PatternTest, RandomIsSeededAndStable)
{
    DataPattern a(PatternId::Random, 42);
    DataPattern b(PatternId::Random, 42);
    DataPattern c(PatternId::Random, 43);
    EXPECT_EQ(a.byteAt(10, 10, 5), b.byteAt(10, 10, 5));
    bool any_diff = false;
    for (unsigned col = 0; col < 64 && !any_diff; ++col)
        any_diff = a.byteAt(10, 10, col) != c.byteAt(10, 10, col);
    EXPECT_TRUE(any_diff);
}

TEST(PatternTest, BitAtExtractsBits)
{
    DataPattern colstripe(PatternId::ColStripe); // 0x55.
    EXPECT_TRUE(colstripe.bitAt(0, 0, 0, 0));
    EXPECT_FALSE(colstripe.bitAt(0, 0, 0, 1));
    EXPECT_TRUE(colstripe.bitAt(0, 0, 0, 2));
}

TEST(PatternTest, AllPatternsHaveNames)
{
    for (auto id : allPatterns)
        EXPECT_FALSE(to_string(id).empty());
}

} // namespace

/**
 * @file
 * Tests for the procedural cell model: determinism, parameter ranges,
 * spatial factors, and the damage-model components.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rhmodel/dimm.hh"

namespace
{

using namespace rhs;
using namespace rhs::rhmodel;

class CellModelTest : public ::testing::TestWithParam<Mfr>
{
  protected:
    CellModelTest() : dimm(GetParam(), 0) {}

    SimulatedDimm dimm;
};

TEST_P(CellModelTest, GenerationIsDeterministic)
{
    const auto &a = dimm.cellModel().cellsOfRow(0, 100);
    SimulatedDimm other(GetParam(), 0);
    const auto &b = other.cellModel().cellsOfRow(0, 100);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].loc, b[i].loc);
        EXPECT_DOUBLE_EQ(a[i].threshold, b[i].threshold);
        EXPECT_DOUBLE_EQ(a[i].tinf, b[i].tinf);
    }
}

TEST_P(CellModelTest, DifferentModulesDiffer)
{
    SimulatedDimm other(GetParam(), 1);
    const auto &a = dimm.cellModel().cellsOfRow(0, 100);
    const auto &b = other.cellModel().cellsOfRow(0, 100);
    // Same profile, different serial: cell populations must differ.
    bool different = a.size() != b.size();
    for (std::size_t i = 0; !different && i < a.size(); ++i)
        different = a[i].seed != b[i].seed;
    EXPECT_TRUE(different);
}

TEST_P(CellModelTest, CacheReturnsConsistentResults)
{
    const auto &model = dimm.cellModel();
    // Touch more rows than the cache holds, then re-query the first.
    const auto first = model.cellsOfRow(0, 10);
    for (unsigned row = 11; row < 40; ++row)
        model.cellsOfRow(0, row);
    const auto &again = model.cellsOfRow(0, 10);
    ASSERT_EQ(first.size(), again.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].seed, again[i].seed);
}

TEST_P(CellModelTest, CellFieldsInRange)
{
    const auto &geometry = dimm.module().geometry();
    for (unsigned row : {5u, 777u, 4000u}) {
        for (const auto &cell : dimm.cellModel().cellsOfRow(0, row)) {
            EXPECT_LT(cell.loc.chip, dimm.module().chipCount());
            EXPECT_EQ(cell.loc.bank, 0u);
            EXPECT_EQ(cell.loc.row, row);
            EXPECT_LT(cell.loc.column, geometry.columnsPerRow);
            EXPECT_LT(cell.loc.bit, geometry.bitsPerColumn);
            EXPECT_GT(cell.threshold, 0.0);
            EXPECT_GT(cell.width, 0.0);
        }
    }
}

TEST_P(CellModelTest, CellCountNearPoissonMean)
{
    double total = 0.0;
    const unsigned rows = 120;
    for (unsigned row = 0; row < rows; ++row)
        total += dimm.cellModel().cellsOfRow(0, row).size();
    const double mean = total / rows;
    const double expected = dimm.profile().cellsPerRowMean;
    EXPECT_NEAR(mean, expected, expected * 0.1);
}

TEST_P(CellModelTest, TimingFactorIsOneAtBaseline)
{
    Conditions baseline;
    EXPECT_NEAR(dimm.cellModel().timingFactor(baseline), 1.0, 1e-9);
}

TEST_P(CellModelTest, TimingFactorMonotoneInOnTime)
{
    double prev = 0.0;
    for (double t_on : {34.5, 64.5, 94.5, 124.5, 154.5}) {
        Conditions c;
        c.tAggOn = t_on;
        const double f = dimm.cellModel().timingFactor(c);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST_P(CellModelTest, TimingFactorMonotoneDecreasingInOffTime)
{
    double prev = 1e9;
    for (double t_off : {16.5, 24.5, 32.5, 40.5}) {
        Conditions c;
        c.tAggOff = t_off;
        const double f = dimm.cellModel().timingFactor(c);
        EXPECT_LT(f, prev);
        prev = f;
    }
}

TEST_P(CellModelTest, TimingFactorRejectsSubSpecTimings)
{
    Conditions c;
    c.tAggOn = 10.0; // Below tRAS.
    EXPECT_DEATH(dimm.cellModel().timingFactor(c), "tAggOn");
}

TEST_P(CellModelTest, TemperatureFactorNormalizedAtReference)
{
    for (const auto &cell : dimm.cellModel().cellsOfRow(0, 50)) {
        EXPECT_NEAR(dimm.cellModel().temperatureFactor(cell, 50.0), 1.0,
                    1e-12);
    }
}

TEST_P(CellModelTest, TemperatureFactorPeaksAtInflection)
{
    for (const auto &cell : dimm.cellModel().cellsOfRow(0, 51)) {
        const auto &model = dimm.cellModel();
        const double at_peak =
            model.temperatureFactor(cell, cell.tinf);
        EXPECT_GE(at_peak,
                  model.temperatureFactor(cell, cell.tinf - 10.0));
        EXPECT_GE(at_peak,
                  model.temperatureFactor(cell, cell.tinf + 10.0));
    }
}

TEST_P(CellModelTest, TemperatureFactorUnimodalOverWindow)
{
    // Along 50..90, the factor must rise then fall (no double peaks):
    // count the sign changes of the discrete derivative.
    for (const auto &cell : dimm.cellModel().cellsOfRow(0, 52)) {
        int sign_changes = 0;
        double prev_delta = 0.0;
        double prev =
            dimm.cellModel().temperatureFactor(cell, 50.0);
        for (double t = 55.0; t <= 90.0; t += 5.0) {
            const double now =
                dimm.cellModel().temperatureFactor(cell, t);
            const double delta = now - prev;
            if (prev_delta != 0.0 && delta != 0.0 &&
                (delta > 0) != (prev_delta > 0)) {
                ++sign_changes;
            }
            if (delta != 0.0)
                prev_delta = delta;
            prev = now;
        }
        EXPECT_LE(sign_changes, 1);
    }
}

TEST_P(CellModelTest, DistanceFactors)
{
    const auto &model = dimm.cellModel();
    EXPECT_DOUBLE_EQ(model.distanceFactor(1),
                     dimm.profile().distance1Damage);
    EXPECT_DOUBLE_EQ(model.distanceFactor(2),
                     dimm.profile().distance2Damage);
    EXPECT_DOUBLE_EQ(model.distanceFactor(3), 0.0);
    EXPECT_GT(model.distanceFactor(1), model.distanceFactor(2));
}

TEST_P(CellModelTest, DataFactorBoundedAndDeterministic)
{
    const auto &model = dimm.cellModel();
    const auto &cells = model.cellsOfRow(0, 60);
    ASSERT_FALSE(cells.empty());
    for (int byte = 0; byte < 256; byte += 17) {
        const double f = model.dataFactor(
            cells[0], static_cast<std::uint8_t>(byte));
        EXPECT_GE(f, dimm.profile().dataFactorBase);
        EXPECT_LE(f, 1.0);
        EXPECT_DOUBLE_EQ(f, model.dataFactor(
                                cells[0],
                                static_cast<std::uint8_t>(byte)));
    }
}

TEST_P(CellModelTest, TrialNoiseReRollsPerTrialAndTemperature)
{
    const auto &model = dimm.cellModel();
    const auto &cells = model.cellsOfRow(0, 61);
    ASSERT_FALSE(cells.empty());
    const auto &cell = cells[0];
    EXPECT_DOUBLE_EQ(model.trialNoise(cell, 0, 50.0),
                     model.trialNoise(cell, 0, 50.0));
    EXPECT_NE(model.trialNoise(cell, 0, 50.0),
              model.trialNoise(cell, 1, 50.0));
    EXPECT_NE(model.trialNoise(cell, 0, 50.0),
              model.trialNoise(cell, 0, 55.0));
}

TEST_P(CellModelTest, TrialNoiseIsSmall)
{
    const auto &model = dimm.cellModel();
    for (const auto &cell : model.cellsOfRow(0, 62)) {
        for (unsigned trial = 0; trial < 5; ++trial) {
            const double noise = model.trialNoise(cell, trial, 70.0);
            EXPECT_GT(noise, 0.9);
            EXPECT_LT(noise, 1.1);
        }
    }
}

TEST_P(CellModelTest, WeakRowFractionApproximatelyCalibrated)
{
    const auto &model = dimm.cellModel();
    unsigned weak = 0;
    const unsigned rows = 4000;
    for (unsigned row = 0; row < rows; ++row) {
        // Weak rows have a distinctly lower row factor.
        if (model.rowFactor(0, row) <
            dimm.profile().weakRowFactor * 1.3) {
            ++weak;
        }
    }
    const double fraction = static_cast<double>(weak) / rows;
    EXPECT_GT(fraction, 0.02);
    EXPECT_LT(fraction, 0.12);
}

TEST_P(CellModelTest, ColumnWeightsFormDistribution)
{
    const auto &model = dimm.cellModel();
    for (unsigned chip = 0; chip < dimm.module().chipCount(); ++chip) {
        double total = 0.0;
        for (unsigned col = 0;
             col < dimm.module().geometry().columnsPerRow; ++col) {
            const double w = model.columnWeight(chip, col);
            EXPECT_GE(w, 0.0);
            total += w;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST_P(CellModelTest, SubarrayFactorsVary)
{
    const auto &model = dimm.cellModel();
    const auto &geometry = dimm.module().geometry();
    double lo = 1e9, hi = 0.0;
    for (unsigned s = 0; s < geometry.subarraysPerBank; ++s) {
        const double f = model.subarrayFactor(0, s);
        lo = std::min(lo, f);
        hi = std::max(hi, f);
        EXPECT_GT(f, 0.0);
    }
    EXPECT_GT(hi / lo, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllMfrs, CellModelTest,
                         ::testing::ValuesIn(allMfrs));

TEST(DimmTest, InventoryMatchesTable4)
{
    const auto &inventory = paperInventory();
    unsigned ddr4_chips = 0, ddr3_chips = 0;
    for (const auto &entry : inventory) {
        if (entry.standard == dram::Standard::DDR4)
            ddr4_chips += entry.modules * entry.chipsPerModule;
        else
            ddr3_chips += entry.modules * entry.chipsPerModule;
    }
    EXPECT_EQ(ddr4_chips, 248u); // 248 DDR4 chips (abstract).
    EXPECT_EQ(ddr3_chips, 24u);  // 24 DDR3 chips.
}

TEST(DimmTest, FleetLabelsAndProfiles)
{
    const auto fleet = rhs::rhmodel::makeFleet(2);
    ASSERT_EQ(fleet.size(), 8u);
    EXPECT_EQ(fleet[0]->label(), "A0");
    EXPECT_EQ(fleet[1]->label(), "A1");
    EXPECT_EQ(fleet[7]->label(), "D1");
    EXPECT_EQ(fleet[2]->mfr(), Mfr::B);
}

TEST(DimmTest, MfrAChipCountIsX4)
{
    EXPECT_EQ(defaultChipCount(Mfr::A, dram::Standard::DDR4), 16u);
    EXPECT_EQ(defaultChipCount(Mfr::B, dram::Standard::DDR4), 8u);
    EXPECT_EQ(defaultChipCount(Mfr::A, dram::Standard::DDR3), 8u);
}

TEST(DimmTest, MappingSchemeFollowsProfile)
{
    SimulatedDimm dimm(Mfr::C, 0);
    EXPECT_EQ(dimm.module().rowMapping().name(), "msb-pair");
}

} // namespace

/**
 * @file
 * Regenerates Fig. 15: the cumulative distribution of the normalized
 * Bhattacharyya distance between the HCfirst distributions of subarray
 * pairs from (1) the same module and (2) different modules.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "core/spatial.hh"
#include "stats/bhattacharyya.hh"
#include "stats/descriptive.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    util::Cli cli(argc, argv, {"modules", "rows", "full", "subarrays"});
    const unsigned modules_per_mfr =
        static_cast<unsigned>(cli.getInt("modules", 3));
    const unsigned subarrays =
        static_cast<unsigned>(cli.getInt("subarrays", 6));

    printHeader("Fig. 15: normalized Bhattacharyya distance between "
                "subarray HCfirst distributions",
                "Fig. 15 (paper: same-module pairs cluster near 1.0 "
                "(P5 ~0.975 for Mfr. C); cross-module pairs spread "
                "much wider (P5 ~0.66); Obsv. 16)");

    std::printf("%-8s %-22s %-22s\n", "Mfr.",
                "same-module  P5/P50/P95", "diff-module  P5/P50/P95");
    printRule();

    for (auto mfr : rhmodel::allMfrs) {
        // Collect per-subarray HCfirst samples of every module.
        std::vector<std::vector<std::vector<double>>> modules;
        for (unsigned index = 0; index < modules_per_mfr; ++index) {
            rhmodel::SimulatedDimm dimm(mfr, index);
            core::Tester tester(dimm);
            rhmodel::Conditions reference;
            const auto wcdp = tester.findWorstCasePattern(
                0, {100, 2000, 6000}, reference);
            const auto survey =
                core::subarraySurvey(tester, 0, subarrays, 32, wcdp);
            std::vector<std::vector<double>> dists;
            for (const auto &entry : survey)
                dists.push_back(entry.hcFirstValues);
            modules.push_back(std::move(dists));
        }

        std::vector<double> same, different;
        for (std::size_t m = 0; m < modules.size(); ++m) {
            for (std::size_t a = 0; a < modules[m].size(); ++a) {
                for (std::size_t b = 0; b < modules[m].size(); ++b) {
                    if (a != b)
                        same.push_back(stats::bhattacharyyaNormalized(
                            modules[m][a], modules[m][b], 12));
                }
                for (std::size_t n = 0; n < modules.size(); ++n) {
                    if (n == m)
                        continue;
                    for (const auto &other : modules[n])
                        different.push_back(
                            stats::bhattacharyyaNormalized(
                                modules[m][a], other, 12));
                }
            }
        }

        auto fmt = [](const std::vector<double> &xs) {
            char buffer[64];
            if (xs.empty())
                return std::string("-");
            std::snprintf(buffer, sizeof(buffer), "%.3f/%.3f/%.3f",
                          stats::quantile(xs, 0.05),
                          stats::quantile(xs, 0.50),
                          stats::quantile(xs, 0.95));
            return std::string(buffer);
        };
        std::printf("%-8s %-22s %-22s\n",
                    rhmodel::to_string(mfr).c_str(), fmt(same).c_str(),
                    fmt(different).c_str());
    }

    std::printf("\nObsv. 16 check: a subarray's HCfirst distribution "
                "is representative of other subarrays of the SAME "
                "module, not of other modules.\n");
    return 0;
}

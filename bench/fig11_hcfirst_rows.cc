/**
 * @file
 * Regenerates Fig. 11: the distribution of HCfirst across vulnerable
 * DRAM rows, per module, with the Obsv. 12 percentile ratios.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/spatial.hh"
#include "stats/descriptive.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv);
    printHeader("Fig. 11: distribution of HCfirst across vulnerable "
                "DRAM rows",
                "Fig. 11 (paper: P1/P5/P10 at >= 1.6x/2.0x/2.2x the "
                "most vulnerable row; min ~33K for a Mfr. B module; "
                "Obsv. 12)");

    auto fleet = makeBenchFleet(scale);
    std::printf("%-8s %-7s %-9s", "Module", "#vuln", "min");
    for (const char *p : {"P1", "P5", "P10", "P25", "P50", "P75", "P90",
                          "P95", "P99"})
        std::printf(" %8s", p);
    std::printf("\n");
    printRule();

    for (auto &entry : fleet) {
        const auto hcs = core::rowHcFirstSurvey(*entry.tester, 0,
                                                entry.rows, entry.wcdp);
        if (hcs.empty())
            continue;
        std::printf("%-8s %-7zu %8.1fK", entry.dimm->label().c_str(),
                    hcs.size(), stats::minValue(hcs) / 1e3);
        for (double q : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90,
                         0.95, 0.99})
            std::printf(" %7.1fK", stats::quantile(hcs, q) / 1e3);
        std::printf("\n");

        const auto summary = core::summarizeRowVariation(hcs);
        std::printf("%-8s ratios vs most vulnerable row: P1=%.2fx  "
                    "P5=%.2fx  P10=%.2fx\n",
                    "", summary.p1Ratio, summary.p5Ratio,
                    summary.p10Ratio);
    }

    std::printf("\nObsv. 12 check: a small fraction of rows is about "
                "2x more vulnerable than the other 95%%.\n");
    return 0;
}

/**
 * @file
 * Parallel characterization engine scaling measurement.
 *
 * Runs the three headline workloads — the full campaign, the
 * temperature sweep (§5 / Table 3) and the Fig. 11 per-row HCfirst
 * scan — at 1, 2, 4 and 8 worker threads, verifies the results are
 * byte-identical at every width, and writes the wall-clock numbers
 * plus speedups to BENCH_parallel.json.
 *
 * Options:
 *   --rows N    sample size per workload (default 30)
 *   --out FILE  JSON output path (default BENCH_parallel.json)
 *
 * Determinism is checked, not assumed: each workload's result is
 * serialized and the serialization at every thread count must equal
 * the jobs=1 baseline exactly, or the bench aborts.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/campaign.hh"
#include "core/profile_io.hh"
#include "core/spatial.hh"
#include "core/temp_analysis.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace rhs;

constexpr unsigned kJobCounts[] = {1, 2, 4, 8};

/** FNV-1a, reported in the JSON so runs can be compared offline. */
std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

struct Measurement
{
    std::string name;
    std::vector<double> seconds;  //!< Indexed like kJobCounts.
    std::uint64_t digest = 0;     //!< FNV-1a of the serialized result.
    bool deterministic = true;    //!< All widths byte-identical.
};

/**
 * Time `work` (which returns the result serialized to a string) at
 * every thread width and verify the bytes never change.
 */
template <typename Work>
Measurement
measure(const std::string &name, Work &&work)
{
    Measurement m;
    m.name = name;
    std::string baseline;
    for (unsigned jobs : kJobCounts) {
        util::ThreadPool::configure(jobs);
        const auto start = std::chrono::steady_clock::now();
        const std::string serialized = work();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        m.seconds.push_back(elapsed.count());
        if (jobs == 1) {
            baseline = serialized;
            m.digest = fnv1a(serialized);
        } else if (serialized != baseline) {
            m.deterministic = false;
        }
        std::printf("  %-18s jobs=%u  %8.3f s  digest %016llx%s\n",
                    name.c_str(), jobs, elapsed.count(),
                    static_cast<unsigned long long>(fnv1a(serialized)),
                    serialized == baseline ? "" : "  MISMATCH");
    }
    util::ThreadPool::configure(0);
    RHS_ASSERT(m.deterministic,
               "parallel results diverged from the serial baseline");
    return m;
}

std::string
serializeTempRanges(const core::TempRangeAnalysis &analysis)
{
    std::ostringstream out;
    out << analysis.vulnerableCells << ' ' << analysis.noGapCells << ' '
        << analysis.oneGapCells << '\n';
    for (const auto &row : analysis.rangeCount) {
        for (auto count : row)
            out << count << ' ';
        out << '\n';
    }
    return out.str();
}

void
writeJson(const std::string &path, unsigned hardware_threads,
          const std::vector<Measurement> &measurements)
{
    std::ofstream out(path);
    RHS_ASSERT(out.good(), "cannot open JSON output file");
    out << "{\n";
    out << "  \"bench\": \"parallel_scaling\",\n";
    out << "  \"hardware_threads\": " << hardware_threads << ",\n";
    out << "  \"job_counts\": [1, 2, 4, 8],\n";
    // On machines with fewer hardware threads than the widest job
    // count, the wide-job numbers measure oversubscription, not
    // scaling: flag them unreliable rather than letting them read as
    // regressions. Determinism checks are unaffected.
    const unsigned max_jobs =
        *std::max_element(std::begin(kJobCounts), std::end(kJobCounts));
    out << "  \"speedups_reliable\": "
        << (hardware_threads >= max_jobs ? "true" : "false") << ",\n";
    out << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        const auto &m = measurements[i];
        out << "    {\n";
        out << "      \"name\": \"" << m.name << "\",\n";
        out << "      \"seconds\": [";
        for (std::size_t j = 0; j < m.seconds.size(); ++j)
            out << (j ? ", " : "") << m.seconds[j];
        out << "],\n";
        out << "      \"speedup\": [";
        for (std::size_t j = 0; j < m.seconds.size(); ++j)
            out << (j ? ", " : "")
                << (m.seconds[j] > 0.0 ? m.seconds[0] / m.seconds[j]
                                       : 0.0);
        out << "],\n";
        char digest[32];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(m.digest));
        out << "      \"digest\": \"" << digest << "\",\n";
        out << "      \"deterministic\": "
            << (m.deterministic ? "true" : "false") << "\n";
        out << "    }" << (i + 1 < measurements.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rhs;

    const util::Cli cli(argc, argv, {"rows", "out"});
    const auto max_rows =
        static_cast<unsigned>(cli.getInt("rows", 30));
    const std::string out_path =
        cli.get("out", "BENCH_parallel.json");

    bench::printHeader(
        "Parallel engine scaling: campaign / temperature / row scan",
        "tentpole measurement; results byte-identical at every width");
    const unsigned hw = util::ThreadPool::hardwareJobs();
    std::printf("hardware threads: %u\n", hw);
    const unsigned max_jobs =
        *std::max_element(std::begin(kJobCounts), std::end(kJobCounts));
    if (hw < max_jobs) {
        std::printf("warning: only %u hardware threads for jobs<=%u — "
                    "wide-job speedups measure oversubscription and are "
                    "flagged unreliable in the JSON\n", hw, max_jobs);
    }
    std::printf("\n");

    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0);
    core::Tester tester(dimm);

    const auto all = core::testedRows(dimm.module().geometry(),
                                      max_rows / 3 + 1);
    std::vector<unsigned> rows;
    for (std::size_t i = 0; i < max_rows && i < all.size(); ++i)
        rows.push_back(all[i * all.size() / max_rows]);
    rhmodel::Conditions reference;
    const auto wcdp = tester.findWorstCasePattern(
        0, {rows.front(), rows[rows.size() / 2], rows.back()},
        reference);

    std::vector<Measurement> measurements;

    core::CampaignConfig config;
    config.maxRows = max_rows;
    config.rowsPerRegion = max_rows / 3 + 1;
    measurements.push_back(measure("campaign", [&] {
        const auto report = core::runCampaign(tester, config);
        std::ostringstream out;
        out << report.summary();
        core::saveProfile(out, report.profile);
        return out.str();
    }));

    measurements.push_back(measure("temperature_sweep", [&] {
        return serializeTempRanges(
            core::analyzeTempRanges(tester, 0, rows, wcdp));
    }));

    measurements.push_back(measure("fig11_row_scan", [&] {
        const auto hcs = core::rowHcFirstSurvey(tester, 0, rows, wcdp);
        std::ostringstream out;
        for (double hc : hcs)
            out << hc << '\n';
        return out.str();
    }));

    writeJson(out_path, util::ThreadPool::hardwareJobs(),
              measurements);
    std::printf("\nwrote %s; all workloads byte-identical across "
                "1/2/4/8 worker threads\n", out_path.c_str());
    return 0;
}

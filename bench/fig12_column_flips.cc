/**
 * @file
 * Regenerates Fig. 12: the distribution of RowHammer bit flips across
 * column addresses of each chip (summary statistics of the heat maps).
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"
#include "core/spatial.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv, 24'000, 2, 8'000);
    printHeader("Fig. 12: bit flip distribution across columns per chip",
                "Fig. 12 (paper: zero-flip columns 27.8/0/31.1/9.96 % "
                "and >100-flip columns 0.59/-/0.01/0.61 % for A/C/D; "
                "Obsv. 13)");

    auto fleet = makeBenchFleet(scale);
    for (auto &entry : fleet) {
        const auto counts = core::columnFlipSurvey(
            *entry.tester, 0, entry.rows, entry.wcdp);

        std::uint64_t max_count = 0, total = 0;
        for (const auto &chip : counts.counts)
            for (auto c : chip) {
                max_count = std::max(max_count, c);
                total += c;
            }

        std::printf("\n%s  (rows tested: %zu, total flips: %llu)\n",
                    entry.dimm->label().c_str(), entry.rows.size(),
                    static_cast<unsigned long long>(total));
        std::printf("  zero-flip column slots: %5.2f%%   max per "
                    "column: %llu\n",
                    100.0 * counts.zeroFraction(),
                    static_cast<unsigned long long>(max_count));
        // The paper's ">100 flips" threshold is tied to 24K tested
        // rows; scale it with the sample size.
        const auto threshold = static_cast<std::uint64_t>(
            100.0 * static_cast<double>(entry.rows.size()) / 24'000.0);
        std::printf("  columns above the scaled '>100 @24K rows' "
                    "threshold (%llu): %5.2f%%\n",
                    static_cast<unsigned long long>(threshold),
                    100.0 * counts.overFraction(threshold));

        std::printf("  per-chip minimum flips/column:");
        for (unsigned chip = 0; chip < counts.counts.size(); ++chip)
            std::printf(" %llu", static_cast<unsigned long long>(
                                     counts.chipMinimum(chip)));
        std::printf("\n");
    }

    std::printf("\nObsv. 13 check: certain columns are significantly "
                "more vulnerable than others; Mfr. B has no dead "
                "columns (every column flips).\n");
    return 0;
}

/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: cell
 * generation, analytic BER evaluation, HCfirst binary search,
 * cycle-accurate hammer execution throughput, and the parallel
 * characterization engine's scaling. These establish the cost model
 * behind the bench harnesses' default scales.
 *
 * Usage: perf_microbench [google-benchmark flags] [--jobs N]
 * --jobs pre-configures the global pool for the non-sweeping
 * benchmarks; the *_Jobs benchmarks set their own width per Arg.
 */

#include <benchmark/benchmark.h>

#include "core/campaign.hh"
#include "core/hammer_session.hh"
#include "core/spatial.hh"
#include "core/temp_analysis.hh"
#include "core/tester.hh"
#include "rhmodel/dimm.hh"
#include "util/cli.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace rhs;
using namespace rhs::rhmodel;

void
BM_CellGeneration(benchmark::State &state)
{
    SimulatedDimm dimm(Mfr::A, 0);
    unsigned row = 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dimm.cellModel().cellsOfRow(0, row));
        // Stride 97 is coprime to 8000, so the walk visits all 8000
        // rows before repeating; CellModel::kCacheCapacity (256) is
        // far smaller, so every access is a compulsory miss = pure
        // generation cost. (This invariant holds only while the
        // cache stays smaller than the 8000-row working set.)
        static_assert(CellModel::kCacheCapacity < 8000,
                      "row rotation no longer defeats the memo");
        row = (row + 97) % 8000;
    }
}
BENCHMARK(BM_CellGeneration);

void
BM_CellGenerationCached(benchmark::State &state)
{
    SimulatedDimm dimm(Mfr::A, 0);
    // Working set of 64 rows fits the 256-entry LRU: after the first
    // lap every access hits, measuring pure cache-lookup cost. Under
    // the old FIFO memo (capacity 16, no promote-on-hit) this same
    // loop missed on every access.
    constexpr unsigned working_set = 64;
    static_assert(working_set < CellModel::kCacheCapacity);
    unsigned i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dimm.cellModel().cellsOfRow(0, 2 + (i % working_set)));
        ++i;
    }
}
BENCHMARK(BM_CellGenerationCached);

void
BM_CellGenerationConcurrent(benchmark::State &state)
{
    // Shared across benchmark threads: every thread reads the same
    // CellModel through the sharded row cache.
    static SimulatedDimm *dimm = new SimulatedDimm(Mfr::A, 0);
    unsigned row = 2 + 97 * static_cast<unsigned>(state.thread_index());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dimm->cellModel().cellsOfRow(0, row % 8000));
        row += 97;
    }
}
BENCHMARK(BM_CellGenerationConcurrent)->ThreadRange(1, 8)
    ->UseRealTime();

void
BM_AnalyticBerTest(benchmark::State &state)
{
    SimulatedDimm dimm(Mfr::B, 0);
    const DataPattern pattern(PatternId::Checkered);
    Conditions conditions;
    const auto attack = HammerAttack::doubleSided(0, 500);
    for (auto _ : state) {
        benchmark::DoNotOptimize(dimm.analytic().berTest(
            500, attack, conditions, pattern, 150'000, 0));
    }
}
BENCHMARK(BM_AnalyticBerTest);

void
BM_HcFirstBinarySearch(benchmark::State &state)
{
    SimulatedDimm dimm(Mfr::B, 0);
    core::Tester tester(dimm);
    const DataPattern pattern(PatternId::Checkered);
    Conditions conditions;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tester.hcFirstSearch(0, 500, conditions, pattern, 0));
    }
}
BENCHMARK(BM_HcFirstBinarySearch);

void
BM_CycleHammerExecution(benchmark::State &state)
{
    DimmOptions options;
    options.subarraysPerBank = 2;
    SimulatedDimm dimm(Mfr::B, 0, options);
    const DataPattern pattern(PatternId::Checkered);
    core::CycleTestConfig config;
    config.victimPhysicalRow = 100;
    config.hammers = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::runCycleHammerTest(dimm, pattern, config));
    }
    state.SetItemsProcessed(state.iterations() * 2 *
                            static_cast<std::int64_t>(config.hammers));
}
BENCHMARK(BM_CycleHammerExecution)->Arg(1'000)->Arg(10'000);

void
BM_TemperatureSweepPoint(benchmark::State &state)
{
    SimulatedDimm dimm(Mfr::D, 0);
    core::Tester tester(dimm);
    const DataPattern pattern(PatternId::Checkered);
    double temp = 50.0;
    for (auto _ : state) {
        Conditions conditions;
        conditions.temperature = temp;
        benchmark::DoNotOptimize(
            tester.berOfRow(0, 600, conditions, pattern));
        temp = temp >= 90.0 ? 50.0 : temp + 5.0;
    }
}
BENCHMARK(BM_TemperatureSweepPoint);

// --- Parallel-engine scaling: Arg = thread-pool jobs. ---------------

std::vector<unsigned>
benchRows(const SimulatedDimm &dimm, unsigned count)
{
    const auto all =
        core::testedRows(dimm.module().geometry(), count / 3 + 1);
    std::vector<unsigned> rows;
    for (std::size_t i = 0; i < count && i < all.size(); ++i)
        rows.push_back(all[i * all.size() / count]);
    return rows;
}

void
BM_TemperatureSweep_Jobs(benchmark::State &state)
{
    util::ThreadPool::configure(
        static_cast<unsigned>(state.range(0)));
    SimulatedDimm dimm(Mfr::D, 0);
    core::Tester tester(dimm);
    const DataPattern pattern(PatternId::Checkered);
    const auto rows = benchRows(dimm, 24);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::analyzeTempRanges(tester, 0, rows, pattern));
    }
    util::ThreadPool::configure(0);
}
BENCHMARK(BM_TemperatureSweep_Jobs)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_RowScan_Jobs(benchmark::State &state)
{
    util::ThreadPool::configure(
        static_cast<unsigned>(state.range(0)));
    SimulatedDimm dimm(Mfr::B, 0);
    core::Tester tester(dimm);
    const DataPattern pattern(PatternId::Checkered);
    const auto rows = benchRows(dimm, 48);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::rowHcFirstSurvey(tester, 0, rows, pattern));
    }
    util::ThreadPool::configure(0);
}
BENCHMARK(BM_RowScan_Jobs)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_Campaign_Jobs(benchmark::State &state)
{
    util::ThreadPool::configure(
        static_cast<unsigned>(state.range(0)));
    SimulatedDimm dimm(Mfr::B, 0);
    core::Tester tester(dimm);
    core::CampaignConfig config;
    config.maxRows = 15;
    config.rowsPerRegion = 5;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::runCampaign(tester, config));
    }
    util::ThreadPool::configure(0);
}
BENCHMARK(BM_Campaign_Jobs)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    // Remaining (non-benchmark) flags: --jobs N pre-configures the
    // global pool for benchmarks that do not sweep it themselves.
    rhs::util::Cli cli(argc, argv, {"jobs"});
    rhs::util::ThreadPool::configure(
        static_cast<unsigned>(cli.getInt("jobs", 0)));
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

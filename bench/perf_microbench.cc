/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: cell
 * generation, analytic BER evaluation, HCfirst binary search, and
 * cycle-accurate hammer execution throughput. These establish the
 * cost model behind the bench harnesses' default scales.
 */

#include <benchmark/benchmark.h>

#include "core/hammer_session.hh"
#include "core/tester.hh"
#include "rhmodel/dimm.hh"

namespace
{

using namespace rhs;
using namespace rhs::rhmodel;

void
BM_CellGeneration(benchmark::State &state)
{
    SimulatedDimm dimm(Mfr::A, 0);
    unsigned row = 2;
    for (auto _ : state) {
        // Rotate rows so the memo cache never hits.
        benchmark::DoNotOptimize(
            dimm.cellModel().cellsOfRow(0, row));
        row = (row + 97) % 8000;
    }
}
BENCHMARK(BM_CellGeneration);

void
BM_AnalyticBerTest(benchmark::State &state)
{
    SimulatedDimm dimm(Mfr::B, 0);
    const DataPattern pattern(PatternId::Checkered);
    Conditions conditions;
    const auto attack = HammerAttack::doubleSided(0, 500);
    for (auto _ : state) {
        benchmark::DoNotOptimize(dimm.analytic().berTest(
            500, attack, conditions, pattern, 150'000, 0));
    }
}
BENCHMARK(BM_AnalyticBerTest);

void
BM_HcFirstBinarySearch(benchmark::State &state)
{
    SimulatedDimm dimm(Mfr::B, 0);
    core::Tester tester(dimm);
    const DataPattern pattern(PatternId::Checkered);
    Conditions conditions;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tester.hcFirstSearch(0, 500, conditions, pattern, 0));
    }
}
BENCHMARK(BM_HcFirstBinarySearch);

void
BM_CycleHammerExecution(benchmark::State &state)
{
    DimmOptions options;
    options.subarraysPerBank = 2;
    SimulatedDimm dimm(Mfr::B, 0, options);
    const DataPattern pattern(PatternId::Checkered);
    core::CycleTestConfig config;
    config.victimPhysicalRow = 100;
    config.hammers = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::runCycleHammerTest(dimm, pattern, config));
    }
    state.SetItemsProcessed(state.iterations() * 2 *
                            static_cast<std::int64_t>(config.hammers));
}
BENCHMARK(BM_CycleHammerExecution)->Arg(1'000)->Arg(10'000);

void
BM_TemperatureSweepPoint(benchmark::State &state)
{
    SimulatedDimm dimm(Mfr::D, 0);
    core::Tester tester(dimm);
    const DataPattern pattern(PatternId::Checkered);
    double temp = 50.0;
    for (auto _ : state) {
        Conditions conditions;
        conditions.temperature = temp;
        benchmark::DoNotOptimize(
            tester.berOfRow(0, 600, conditions, pattern));
        temp = temp >= 90.0 ? 50.0 : temp + 5.0;
    }
}
BENCHMARK(BM_TemperatureSweepPoint);

} // namespace

BENCHMARK_MAIN();

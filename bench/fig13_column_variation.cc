/**
 * @file
 * Regenerates Fig. 13: DRAM columns clustered by relative RowHammer
 * vulnerability (y) and its coefficient of variation across chips (x).
 * Columns with CV ~ 0 indicate design-induced variation; CV ~ 1
 * indicates manufacturing-process variation (Obsv. 14).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/spatial.hh"
#include "stats/histogram.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv, 24'000, 2, 8'000);
    printHeader("Fig. 13: columns clustered by relative vulnerability "
                "and cross-chip variation",
                "Fig. 13 (paper: CV=0 mass 50.9% for Mfr. B / 16.6% "
                "for C; CV=1 mass 59.8/30.6/29.1 % for A/C/D)");

    auto fleet = makeBenchFleet(scale);
    for (auto &entry : fleet) {
        const auto counts = core::columnFlipSurvey(
            *entry.tester, 0, entry.rows, entry.wcdp);
        const auto variation = core::analyzeColumnVariation(counts);

        stats::Histogram2d buckets(0.0, 1.0001, 11, 0.0, 1.0001, 11);
        for (std::size_t col = 0;
             col < variation.relativeVulnerability.size(); ++col) {
            if (variation.relativeVulnerability[col] <= 0.0)
                continue;
            buckets.add(variation.cvExcessAcrossChips[col],
                        variation.relativeVulnerability[col]);
        }

        std::printf("\n%s  RelVuln \\ noise-corrected CV ->\n",
                    entry.dimm->label().c_str());
        for (std::size_t y = buckets.ySize(); y-- > 0;) {
            std::printf("  %4.1f ", (static_cast<double>(y) + 0.5) / 11);
            for (std::size_t x = 0; x < buckets.xSize(); ++x) {
                const double f = 100.0 * buckets.fraction(x, y);
                if (f == 0.0)
                    std::printf("      ");
                else
                    std::printf("%5.1f%%", f);
            }
            std::printf("\n");
        }
        std::printf("  design-consistent columns (CV~0): %5.1f%%   "
                    "process-dominated (CV~1): %5.1f%%\n",
                    100.0 * variation.designConsistentFraction(),
                    100.0 * variation.processDominatedFraction());
    }

    std::printf("\nObsv. 14 check: Mfr. B is design-dominated (large "
                "CV~0 mass), Mfr. A process-dominated (large CV~1 "
                "mass).\n");
    return 0;
}

/**
 * @file
 * Supporting experiment for §2.3/§3: in-DRAM TRR (the mitigation the
 * paper's methodology disables) is defeated by many-sided patterns
 * that overflow its tracker — the reason "RowHammer-free" DDR4 chips
 * still flip (TRRespass). Also shows the DDR5 RFM + guaranteed-queue
 * route the paper points to for future defenses.
 */

#include <cstdio>

#include "bench_common.hh"
#include "defense/evaluate.hh"
#include "defense/rfm.hh"
#include "defense/trr.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;
    using namespace rhs::defense;

    util::Cli cli(argc, argv, {"hammers", "full", "modules", "rows"});
    const auto hammers = static_cast<std::uint64_t>(
        cli.getInt("hammers", 80'000));

    printHeader("TRRespass: many-sided attacks vs in-DRAM TRR",
                "context for §2.3 (TRR 'without success, as shown by "
                "[27,39]') and §3 (9.6K-25K HCfirst on TRR chips)");

    rhmodel::DimmOptions options;
    options.subarraysPerBank = 4;
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0, options);
    const rhmodel::DataPattern pattern(rhmodel::PatternId::Checkered);

    std::printf("Attack: synchronized many-sided hammering, %llu "
                "rounds, Mfr. B module\n\n",
                static_cast<unsigned long long>(hammers));

    // Pick, per attack width, a position whose *unprotected* victims
    // (not adjacent to the two most recent aggressors, which even a
    // 2-entry tracker always protects) include a weak row.
    const rhmodel::DataPattern scan_pattern(
        rhmodel::PatternId::Checkered);
    auto weak_position = [&](unsigned sides) {
        rhmodel::Conditions conditions;
        for (unsigned base = 100; base < 4000; base += 2 * sides) {
            const auto attack =
                rhmodel::HammerAttack::manySided(0, base, sides);
            const auto victims = attack.sandwichedVictims();
            // For wide attacks, skip the victims a 2-entry tracker
            // always protects (those next to the last two aggressors).
            const std::size_t scanned =
                victims.size() > 2 ? victims.size() - 2 : victims.size();
            for (std::size_t v = 0; v < scanned; ++v) {
                const double hc = dimm.analytic().rowHcFirst(
                    victims[v], attack, conditions, scan_pattern, 0);
                if (hc < 0.75 * static_cast<double>(hammers))
                    return base;
            }
        }
        return 100u;
    };
    std::printf("%-8s %-22s %-8s %-11s\n", "sides",
                "mitigation", "flips", "refreshes");
    printRule();

    for (unsigned sides : {2u, 4u, 8u}) {
        AttackConfig config;
        config.attack = rhmodel::HammerAttack::manySided(
            0, weak_position(sides), sides);
        config.hammers = hammers;
        // REF period synchronized with the attack round (SMASH-style).
        config.refreshEveryActivations = sides * 19;

        const auto none = evaluateUndefended(dimm, pattern, config);
        std::printf("%-8u %-22s %-8u %-11s\n", sides, "none",
                    none.flips, "-");

        for (unsigned capacity : {2u, 8u}) {
            InDramTrr trr(capacity);
            const auto result =
                evaluateDefense(dimm, trr, pattern, config);
            char label[32];
            std::snprintf(label, sizeof(label), "TRR (tracker=%u)",
                          capacity);
            std::printf("%-8u %-22s %-8u %-11llu\n", sides, label,
                        result.flips,
                        static_cast<unsigned long long>(
                            result.refreshes));
        }

        Rfm rfm(16, 16);
        AttackConfig rfm_config = config;
        rfm_config.refreshEveryActivations = 0;
        const auto rfm_result =
            evaluateDefense(dimm, rfm, pattern, rfm_config);
        std::printf("%-8u %-22s %-8u %-11llu\n", sides,
                    "RFM+SilverBullet", rfm_result.flips,
                    static_cast<unsigned long long>(
                        rfm_result.refreshes));
        printRule();
    }

    std::printf("Takeaway: a sampling tracker smaller than the attack's "
                "aggressor set leaks flips under synchronized patterns; "
                "RFM's guaranteed-capacity queue does not.\n");
    return 0;
}

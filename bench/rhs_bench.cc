/**
 * @file
 * `rhs-bench`: the single driver binary behind every figure/table
 * reproduction.
 *
 *   rhs-bench --list [--filter PATTERNS]     enumerate experiments
 *   rhs-bench NAME [options]                 run one experiment
 *   rhs-bench --all [options]                run every experiment
 *   rhs-bench --filter PATTERNS [options]    run the matching subset
 *
 * PATTERNS is a comma-separated list of name substrings ("temp,fig4"
 * selects every experiment whose name contains either).
 *
 * Shared options:
 *   --format table|json|both   output form (default table)
 *   --out-dir DIR              where JSON documents go (default .)
 *   --check                    re-parse and validate every emitted
 *                              document; fail on malformed documents
 *                              or failed paper-expectation checks
 *   --smoke                    reduced-scale CI run
 *   --rows N / --modules N / --full / --jobs N / --seed N
 *                              scale options (see exp/scale.hh)
 *   --simd scalar|avx2|avx512|neon|auto
 *                              pin the row-evaluation kernel variant
 *                              (overrides RHS_SIMD; default auto)
 *
 * Experiment-specific options (see --list) are accepted as well; with
 * --all the union of every experiment's options is accepted.
 *
 * All driver status goes to stderr; stdout carries only the classic
 * experiment tables, byte-identical to the retired standalone
 * binaries at the same scale/seed/jobs.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "exp/experiment.hh"
#include "exp/fleet_cache.hh"
#include "obs/export.hh"
#include "exp/registry.hh"
#include "exp/scale.hh"
#include "experiments/all.hh"
#include "report/document.hh"
#include "report/writer.hh"
#include "rhmodel/kernel.hh"
#include "snap/reader.hh"
#include "snap/spill.hh"
#include "snap/store.hh"
#include "snap/writer.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace rhs;

/** Options the driver itself understands. */
const std::vector<std::string> kDriverOptions = {
    "list", "filter", "all",  "smoke", "out-dir",
    "format", "check", "help", "trace-out", "simd",
    "snapshot-out", "snapshot-in", "spill-file", "spill-max-mb",
};

/** Shared scale options every experiment accepts. */
const std::vector<std::string> kScaleOptions = {
    "rows", "modules", "full", "jobs", "seed",
};

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: rhs-bench --list [--filter PATTERNS]\n"
        "       rhs-bench NAME [options]\n"
        "       rhs-bench --all [options]\n"
        "       rhs-bench --filter PATTERNS [options]\n"
        "\n"
        "PATTERNS: comma-separated name substrings, e.g. temp,fig4\n"
        "options: --format table|json|both  --out-dir DIR  --check\n"
        "         --smoke  --rows N  --modules N  --full  --jobs N\n"
        "         --seed N  --trace-out FILE\n"
        "         --simd scalar|avx2|avx512|neon|auto\n"
        "         --snapshot-out FILE  --snapshot-in FILE\n"
        "         --spill-file FILE  --spill-max-mb N\n"
        "         plus per-experiment options (--list)\n"
        "--trace-out writes the obs spans recorded during the run as\n"
        "a Chrome trace-event JSON file (chrome://tracing)\n"
        "--simd pins the row-evaluation kernel variant (default: the\n"
        "RHS_SIMD environment variable, else the best the CPU "
        "supports)\n"
        "--snapshot-out collects every RowEval curve the run computes\n"
        "and writes them as one rhs-snap/1 file; --snapshot-in warm-\n"
        "starts from such a file (mismatches fall back to live\n"
        "computation with a warning). --spill-file spills RowEval\n"
        "cache evictions to a bounded scratch file (--spill-max-mb,\n"
        "default 256)\n");
}

void
printList(const std::vector<exp::Experiment *> &selected)
{
    for (const auto *experiment : selected) {
        std::printf("%-24s %s\n", experiment->name().c_str(),
                    experiment->title().c_str());
        for (const auto &option : experiment->options())
            std::printf("%-24s   --%s (default %s): %s\n", "",
                        option.name.c_str(), option.fallback.c_str(),
                        option.help.c_str());
    }
}

/** Validate one emitted document file; returns false with a message. */
bool
checkDocument(const std::string &path, std::string &error)
{
    std::ifstream in(path);
    if (!in.good()) {
        error = "cannot read " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    report::Json parsed;
    std::string parse_error;
    if (!report::Json::parse(buffer.str(), parsed, parse_error)) {
        error = path + ": malformed JSON: " + parse_error;
        return false;
    }
    std::string schema_error;
    if (!report::Document::validate(parsed, schema_error)) {
        error = path + ": schema violation: " + schema_error;
        return false;
    }
    for (std::size_t i = 0; i < parsed.at("checks").size(); ++i) {
        const auto &check = parsed.at("checks").at(i);
        if (!check.at("pass").asBool()) {
            error = path + ": check failed: " +
                    check.at("id").asString() + " (" +
                    check.at("description").asString() + ")";
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::registerAllExperiments();

    // Split off a leading experiment-name positional; everything else
    // must be --options.
    std::vector<std::string> args;
    std::string subcommand;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (i == 1 && !arg.empty() && arg[0] != '-') {
            subcommand = arg;
            continue;
        }
        args.push_back(arg);
    }

    // Selection: an explicit name, --all, or --filter.
    std::vector<exp::Experiment *> selected;
    {
        // Pre-scan for the selection options only; full option
        // validation happens below once the selection (and therefore
        // the set of legal options) is known.
        std::string filter;
        bool all = false, list = false, help = false;
        for (std::size_t i = 0; i < args.size(); ++i) {
            if (args[i] == "--all")
                all = true;
            else if (args[i] == "--list")
                list = true;
            else if (args[i] == "--help")
                help = true;
            else if (args[i] == "--filter" && i + 1 < args.size())
                filter = args[i + 1];
            else if (args[i].rfind("--filter=", 0) == 0)
                filter = args[i].substr(9);
        }
        if (help) {
            printUsage(stdout);
            return 0;
        }
        if (!subcommand.empty()) {
            auto *experiment = exp::Registry::find(subcommand);
            if (experiment == nullptr) {
                std::fprintf(stderr,
                             "rhs-bench: unknown experiment '%s' "
                             "(try --list)\n",
                             subcommand.c_str());
                return 1;
            }
            selected.push_back(experiment);
        } else if (all || list || !filter.empty()) {
            selected = exp::Registry::filter(filter);
            if (selected.empty()) {
                std::fprintf(stderr,
                             "rhs-bench: no experiment matches "
                             "--filter '%s'\n",
                             filter.c_str());
                return 1;
            }
        } else {
            printUsage(stderr);
            return 1;
        }
        if (list) {
            printList(selected);
            return 0;
        }
    }

    // Parse options against the union of driver, scale, and selected
    // experiments' options — typos stay fatal.
    std::set<std::string> known(kDriverOptions.begin(),
                                kDriverOptions.end());
    known.insert(kScaleOptions.begin(), kScaleOptions.end());
    for (const auto *experiment : selected)
        for (const auto &option : experiment->options())
            known.insert(option.name);
    const util::Cli cli(
        args, std::vector<std::string>(known.begin(), known.end()));

    const std::string format = cli.get("format", "table");
    if (format != "table" && format != "json" && format != "both") {
        std::fprintf(stderr,
                     "rhs-bench: --format must be table, json, or "
                     "both (got '%s')\n",
                     format.c_str());
        return 1;
    }
    const bool want_table = format == "table" || format == "both";
    const bool want_json = format == "json" || format == "both";
    const bool check = cli.has("check");
    if (const std::string simd = cli.get("simd", ""); !simd.empty()) {
        std::string error;
        if (!rhmodel::kern::setVariant(simd, &error)) {
            std::fprintf(stderr, "rhs-bench: --simd %s: %s\n",
                         simd.c_str(), error.c_str());
            return 1;
        }
    }
    const std::string out_dir = cli.get("out-dir", ".");
    if (want_json || check) {
        // Create the output directory if missing; report a real error
        // (e.g. the path names an existing file) instead of throwing.
        std::error_code ec;
        std::filesystem::create_directories(out_dir, ec);
        if (ec && !std::filesystem::is_directory(out_dir)) {
            std::fprintf(stderr,
                         "rhs-bench: cannot create --out-dir '%s': "
                         "%s\n",
                         out_dir.c_str(), ec.message().c_str());
            return 1;
        }
    }

    exp::FleetCache fleet_cache;

    // Optional rhs-snap/1 tiers (see src/snap): warm-start curves from
    // --snapshot-in, collect computed curves for --snapshot-out, spill
    // cache evictions to --spill-file. All best-effort — any failure
    // here degrades to plain live computation.
    snap::StoreFactory store_factory;
    std::shared_ptr<snap::Builder> snapshot_builder;
    const std::string snapshot_out = cli.get("snapshot-out", "");
    if (!snapshot_out.empty()) {
        snapshot_builder = std::make_shared<snap::Builder>();
        store_factory.attachBuilder(snapshot_builder);
    }
    if (const std::string snapshot_in = cli.get("snapshot-in", "");
        !snapshot_in.empty()) {
        std::string error;
        if (auto reader = snap::Reader::open(snapshot_in, error)) {
            std::fprintf(stderr,
                         "rhs-bench: warm start from %s (%llu curves)\n",
                         snapshot_in.c_str(),
                         static_cast<unsigned long long>(
                             reader->header().recordCount));
            store_factory.attachReader(std::move(reader));
        } else {
            util::warn("snapshot ", snapshot_in, ": ", error,
                       "; computing live");
        }
    }
    if (const std::string spill_file = cli.get("spill-file", "");
        !spill_file.empty()) {
        std::string error;
        if (auto spill = snap::SpillTier::create(
                spill_file,
                static_cast<std::uint64_t>(cli.getInt("spill-max-mb",
                                                      256))
                    << 20,
                error))
            store_factory.attachSpill(std::move(spill));
        else
            util::warn(error, "; evictions will not be spilled");
    }
    if (store_factory.any())
        fleet_cache.setStoreProvider(
            [&store_factory](rhmodel::Mfr mfr, unsigned module_index,
                             unsigned subarrays_per_bank) {
                return store_factory.storeFor(mfr, module_index,
                                              subarrays_per_bank);
            });

    std::vector<std::string> failures;
    unsigned index = 0;
    for (auto *experiment : selected) {
        ++index;
        const auto scale =
            exp::resolveScale(cli, experiment->scaleDefaults());
        util::ThreadPool::configure(scale.jobs);
        std::fprintf(stderr, "[%2u/%zu] %s (rows=%u modules=%u%s)\n",
                     index, selected.size(),
                     experiment->name().c_str(), scale.maxRows,
                     scale.modulesPerMfr, scale.smoke ? " smoke" : "");

        exp::RunContext ctx{scale, fleet_cache, cli, want_table};
        const auto start = std::chrono::steady_clock::now();
        auto doc = experiment->run(ctx);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;

        // Provenance (doc.git is filled by the Document constructor).
        bench::stampEnvelope(doc, scale);
        doc.wallSeconds = elapsed.count();

        if (want_json || check) {
            const auto path = std::filesystem::path(out_dir) /
                              (experiment->name() + ".json");
            report::JsonWriter().writeFile(path.string(),
                                           doc.toJson());
            if (check) {
                std::string error;
                if (!checkDocument(path.string(), error))
                    failures.push_back(error);
            }
            std::fprintf(stderr, "        %.1fs  %zu checks  %s\n",
                         elapsed.count(), doc.checks.size(),
                         path.string().c_str());
        } else {
            std::fprintf(stderr, "        %.1fs  %zu checks  %s\n",
                         elapsed.count(), doc.checks.size(),
                         doc.allChecksPass() ? "pass" : "FAIL");
        }
        if (!doc.allChecksPass() && !check)
            failures.push_back(experiment->name() +
                               ": a paper-expectation check failed");
    }

    std::fprintf(stderr,
                 "ran %zu experiment(s); fleet cache: %u module(s) "
                 "built, %u fleet hit(s), %u/%u WCDP cache hit(s)\n",
                 selected.size(), fleet_cache.modulesBuilt(),
                 fleet_cache.fleetHits(), fleet_cache.wcdpHits(),
                 fleet_cache.wcdpSearches());

    if (snapshot_builder) {
        std::string error;
        if (snapshot_builder->write(snapshot_out, error))
            std::fprintf(
                stderr,
                "rhs-bench: snapshot written to %s (%zu curves, "
                "%llu record bytes)\n",
                snapshot_out.c_str(), snapshot_builder->records(),
                static_cast<unsigned long long>(
                    snapshot_builder->recordBytes()));
        else
            failures.push_back("snapshot-out: " + error);
    }

    if (const std::string trace_out = cli.get("trace-out", "");
        !trace_out.empty()) {
        obs::writeChromeTrace(trace_out);
        std::fprintf(stderr, "rhs-bench: trace written to %s\n",
                     trace_out.c_str());
    }
    if (!failures.empty()) {
        for (const auto &failure : failures)
            std::fprintf(stderr, "rhs-bench: %s\n", failure.c_str());
        return 1;
    }
    return 0;
}

/**
 * @file
 * Regenerates Tables 2 and 4: the tested DRAM module inventory.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace rhs;
    using namespace rhs::bench;

    printHeader("Table 2/4: Characteristics of the tested DRAM modules",
                "Table 2 and Table 4 (Appendix A)");

    std::printf("%-5s %-5s %-26s %-10s %-22s %-6s %-10s %-5s %-4s "
                "%-5s %-7s %-7s\n",
                "Mfr.", "Type", "Chip Identifier", "Vendor",
                "Module Identifier", "MT/s", "Date", "Dens", "Die",
                "Org", "#Mods", "#Chips");
    printRule();

    unsigned ddr4_chips = 0, ddr3_chips = 0;
    for (const auto &entry : rhmodel::paperInventory()) {
        const unsigned chips = entry.modules * entry.chipsPerModule;
        if (entry.standard == dram::Standard::DDR4)
            ddr4_chips += chips;
        else
            ddr3_chips += chips;
        std::printf("%-5s %-5s %-26s %-10s %-22s %-6u %-10s %-5s %-4s "
                    "%-5s %-7u %-7u\n",
                    rhmodel::to_string(entry.mfr).c_str(),
                    dram::to_string(entry.standard).c_str(),
                    entry.chipIdentifier.c_str(),
                    entry.moduleVendor.c_str(),
                    entry.moduleIdentifier.c_str(), entry.frequencyMTs,
                    entry.dateCode.c_str(), entry.density.c_str(),
                    entry.dieRevision.c_str(),
                    entry.organization.c_str(), entry.modules, chips);
    }
    printRule();
    std::printf("Totals: %u DDR4 chips, %u DDR3 chips "
                "(paper: 248 DDR4 + 24 DDR3)\n",
                ddr4_chips, ddr3_chips);

    std::printf("\nSimulated counterparts instantiated per profile:\n");
    for (auto mfr : rhmodel::allMfrs) {
        rhmodel::SimulatedDimm dimm(mfr, 0);
        const auto &p = dimm.profile();
        std::printf("  %s  chips=%u  mapping=%s  (derived: wCouple=%.3f "
                    "kOn=%.3f cellSigma=%.3f)\n",
                    dimm.label().c_str(), dimm.module().chipCount(),
                    dimm.module().rowMapping().name().c_str(), p.wCouple,
                    p.kOn, p.cellSigma);
    }
    return 0;
}

/**
 * @file
 * Supporting experiment: attack success vs refresh rate.
 *
 * §2.3: RowHammer "happens when a DRAM row is repeatedly activated
 * enough times before its neighboring rows get refreshed". This bench
 * drives the double-sided attack under progressively faster
 * auto-refresh and shows the flip count collapse once the refresh
 * interval drops below the victim's HCfirst-equivalent time — the
 * classic (and increasingly expensive, §3) refresh-rate mitigation.
 */

#include <cstdio>

#include "bench_common.hh"
#include "defense/evaluate.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;
    using namespace rhs::defense;

    util::Cli cli(argc, argv, {"hammers", "full", "modules", "rows"});
    const auto hammers = static_cast<std::uint64_t>(
        cli.getInt("hammers", 300'000));

    printHeader("Attack success vs refresh rate",
                "context for §2.3/§3 (refresh-based mitigation and its "
                "worsening cost)");

    rhmodel::DimmOptions options;
    options.subarraysPerBank = 4;
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0, options);
    core::Tester tester(dimm);
    const rhmodel::DataPattern pattern(rhmodel::PatternId::Checkered);

    AttackConfig config;
    config.hammers = hammers;
    config.refreshRestoresAllRows = true;
    rhmodel::Conditions reference;
    for (unsigned row = 100; row < 400; ++row) {
        if (tester.berOfRow(0, row, reference, pattern, hammers) >= 3) {
            config.victimPhysicalRow = row;
            break;
        }
    }

    // One activation pair ~102 ns; the nominal 64 ms window holds
    // ~628K activations. Sweep refresh rates from nominal (1x) to 64x.
    const double acts_per_window = 64e6 / 51.0;

    std::printf("Victim row %u, %llu hammers; auto-refresh restores "
                "all rows each interval.\n\n",
                config.victimPhysicalRow,
                static_cast<unsigned long long>(hammers));
    std::printf("%-14s %-22s %-8s %-16s\n", "refresh rate",
                "interval (activations)", "flips",
                "refresh passes");
    printRule();

    {
        AttackConfig none = config;
        none.refreshEveryActivations = 0;
        const auto result = evaluateUndefended(dimm, pattern, none);
        std::printf("%-14s %-22s %-8u %-16s\n", "disabled",
                    "-", result.flips, "-");
    }

    for (unsigned multiplier : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        AttackConfig swept = config;
        swept.refreshEveryActivations = static_cast<std::uint64_t>(
            acts_per_window / multiplier);
        const auto result = evaluateUndefended(dimm, pattern, swept);
        std::printf("%-13ux %-22llu %-8u %-16llu\n", multiplier,
                    static_cast<unsigned long long>(
                        swept.refreshEveryActivations),
                    result.flips,
                    static_cast<unsigned long long>(result.refreshes));
    }

    std::printf("\nFlips vanish once the refresh interval holds fewer "
                "activations than the victim's HCfirst — but chips "
                "with ~10K HCfirst would need >60x refresh (§3: "
                "prohibitive performance/energy cost).\n");
    return 0;
}

/**
 * @file
 * Regenerates Table 3: the percentage of vulnerable DRAM cells that
 * flip at every temperature point within their vulnerable temperature
 * range (Obsv. 1).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/temp_analysis.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv);
    printHeader("Table 3: vulnerable cells flipping at all temperature "
                "points in their range",
                "Table 3 (paper: 99.1 / 98.9 / 98.0 / 99.2 % for "
                "Mfrs. A/B/C/D)");

    auto fleet = makeBenchFleet(scale);
    std::printf("%-8s %-12s %-12s %-12s %-12s\n", "Mfr.", "vuln cells",
                "no gaps", "1 gap", ">1 gap");
    printRule();

    for (auto mfr : rhmodel::allMfrs) {
        core::TempRangeAnalysis merged;
        merged.temps = core::standardTemperatures();
        merged.rangeCount.assign(
            merged.temps.size(),
            std::vector<std::uint64_t>(merged.temps.size(), 0));
        for (auto &entry : fleet) {
            if (entry.dimm->mfr() != mfr)
                continue;
            merged.merge(core::analyzeTempRanges(
                *entry.tester, 0, entry.rows, entry.wcdp));
        }
        const double no_gap = 100.0 * merged.noGapFraction();
        const double one_gap =
            merged.vulnerableCells == 0
                ? 0.0
                : 100.0 * static_cast<double>(merged.oneGapCells) /
                      static_cast<double>(merged.vulnerableCells);
        std::printf("%-8s %-12llu %-11.2f%% %-11.2f%% %-11.2f%%\n",
                    rhmodel::to_string(mfr).c_str(),
                    static_cast<unsigned long long>(
                        merged.vulnerableCells),
                    no_gap, one_gap, 100.0 - no_gap - one_gap);
    }

    std::printf("\nTakeaway 1 check: cells flip with very high "
                "probability at every temperature inside their own "
                "bounded range.\n");
    return 0;
}

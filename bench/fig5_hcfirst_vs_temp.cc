/**
 * @file
 * Regenerates Fig. 5: the distribution of per-row HCfirst change as
 * temperature rises from 50 degC to 55 and to 90 degC, with the
 * crossing percentile (fraction of rows whose HCfirst increased) and
 * the cumulative-magnitude ratio of Obsv. 7.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/temp_analysis.hh"
#include "stats/descriptive.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv);
    printHeader("Fig. 5: distribution of HCfirst change across rows as "
                "temperature increases",
                "Fig. 5 (paper crossings: A P65/P45, D P63/P40; "
                "magnitude ratio ~4x; Obsvs. 5-7)");

    auto fleet = makeBenchFleet(scale);
    std::printf("%-8s %-10s %-10s %-12s %-28s %-28s\n", "Mfr.",
                "P(55C)", "P(90C)", "mag ratio",
                "50->55 deciles (%)", "50->90 deciles (%)");
    printRule();

    for (auto &entry : fleet) {
        const auto result = core::analyzeHcFirstVsTemperature(
            *entry.tester, 0, entry.rows, entry.wcdp);
        if (result.changePct55.empty())
            continue;

        auto deciles = [](const std::vector<double> &xs) {
            char buffer[64];
            std::snprintf(buffer, sizeof(buffer), "%+6.0f %+6.0f %+6.0f",
                          stats::quantile(xs, 0.9),
                          stats::quantile(xs, 0.5),
                          stats::quantile(xs, 0.1));
            return std::string(buffer);
        };

        std::printf("%-8s P%-9.0f P%-9.0f %-12.1f %-28s %-28s\n",
                    entry.dimm->label().c_str(),
                    100.0 * result.crossing55(),
                    100.0 * result.crossing90(),
                    result.magnitudeRatio(),
                    deciles(result.changePct55).c_str(),
                    deciles(result.changePct90).c_str());
    }

    std::printf("\nObsv. 6 check: P(90C) < P(55C) for every module "
                "(fewer rows improve when the delta is larger).\n");
    std::printf("Obsv. 7 check: magnitude ratio > 1 (larger "
                "temperature change => larger HCfirst change).\n");
    return 0;
}

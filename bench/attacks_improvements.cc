/**
 * @file
 * Regenerates the §8.1 attack-improvement analyses:
 *  1. temperature-aware aggressor selection,
 *  2. temperature-triggered attack cells,
 *  3. extended aggressor on-time via READ bursts.
 */

#include <cstdio>

#include "attack/long_aggressor.hh"
#include "attack/temperature_aware.hh"
#include "attack/trigger_cell.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv);
    printHeader("Section 8.1: attack improvements",
                "Improvements 1-3 (paper: ~50% HCfirst reduction from "
                "informed row choice; narrow-range trigger cells; "
                "BER x3.2-10.2 and HCfirst -36% from 10-15 READs)");

    auto fleet = makeBenchFleet(scale);

    std::printf("Improvement 1: temperature-aware victim placement\n");
    std::printf("%-8s %-8s %-12s %-12s %-10s\n", "Module", "T(C)",
                "best HCfirst", "median", "reduction");
    printRule();
    for (auto &entry : fleet) {
        for (double temp : {50.0, 80.0}) {
            const auto choice = attack::pickRowForTemperature(
                *entry.tester, 0, entry.rows, temp, entry.wcdp);
            if (choice.bestHcFirst == 0)
                continue;
            std::printf("%-8s %-8.0f %9.1fK %9.1fK %8.0f%%\n",
                        entry.dimm->label().c_str(), temp,
                        choice.bestHcFirst / 1e3,
                        choice.medianHcFirst / 1e3,
                        100.0 * choice.reduction());
        }
    }

    std::printf("\nImprovement 2: temperature-triggered attack cells "
                "(target 70 degC)\n");
    printRule();
    for (auto &entry : fleet) {
        const auto triggers = attack::findTriggerCells(
            *entry.tester, 0, entry.rows, entry.wcdp, 70.0, 5.0);
        std::printf("%-8s narrow-range trigger cells found: %zu",
                    entry.dimm->label().c_str(), triggers.size());
        if (!triggers.empty()) {
            const auto &t = triggers.front();
            std::printf("   first: chip %u col %u bit %u, range "
                        "[%.0f, %.0f] degC, fires@70=%s fires@50=%s",
                        t.location.chip, t.location.column,
                        t.location.bit, t.rangeLow, t.rangeHigh,
                        attack::triggerFires(*entry.tester, t, 0,
                                             entry.wcdp, 70.0)
                            ? "yes"
                            : "no",
                        attack::triggerFires(*entry.tester, t, 0,
                                             entry.wcdp, 50.0)
                            ? "yes"
                            : "no");
        }
        std::printf("\n");
    }

    std::printf("\nImprovement 3: extended aggressor on-time via READ "
                "bursts\n");
    std::printf("%-8s %-7s %-10s %-10s %-10s %-12s %-8s\n", "Module",
                "#READs", "tAggOn", "BER gain", "HC drop",
                "defeats cfg?", "");
    printRule();
    for (auto &entry : fleet) {
        for (unsigned reads : {10u, 15u}) {
            const auto report = attack::analyzeLongAggressor(
                *entry.tester, 0, entry.rows, entry.wcdp, reads);
            std::printf("%-8s %-7u %7.1fns %8.2fx %8.1f%% %-12s\n",
                        entry.dimm->label().c_str(), reads,
                        report.effectiveOnTimeNs, report.berGain(),
                        100.0 * report.hcFirstReduction(),
                        report.defeatsBaselineThreshold() ? "yes"
                                                          : "no");
        }
    }

    return 0;
}

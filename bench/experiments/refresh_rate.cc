/**
 * @file
 * Supporting experiment: attack success vs refresh rate.
 *
 * §2.3: RowHammer "happens when a DRAM row is repeatedly activated
 * enough times before its neighboring rows get refreshed". This bench
 * drives the double-sided attack under progressively faster
 * auto-refresh and shows the flip count collapse once the refresh
 * interval drops below the victim's HCfirst-equivalent time — the
 * classic (and increasingly expensive, §3) refresh-rate mitigation.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "defense/evaluate.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;
using namespace rhs::defense;

class RefreshRate final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "refresh_rate";
    }

    std::string
    title() const override
    {
        return "Attack success vs refresh rate";
    }

    std::string
    source() const override
    {
        return "context for §2.3/§3 (refresh-based mitigation and "
               "its worsening cost)";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"hammers", "300000", "hammers on the victim row"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        const auto hammers = static_cast<std::uint64_t>(
            ctx.cli.getInt("hammers", 300'000));

        if (ctx.table)
            printHeader(title(), source());

        auto &module = ctx.fleet.module(rhmodel::Mfr::B, 0, 4);
        auto &dimm = *module.dimm;
        auto &tester = *module.tester;
        const rhmodel::DataPattern pattern(
            rhmodel::PatternId::Checkered);

        AttackConfig config;
        config.hammers = hammers;
        config.refreshRestoresAllRows = true;
        rhmodel::Conditions reference;
        for (unsigned row = 100; row < 400; ++row) {
            if (tester.berOfRow(0, row, reference, pattern,
                                hammers) >= 3) {
                config.victimPhysicalRow = row;
                break;
            }
        }

        // One activation pair ~102 ns; the nominal 64 ms window holds
        // ~628K activations. Sweep refresh rates from nominal (1x) to
        // 64x.
        const double acts_per_window = 64e6 / 51.0;

        if (ctx.table) {
            std::printf("Victim row %u, %llu hammers; auto-refresh "
                        "restores all rows each interval.\n\n",
                        config.victimPhysicalRow,
                        static_cast<unsigned long long>(hammers));
            std::printf("%-14s %-22s %-8s %-16s\n", "refresh rate",
                        "interval (activations)", "flips",
                        "refresh passes");
            printRule();
        }

        unsigned undefended_flips = 0;
        {
            AttackConfig none = config;
            none.refreshEveryActivations = 0;
            const auto result =
                evaluateUndefended(dimm, pattern, none);
            undefended_flips = result.flips;
            if (ctx.table)
                std::printf("%-14s %-22s %-8u %-16s\n", "disabled",
                            "-", result.flips, "-");
        }

        std::vector<std::string> labels;
        std::vector<double> flips;
        for (unsigned multiplier : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
            AttackConfig swept = config;
            swept.refreshEveryActivations =
                static_cast<std::uint64_t>(acts_per_window /
                                           multiplier);
            const auto result =
                evaluateUndefended(dimm, pattern, swept);
            if (ctx.table)
                std::printf("%-13ux %-22llu %-8u %-16llu\n",
                            multiplier,
                            static_cast<unsigned long long>(
                                swept.refreshEveryActivations),
                            result.flips,
                            static_cast<unsigned long long>(
                                result.refreshes));
            labels.push_back(std::to_string(multiplier) + "x");
            flips.push_back(static_cast<double>(result.flips));
        }

        if (ctx.table) {
            std::printf("\nFlips vanish once the refresh interval "
                        "holds fewer activations than the victim's "
                        "HCfirst — but chips with ~10K HCfirst would "
                        "need >60x refresh (§3: prohibitive "
                        "performance/energy cost).\n");
        }

        doc.addSeries("flips_vs_refresh_rate", labels, flips);
        doc.data.set("undefended_flips",
                     report::Json(undefended_flips));
        // Faster refresh must never make the attack stronger, and the
        // fastest sweep point must defeat it entirely.
        bool monotone_ok = true;
        for (std::size_t i = 1; i < flips.size(); ++i)
            if (flips[i] > flips[i - 1])
                monotone_ok = false;
        doc.check("refresh_rate_collapse", "Sections 2.3 / 3",
                  "flip counts never rise with the refresh rate and "
                  "reach zero at the 64x rate",
                  monotone_ok && !flips.empty() && flips.back() == 0.0,
                  "flips in series flips_vs_refresh_rate");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerRefreshRate()
{
    exp::Registry::add(std::make_unique<RefreshRate>());
}

} // namespace rhs::bench

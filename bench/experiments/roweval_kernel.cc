/**
 * @file
 * Row-evaluation kernel throughput measurement.
 *
 * The paper's characterization sweeps are built on millions of HCfirst
 * searches and BER tests; before the RowEval kernel, every probe of
 * the step search regenerated and re-scored the identical cell
 * population. This bench times the kernel-backed engine against a
 * faithful re-implementation of that probe-per-call reference path
 * (built on the engine's own single-cell cellHcFirst, which is still
 * the property-tested reference), verifies the results are
 * byte-identical, and writes before/after throughput at jobs=1 and
 * jobs=8 (in the shared rhs-report envelope) to the --out path.
 * Widths the host cannot actually run (hardware_threads < jobs) are
 * still digest-checked but excluded from the timing series — an
 * oversubscribed measurement is noise, not data.
 *
 * It also times the kernel pass once per SIMD variant supported on
 * this host (forced through the dispatch override) and reports
 * simd_seconds_<workload> / simd_speedup_<workload> series, with
 * speedup relative to the portable scalar build — the number that
 * justifies shipping the vector variants.
 *
 * Options:
 *   --rows N    victim rows per workload (default 40; 6 under --smoke)
 *   --trials N  repetitions per row for the HCfirst workload
 *               (default core::kRepetitions; 2 under --smoke)
 *   --out FILE  JSON output path (default BENCH_roweval.json)
 *
 * Each (path, jobs) measurement runs against a fresh SimulatedDimm
 * with its cellsOfRow cache pre-warmed, so the timed region isolates
 * probe arithmetic for both paths and no RowEval survives from one
 * measurement into the next.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/tester.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "report/writer.hh"
#include "rhmodel/kernel.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace rhs;

constexpr unsigned kJobCounts[] = {1, 8};

/** FNV-1a, reported in the JSON so runs can be compared offline. */
std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

// --- The pre-kernel reference path -----------------------------------
// A faithful re-implementation of the engine before the RowEval
// kernel: every BER probe walks the row's cells and evaluates each
// cell's closed form from scratch via cellHcFirst.

unsigned
referenceBerOfRow(const rhmodel::AnalyticEngine &engine, unsigned bank,
                  unsigned row, const rhmodel::Conditions &conditions,
                  const rhmodel::DataPattern &pattern,
                  std::uint64_t hammers, unsigned trial)
{
    const auto attack = rhmodel::HammerAttack::doubleSided(bank, row);
    unsigned flips = 0;
    for (const auto &cell : engine.cellModel().cellsOfRow(bank, row)) {
        const double hc = engine.cellHcFirst(cell, row, attack,
                                             conditions, pattern, trial);
        if (hc <= static_cast<double>(hammers))
            ++flips;
    }
    return flips;
}

std::uint64_t
referenceHcFirstSearch(const rhmodel::AnalyticEngine &engine,
                       unsigned bank, unsigned row,
                       const rhmodel::Conditions &conditions,
                       const rhmodel::DataPattern &pattern, unsigned trial)
{
    auto flips_at = [&](std::uint64_t hammers) {
        return referenceBerOfRow(engine, bank, row, conditions, pattern,
                                 hammers, trial) > 0;
    };
    if (!flips_at(core::kMaxHammers))
        return core::kNotVulnerable;

    std::uint64_t hammers = core::kHcFirstInitial;
    std::uint64_t best = core::kMaxHammers;
    for (std::uint64_t delta = core::kHcFirstInitialDelta;
         delta >= core::kHcFirstAccuracy; delta /= 2) {
        if (flips_at(hammers)) {
            best = std::min(best, hammers);
            hammers = hammers > delta ? hammers - delta
                                      : core::kHcFirstAccuracy;
        } else {
            hammers = std::min(hammers + delta, core::kMaxHammers);
        }
    }
    if (flips_at(hammers))
        best = std::min(best, hammers);
    return best;
}

// --- Measurement scaffolding -----------------------------------------

struct Workload
{
    std::string name;
    //! Serialized result of one full pass; digests must match between
    //! the reference and kernel paths and across job counts.
    std::function<std::string(core::Tester &, unsigned jobs)> reference;
    std::function<std::string(core::Tester &, unsigned jobs)> kernel;
};

struct Measurement
{
    std::string name;
    //! Indexed like the timed job list (widths with enough hardware
    //! threads); digest checks still cover every width in kJobCounts.
    std::vector<double> referenceSeconds;
    std::vector<double> kernelSeconds;
    //! Kernel-path seconds per supported SIMD variant, jobs=1.
    std::vector<double> simdSeconds;
    std::uint64_t referenceDigest = 0;
    std::uint64_t kernelDigest = 0;
    bool identical = true;
};

double
timeOnFreshDimm(
    const std::function<std::string(core::Tester &, unsigned)> &work,
    unsigned jobs, const std::vector<unsigned> &rows,
    std::string &serialized)
{
    util::ThreadPool::configure(jobs);
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0);
    core::Tester tester(dimm);
    // Pre-warm the cellsOfRow cache so both paths' timed regions
    // isolate probe arithmetic from cell generation.
    for (unsigned row : rows)
        dimm.cellModel().cellsOfRow(0, row);

    const auto start = std::chrono::steady_clock::now();
    serialized = work(tester, jobs);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

class RowEvalKernel final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "roweval_kernel";
    }

    std::string
    title() const override
    {
        return "Row-evaluation kernel: probe throughput before/after";
    }

    std::string
    source() const override
    {
        return "one kernel pass per (row, conditions, pattern, "
               "trial) key";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"rows", "40", "victim rows per workload"},
                {"trials", "kRepetitions",
                 "repetitions per row for the HCfirst workload"},
                {"out", "BENCH_roweval.json", "JSON output path"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        const auto max_rows = static_cast<unsigned>(ctx.cli.getInt(
            "rows", ctx.scale.smoke ? 6 : 40));
        const auto trials = static_cast<unsigned>(ctx.cli.getInt(
            "trials", ctx.scale.smoke
                          ? 2
                          : static_cast<int>(core::kRepetitions)));
        const std::string out_path =
            ctx.cli.get("out", "BENCH_roweval.json");
        const bool table = ctx.table;

        if (table)
            bench::printHeader(title(), source());
        const unsigned hw = util::ThreadPool::hardwareJobs();
        if (table)
            std::printf("hardware threads: %u\n\n", hw);

        // Shared sample: rows, conditions and pattern fixed up front
        // so every measurement evaluates identical keys.
        rhmodel::SimulatedDimm sample_dimm(rhmodel::Mfr::B, 0);
        const auto all = core::testedRows(
            sample_dimm.module().geometry(), max_rows / 3 + 1);
        std::vector<unsigned> rows;
        for (std::size_t i = 0; i < max_rows && i < all.size(); ++i)
            rows.push_back(all[i * all.size() / max_rows]);
        RHS_ASSERT(!rows.empty(), "no tested rows at this scale");
        const rhmodel::DataPattern pattern(
            rhmodel::PatternId::Checkered,
            sample_dimm.module().info().serial);
        rhmodel::Conditions conditions;
        conditions.temperature = 75.0;

        // The per-variant rows below force the dispatch; remember the
        // driver-selected variant (--simd / RHS_SIMD / auto) so the
        // rest of the run keeps it.
        const rhmodel::kern::Simd entry_variant =
            rhmodel::kern::active().id;

        // Only widths the hardware can actually run produce timing
        // rows; wider configurations still run for the digest check.
        std::vector<unsigned> timed_jobs;
        for (unsigned jobs : kJobCounts) {
            if (hw >= jobs)
                timed_jobs.push_back(jobs);
        }
        const auto simd_variants = rhmodel::kern::supportedVariants();

        auto measure = [&](const Workload &workload) {
            Measurement m;
            m.name = workload.name;
            std::string baseline;
            for (unsigned jobs : kJobCounts) {
                const bool timed = hw >= jobs;
                std::string ref_bytes, kernel_bytes;
                const double ref_s = timeOnFreshDimm(
                    workload.reference, jobs, rows, ref_bytes);
                const double kernel_s = timeOnFreshDimm(
                    workload.kernel, jobs, rows, kernel_bytes);
                if (timed) {
                    m.referenceSeconds.push_back(ref_s);
                    m.kernelSeconds.push_back(kernel_s);
                }
                if (baseline.empty()) {
                    baseline = ref_bytes;
                    m.referenceDigest = fnv1a(ref_bytes);
                    m.kernelDigest = fnv1a(kernel_bytes);
                }
                if (ref_bytes != baseline || kernel_bytes != baseline)
                    m.identical = false;
                if (!table)
                    continue;
                if (timed)
                    std::printf(
                        "  %-16s jobs=%u  reference %8.3f s  kernel "
                        "%8.3f s  speedup %5.2fx%s\n",
                        m.name.c_str(), jobs, ref_s, kernel_s,
                        kernel_s > 0.0 ? ref_s / kernel_s : 0.0,
                        ref_bytes == kernel_bytes ? "" : "  MISMATCH");
                else
                    std::printf(
                        "  %-16s jobs=%u  digest check only (%u "
                        "hardware threads)%s\n",
                        m.name.c_str(), jobs, hw,
                        ref_bytes == kernel_bytes ? "" : "  MISMATCH");
            }
            // Kernel path per SIMD variant, jobs=1: the vector builds
            // must match the scalar build byte for byte, and their
            // speedup over it is the series the JSON reports.
            for (rhmodel::kern::Simd simd : simd_variants) {
                rhmodel::kern::forceVariant(simd);
                std::string simd_bytes;
                const double simd_s = timeOnFreshDimm(
                    workload.kernel, 1, rows, simd_bytes);
                m.simdSeconds.push_back(simd_s);
                if (simd_bytes != baseline)
                    m.identical = false;
                if (table)
                    std::printf(
                        "  %-16s simd=%-7s kernel %8.3f s  vs scalar "
                        "%5.2fx%s\n",
                        m.name.c_str(), rhmodel::kern::name(simd),
                        simd_s,
                        simd_s > 0.0 ? m.simdSeconds.front() / simd_s
                                     : 0.0,
                        simd_bytes == baseline ? "" : "  MISMATCH");
            }
            rhmodel::kern::forceVariant(entry_variant);
            RHS_ASSERT(m.identical, "kernel results diverged from "
                                    "the reference path");
            return m;
        };

        std::vector<Workload> workloads;

        // 1. The paper's HCfirst step search, rows x trials. The
        // reference pays ~12 O(cells) probes per search; the kernel
        // pays one O(cells) pass and replays the probes against the
        // curve.
        workloads.push_back(
            {"hcfirst_search",
             [&](core::Tester &tester, unsigned) {
                 const auto &engine = tester.module().analytic();
                 std::vector<std::uint64_t> hc(rows.size() * trials,
                                               0);
                 util::parallelFor(0, hc.size(), [&](std::size_t i) {
                     hc[i] = referenceHcFirstSearch(
                         engine, 0, rows[i / trials], conditions,
                         pattern, static_cast<unsigned>(i % trials));
                 });
                 std::ostringstream out;
                 for (auto value : hc)
                     out << value << '\n';
                 return out.str();
             },
             [&](core::Tester &tester, unsigned) {
                 std::vector<std::uint64_t> hc(rows.size() * trials,
                                               0);
                 util::parallelFor(0, hc.size(), [&](std::size_t i) {
                     hc[i] = tester.hcFirstSearch(
                         0, rows[i / trials], conditions, pattern,
                         static_cast<unsigned>(i % trials));
                 });
                 std::ostringstream out;
                 for (auto value : hc)
                     out << value << '\n';
                 return out.str();
             }});

        // 2. A BER staircase: each row probed at four hammer counts.
        // The reference re-scores the row per count; the kernel
        // evaluates the key once and counts off the curve.
        const std::vector<std::uint64_t> staircase{
            50'000, 150'000, 300'000, 512'000};
        workloads.push_back(
            {"ber_staircase",
             [&](core::Tester &tester, unsigned) {
                 const auto &engine = tester.module().analytic();
                 std::vector<unsigned> flips(rows.size(), 0);
                 util::parallelFor(0, rows.size(), [&](std::size_t r) {
                     unsigned total = 0;
                     for (auto hammers : staircase)
                         total += referenceBerOfRow(
                             engine, 0, rows[r], conditions, pattern,
                             hammers, 0);
                     flips[r] = total;
                 });
                 std::ostringstream out;
                 for (auto value : flips)
                     out << value << '\n';
                 return out.str();
             },
             [&](core::Tester &tester, unsigned) {
                 std::vector<unsigned> flips(rows.size(), 0);
                 util::parallelFor(0, rows.size(), [&](std::size_t r) {
                     unsigned total = 0;
                     for (auto hammers : staircase)
                         total += tester.berOfRow(0, rows[r],
                                                  conditions, pattern,
                                                  hammers, 0);
                     flips[r] = total;
                 });
                 std::ostringstream out;
                 for (auto value : flips)
                     out << value << '\n';
                 return out.str();
             }});

        std::vector<Measurement> measurements;
        measurements.reserve(workloads.size());
        for (const auto &workload : workloads)
            measurements.push_back(measure(workload));

        // The measurements reconfigured the global pool; restore the
        // width the driver selected for the remaining experiments.
        util::ThreadPool::configure(ctx.scale.jobs);

        const unsigned max_jobs = *std::max_element(
            std::begin(kJobCounts), std::end(kJobCounts));

        std::vector<std::string> job_labels;
        for (unsigned jobs : timed_jobs)
            job_labels.push_back("jobs=" + std::to_string(jobs));
        std::vector<std::string> simd_labels;
        for (rhmodel::kern::Simd simd : simd_variants)
            simd_labels.push_back(rhmodel::kern::name(simd));
        bool all_identical = true;
        auto workloads_json = report::Json::array();
        for (const auto &m : measurements) {
            doc.addSeries("reference_seconds_" + m.name, job_labels,
                          m.referenceSeconds);
            doc.addSeries("kernel_seconds_" + m.name, job_labels,
                          m.kernelSeconds);
            std::vector<double> speedup;
            for (std::size_t j = 0; j < m.referenceSeconds.size();
                 ++j)
                speedup.push_back(m.kernelSeconds[j] > 0.0
                                      ? m.referenceSeconds[j] /
                                            m.kernelSeconds[j]
                                      : 0.0);
            doc.addSeries("speedup_" + m.name, job_labels, speedup);
            doc.addSeries("simd_seconds_" + m.name, simd_labels,
                          m.simdSeconds);
            std::vector<double> simd_speedup;
            for (double seconds : m.simdSeconds)
                simd_speedup.push_back(
                    seconds > 0.0 ? m.simdSeconds.front() / seconds
                                  : 0.0);
            doc.addSeries("simd_speedup_" + m.name, simd_labels,
                          simd_speedup);
            char digest[32];
            auto entry = report::Json::object();
            entry.set("name", m.name);
            std::snprintf(digest, sizeof digest, "%016llx",
                          static_cast<unsigned long long>(
                              m.referenceDigest));
            entry.set("reference_digest", digest);
            std::snprintf(digest, sizeof digest, "%016llx",
                          static_cast<unsigned long long>(
                              m.kernelDigest));
            entry.set("kernel_digest", digest);
            entry.set("identical", m.identical);
            workloads_json.push(std::move(entry));
            if (!m.identical)
                all_identical = false;
        }
        doc.data.set("hardware_threads", hw);
        auto job_counts = report::Json::array();
        for (unsigned jobs : kJobCounts)
            job_counts.push(jobs);
        doc.data.set("job_counts", std::move(job_counts));
        auto timed_json = report::Json::array();
        for (unsigned jobs : timed_jobs)
            timed_json.push(jobs);
        // Timing series only cover widths the hardware can actually
        // run; wider configurations are digest-checked but not timed.
        doc.data.set("timed_job_counts", std::move(timed_json));
        doc.data.set("multithread_numbers_reliable", hw >= max_jobs);
        auto simd_json = report::Json::array();
        for (const auto &label : simd_labels)
            simd_json.push(label);
        doc.data.set("simd_variants", std::move(simd_json));
        doc.data.set("workloads", std::move(workloads_json));
        doc.check("roweval_equivalence", "engine contract",
                  "the RowEval kernel reproduces the probe-per-call "
                  "reference byte for byte at every thread width",
                  all_identical, "digests in data.workloads");

        bench::stampEnvelope(doc, ctx.scale);
        report::JsonWriter().writeFile(out_path, doc.toJson());
        if (table)
            std::printf("\nwrote %s; kernel results byte-identical "
                        "to the probe-per-call reference at every "
                        "width\n",
                        out_path.c_str());
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerRowEvalKernel()
{
    exp::Registry::add(std::make_unique<RowEvalKernel>());
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates Fig. 6: the DRAM command timings of the three
 * aggressor-active-time experiments (Baseline, Aggressor On, and
 * Aggressor Off tests). Builds the actual SoftMC programs, executes
 * them against the device model, and prints the measured per-command
 * schedule and activation windows.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "softmc/host.hh"
#include "softmc/program.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

struct WindowListener : dram::ActivationListener
{
    std::vector<dram::ActivationRecord> records;

    void
    onActivation(const dram::ActivationRecord &record) override
    {
        records.push_back(record);
    }
};

class Fig6CommandTiming final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig6_command_timing";
    }

    std::string
    title() const override
    {
        return "Fig. 6: command timings of the aggressor active-time "
               "experiments";
    }

    std::string
    source() const override
    {
        return "Fig. 6 (Baseline: tRAS/tRP; Aggressor On: stretched "
               "tAggOn; Aggressor Off: stretched tAggOff)";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table) {
            printHeader(title(), source());
            std::printf("Measured activation windows (on-time, "
                        "preceding off-time) of the first hammers:"
                        "\n\n");
        }

        bool windows_stretch = true;
        double baseline_on = 0.0;
        auto run_case = [&](const char *case_name, dram::Ns t_on,
                            dram::Ns t_off) {
            dram::Geometry geometry;
            geometry.banks = 1;
            geometry.subarraysPerBank = 1;
            geometry.rowsPerSubarray = 64;
            geometry.columnsPerRow = 16;
            dram::ModuleInfo info;
            info.label = "F6";
            info.chips = 1;
            info.serial = 6;
            dram::Module module(info, geometry, dram::ddr4_2400(),
                                dram::makeIdentityMapping());
            WindowListener listener;
            module.addListener(&listener);

            softmc::HammerProgramSpec spec;
            spec.aggressorA = 10; // "Row A" of Fig. 6.
            spec.aggressorB = 12; // "Row B".
            spec.hammers = 3;
            spec.tAggOn = t_on;
            spec.tAggOff = t_off;
            const auto program =
                softmc::makeHammerProgram(module.timing(), spec);

            softmc::Host host(module);
            host.run(program);

            if (ctx.table) {
                std::printf("%-18s", case_name);
                for (const auto &record : listener.records) {
                    std::printf(" | ACT(Row%c) %5.1fns PRE %5.1fns",
                                record.physicalRow == 10 ? 'A' : 'B',
                                record.onTime, record.offTime);
                }
                std::printf("\n");
            }

            std::vector<double> on_times, off_times;
            for (const auto &record : listener.records) {
                on_times.push_back(record.onTime);
                off_times.push_back(record.offTime);
            }
            doc.addSeries(std::string(case_name) + "_on_times_ns",
                          on_times);
            doc.addSeries(std::string(case_name) + "_off_times_ns",
                          off_times);

            if (listener.records.empty()) {
                windows_stretch = false;
                return;
            }
            const double measured_on = listener.records.front().onTime;
            if (t_on == 0.0 && t_off == 0.0)
                baseline_on = measured_on;
            // A stretched tAggOn must show up in the measured window.
            if (t_on > 0.0 && measured_on < t_on)
                windows_stretch = false;
        };

        run_case("Baseline", 0.0, 0.0);       // tRAS=34.5, tRP=16.5.
        run_case("Aggressor On", 94.5, 0.0);  // Stretched on-time.
        run_case("Aggressor Off", 0.0, 32.5); // Stretched off-time.

        if (ctx.table) {
            std::printf("\nAll three programs are JEDEC-legal: the "
                        "bank FSM validates every interval (the first "
                        "off-time of each row reports the nominal "
                        "tRP).\n");
            std::printf("Overall attack time per hammer: Baseline "
                        "(tRAS+tRP)=51ns, On (tAggOn+tRP), Off "
                        "(tRAS+tAggOff) -- as Fig. 6 annotates.\n");
        }

        doc.check("fig6_timing_windows", "Fig. 6",
                  "the SoftMC programs execute JEDEC-legally and the "
                  "stretched aggressor windows appear in the measured "
                  "schedule",
                  windows_stretch && baseline_on > 0.0,
                  "baseline on-time " + std::to_string(baseline_on) +
                      " ns");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig6CommandTiming()
{
    exp::Registry::add(std::make_unique<Fig6CommandTiming>());
}

} // namespace rhs::bench

/**
 * @file
 * `rhs-loadgen`: the load generator for the rhs-serve query service.
 *
 * Phase 1 (throughput/correctness): starts an in-process Server on an
 * ephemeral port, drives N concurrent connections of M requests each
 * (a deterministic mix of row_hcfirst / ber / profile_slice /
 * worst_pattern / fuzz_best / ping), and byte-compares every response
 * against the
 * same request executed on a private QueryEngine — the whole server
 * data path minus the socket. p50/p99 latency and throughput land in
 * BENCH_serve.json.
 *
 * Phase 2 (robustness): a second server with a deliberately undersized
 * queue (capacity 1, batch 1) and an artificial service stall; the
 * connections pipeline floods at it to exercise the backpressure path
 * (overloaded replies, never silent drops) and send deadline_ms
 * requests that lapse mid-batch. Every pipelined request must still
 * receive exactly one response, and after stop() the server must have
 * answered everything it ever enqueued — the clean-drain invariant.
 *
 * Options:
 *   --connections N  concurrent connections (default 32; 8 in --smoke)
 *   --requests N     requests per connection (default 32; 6 in --smoke)
 *   --queue N        phase-1 queue capacity (default 256)
 *   --batch N        phase-1 batch size cap (default 16)
 *   --out FILE       JSON output path (default BENCH_serve.json)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "obs/metrics.hh"
#include "report/writer.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/query_engine.hh"
#include "serve/server.hh"
#include "util/logging.hh"

namespace
{

using namespace rhs;
using Clock = std::chrono::steady_clock;

/** Deterministic request mix; row space is kept small enough that the
 *  rowEval cache sees real sharing across connections. */
report::Json
makeRequest(unsigned conn, unsigned index)
{
    auto request = report::Json::object();
    const std::int64_t id = static_cast<std::int64_t>(conn) * 100000 +
                            index;
    const unsigned row = 1 + (conn * 37 + index * 11) % 120;
    const char mfr[2] = {"ABCD"[(conn + index) % 4], '\0'};

    switch (index % 6) {
      case 0:
        request.set("op", "row_hcfirst");
        request.set("id", id);
        request.set("mfr", mfr);
        request.set("row", row);
        request.set("temperature", 50.0 + 5.0 * (index % 9));
        request.set("trial", index % 3);
        break;
      case 1:
        request.set("op", "ber");
        request.set("id", id);
        request.set("mfr", mfr);
        request.set("row", row);
        request.set("hammers", 150'000);
        break;
      case 2:
        request.set("op", "profile_slice");
        request.set("id", id);
        request.set("mfr", mfr);
        request.set("row0", 1 + (conn * 13 + index * 7) % 100);
        request.set("count", 4);
        break;
      case 3:
        request.set("op", "ping");
        request.set("id", id);
        break;
      case 4:
        // Small deadline-free search: deterministic, so the routed
        // reply is byte-identical to the direct engine's.
        request.set("op", "fuzz_best");
        request.set("id", id);
        request.set("mfr", mfr);
        request.set("seed", conn * 1000 + index);
        request.set("row0", 1 + (conn * 17 + index * 5) % 60);
        request.set("count", 2);
        request.set("population", 6);
        request.set("generations", 2);
        break;
      default:
        request.set("op", "worst_pattern");
        request.set("id", id);
        request.set("mfr", mfr);
        {
            auto rows = report::Json::array();
            rows.push(row);
            rows.push(row + 2);
            rows.push(row + 4);
            request.set("rows", std::move(rows));
        }
        break;
    }
    return request;
}

/** The response bytes phase 1 must observe for `body`. */
std::string
expectedResponse(serve::QueryEngine &direct, const report::Json &request,
                 const std::string &body)
{
    if (request.at("op").asString() == "ping") {
        auto result = report::Json::object();
        result.set("protocol", serve::kProtocol);
        return serve::serialize(serve::makeResult(
            request.at("id").asInt(), std::move(result)));
    }
    return direct.executeRaw(body);
}

class ServeLoadgen final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "serve_loadgen";
    }

    std::string
    title() const override
    {
        return "rhs-serve load generator: batched query service under "
               "concurrent clients";
    }

    std::string
    source() const override
    {
        return "rhs-rpc/1 responses byte-identical to direct engine "
               "calls";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"connections", "32",
                 "concurrent client connections (8 under --smoke)"},
                {"requests", "32",
                 "requests per connection (6 under --smoke)"},
                {"queue", "256", "phase-1 request queue capacity"},
                {"batch", "16", "phase-1 batch size cap"},
                {"out", "BENCH_serve.json", "JSON output path"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        const auto connections = static_cast<unsigned>(ctx.cli.getInt(
            "connections", ctx.scale.smoke ? 8 : 32));
        const auto requests = static_cast<unsigned>(
            ctx.cli.getInt("requests", ctx.scale.smoke ? 6 : 32));
        const auto queue_capacity = static_cast<unsigned>(
            ctx.cli.getInt("queue", 256));
        const auto batch_max =
            static_cast<unsigned>(ctx.cli.getInt("batch", 16));
        const std::string out_path =
            ctx.cli.get("out", "BENCH_serve.json");
        RHS_ASSERT(connections > 0 && requests > 0,
                   "need at least one connection and request");

        if (ctx.table) {
            bench::printHeader(title(), source());
            std::printf("connections %u, requests/connection %u, "
                        "queue %u, batch %u\n\n",
                        connections, requests, queue_capacity,
                        batch_max);
        }

        // --- Phase 1: correctness + latency/throughput --------------
        serve::ServerConfig config;
        config.queueCapacity = queue_capacity;
        config.batchMax = batch_max;
        config.maxConnections = connections + 8;
        serve::Server server(config);
        server.start();

        std::vector<std::vector<std::string>> bodies(connections);
        std::vector<std::vector<report::Json>> parsed(connections);
        for (unsigned c = 0; c < connections; ++c) {
            for (unsigned k = 0; k < requests; ++k) {
                auto request = makeRequest(c, k);
                bodies[c].push_back(serve::serialize(request));
                parsed[c].push_back(std::move(request));
            }
        }

        std::vector<std::vector<std::string>> replies(
            connections, std::vector<std::string>(requests));
        // Client-observed latency goes through the same histogram type
        // and bucket layout as the server's latency_ms metric, so the
        // loadgen's p50/p99 and the stats op's are computed by one
        // quantile implementation (obs::HistogramData::quantile) and
        // are comparable by construction. observe() is thread-safe, so
        // the driver threads record directly.
        obs::Histogram latency_hist(obs::latencyBoundsMs());
        std::vector<unsigned> transport_errors(connections, 0);

        const auto sweep_start = Clock::now();
        {
            std::vector<std::thread> drivers;
            drivers.reserve(connections);
            for (unsigned c = 0; c < connections; ++c) {
                drivers.emplace_back([&, c] {
                    serve::Client client;
                    if (!client.connect("127.0.0.1", server.port())) {
                        transport_errors[c] = requests;
                        return;
                    }
                    for (unsigned k = 0; k < requests; ++k) {
                        const auto t0 = Clock::now();
                        replies[c][k] = client.callRaw(bodies[c][k]);
                        const std::chrono::duration<double> dt =
                            Clock::now() - t0;
                        latency_hist.observe(dt.count() * 1e3);
                        if (replies[c][k].empty())
                            ++transport_errors[c];
                    }
                });
            }
            for (auto &driver : drivers)
                driver.join();
        }
        const std::chrono::duration<double> sweep_wall =
            Clock::now() - sweep_start;

        // Shut phase 1 down through the protocol, then drain.
        bool shutdown_acked = false;
        {
            serve::Client control;
            if (control.connect("127.0.0.1", server.port()))
                shutdown_acked = control.shutdownServer();
        }
        server.waitForStopRequest();
        server.stop();
        const auto stats1 = server.stats();

        // Verify every reply against the direct engine path.
        serve::QueryEngine direct;
        unsigned mismatches = 0, transports = 0;
        for (unsigned c = 0; c < connections; ++c) {
            transports += transport_errors[c];
            for (unsigned k = 0; k < requests; ++k) {
                if (replies[c][k].empty())
                    continue; // Counted as a transport error already.
                if (replies[c][k] !=
                    expectedResponse(direct, parsed[c][k],
                                     bodies[c][k]))
                    ++mismatches;
            }
        }

        const obs::HistogramData latency = latency_hist.snapshot();
        const double p50 = latency.quantile(0.50);
        const double p99 = latency.quantile(0.99);
        const double throughput =
            static_cast<double>(connections) * requests /
            sweep_wall.count();

        if (ctx.table) {
            std::printf("  sweep    %u requests in %.3f s  "
                        "(%.0f req/s)\n",
                        connections * requests, sweep_wall.count(),
                        throughput);
            std::printf("  latency  p50 %.3f ms  p99 %.3f ms  "
                        "max %.3f ms\n",
                        p50, p99, latency.max);
            std::printf("  verify   %u mismatches, %u transport "
                        "errors, %llu batches (max %llu)\n\n",
                        mismatches, transports,
                        static_cast<unsigned long long>(
                            stats1.batches),
                        static_cast<unsigned long long>(
                            stats1.maxBatch));
        }

        // --- Phase 2: backpressure + deadlines ----------------------
        // Capacity 1 and a stalled dispatcher guarantee the queue is
        // full while a flood is in flight, so `overloaded` replies are
        // deterministic to provoke, and a 1 ms deadline lapses before
        // its batch runs.
        serve::ServerConfig tiny;
        tiny.queueCapacity = 1;
        tiny.batchMax = 1;
        tiny.serviceDelayUs = 5000;
        tiny.maxConnections = connections + 8;
        serve::Server bp_server(tiny);
        bp_server.start();

        const unsigned bp_connections = std::min(connections, 8u);
        const unsigned bp_requests = 16;
        std::vector<unsigned> overloaded_per_conn(bp_connections, 0),
            deadline_per_conn(bp_connections, 0),
            answered_per_conn(bp_connections, 0);
        {
            std::vector<std::thread> drivers;
            for (unsigned c = 0; c < bp_connections; ++c) {
                drivers.emplace_back([&, c] {
                    serve::Client client;
                    if (!client.connect("127.0.0.1",
                                        bp_server.port()))
                        return;
                    for (unsigned k = 0; k < bp_requests; ++k) {
                        auto request = makeRequest(c, 5 * k + 1);
                        if (k % 4 == 3)
                            request.set("deadline_ms", 1);
                        client.sendRaw(serve::serialize(request));
                    }
                    std::string reply;
                    while (answered_per_conn[c] < bp_requests &&
                           client.recvRaw(reply)) {
                        ++answered_per_conn[c];
                        report::Json response;
                        std::string parse_error;
                        if (!report::Json::parse(reply, response,
                                                 parse_error))
                            continue;
                        if (serve::isError(response,
                                           serve::err::kOverloaded))
                            ++overloaded_per_conn[c];
                        if (serve::isError(
                                response,
                                serve::err::kDeadlineExceeded))
                            ++deadline_per_conn[c];
                    }
                });
            }
            for (auto &driver : drivers)
                driver.join();
        }
        bp_server.stop();
        const auto stats2 = bp_server.stats();

        unsigned overloaded = 0, deadline_expired = 0, answered = 0;
        for (unsigned c = 0; c < bp_connections; ++c) {
            overloaded += overloaded_per_conn[c];
            deadline_expired += deadline_per_conn[c];
            answered += answered_per_conn[c];
        }
        const bool all_answered =
            answered == bp_connections * bp_requests;
        const bool drained =
            stats1.requestsEnqueued == stats1.responsesSent &&
            stats2.requestsEnqueued == stats2.responsesSent;

        if (ctx.table)
            std::printf("  backpressure  %u/%u answered, %u "
                        "overloaded, %u deadline_exceeded\n",
                        answered, bp_connections * bp_requests,
                        overloaded, deadline_expired);

        // --- Document -----------------------------------------------
        doc.addSeries("latency_ms", {"p50", "p99", "max"},
                      {p50, p99, latency.max});
        doc.addSeries("throughput_rps", {throughput});
        doc.data.set("connections", connections);
        doc.data.set("requests_per_connection", requests);
        doc.data.set("total_requests", connections * requests);
        doc.data.set("mismatches", mismatches);
        doc.data.set("transport_errors", transports);
        doc.data.set("shutdown_acked", shutdown_acked);
        doc.data.set("overloaded_replies", overloaded);
        doc.data.set("deadline_replies", deadline_expired);
        doc.data.set("backpressure_answered", answered);
        doc.data.set("backpressure_expected",
                     bp_connections * bp_requests);
        auto server_stats = report::Json::object();
        server_stats.set("sweep", server.statsJson());
        server_stats.set("backpressure", bp_server.statsJson());
        doc.data.set("server", std::move(server_stats));

        doc.check("serve_identical", "serving contract",
                  "every served response is byte-identical to the "
                  "direct engine call",
                  mismatches == 0 && transports == 0,
                  std::to_string(mismatches) + " mismatches, " +
                      std::to_string(transports) +
                      " transport errors over " +
                      std::to_string(connections * requests) +
                      " requests");
        doc.check("serve_backpressure", "robustness invariant",
                  "an undersized queue answers overflow with explicit "
                  "'overloaded' errors, never silent drops",
                  overloaded >= 1 && all_answered,
                  std::to_string(overloaded) + " overloaded replies; " +
                      std::to_string(answered) + "/" +
                      std::to_string(bp_connections * bp_requests) +
                      " pipelined requests answered");
        doc.check("serve_clean_drain", "robustness invariant",
                  "shutdown drains: every enqueued request is "
                  "answered before the server stops",
                  drained && shutdown_acked,
                  "enqueued==responses for both servers; shutdown "
                  "acked: " +
                      std::string(shutdown_acked ? "yes" : "no"));

        bench::stampEnvelope(doc, ctx.scale);
        report::JsonWriter().writeFile(out_path, doc.toJson());
        if (ctx.table)
            std::printf("\nwrote %s\n", out_path.c_str());
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerServeLoadgen()
{
    exp::Registry::add(std::make_unique<ServeLoadgen>());
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates Tables 2 and 4: the tested DRAM module inventory.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Table2Modules final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "table2_modules";
    }

    std::string
    title() const override
    {
        return "Table 2/4: Characteristics of the tested DRAM modules";
    }

    std::string
    source() const override
    {
        return "Table 2 and Table 4 (Appendix A)";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table) {
            printHeader(title(), source());
            std::printf("%-5s %-5s %-26s %-10s %-22s %-6s %-10s %-5s "
                        "%-4s %-5s %-7s %-7s\n",
                        "Mfr.", "Type", "Chip Identifier", "Vendor",
                        "Module Identifier", "MT/s", "Date", "Dens",
                        "Die", "Org", "#Mods", "#Chips");
            printRule();
        }

        unsigned ddr4_chips = 0, ddr3_chips = 0;
        for (const auto &entry : rhmodel::paperInventory()) {
            const unsigned chips = entry.modules * entry.chipsPerModule;
            if (entry.standard == dram::Standard::DDR4)
                ddr4_chips += chips;
            else
                ddr3_chips += chips;
            if (ctx.table) {
                std::printf("%-5s %-5s %-26s %-10s %-22s %-6u %-10s "
                            "%-5s %-4s %-5s %-7u %-7u\n",
                            rhmodel::to_string(entry.mfr).c_str(),
                            dram::to_string(entry.standard).c_str(),
                            entry.chipIdentifier.c_str(),
                            entry.moduleVendor.c_str(),
                            entry.moduleIdentifier.c_str(),
                            entry.frequencyMTs, entry.dateCode.c_str(),
                            entry.density.c_str(),
                            entry.dieRevision.c_str(),
                            entry.organization.c_str(), entry.modules,
                            chips);
            }
        }
        if (ctx.table) {
            printRule();
            std::printf("Totals: %u DDR4 chips, %u DDR3 chips "
                        "(paper: 248 DDR4 + 24 DDR3)\n",
                        ddr4_chips, ddr3_chips);
            std::printf("\nSimulated counterparts instantiated per "
                        "profile:\n");
        }

        std::vector<std::string> mfr_labels;
        std::vector<double> chip_counts;
        for (auto mfr : rhmodel::allMfrs) {
            rhmodel::SimulatedDimm dimm(mfr, 0);
            const auto &p = dimm.profile();
            if (ctx.table) {
                std::printf("  %s  chips=%u  mapping=%s  (derived: "
                            "wCouple=%.3f kOn=%.3f cellSigma=%.3f)\n",
                            dimm.label().c_str(),
                            dimm.module().chipCount(),
                            dimm.module().rowMapping().name().c_str(),
                            p.wCouple, p.kOn, p.cellSigma);
            }
            mfr_labels.push_back(rhmodel::to_string(mfr));
            chip_counts.push_back(dimm.module().chipCount());
        }

        doc.addSeries("chips_per_simulated_module", mfr_labels,
                      chip_counts);
        doc.addSeries("inventory_chip_totals", {"ddr4", "ddr3"},
                      {static_cast<double>(ddr4_chips),
                       static_cast<double>(ddr3_chips)});
        doc.check("inventory_totals", "Table 2 / Table 4",
                  "the inventory sums to the paper's 248 DDR4 and 24 "
                  "DDR3 chips",
                  ddr4_chips == 248 && ddr3_chips == 24,
                  std::to_string(ddr4_chips) + " DDR4 + " +
                      std::to_string(ddr3_chips) + " DDR3 chips");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerTable2Modules()
{
    exp::Registry::add(std::make_unique<Table2Modules>());
}

} // namespace rhs::bench

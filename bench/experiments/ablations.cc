/**
 * @file
 * Model ablations: switch off one mechanism of the fault model at a
 * time and show which paper observation it carries. This is the
 * validation DESIGN.md calls for — each observation must hinge on the
 * mechanism we attribute it to, not fall out of everything at once.
 *
 *   ablation                      -> observation that collapses
 *   ------------------------------------------------------------------
 *   trial noise off               -> Table 3's ~1% in-range gap cells
 *   weak-row tail off             -> Obsv. 12's 2x-vulnerable rows
 *   flat temperature response     -> Obsvs. 1-4 (ranges, BER trends)
 *   design column component off   -> Obsv. 14's CV~0 column mass
 */

#include <cstdio>
#include <memory>
#include <numeric>

#include "bench_common.hh"
#include "core/spatial.hh"
#include "core/temp_analysis.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

std::vector<unsigned>
sampleRows(unsigned from, unsigned count)
{
    std::vector<unsigned> rows(count);
    std::iota(rows.begin(), rows.end(), from);
    return rows;
}

struct Variant
{
    std::string name;
    rhmodel::ManufacturerProfile profile;
};

class Ablations final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "ablations";
    }

    std::string
    title() const override
    {
        return "Model ablations";
    }

    std::string
    source() const override
    {
        return "validation of the DESIGN.md mechanism attributions";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table)
            printHeader(title(), source());

        const auto &baseline = rhmodel::profileFor(rhmodel::Mfr::B);

        std::vector<Variant> variants;
        variants.push_back({"baseline", baseline});

        {
            auto p = baseline;
            p.trialNoiseSigma = 0.0;
            variants.push_back({"no trial noise", p});
        }
        {
            auto p = baseline;
            p.weakRowFraction = 0.0;
            variants.push_back({"no weak-row tail", p});
        }
        {
            auto p = baseline;
            // Flatten every temperature response: huge widths, one
            // mode.
            p.tempMixture = {
                {1.0, 70.0, 10.0, 500.0, 600.0, 1.0, 0.0}};
            variants.push_back({"flat temperature", p});
        }
        {
            auto p = baseline;
            p.designMix = 0.0; // Process-only column variation.
            variants.push_back({"no design columns", p});
        }

        if (ctx.table) {
            std::printf("%-18s %-10s %-10s %-12s %-10s %-10s\n",
                        "variant", "noGap%", "fullRange%",
                        "P5/min ratio", "CV0 cols%", "BER@90/50");
            printRule();
        }

        std::vector<std::string> labels;
        std::vector<double> no_gap_pct, p5_ratios, cv0_pct,
            ber_trends;
        for (auto &variant : variants) {
            rhmodel::DimmOptions options;
            options.customProfile = &variant.profile;
            rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0, options);
            core::Tester tester(dimm);
            const rhmodel::DataPattern pattern(
                rhmodel::PatternId::Checkered);

            // Temperature structure.
            const auto rows = sampleRows(100, 60);
            const auto ranges =
                core::analyzeTempRanges(tester, 0, rows, pattern);

            // Row-variation structure.
            const auto hcs = core::rowHcFirstSurvey(
                tester, 0, sampleRows(300, 150), pattern);
            const double p5_ratio =
                hcs.empty() ? 0.0
                            : stats::quantile(hcs, 0.05) /
                                  stats::minValue(hcs);

            // Column structure (needs volume).
            const auto counts = core::columnFlipSurvey(
                tester, 0, sampleRows(500, 1500), pattern);
            const auto variation =
                core::analyzeColumnVariation(counts);

            // Temperature trend.
            rhmodel::Conditions cold, hot;
            hot.temperature = 90.0;
            double ber_cold = 0.0, ber_hot = 0.0;
            for (unsigned row : rows) {
                ber_cold += tester.berOfRow(0, row, cold, pattern);
                ber_hot += tester.berOfRow(0, row, hot, pattern);
            }

            const double ber_trend =
                ber_cold > 0.0 ? ber_hot / ber_cold : 0.0;
            if (ctx.table)
                std::printf("%-18s %-10.2f %-10.1f %-12.2f %-10.1f "
                            "%-10.2f\n",
                            variant.name.c_str(),
                            100.0 * ranges.noGapFraction(),
                            100.0 * ranges.fullRangeFraction(),
                            p5_ratio,
                            100.0 *
                                variation.designConsistentFraction(),
                            ber_trend);

            labels.push_back(variant.name);
            no_gap_pct.push_back(100.0 * ranges.noGapFraction());
            p5_ratios.push_back(p5_ratio);
            cv0_pct.push_back(
                100.0 * variation.designConsistentFraction());
            ber_trends.push_back(ber_trend);
        }

        if (ctx.table) {
            std::printf("\nReading: 'no trial noise' -> noGap hits "
                        "100%% (gaps are measurement noise). 'no "
                        "weak-row tail' -> P5/min falls toward 1 (the "
                        "2x rows are the tail). 'flat temperature' -> "
                        "fullRange saturates and the 90/50 trend "
                        "vanishes. 'no design columns' -> the CV~0 "
                        "column mass disappears.\n");
        }

        doc.addSeries("no_gap_pct", labels, no_gap_pct);
        doc.addSeries("p5_min_ratio", labels, p5_ratios);
        doc.addSeries("cv0_columns_pct", labels, cv0_pct);
        doc.addSeries("ber_90_over_50", labels, ber_trends);
        // Index 0 is the baseline; 1-4 the ablated variants above.
        doc.check("ablation_trial_noise", "Table 3 takeaway",
                  "removing trial noise closes the in-range gaps "
                  "(noGap reaches 100%)",
                  no_gap_pct[1] >= 100.0 - 1e-9 &&
                      no_gap_pct[1] >= no_gap_pct[0]);
        doc.check("ablation_weak_rows", "Obsv. 12",
                  "removing the weak-row tail shrinks the P5/min "
                  "ratio toward 1",
                  p5_ratios[2] <= p5_ratios[0]);
        doc.check("ablation_design_columns", "Obsv. 14",
                  "removing the design component erases the CV~0 "
                  "column mass",
                  cv0_pct[4] <= cv0_pct[0]);
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerAblations()
{
    exp::Registry::add(std::make_unique<Ablations>());
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates Fig. 9: the distribution of average bit flips per victim
 * row across chips as the bank precharged time (tAggOff) grows from
 * tRP (16.5 ns) to 40.5 ns.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/timing_analysis.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Fig9BerVsTaggOff final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig9_ber_vs_taggoff";
    }

    std::string
    title() const override
    {
        return "Fig. 9: bit flips per victim row vs aggressor row "
               "off-time (tAggOff)";
    }

    std::string
    source() const override
    {
        return "Fig. 9 (paper: BER /6.3 / /2.9 / /4.9 / /5.0 for "
               "A/B/C/D at 40.5 ns; Obsv. 10)";
    }

    exp::ScaleDefaults
    scaleDefaults() const override
    {
        // The off-time sweep needs enough rows for flips to survive
        // the longest precharged window; the per-chip CV is undefined
        // on an all-zero sample.
        exp::ScaleDefaults defaults;
        defaults.smokeRows = 60;
        return defaults;
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table) {
            printHeader(title(), source());
            std::printf("%-8s %-9s %-40s %-10s\n", "Module", "tAggOff",
                        "box plot of flips/row per chip", "mean");
            printRule();
        }

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        std::vector<std::string> labels;
        std::vector<double> reductions;
        bool ber_shrinks = true;
        bool any_data = false;
        for (const auto &entry : fleet) {
            const auto sweep = core::sweepAggressorOffTime(
                *entry.tester, 0, entry.rows, entry.wcdp);
            std::vector<double> means;
            for (std::size_t v = 0; v < sweep.values.size(); ++v) {
                const auto &data = sweep.flipsPerRowPerChip[v];
                means.push_back(stats::mean(data));
                if (!ctx.table)
                    continue;
                const auto box = stats::boxSummary(data);
                std::printf("%-8s %6.1fns  [%6.2f |%6.2f {%6.2f} "
                            "%6.2f| %6.2f]  %8.2f\n",
                            entry.dimm->label().c_str(),
                            sweep.values[v], box.whiskerLow, box.q1,
                            box.median, box.q3, box.whiskerHigh,
                            stats::mean(data));
            }
            const double reduction =
                sweep.berRatio() > 0.0 ? 1.0 / sweep.berRatio() : 0.0;
            if (ctx.table) {
                std::printf("%-8s BER reduction (16.5/40.5): %.2fx   "
                            "CV change: %+.0f%%\n",
                            entry.dimm->label().c_str(), reduction,
                            100.0 * sweep.berCvChange());
                printRule();
            }

            any_data = true;
            labels.push_back(entry.dimm->label());
            reductions.push_back(reduction);
            doc.addSeries("mean_flips_per_row_" + entry.dimm->label(),
                          means);
            if (reduction <= 1.0)
                ber_shrinks = false;
        }

        if (ctx.table) {
            std::printf("Takeaway 4: victims become less vulnerable "
                        "when the bank stays precharged longer.\n");
        }

        doc.addSeries("ber_reduction", labels, reductions);
        doc.check("obsv10_ber_shrinks", "Obsv. 10 / Fig. 9",
                  "BER at tAggOff=40.5 ns is below the tRP baseline "
                  "for every module",
                  any_data && ber_shrinks,
                  any_data ? "per-module factors in series ber_reduction"
                           : "no flips at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig9BerVsTaggOff()
{
    exp::Registry::add(std::make_unique<Fig9BerVsTaggOff>());
}

} // namespace rhs::bench

/**
 * @file
 * Supporting experiment for §2.3/§3: in-DRAM TRR (the mitigation the
 * paper's methodology disables) is defeated by many-sided patterns
 * that overflow its tracker — the reason "RowHammer-free" DDR4 chips
 * still flip (TRRespass). Also shows the DDR5 RFM + guaranteed-queue
 * route the paper points to for future defenses.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "defense/evaluate.hh"
#include "defense/rfm.hh"
#include "defense/trr.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;
using namespace rhs::defense;

class TrrespassBypass final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "trrespass_bypass";
    }

    std::string
    title() const override
    {
        return "TRRespass: many-sided attacks vs in-DRAM TRR";
    }

    std::string
    source() const override
    {
        return "context for §2.3 (TRR 'without success, as shown by "
               "[27,39]') and §3 (9.6K-25K HCfirst on TRR chips)";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"hammers", "80000", "hammer rounds per attack"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        const auto hammers = static_cast<std::uint64_t>(
            ctx.cli.getInt("hammers", 80'000));

        if (ctx.table)
            printHeader(title(), source());

        auto &module = ctx.fleet.module(rhmodel::Mfr::B, 0, 4);
        auto &dimm = *module.dimm;
        const rhmodel::DataPattern pattern(
            rhmodel::PatternId::Checkered);

        if (ctx.table)
            std::printf("Attack: synchronized many-sided hammering, "
                        "%llu rounds, Mfr. B module\n\n",
                        static_cast<unsigned long long>(hammers));

        // Pick, per attack width, a position whose *unprotected*
        // victims (not adjacent to the two most recent aggressors,
        // which even a 2-entry tracker always protects) include a
        // weak row.
        const rhmodel::DataPattern scan_pattern(
            rhmodel::PatternId::Checkered);
        auto weak_position = [&](unsigned sides) {
            rhmodel::Conditions conditions;
            for (unsigned base = 100; base < 4000;
                 base += 2 * sides) {
                const auto attack =
                    rhmodel::HammerAttack::manySided(0, base, sides);
                const auto victims = attack.sandwichedVictims();
                // For wide attacks, skip the victims a 2-entry
                // tracker always protects (those next to the last
                // two aggressors).
                const std::size_t scanned =
                    victims.size() > 2 ? victims.size() - 2
                                       : victims.size();
                for (std::size_t v = 0; v < scanned; ++v) {
                    const double hc = dimm.analytic().rowHcFirst(
                        victims[v], attack, conditions, scan_pattern,
                        0);
                    if (hc < 0.75 * static_cast<double>(hammers))
                        return base;
                }
            }
            return 100u;
        };
        if (ctx.table) {
            std::printf("%-8s %-22s %-8s %-11s\n", "sides",
                        "mitigation", "flips", "refreshes");
            printRule();
        }

        std::vector<std::string> labels;
        std::vector<double> undefended_flips, small_trr_flips,
            rfm_flips;
        bool rfm_holds = true;
        for (unsigned sides : {2u, 4u, 8u}) {
            AttackConfig config;
            config.attack = rhmodel::HammerAttack::manySided(
                0, weak_position(sides), sides);
            config.hammers = hammers;
            // REF period synchronized with the attack round
            // (SMASH-style).
            config.refreshEveryActivations = sides * 19;

            const auto none =
                evaluateUndefended(dimm, pattern, config);
            if (ctx.table)
                std::printf("%-8u %-22s %-8u %-11s\n", sides, "none",
                            none.flips, "-");

            unsigned tracker2_flips = 0;
            for (unsigned capacity : {2u, 8u}) {
                InDramTrr trr(capacity);
                const auto result =
                    evaluateDefense(dimm, trr, pattern, config);
                char label[32];
                std::snprintf(label, sizeof(label),
                              "TRR (tracker=%u)", capacity);
                if (ctx.table)
                    std::printf("%-8u %-22s %-8u %-11llu\n", sides,
                                label, result.flips,
                                static_cast<unsigned long long>(
                                    result.refreshes));
                if (capacity == 2)
                    tracker2_flips = result.flips;
            }

            Rfm rfm(16, 16);
            AttackConfig rfm_config = config;
            rfm_config.refreshEveryActivations = 0;
            const auto rfm_result =
                evaluateDefense(dimm, rfm, pattern, rfm_config);
            if (ctx.table) {
                std::printf("%-8u %-22s %-8u %-11llu\n", sides,
                            "RFM+SilverBullet", rfm_result.flips,
                            static_cast<unsigned long long>(
                                rfm_result.refreshes));
                printRule();
            }

            labels.push_back(std::to_string(sides) + "-sided");
            undefended_flips.push_back(
                static_cast<double>(none.flips));
            small_trr_flips.push_back(
                static_cast<double>(tracker2_flips));
            rfm_flips.push_back(
                static_cast<double>(rfm_result.flips));
            if (rfm_result.flips > 0)
                rfm_holds = false;
        }

        if (ctx.table) {
            std::printf("Takeaway: a sampling tracker smaller than "
                        "the attack's aggressor set leaks flips under "
                        "synchronized patterns; RFM's "
                        "guaranteed-capacity queue does not.\n");
        }

        doc.addSeries("undefended_flips", labels, undefended_flips);
        doc.addSeries("trr2_flips", labels, small_trr_flips);
        doc.addSeries("rfm_flips", labels, rfm_flips);
        doc.check("trrespass_rfm_holds", "Sections 2.3 / 3",
                  "the RFM guaranteed-capacity queue admits zero "
                  "flips where a 2-entry TRR tracker leaks",
                  rfm_holds, "flips in series rfm_flips");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerTrrespassBypass()
{
    exp::Registry::add(std::make_unique<TrrespassBypass>());
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates Fig. 11: the distribution of HCfirst across vulnerable
 * DRAM rows, per module, with the Obsv. 12 percentile ratios.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/spatial.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Fig11HcFirstRows final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig11_hcfirst_rows";
    }

    std::string
    title() const override
    {
        return "Fig. 11: distribution of HCfirst across vulnerable "
               "DRAM rows";
    }

    std::string
    source() const override
    {
        return "Fig. 11 (paper: P1/P5/P10 at >= 1.6x/2.0x/2.2x the "
               "most vulnerable row; min ~33K for a Mfr. B module; "
               "Obsv. 12)";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table) {
            printHeader(title(), source());
            std::printf("%-8s %-7s %-9s", "Module", "#vuln", "min");
            for (const char *p : {"P1", "P5", "P10", "P25", "P50",
                                  "P75", "P90", "P95", "P99"})
                std::printf(" %8s", p);
            std::printf("\n");
            printRule();
        }

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        std::vector<std::string> labels;
        std::vector<double> p5_ratios;
        bool spread_exists = true;
        bool any_data = false;
        for (const auto &entry : fleet) {
            const auto hcs = core::rowHcFirstSurvey(
                *entry.tester, 0, entry.rows, entry.wcdp);
            if (hcs.empty())
                continue;
            if (ctx.table) {
                std::printf("%-8s %-7zu %8.1fK",
                            entry.dimm->label().c_str(), hcs.size(),
                            stats::minValue(hcs) / 1e3);
                for (double q : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75,
                                 0.90, 0.95, 0.99})
                    std::printf(" %7.1fK",
                                stats::quantile(hcs, q) / 1e3);
                std::printf("\n");
            }

            const auto summary = core::summarizeRowVariation(hcs);
            if (ctx.table) {
                std::printf("%-8s ratios vs most vulnerable row: "
                            "P1=%.2fx  P5=%.2fx  P10=%.2fx\n",
                            "", summary.p1Ratio, summary.p5Ratio,
                            summary.p10Ratio);
            }

            any_data = true;
            labels.push_back(entry.dimm->label());
            p5_ratios.push_back(summary.p5Ratio);
            std::vector<double> quantiles;
            for (double q : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90,
                             0.95, 0.99})
                quantiles.push_back(stats::quantile(hcs, q));
            doc.addSeries("hcfirst_quantiles_" + entry.dimm->label(),
                          {"P1", "P5", "P10", "P25", "P50", "P75",
                           "P90", "P95", "P99"},
                          quantiles);
            // The 2x spread needs volume; at any scale the most
            // vulnerable row must sit at or below the P5 row.
            if (summary.p5Ratio < 1.0)
                spread_exists = false;
        }

        if (ctx.table) {
            std::printf("\nObsv. 12 check: a small fraction of rows "
                        "is about 2x more vulnerable than the other "
                        "95%%.\n");
        }

        doc.addSeries("p5_ratio", labels, p5_ratios);
        doc.check("obsv12_weak_rows", "Obsv. 12 / Fig. 11",
                  "the most vulnerable rows flip at a fraction of the "
                  "P5 row's hammer count (ratio >= 1, approaching 2x "
                  "at paper scale)",
                  any_data && spread_exists,
                  any_data ? "per-module P5/min ratios in series "
                             "p5_ratio"
                           : "no vulnerable rows at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig11HcFirstRows()
{
    exp::Registry::add(std::make_unique<Fig11HcFirstRows>());
}

} // namespace rhs::bench

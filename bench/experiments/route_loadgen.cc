/**
 * @file
 * `route_loadgen`: the load generator for the rhs-route sharded fleet.
 *
 * Phase 1 (routed correctness): starts a 4-shard in-process fleet
 * (shard 0 with two replicas, one rhs-route Router in front) and
 * drives N concurrent client connections of M requests each through
 * the router. Every reply is byte-compared against the same request
 * executed on a private QueryEngine — the router plus a full shard
 * data path must be invisible. p50/p99 latency, throughput, and the
 * router's fan-out metrics land in BENCH_route.json.
 *
 * Phase 2 (failover): a second identical sweep, except shard 0's
 * primary replica is stopped once half the requests have completed.
 * The router must fail the shard's traffic over to the standby
 * mid-run: every request still gets exactly one byte-correct reply,
 * zero error replies surface, and the router's failover counter
 * proves the switch actually happened.
 *
 * Phase 3 (idle-connection scale): one shard must sustain >= 10000
 * idle connections (256 in --smoke) while still answering pings.
 * At full scale the client fds live in a helper process
 * (`rhs-route-idle`): this container caps a process at 20000 fds and
 * loopback sockets exist twice — 10k server-side + 10k client-side
 * does not fit one fd table.
 *
 * Options:
 *   --connections N  concurrent connections (default 16; 8 in --smoke)
 *   --requests N     requests per connection (default 32; 6 in --smoke)
 *   --idle N         idle-connection gate (default 10000; 256 smoke)
 *   --out FILE       JSON output path (default BENCH_route.json)
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <sys/resource.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_common.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "obs/metrics.hh"
#include "report/writer.hh"
#include "route/router.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/query_engine.hh"
#include "serve/server.hh"
#include "util/logging.hh"

namespace
{

using namespace rhs;
using Clock = std::chrono::steady_clock;

/**
 * Deterministic request mix. Unlike serve_loadgen's, every request
 * carries an explicit bank so the (mfr, module, bank) routing keys
 * spread across all four shards; the row space stays small enough
 * that the rowEval caches see real sharing.
 */
report::Json
makeRequest(unsigned conn, unsigned index)
{
    auto request = report::Json::object();
    const std::int64_t id = static_cast<std::int64_t>(conn) * 100000 +
                            index;
    const unsigned row = 1 + (conn * 37 + index * 11) % 120;
    const char mfr[2] = {"ABCD"[(conn + index) % 4], '\0'};
    const unsigned bank = (conn * 3 + index) % 4; // 4 banks per chip.

    switch (index % 6) {
      case 0:
        request.set("op", "row_hcfirst");
        request.set("id", id);
        request.set("mfr", mfr);
        request.set("bank", bank);
        request.set("row", row);
        request.set("temperature", 50.0 + 5.0 * (index % 9));
        request.set("trial", index % 3);
        break;
      case 1:
        request.set("op", "ber");
        request.set("id", id);
        request.set("mfr", mfr);
        request.set("bank", bank);
        request.set("row", row);
        request.set("hammers", 150'000);
        break;
      case 2:
        request.set("op", "profile_slice");
        request.set("id", id);
        request.set("mfr", mfr);
        request.set("bank", bank);
        request.set("row0", 1 + (conn * 13 + index * 7) % 100);
        request.set("count", 4);
        break;
      case 3:
        request.set("op", "ping");
        request.set("id", id);
        break;
      case 4:
        // Small deadline-free search: deterministic, so the routed
        // reply is byte-identical to the direct engine's.
        request.set("op", "fuzz_best");
        request.set("id", id);
        request.set("mfr", mfr);
        request.set("bank", bank);
        request.set("seed", conn * 1000 + index);
        request.set("row0", 1 + (conn * 17 + index * 5) % 60);
        request.set("count", 2);
        request.set("population", 6);
        request.set("generations", 2);
        break;
      default:
        request.set("op", "worst_pattern");
        request.set("id", id);
        request.set("mfr", mfr);
        request.set("bank", bank);
        {
            auto rows = report::Json::array();
            rows.push(row);
            rows.push(row + 2);
            rows.push(row + 4);
            request.set("rows", std::move(rows));
        }
        break;
    }
    return request;
}

/** The response bytes a routed request must come back with. */
std::string
expectedResponse(serve::QueryEngine &direct, const report::Json &request,
                 const std::string &body)
{
    if (request.at("op").asString() == "ping") {
        auto result = report::Json::object();
        result.set("protocol", serve::kProtocol);
        return serve::serialize(serve::makeResult(
            request.at("id").asInt(), std::move(result)));
    }
    return direct.executeRaw(body);
}

/** Raise the fd soft limit toward the hard cap (idle-scale phase). */
void
raiseFdLimit()
{
    rlimit limit{};
    if (::getrlimit(RLIMIT_NOFILE, &limit) != 0)
        return;
    if (limit.rlim_cur < limit.rlim_max) {
        limit.rlim_cur = limit.rlim_max;
        ::setrlimit(RLIMIT_NOFILE, &limit);
    }
}

/** Directory of the running binary (to find rhs-route-idle). */
std::string
selfDirectory()
{
    char buffer[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
    if (n <= 0)
        return {};
    buffer[n] = '\0';
    std::string path(buffer);
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

/** Sum of the router registry counters matching `prefix`/`suffix`. */
std::uint64_t
sumShardCounter(const report::Json &router_stats,
                const std::string &suffix)
{
    std::uint64_t total = 0;
    const auto *metrics = router_stats.find("metrics");
    const auto *router = metrics ? metrics->find("router") : nullptr;
    const auto *counters = router ? router->find("counters") : nullptr;
    if (counters == nullptr)
        return 0;
    for (const auto &[name, value] : counters->members())
        if (name.rfind("route.shard.", 0) == 0 &&
            name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0 &&
            value.type() == report::Json::Type::Int)
            total += static_cast<std::uint64_t>(value.asInt());
    return total;
}

/** One full sweep through the router; returns mismatches/transport. */
struct SweepResult
{
    unsigned mismatches = 0;
    unsigned transportErrors = 0;
    unsigned errorReplies = 0; //!< ok:false replies (must not happen).
    double wallSeconds = 0;
};

SweepResult
runSweep(unsigned short router_port, unsigned connections,
         unsigned requests, serve::QueryEngine &direct,
         obs::Histogram *latency_hist,
         const std::function<void(unsigned)> &on_progress)
{
    std::vector<std::vector<std::string>> bodies(connections);
    std::vector<std::vector<report::Json>> parsed(connections);
    for (unsigned c = 0; c < connections; ++c)
        for (unsigned k = 0; k < requests; ++k) {
            auto request = makeRequest(c, k);
            bodies[c].push_back(serve::serialize(request));
            parsed[c].push_back(std::move(request));
        }

    std::vector<std::vector<std::string>> replies(
        connections, std::vector<std::string>(requests));
    std::vector<unsigned> transport_errors(connections, 0);
    std::atomic<unsigned> done{0};

    const auto start = Clock::now();
    {
        std::vector<std::thread> drivers;
        drivers.reserve(connections);
        for (unsigned c = 0; c < connections; ++c) {
            drivers.emplace_back([&, c] {
                serve::Client client;
                if (!client.connect("127.0.0.1", router_port)) {
                    transport_errors[c] = requests;
                    done.fetch_add(requests);
                    return;
                }
                for (unsigned k = 0; k < requests; ++k) {
                    const auto t0 = Clock::now();
                    replies[c][k] = client.callRaw(bodies[c][k]);
                    const std::chrono::duration<double> dt =
                        Clock::now() - t0;
                    if (latency_hist != nullptr)
                        latency_hist->observe(dt.count() * 1e3);
                    if (replies[c][k].empty())
                        ++transport_errors[c];
                    on_progress(done.fetch_add(1) + 1);
                }
            });
        }
        for (auto &driver : drivers)
            driver.join();
    }

    SweepResult result;
    result.wallSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    for (unsigned c = 0; c < connections; ++c) {
        result.transportErrors += transport_errors[c];
        for (unsigned k = 0; k < requests; ++k) {
            if (replies[c][k].empty())
                continue;
            if (replies[c][k] !=
                expectedResponse(direct, parsed[c][k], bodies[c][k]))
                ++result.mismatches;
            report::Json response;
            std::string parse_error;
            if (report::Json::parse(replies[c][k], response,
                                    parse_error)) {
                const auto *ok = response.find("ok");
                if (ok == nullptr || !ok->asBool())
                    ++result.errorReplies;
            }
        }
    }
    return result;
}

class RouteLoadgen final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "route_loadgen";
    }

    std::string
    title() const override
    {
        return "rhs-route load generator: sharded fleet with replica "
               "failover";
    }

    std::string
    source() const override
    {
        return "routed responses byte-identical to direct engine "
               "calls, through a mid-run replica kill";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"connections", "16",
                 "concurrent client connections (8 under --smoke)"},
                {"requests", "32",
                 "requests per connection (6 under --smoke)"},
                {"idle", "10000",
                 "idle connections one shard must sustain "
                 "(256 under --smoke, held in-process)"},
                {"out", "BENCH_route.json", "JSON output path"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        const auto connections = static_cast<unsigned>(ctx.cli.getInt(
            "connections", ctx.scale.smoke ? 8 : 16));
        const auto requests = static_cast<unsigned>(
            ctx.cli.getInt("requests", ctx.scale.smoke ? 6 : 32));
        const auto idle_target = static_cast<unsigned>(
            ctx.cli.getInt("idle", ctx.scale.smoke ? 256 : 10000));
        const std::string out_path =
            ctx.cli.get("out", "BENCH_route.json");
        RHS_ASSERT(connections > 0 && requests > 0,
                   "need at least one connection and request");

        if (ctx.table) {
            bench::printHeader(title(), source());
            std::printf("4 shards (shard 0 with standby replica), "
                        "%u connections x %u requests, idle gate %u\n"
                        "\n",
                        connections, requests, idle_target);
        }

        // --- Fleet: 4 shards, shard 0 with a standby replica --------
        std::vector<std::unique_ptr<serve::Server>> shards;
        route::RouterConfig router_config;
        for (unsigned shard = 0; shard < 4; ++shard) {
            std::vector<route::Endpoint> replicas;
            const unsigned replica_count = shard == 0 ? 2 : 1;
            for (unsigned r = 0; r < replica_count; ++r) {
                serve::ServerConfig config;
                config.maxConnections = 64;
                auto server =
                    std::make_unique<serve::Server>(config);
                server->start();
                route::Endpoint endpoint;
                endpoint.port = server->port();
                replicas.push_back(std::move(endpoint));
                shards.push_back(std::move(server));
            }
            router_config.shards.push_back(std::move(replicas));
        }
        router_config.maxConnections = connections + 8;
        router_config.health.probeIntervalMs = 100;
        router_config.redialBackoffMs = 20;
        route::Router router(router_config);
        router.start();

        serve::QueryEngine direct;
        obs::Histogram latency_hist(obs::latencyBoundsMs());

        // --- Phase 1: routed correctness ----------------------------
        const auto sweep1 =
            runSweep(router.port(), connections, requests, direct,
                     &latency_hist, [](unsigned) {});
        const double throughput = connections * requests /
                                  sweep1.wallSeconds;
        const obs::HistogramData latency = latency_hist.snapshot();
        const double p50 = latency.quantile(0.50);
        const double p99 = latency.quantile(0.99);

        if (ctx.table)
            std::printf("  routed     %u requests in %.3f s "
                        "(%.0f req/s)  p50 %.3f ms  p99 %.3f ms\n",
                        connections * requests, sweep1.wallSeconds,
                        throughput, p50, p99);

        // --- Phase 2: kill shard 0's primary mid-sweep --------------
        // shards[0] and shards[1] are shard 0's replicas; the
        // forwarder dials replica 0 first, so stopping shards[0] once
        // half the sweep has completed lands while its connection
        // carries live traffic.
        const unsigned total = connections * requests;
        std::atomic<bool> killed{false};
        std::thread killer;
        const auto sweep2 = runSweep(
            router.port(), connections, requests, direct, nullptr,
            [&](unsigned done) {
                if (done >= total / 2 && !killed.exchange(true))
                    killer = std::thread(
                        [&] { shards[0]->stop(); });
            });
        if (killer.joinable())
            killer.join();
        const auto router_stats = router.statsJson();
        const std::uint64_t failovers =
            sumShardCounter(router_stats, ".failover");
        const std::uint64_t shard_failed =
            sumShardCounter(router_stats, ".failed");

        if (ctx.table)
            std::printf("  failover   %u requests with replica kill: "
                        "%u mismatches, %u error replies, "
                        "%llu failovers\n",
                        total, sweep2.mismatches, sweep2.errorReplies,
                        static_cast<unsigned long long>(failovers));

        // --- Phase 3: idle-connection scale on one shard ------------
        raiseFdLimit();
        serve::ServerConfig idle_config;
        idle_config.maxConnections = idle_target + 16;
        serve::Server idle_server(idle_config);
        idle_server.start();

        unsigned held = 0;
        bool idle_ping_ok = false;
        bool helper_ok = true;
        if (ctx.scale.smoke) {
            // Small gate: hold the connections in-process.
            std::vector<std::unique_ptr<serve::Client>> idle;
            for (unsigned i = 0; i < idle_target; ++i) {
                auto client = std::make_unique<serve::Client>();
                if (!client->connect("127.0.0.1",
                                     idle_server.port()))
                    break;
                idle.push_back(std::move(client));
            }
            held = static_cast<unsigned>(idle.size());
            serve::Client prober;
            idle_ping_ok = prober.connect("127.0.0.1",
                                          idle_server.port()) &&
                           prober.ping(1);
        } else {
            // Full gate: the client fds live in rhs-route-idle.
            const std::string helper =
                selfDirectory() + "/rhs-route-idle";
            int to_child[2];
            if (::pipe(to_child) != 0)
                RHS_FATAL("route_loadgen: pipe() failed");
            const pid_t pid = ::fork();
            if (pid == 0) {
                ::dup2(to_child[0], STDIN_FILENO);
                ::close(to_child[0]);
                ::close(to_child[1]);
                const std::string port_arg =
                    std::to_string(idle_server.port());
                const std::string count_arg =
                    std::to_string(idle_target);
                ::execl(helper.c_str(), "rhs-route-idle", "--port",
                        port_arg.c_str(), "--count",
                        count_arg.c_str(), "--ping-every", "1000",
                        static_cast<char *>(nullptr));
                std::fprintf(stderr,
                             "route_loadgen: exec %s: %s\n",
                             helper.c_str(), std::strerror(errno));
                ::_exit(127);
            }
            ::close(to_child[0]);
            // The helper connects sequentially; watch the server's
            // own connection count converge on the target.
            const auto deadline =
                Clock::now() + std::chrono::seconds(120);
            while (Clock::now() < deadline) {
                held = static_cast<unsigned>(
                    idle_server.connectionCount());
                if (held >= idle_target)
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
            }
            // The server answers new work while the herd idles.
            serve::Client prober;
            idle_ping_ok = prober.connect("127.0.0.1",
                                          idle_server.port()) &&
                           prober.ping(1);
            ::close(to_child[1]); // EOF: helper exits.
            int status = 0;
            ::waitpid(pid, &status, 0);
            helper_ok =
                WIFEXITED(status) && WEXITSTATUS(status) == 0;
        }
        idle_server.stop();

        if (ctx.table)
            std::printf("  idle       %u/%u connections held on one "
                        "shard; ping under load: %s\n",
                        held, idle_target,
                        idle_ping_ok ? "ok" : "FAILED");

        // --- Teardown (shard 0 primary already stopped) -------------
        router.stop();
        for (auto &server : shards)
            server->stop();

        // --- Document -----------------------------------------------
        doc.addSeries("latency_ms", {"p50", "p99", "max"},
                      {p50, p99, latency.max});
        doc.addSeries("throughput_rps", {throughput});
        doc.data.set("shards", 4);
        doc.data.set("replicas_shard0", 2);
        doc.data.set("connections", connections);
        doc.data.set("requests_per_connection", requests);
        doc.data.set("total_requests", total);
        doc.data.set("routed_mismatches", sweep1.mismatches);
        doc.data.set("routed_transport_errors",
                     sweep1.transportErrors);
        doc.data.set("failover_mismatches", sweep2.mismatches);
        doc.data.set("failover_transport_errors",
                     sweep2.transportErrors);
        doc.data.set("failover_error_replies", sweep2.errorReplies);
        doc.data.set("failovers",
                     static_cast<std::int64_t>(failovers));
        doc.data.set("shard_internal_errors",
                     static_cast<std::int64_t>(shard_failed));
        doc.data.set("idle_target", idle_target);
        doc.data.set("idle_held", held);
        doc.data.set("idle_ping_ok", idle_ping_ok);
        doc.data.set("idle_helper_ok", helper_ok);
        doc.data.set("router", router_stats);

        doc.check("route_identical", "routing contract",
                  "every routed response is byte-identical to the "
                  "direct engine call",
                  sweep1.mismatches == 0 &&
                      sweep1.transportErrors == 0 &&
                      sweep1.errorReplies == 0,
                  std::to_string(sweep1.mismatches) +
                      " mismatches, " +
                      std::to_string(sweep1.transportErrors) +
                      " transport errors over " +
                      std::to_string(total) + " requests");
        doc.check("route_failover", "fleet robustness",
                  "killing one replica mid-run is invisible: every "
                  "request answered once, byte-correct, zero error "
                  "replies, failover recorded",
                  sweep2.mismatches == 0 &&
                      sweep2.transportErrors == 0 &&
                      sweep2.errorReplies == 0 && failovers >= 1,
                  std::to_string(sweep2.mismatches) +
                      " mismatches, " +
                      std::to_string(sweep2.errorReplies) +
                      " error replies, " +
                      std::to_string(failovers) + " failovers");
        doc.check("route_idle_scale", "connection scale",
                  "one shard sustains the idle-connection gate on a "
                  "fixed thread count and still answers pings",
                  held >= idle_target && idle_ping_ok && helper_ok,
                  std::to_string(held) + "/" +
                      std::to_string(idle_target) +
                      " idle connections held; ping " +
                      (idle_ping_ok ? "ok" : "failed"));

        bench::stampEnvelope(doc, ctx.scale);
        report::JsonWriter().writeFile(out_path, doc.toJson());
        if (ctx.table)
            std::printf("\nwrote %s\n", out_path.c_str());
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerRouteLoadgen()
{
    exp::Registry::add(std::make_unique<RouteLoadgen>());
}

} // namespace rhs::bench

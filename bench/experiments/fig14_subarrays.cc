/**
 * @file
 * Regenerates Fig. 14: per-subarray (average HCfirst, minimum HCfirst)
 * points across modules of each manufacturer, with the linear fit and
 * R2 score the paper reports.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/spatial.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Fig14Subarrays final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig14_subarrays";
    }

    std::string
    title() const override
    {
        return "Fig. 14: HCfirst variation across subarrays";
    }

    std::string
    source() const override
    {
        return "Fig. 14 (paper fits: A y=0.46x+3773 R2=.73, B "
               "y=0.41x+2737 R2=.78, C y=0.42x+3833 R2=.93, D "
               "y=0.67x-25410 R2=.42; Obsv. 15)";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"modules", "3", "modules per manufacturer"},
                {"subarrays", "8", "subarrays surveyed per module"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        const unsigned modules_per_mfr = static_cast<unsigned>(
            ctx.cli.getInt("modules", ctx.scale.smoke ? 1 : 3));
        const unsigned subarrays = static_cast<unsigned>(
            ctx.cli.getInt("subarrays", ctx.scale.smoke ? 2 : 8));

        if (ctx.table)
            printHeader(title(), source());

        std::vector<std::string> fit_labels;
        std::vector<double> fit_slopes, fit_r2;
        bool min_below_avg = true;
        bool any_data = false;
        for (auto mfr : rhmodel::allMfrs) {
            std::vector<core::SubarrayStats> all;
            if (ctx.table) {
                std::printf("\n%s\n",
                            rhmodel::to_string(mfr).c_str());
                std::printf("  %-8s %-10s %-14s %-14s\n", "Module",
                            "subarray", "avg HCfirst", "min HCfirst");
            }
            for (unsigned index = 0; index < modules_per_mfr;
                 ++index) {
                auto &module = ctx.fleet.module(mfr, index);
                const auto &wcdp = ctx.fleet.wcdp(
                    module, 0, {100, 2000, 6000});
                const auto survey = core::subarraySurvey(
                    *module.tester, 0, subarrays, 24, wcdp);
                for (const auto &entry : survey) {
                    if (ctx.table)
                        std::printf("  %-8s %-10u %11.1fK %11.1fK\n",
                                    module.dimm->label().c_str(),
                                    entry.subarray,
                                    entry.averageHcFirst / 1e3,
                                    entry.minimumHcFirst / 1e3);
                    if (entry.minimumHcFirst >
                        entry.averageHcFirst)
                        min_below_avg = false;
                    all.push_back(entry);
                }
            }
            if (all.size() >= 2) {
                const auto fit = core::fitSubarrayModel(all);
                if (ctx.table)
                    std::printf("  linear fit: min = %.2f * avg "
                                "%+.0f   R2 = %.2f\n",
                                fit.slope, fit.intercept, fit.r2);
                any_data = true;
                fit_labels.push_back(rhmodel::to_string(mfr));
                fit_slopes.push_back(fit.slope);
                fit_r2.push_back(fit.r2);
            }
        }

        if (ctx.table) {
            std::printf("\nObsv. 15 check: the most vulnerable row of "
                        "a subarray sits far below the subarray "
                        "average, and the relation is linear within a "
                        "manufacturer.\n");
        }

        doc.addSeries("fit_slope", fit_labels, fit_slopes);
        doc.addSeries("fit_r2", fit_labels, fit_r2);
        doc.check("obsv15_subarray_minimum", "Obsv. 15 / Fig. 14",
                  "every subarray's most vulnerable row flips at or "
                  "below the subarray's average HCfirst",
                  any_data && min_below_avg,
                  any_data ? "per-mfr fits in series fit_slope / fit_r2"
                           : "no subarray data at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig14Subarrays()
{
    exp::Registry::add(std::make_unique<Fig14Subarrays>());
}

} // namespace rhs::bench

/**
 * @file
 * Forward-looking experiment for §6 (implications on future attacks):
 * a Blacksmith-style fuzz of non-uniform access patterns over the
 * analytic model. Per manufacturer, the search starts from the paper's
 * uniform double-sided baselines (seeded into generation 0) and
 * mutates frequency/phase/amplitude/geometry on a tREFI-aligned slot
 * grid; the winner is then replayed through the cycle-level harness to
 * confirm the predicted flip and to measure how it fares against an
 * in-DRAM TRR sampler the uniform baseline cannot bypass.
 *
 * Emits BENCH_fuzz.json (self-written, like the loadgen documents) so
 * CI can gate on the fuzz checks without parsing the full --all sweep.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hh"
#include "defense/evaluate.hh"
#include "defense/trr.hh"
#include "dram/timing.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "fuzz/search.hh"
#include "report/writer.hh"
#include "util/hash.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

/**
 * Quantize nominal conditions to the module's clock, so the analytic
 * search scores candidates under exactly the on/off times the
 * cycle-level replay will execute (the cycle path can only issue
 * whole-cycle timings).
 */
rhmodel::Conditions
quantized(const dram::TimingParams &timing,
          rhmodel::Conditions conditions)
{
    conditions.tAggOn = timing.toNs(timing.toCycles(
        conditions.tAggOn > 0 ? conditions.tAggOn : timing.tRAS));
    conditions.tAggOff = timing.toNs(timing.toCycles(
        conditions.tAggOff > 0 ? conditions.tAggOff : timing.tRP));
    return conditions;
}

class FuzzSweep final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fuzz_sweep";
    }

    std::string
    title() const override
    {
        return "Pattern fuzzing: non-uniform search vs uniform "
               "baselines";
    }

    std::string
    source() const override
    {
        return "§6 implications on future attacks (TRRespass/"
               "Blacksmith-style non-uniform patterns)";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"population", "24", "candidates per generation"},
                {"generations", "6", "search generations"},
                {"fuzz-rows", "4", "victim anchors per manufacturer"},
                {"out", "BENCH_fuzz.json", "JSON output path"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        const auto population = static_cast<unsigned>(ctx.cli.getInt(
            "population", ctx.scale.smoke ? 10 : 24));
        const auto generations = static_cast<unsigned>(ctx.cli.getInt(
            "generations", ctx.scale.smoke ? 3 : 6));
        const auto fuzz_rows = static_cast<unsigned>(
            ctx.cli.getInt("fuzz-rows", 4));
        const std::string out_path =
            ctx.cli.get("out", "BENCH_fuzz.json");

        if (ctx.table) {
            printHeader(title(), source());
            std::printf("%-5s %-14s %-14s %-7s %-6s %-10s\n", "mfr",
                        "uniform ACTs", "fuzzed ACTs", "ratio",
                        "gens", "evaluated");
            printRule();
        }

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        auto mfr_results = report::Json::object();
        std::vector<std::string> labels;
        std::vector<double> uniform_series, fuzzed_series;
        bool all_bounded = true;     // fuzzed <= uniform, per mfr.
        bool seeds_exact = true;     // seeded gene == direct baseline.
        bool jobs_invariant = true;  // jobs=1 replay is bit-identical.
        bool cycle_agrees = true;    // cycle-level replay flips.

        for (std::size_t m = 0; m < rhmodel::allMfrs.size(); ++m) {
            const auto mfr = rhmodel::allMfrs[m];
            // Fleet entries are manufacturer-major: entry index
            // m * modulesPerMfr is (mfr, scale.seed + 0).
            const auto &entry = fleet[m * ctx.scale.modulesPerMfr];
            const auto &geometry = entry.dimm->module().geometry();

            fuzz::SearchConfig config;
            config.seed = util::hashTuple(
                static_cast<std::uint64_t>(ctx.scale.seed),
                static_cast<std::uint64_t>(m));
            config.population = population;
            config.generations = generations;
            config.elites = std::max(1u, population / 4);
            config.bank = 0;
            for (unsigned r = 0;
                 r < std::min<std::size_t>(fuzz_rows,
                                           entry.rows.size());
                 ++r)
                config.candidateRows.push_back(entry.rows[r]);
            config.maxVictimRow = geometry.rowsPerBank() - 2;
            config.conditions = quantized(
                entry.dimm->module().timing(), config.conditions);
            config.seedPatternId = entry.wcdp.id();
            config.seedPatternSeed = entry.wcdp.patternSeed();

            const auto result =
                fuzz::Search(config).run(entry.dimm->analytic());

            // The seeded uniform genes must score byte-identically to
            // the paper's baseline measured directly: they lower to
            // exactly HammerAttack::doubleSided, so the fitness is
            // rowHcFirst * 2 with no rounding slack at all. The
            // evaluator scores every row the attack exposes (the
            // sandwiched victim and both single-sided side rows), so
            // the direct baseline scans the same rows.
            double direct_uniform = rhmodel::kNeverFlips;
            for (unsigned row : config.candidateRows) {
                const auto attack = rhmodel::HammerAttack::doubleSided(
                    config.bank, row);
                for (long victim :
                     {static_cast<long>(row) - 2,
                      static_cast<long>(row),
                      static_cast<long>(row) + 2}) {
                    if (victim < 1 ||
                        victim >
                            static_cast<long>(config.maxVictimRow))
                        continue;
                    direct_uniform = std::min(
                        direct_uniform,
                        entry.dimm->analytic().rowHcFirst(
                            static_cast<unsigned>(victim), attack,
                            config.conditions, entry.wcdp,
                            config.trial) *
                            2.0);
                }
            }
            if (result.uniformActivations != direct_uniform)
                seeds_exact = false;
            if (result.best.activations > result.uniformActivations)
                all_bounded = false;

            // Determinism across thread counts: replay the first
            // manufacturer's search serially and require the same
            // winner, bit for bit.
            if (m == 0) {
                util::ThreadPool::configure(1);
                const auto serial =
                    fuzz::Search(config).run(entry.dimm->analytic());
                util::ThreadPool::configure(ctx.scale.jobs);
                if (serial.best.gene.digest() !=
                        result.best.gene.digest() ||
                    serial.best.activations != result.best.activations)
                    jobs_invariant = false;
            }

            // Replay the winner through the cycle-level harness: at
            // the predicted activation budget (plus slack for partial
            // periods) the attack must actually flip bits, and we also
            // record how it fares against a small TRR sampler.
            unsigned undefended_flips = 0, trr_flips = 0;
            if (result.best.activations != rhmodel::kNeverFlips) {
                defense::AttackConfig attack_config;
                attack_config.bank = config.bank;
                attack_config.victimPhysicalRow = result.best.victim;
                attack_config.conditions = config.conditions;
                attack_config.trial = config.trial;
                attack_config.attack = result.best.gene.lower();
                const double per_period = static_cast<double>(
                    result.best.gene.activationsPerPeriod());
                // 1% margin: the cycle path's first activation runs a
                // nominal rather than measured off-time (same whisker
                // the equivalence tests allow for).
                attack_config.hammers =
                    static_cast<std::uint64_t>(std::ceil(
                        result.best.activations / per_period * 1.01)) +
                    2;
                const auto none = defense::evaluateUndefended(
                    *entry.dimm,
                    result.best.gene.dataPattern(),
                    attack_config);
                undefended_flips = none.flips;
                if (undefended_flips == 0)
                    cycle_agrees = false;

                defense::InDramTrr trr(2);
                auto trr_config = attack_config;
                trr_config.refreshEveryActivations =
                    result.best.gene.activationsPerPeriod();
                trr_flips = defense::evaluateDefense(
                                *entry.dimm, trr,
                                result.best.gene.dataPattern(),
                                trr_config)
                                .flips;
            } else {
                cycle_agrees = false;
            }

            const std::string label(1, rhmodel::letterOf(mfr));
            labels.push_back(label);
            uniform_series.push_back(result.uniformActivations);
            fuzzed_series.push_back(result.best.activations);

            auto entry_json = report::Json::object();
            entry_json.set("best", result.best.gene.toJson());
            entry_json.set("best_activations",
                           result.best.activations);
            entry_json.set("best_victim", result.best.victim);
            entry_json.set("uniform_activations",
                           result.uniformActivations);
            auto trace = report::Json::array();
            for (double best : result.generationBest)
                trace.push(best);
            entry_json.set("generation_best", std::move(trace));
            entry_json.set("evaluated", result.candidatesEvaluated);
            entry_json.set("undefended_flips", undefended_flips);
            entry_json.set("trr2_flips", trr_flips);
            mfr_results.set(label, std::move(entry_json));

            if (ctx.table)
                std::printf("%-5s %-14.0f %-14.0f %-7.3f %-6u %-10llu\n",
                            label.c_str(), result.uniformActivations,
                            result.best.activations,
                            result.best.activations /
                                result.uniformActivations,
                            result.generationsCompleted,
                            static_cast<unsigned long long>(
                                result.candidatesEvaluated));
        }

        if (ctx.table) {
            printRule();
            std::printf("Takeaway: seeding the fuzzer with the "
                        "paper's uniform baselines bounds the search "
                        "from above, so every manufacturer's best "
                        "non-uniform pattern is at least as strong as "
                        "its best uniform one.\n");
        }

        doc.addSeries("uniform_activations", labels, uniform_series);
        doc.addSeries("fuzzed_activations", labels, fuzzed_series);
        doc.data.set("per_mfr", std::move(mfr_results));
        doc.data.set("population", population);
        doc.data.set("generations", generations);

        doc.check("fuzz_beats_uniform", "§6 / Blacksmith",
                  "the best fuzzed non-uniform pattern needs no more "
                  "activations than the best uniform double-sided "
                  "baseline, for every manufacturer",
                  all_bounded, "series fuzzed_activations vs "
                               "uniform_activations");
        doc.check("fuzz_uniform_seed_exact", "§4.2 baseline",
                  "the seeded uniform genes score byte-identically to "
                  "the baseline measured directly through "
                  "rowHcFirst * 2",
                  seeds_exact, "uniform_activations in data.per_mfr");
        doc.check("fuzz_jobs_invariant", "determinism contract",
                  "re-running the search at jobs=1 reproduces the "
                  "winning gene and fitness bit for bit",
                  jobs_invariant, "digest comparison, Mfr. A");
        doc.check("fuzz_cycle_agrees", "model consistency",
                  "replaying each winner through the cycle-level "
                  "harness at its predicted activation budget "
                  "produces at least one flip",
                  cycle_agrees, "undefended_flips in data.per_mfr");

        bench::stampEnvelope(doc, ctx.scale);
        report::JsonWriter().writeFile(out_path, doc.toJson());
        if (ctx.table)
            std::printf("\nwrote %s\n", out_path.c_str());
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFuzzSweep()
{
    exp::Registry::add(std::make_unique<FuzzSweep>());
}

} // namespace rhs::bench

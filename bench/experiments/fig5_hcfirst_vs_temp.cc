/**
 * @file
 * Regenerates Fig. 5: the distribution of per-row HCfirst change as
 * temperature rises from 50 degC to 55 and to 90 degC, with the
 * crossing percentile (fraction of rows whose HCfirst increased) and
 * the cumulative-magnitude ratio of Obsv. 7.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/temp_analysis.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Fig5HcFirstVsTemp final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig5_hcfirst_vs_temp";
    }

    std::string
    title() const override
    {
        return "Fig. 5: distribution of HCfirst change across rows as "
               "temperature increases";
    }

    std::string
    source() const override
    {
        return "Fig. 5 (paper crossings: A P65/P45, D P63/P40; "
               "magnitude ratio ~4x; Obsvs. 5-7)";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table) {
            printHeader(title(), source());
            std::printf("%-8s %-10s %-10s %-12s %-28s %-28s\n", "Mfr.",
                        "P(55C)", "P(90C)", "mag ratio",
                        "50->55 deciles (%)", "50->90 deciles (%)");
            printRule();
        }

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        std::vector<std::string> labels;
        std::vector<double> crossing55, crossing90, mag_ratio;
        bool crossings_drop = true;
        bool ratios_exceed_one = true;
        bool any_data = false;
        for (const auto &entry : fleet) {
            const auto result = core::analyzeHcFirstVsTemperature(
                *entry.tester, 0, entry.rows, entry.wcdp);
            if (result.changePct55.empty())
                continue;

            auto deciles = [](const std::vector<double> &xs) {
                char buffer[64];
                std::snprintf(buffer, sizeof(buffer),
                              "%+6.0f %+6.0f %+6.0f",
                              stats::quantile(xs, 0.9),
                              stats::quantile(xs, 0.5),
                              stats::quantile(xs, 0.1));
                return std::string(buffer);
            };

            if (ctx.table) {
                std::printf("%-8s P%-9.0f P%-9.0f %-12.1f %-28s "
                            "%-28s\n",
                            entry.dimm->label().c_str(),
                            100.0 * result.crossing55(),
                            100.0 * result.crossing90(),
                            result.magnitudeRatio(),
                            deciles(result.changePct55).c_str(),
                            deciles(result.changePct90).c_str());
            }

            any_data = true;
            labels.push_back(entry.dimm->label());
            crossing55.push_back(100.0 * result.crossing55());
            crossing90.push_back(100.0 * result.crossing90());
            mag_ratio.push_back(result.magnitudeRatio());
            if (result.crossing90() >= result.crossing55() &&
                result.crossing55() > 0.0)
                crossings_drop = false;
            if (result.magnitudeRatio() <= 1.0)
                ratios_exceed_one = false;
        }

        if (ctx.table) {
            std::printf("\nObsv. 6 check: P(90C) < P(55C) for every "
                        "module (fewer rows improve when the delta is "
                        "larger).\n");
            std::printf("Obsv. 7 check: magnitude ratio > 1 (larger "
                        "temperature change => larger HCfirst "
                        "change).\n");
        }

        doc.addSeries("crossing55_pct", labels, crossing55);
        doc.addSeries("crossing90_pct", labels, crossing90);
        doc.addSeries("magnitude_ratio", labels, mag_ratio);
        doc.check("obsv6_crossing_drop", "Obsv. 6 / Fig. 5",
                  "the crossing percentile at 90 degC is below the "
                  "one at 55 degC for every module",
                  any_data && crossings_drop,
                  any_data ? "see series crossing55_pct/crossing90_pct"
                           : "no vulnerable rows at this scale");
        doc.check("obsv7_magnitude_ratio", "Obsv. 7 / Fig. 5",
                  "a larger temperature change causes a larger "
                  "HCfirst change (ratio > 1)",
                  any_data && ratios_exceed_one,
                  any_data ? "see series magnitude_ratio"
                           : "no vulnerable rows at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig5HcFirstVsTemp()
{
    exp::Registry::add(std::make_unique<Fig5HcFirstVsTemp>());
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates the §8.2 defense-improvement analyses:
 *  1. non-uniform per-row thresholds shrink counter structures,
 *  2. subarray-sampled profiling predicts the worst-case HCfirst,
 *  4. cooling reduces BER for increasing-trend manufacturers,
 *  5. bounding the aggressor active time restores the baseline
 *     threshold.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/profiler.hh"
#include "core/spatial.hh"
#include "defense/nonuniform.hh"
#include "defense/para.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class DefensesImprovements final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "defenses_improvements";
    }

    std::string
    title() const override
    {
        return "Section 8.2: defense improvements";
    }

    std::string
    source() const override
    {
        return "Improvements 1, 2, 4, 5 (paper: Graphene area -80%, "
               "BlockHammer -33%; 8-of-128 subarray profiling; "
               "cooling cuts Mfr. A BER ~25%)";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table)
            printHeader(title(), source());

        const auto &fleet = ctx.fleet.fleet(ctx.scale);

        if (ctx.table) {
            std::printf("Improvement 1: per-row-class thresholds "
                        "(Obsv. 12)\n");
            std::printf("%-8s %-12s %-14s %-14s %-9s\n", "Module",
                        "worst HC", "uniform bits", "split bits",
                        "savings");
            printRule();
        }
        std::vector<std::string> labels;
        std::vector<double> savings_pct;
        bool split_saves = true;
        bool any_counter = false;
        for (const auto &entry : fleet) {
            const auto hcs = core::rowHcFirstSurvey(
                *entry.tester, 0, entry.rows, entry.wcdp);
            if (hcs.empty())
                continue;
            const double worst = stats::minValue(hcs);
            // Refresh-window activation budget: 64 ms of back-to-back
            // activations at ~51 ns each.
            const double window = 64e6 / 51.0;
            const auto report = defense::counterAreaSavings(
                worst, 0.05, 2.0, window);
            if (ctx.table)
                std::printf("%-8s %9.1fK %11.0f b %11.0f b %7.0f%%\n",
                            entry.dimm->label().c_str(), worst / 1e3,
                            report.uniformBits, report.nonUniformBits,
                            report.savingsPct);
            any_counter = true;
            labels.push_back(entry.dimm->label());
            savings_pct.push_back(report.savingsPct);
            if (report.savingsPct < 0.0)
                split_saves = false;
        }
        if (ctx.table)
            std::printf("PARA analogue: probability for worst-case "
                        "vs 2x threshold: p=%.4f vs p=%.4f (refresh "
                        "rate halves for 95%% of rows)\n",
                        defense::Para::probabilityFor(33'000.0),
                        defense::Para::probabilityFor(66'000.0));

        if (ctx.table) {
            std::printf("\nImprovement 2: profiling by subarray "
                        "sampling (Obsvs. 15-16)\n");
            std::printf("%-8s %-10s %-12s %-12s %-12s %-12s\n",
                        "Module", "rows", "sampled avg",
                        "sampled min", "predicted", "full-scan min");
            printRule();
        }
        std::vector<std::string> profiled_labels;
        std::vector<double> predicted, full_scan_min;
        bool prediction_safe = true;
        bool any_profiled = false;
        for (const auto &entry : fleet) {
            const auto survey = core::subarraySurvey(
                *entry.tester, 0, 8, 8, entry.wcdp);
            if (survey.size() < 2)
                continue;
            const auto model = core::fitSubarrayModel(survey);
            const auto estimate = core::profileBySampling(
                *entry.tester, 0, 4, 6, entry.wcdp, model);
            const auto full = core::rowHcFirstSurvey(
                *entry.tester, 0, entry.rows, entry.wcdp);
            if (ctx.table)
                std::printf("%-8s %-10u %9.1fK %9.1fK %9.1fK "
                            "%9.1fK\n",
                            entry.dimm->label().c_str(),
                            estimate.rowsTested,
                            estimate.sampledAverageHcFirst / 1e3,
                            estimate.sampledMinimumHcFirst / 1e3,
                            estimate.predictedWorstCase / 1e3,
                            full.empty()
                                ? 0.0
                                : stats::minValue(full) / 1e3);
            profiled_labels.push_back(entry.dimm->label());
            predicted.push_back(estimate.predictedWorstCase);
            full_scan_min.push_back(
                full.empty() ? 0.0 : stats::minValue(full));
            if (!full.empty()) {
                any_profiled = true;
                // The linear model refines the sampled average into a
                // worst-case estimate; demand it lands within 2x of
                // the true (full-scan) minimum in either direction —
                // the accuracy that makes sampled profiling usable,
                // and one the model delivers from smoke scale up.
                const double full_min = stats::minValue(full);
                if (full_min > 0.0 &&
                    (estimate.predictedWorstCase < 0.5 * full_min ||
                     estimate.predictedWorstCase > 2.0 * full_min))
                    prediction_safe = false;
            }
        }

        if (ctx.table) {
            std::printf("\nImprovement 4: cooling as mitigation "
                        "(Obsv. 4)\n");
            printRule();
        }
        std::vector<std::string> cooling_labels;
        std::vector<double> cooling_change_pct;
        for (const auto &entry : fleet) {
            rhmodel::Conditions cold, hot;
            cold.temperature = 50.0;
            hot.temperature = 90.0;
            double ber_cold = 0.0, ber_hot = 0.0;
            for (unsigned row : entry.rows) {
                ber_cold += entry.tester->berOfRow(0, row, cold,
                                                   entry.wcdp);
                ber_hot += entry.tester->berOfRow(0, row, hot,
                                                  entry.wcdp);
            }
            if (ber_hot <= 0.0)
                continue;
            const double change =
                100.0 * (ber_cold - ber_hot) / ber_hot;
            if (ctx.table)
                std::printf("%-8s cooling 90->50 degC changes BER by "
                            "%+.0f%%\n",
                            entry.dimm->label().c_str(), change);
            cooling_labels.push_back(entry.dimm->label());
            cooling_change_pct.push_back(change);
        }

        if (ctx.table) {
            std::printf("\nImprovement 5: bounding aggressor active "
                        "time (Obsv. 8)\n");
            printRule();
        }
        std::vector<std::string> bounding_labels;
        std::vector<double> avoided_pct;
        bool bounding_helps = true;
        bool any_bounding = false;
        for (const auto &entry : fleet) {
            rhmodel::Conditions base, open_page;
            open_page.tAggOn = 154.5; // Unbounded open-page policy.
            double flips_bound = 0.0, flips_open = 0.0;
            for (unsigned row : entry.rows) {
                flips_bound += entry.tester->berOfRow(0, row, base,
                                                      entry.wcdp);
                flips_open += entry.tester->berOfRow(0, row,
                                                     open_page,
                                                     entry.wcdp);
            }
            const double avoided =
                flips_open > 0.0 ? 100.0 * (flips_open - flips_bound) /
                                       flips_open
                                 : 0.0;
            if (ctx.table)
                std::printf("%-8s closing rows promptly avoids "
                            "%.0f%% of the open-page flips\n",
                            entry.dimm->label().c_str(), avoided);
            bounding_labels.push_back(entry.dimm->label());
            avoided_pct.push_back(avoided);
            if (flips_open > 0.0) {
                any_bounding = true;
                if (avoided < 0.0)
                    bounding_helps = false;
            }
        }

        doc.addSeries("counter_savings_pct", labels, savings_pct);
        doc.addSeries("predicted_worst_case", profiled_labels,
                      predicted);
        doc.addSeries("full_scan_min", profiled_labels,
                      full_scan_min);
        doc.addSeries("cooling_ber_change_pct", cooling_labels,
                      cooling_change_pct);
        doc.addSeries("bounded_taggon_avoided_pct", bounding_labels,
                      avoided_pct);
        doc.check("impr1_counter_savings", "Section 8.2, Impr. 1",
                  "per-row-class thresholds never cost more counter "
                  "bits than the uniform design",
                  !any_counter || split_saves,
                  any_counter ? "savings in series counter_savings_pct"
                              : "no vulnerable rows at this scale");
        doc.check("impr2_profiling_safe", "Section 8.2, Impr. 2",
                  "subarray-sampled profiling predicts the worst-case "
                  "HCfirst within 2x of the full scan",
                  !any_profiled || prediction_safe,
                  any_profiled
                      ? "predictions in series predicted_worst_case"
                      : "not enough subarray data at this scale");
        doc.check("impr5_bounded_taggon", "Section 8.2, Impr. 5",
                  "closing aggressor rows promptly never increases "
                  "flips vs the open-page policy",
                  !any_bounding || bounding_helps,
                  any_bounding ? "fractions in series "
                                 "bounded_taggon_avoided_pct"
                               : "no open-page flips at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerDefensesImprovements()
{
    exp::Registry::add(std::make_unique<DefensesImprovements>());
}

} // namespace rhs::bench

/**
 * @file
 * Supporting experiment: the defense mechanisms the §8.2 implications
 * build on, evaluated against a live double-sided attack — flips
 * prevented, refresh overhead, throttling, and storage.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "defense/blockhammer.hh"
#include "defense/evaluate.hh"
#include "defense/graphene.hh"
#include "defense/nonuniform.hh"
#include "defense/para.hh"
#include "defense/rfm.hh"
#include "defense/trr.hh"
#include "defense/twice.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;
using namespace rhs::defense;

class DefenseMatrix final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "defense_matrix";
    }

    std::string
    title() const override
    {
        return "Defense evaluation matrix";
    }

    std::string
    source() const override
    {
        return "supports the Section 8.2 analysis (PARA, Graphene, "
               "TWiCe, BlockHammer vs the double-sided attack)";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"hammers", "200000", "hammers on the victim row"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        const auto hammers = static_cast<std::uint64_t>(
            ctx.cli.getInt("hammers", 200'000));

        if (ctx.table)
            printHeader(title(), source());

        auto &module = ctx.fleet.module(rhmodel::Mfr::B, 0, 4);
        auto &dimm = *module.dimm;
        auto &tester = *module.tester;
        const rhmodel::DataPattern pattern(
            rhmodel::PatternId::Checkered);

        // Pick a clearly vulnerable victim.
        AttackConfig config;
        config.hammers = hammers;
        rhmodel::Conditions reference;
        for (unsigned row = 100; row < 400; ++row) {
            if (tester.berOfRow(0, row, reference, pattern,
                                hammers) >= 3) {
                config.victimPhysicalRow = row;
                break;
            }
        }

        const auto baseline =
            evaluateUndefended(dimm, pattern, config);
        if (ctx.table) {
            std::printf("Attack: double-sided, %llu hammers on "
                        "victim row %u (Mfr. B)\n",
                        static_cast<unsigned long long>(hammers),
                        config.victimPhysicalRow);
            std::printf("Undefended flips: %u\n\n", baseline.flips);

            std::printf("%-22s %-7s %-11s %-10s %-11s %-12s\n",
                        "Defense", "flips", "refreshes", "throttled",
                        "ovh/act", "storage");
            printRule();
        }

        const std::uint64_t window = 2 * hammers;
        const std::uint64_t threshold = 8'000;

        std::vector<std::string> labels;
        std::vector<double> flips, storage_bits;
        auto report = [&](Defense &defense,
                          const AttackConfig &attack_config) {
            const auto result =
                evaluateDefense(dimm, defense, pattern,
                                attack_config);
            if (ctx.table)
                std::printf("%-22s %-7u %-11llu %-10llu %-11.5f "
                            "%9.0f b\n",
                            defense.name().c_str(), result.flips,
                            static_cast<unsigned long long>(
                                result.refreshes),
                            static_cast<unsigned long long>(
                                result.throttledActs),
                            result.refreshOverhead(),
                            result.storageBits);
            labels.push_back(defense.name());
            flips.push_back(static_cast<double>(result.flips));
            storage_bits.push_back(result.storageBits);
        };

        Para para(Para::probabilityFor(20'000.0, 1e-12), 11);
        report(para, config);

        Graphene graphene(threshold, window);
        report(graphene, config);

        Twice twice(threshold, window, 4'096);
        report(twice, config);

        BlockHammer blockhammer(threshold, window);
        report(blockhammer, config);

        NonUniform nonuniform(
            std::make_unique<Graphene>(2 * threshold, window),
            std::make_unique<Graphene>(threshold, window),
            {config.victimPhysicalRow});
        report(nonuniform, config);

        // In-DRAM mitigations need periodic refresh commands to act
        // on.
        AttackConfig ref_config = config;
        ref_config.refreshEveryActivations = 150;
        InDramTrr trr(4);
        report(trr, ref_config);

        Rfm rfm(64, 64);
        report(rfm, config);

        if (ctx.table) {
            std::printf("\nEvery correctly-provisioned defense "
                        "prevents all flips; costs differ (Section "
                        "8.2 Improvement 1 exploits the "
                        "row-vulnerability spread to shrink "
                        "them).\n");
        }

        bool all_prevent = true;
        for (double f : flips)
            if (f > 0.0)
                all_prevent = false;

        doc.addSeries("defended_flips", labels, flips);
        doc.addSeries("storage_bits", labels, storage_bits);
        doc.data.set("undefended_flips",
                     report::Json(static_cast<std::int64_t>(
                         baseline.flips)));
        doc.check("defenses_prevent_flips", "Section 8.2",
                  "every correctly-provisioned defense prevents all "
                  "flips of the double-sided attack",
                  all_prevent, "flips in series defended_flips");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerDefenseMatrix()
{
    exp::Registry::add(std::make_unique<DefenseMatrix>());
}

} // namespace rhs::bench

/**
 * @file
 * Snapshot warm-start benchmark: proves the rhs-snap/1 store turns a
 * cold fleet characterization into an mmap-and-serve warm start, and
 * that the fast path never changes a single byte of any result.
 *
 * Phase 1 (cold + collect): a private FleetCache with a snapshot
 * Builder attached computes one RowEval curve per (module, row) and
 * chains a digest over every curve's raw bytes. The collected curves
 * are then written as one rhs-snap/1 file (build time and bytes per
 * curve reported).
 *
 * Phase 2 (warm): a fresh FleetCache with the snapshot Reader
 * attached re-runs the identical workload. Every curve must come out
 * of the mmap (reader hits == lookups) and the digest chain must be
 * byte-identical to phase 1's. The headline number is
 * cold_seconds / warm_seconds, gated by --min-speedup.
 *
 * Phase 3 (serving): the same requests through two QueryEngines —
 * one plain, one with --snapshot-in — must serialize to identical
 * response bytes (the serve_loadgen byte-compare, applied to the
 * snapshot path).
 *
 * Phase 4 (degradation): a snapshot with a flipped payload byte still
 * serves every curve correctly (the corrupt record falls back to live
 * computation and is counted), and truncated / bad-magic files fail
 * to open cleanly.
 *
 * Options:
 *   --min-speedup N  minimum cold/warm ratio (default 20; 5 in
 *                    --smoke — sanitizer CI overrides lower)
 *   --snap-file F    where the snapshot is written (default
 *                    rhs_warmstart.snap in the working directory)
 *   --out FILE       JSON output path (default BENCH_snapshot.json)
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "report/writer.hh"
#include "serve/protocol.hh"
#include "serve/query_engine.hh"
#include "snap/reader.hh"
#include "snap/store.hh"
#include "snap/writer.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace
{

using namespace rhs;
using Clock = std::chrono::steady_clock;

/** One (module, victim row) work item. */
struct WorkItem
{
    rhmodel::Mfr mfr;
    unsigned row;
};

/** Digest-chain one curve's raw bytes into `h` (order-sensitive). */
std::uint64_t
chainCurve(std::uint64_t h, const rhmodel::RowEval &eval)
{
    h = util::hashCombine(
        h, util::bytesHash64(eval.hcFirst.data(),
                             eval.hcFirst.size() * sizeof(double)));
    h = util::hashCombine(
        h, util::bytesHash64(eval.loc.data(), eval.loc.size() *
                                                  sizeof(eval.loc[0])));
    h = util::hashCombine(h, eval.vulnerableCells);
    return util::hashCombine(
        h, std::hash<double>{}(eval.minHcFirst));
}

/**
 * Run the workload against a fleet: one rowEval per item under one
 * fixed condition set. Returns the digest chain; `seconds` gets the
 * wall time of the eval loop only (module construction is excluded
 * by the caller warming the modules first).
 */
std::uint64_t
runWorkload(exp::FleetCache &fleet, const std::vector<WorkItem> &work,
            unsigned seed, double &seconds)
{
    const rhmodel::Conditions conditions;
    const rhmodel::DataPattern pattern(rhmodel::PatternId::Checkered);
    std::uint64_t chain = util::splitMix64(work.size());
    const auto t0 = Clock::now();
    for (const WorkItem &item : work) {
        const auto eval = fleet.module(item.mfr, seed)
                              .tester->rowEval(0, item.row, conditions,
                                               pattern);
        chain = chainCurve(chain, *eval);
    }
    const std::chrono::duration<double> dt = Clock::now() - t0;
    seconds = dt.count();
    return chain;
}

/** Pre-build the workload's modules so timing excludes construction. */
void
warmModules(exp::FleetCache &fleet, unsigned seed)
{
    for (const auto mfr : rhmodel::allMfrs)
        fleet.module(mfr, seed);
}

/** Install `factory` as the fleet's store provider. */
void
attach(exp::FleetCache &fleet, const snap::StoreFactory &factory)
{
    fleet.setStoreProvider(
        [factory](rhmodel::Mfr mfr, unsigned module_index,
                  unsigned subarrays_per_bank) {
            return factory.storeFor(mfr, module_index,
                                    subarrays_per_bank);
        });
}

/** The serving byte-compare request mix (all four engine ops). */
std::vector<std::string>
servingRequests(unsigned rows)
{
    std::vector<std::string> bodies;
    for (unsigned k = 0; k < 12; ++k) {
        auto request = report::Json::object();
        const char mfr[2] = {"ABCD"[k % 4], '\0'};
        request.set("id", static_cast<std::int64_t>(k));
        request.set("mfr", mfr);
        switch (k % 3) {
          case 0:
            request.set("op", "row_hcfirst");
            request.set("row", 1 + k % rows);
            break;
          case 1:
            request.set("op", "profile_slice");
            request.set("row0", 1);
            request.set("count", std::min(rows, 4u));
            break;
          default:
            request.set("op", "ber");
            request.set("row", 1 + k % rows);
            break;
        }
        bodies.push_back(serve::serialize(request));
    }
    return bodies;
}

class SnapshotWarmstart final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "snapshot_warmstart";
    }

    std::string
    title() const override
    {
        return "rhs-snap/1 warm start: mmap snapshot vs cold "
               "computation";
    }

    std::string
    source() const override
    {
        return "snapshot-served curves byte-identical to live "
               "computation";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"min-speedup", "20",
                 "minimum cold/warm wall-time ratio (5 under --smoke)"},
                {"snap-file", "rhs_warmstart.snap",
                 "snapshot file path (scratch)"},
                {"out", "BENCH_snapshot.json", "JSON output path"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        const double min_speedup = static_cast<double>(ctx.cli.getInt(
            "min-speedup", ctx.scale.smoke ? 5 : 20));
        const std::string snap_path =
            ctx.cli.get("snap-file", "rhs_warmstart.snap");
        const std::string out_path =
            ctx.cli.get("out", "BENCH_snapshot.json");

        std::vector<WorkItem> work;
        for (const auto mfr : rhmodel::allMfrs)
            for (unsigned r = 0; r < ctx.scale.maxRows; ++r)
                work.push_back({mfr, 1 + r});

        if (ctx.table) {
            bench::printHeader(title(), source());
            std::printf("%zu curves (%u rows x %zu manufacturers), "
                        "min speedup %.0fx\n\n",
                        work.size(), ctx.scale.maxRows,
                        rhmodel::allMfrs.size(), min_speedup);
        }

        // --- Phase 1: cold run, collecting curves -------------------
        auto builder = std::make_shared<snap::Builder>();
        snap::StoreFactory collect_factory;
        collect_factory.attachBuilder(builder);
        exp::FleetCache cold_fleet;
        attach(cold_fleet, collect_factory);
        warmModules(cold_fleet, ctx.scale.seed);
        double cold_seconds = 0.0;
        const std::uint64_t cold_chain =
            runWorkload(cold_fleet, work, ctx.scale.seed, cold_seconds);

        const auto build_start = Clock::now();
        std::string write_error;
        const bool written = builder->write(snap_path, write_error);
        const std::chrono::duration<double> build_elapsed =
            Clock::now() - build_start;
        RHS_ASSERT(written, "snapshot write failed: ", write_error);
        const auto snapshot_bytes = static_cast<std::uint64_t>(
            std::filesystem::file_size(snap_path));

        // --- Phase 2: warm run from the mmapped snapshot ------------
        const auto open_start = Clock::now();
        std::string open_error;
        auto reader = snap::Reader::open(snap_path, open_error);
        const std::chrono::duration<double> open_elapsed =
            Clock::now() - open_start;
        RHS_ASSERT(reader != nullptr,
                   "snapshot open failed: ", open_error);
        std::string deep_error;
        const bool deep_ok = reader->verifyDeep(deep_error);

        snap::StoreFactory warm_factory;
        warm_factory.attachReader(reader);
        exp::FleetCache warm_fleet;
        attach(warm_fleet, warm_factory);
        warmModules(warm_fleet, ctx.scale.seed);
        double warm_seconds = 0.0;
        const std::uint64_t warm_chain =
            runWorkload(warm_fleet, work, ctx.scale.seed, warm_seconds);
        const bool all_from_snapshot =
            reader->hits() == work.size() && reader->misses() == 0;
        const double speedup =
            cold_seconds / std::max(warm_seconds, 1e-9);

        if (ctx.table) {
            std::printf("  cold   %9.3f ms  (%zu curves computed)\n",
                        cold_seconds * 1e3, work.size());
            std::printf("  build  %9.3f ms  (%llu bytes, %.0f "
                        "bytes/curve)\n",
                        build_elapsed.count() * 1e3,
                        static_cast<unsigned long long>(snapshot_bytes),
                        static_cast<double>(snapshot_bytes) /
                            static_cast<double>(work.size()));
            std::printf("  open   %9.3f ms  (deep verify %s)\n",
                        open_elapsed.count() * 1e3,
                        deep_ok ? "ok" : "FAILED");
            std::printf("  warm   %9.3f ms  (%.1fx speedup, hits "
                        "%llu)\n\n",
                        warm_seconds * 1e3, speedup,
                        static_cast<unsigned long long>(
                            reader->hits()));
        }

        // --- Phase 3: served responses are byte-identical -----------
        unsigned serve_mismatches = 0;
        {
            serve::QueryEngine plain;
            serve::QueryEngine::EngineOptions options;
            options.snapshotIn = snap_path;
            serve::QueryEngine warmed(options);
            for (const auto &body :
                 servingRequests(std::min(ctx.scale.maxRows, 16u)))
                if (plain.executeRaw(body) != warmed.executeRaw(body))
                    ++serve_mismatches;
        }

        // --- Phase 4: corruption degrades, never lies ---------------
        std::vector<char> image(snapshot_bytes);
        {
            std::ifstream in(snap_path, std::ios::binary);
            in.read(image.data(),
                    static_cast<std::streamsize>(image.size()));
            RHS_ASSERT(in.gcount() ==
                           static_cast<std::streamsize>(image.size()),
                       "short snapshot read-back");
        }
        const auto write_variant =
            [&](const std::string &path, const std::vector<char> &bytes) {
                std::ofstream out(path, std::ios::binary |
                                            std::ios::trunc);
                out.write(bytes.data(), static_cast<std::streamsize>(
                                            bytes.size()));
            };

        // (a) flipped payload byte: opens, serves, falls back once.
        snap::FileHeader header;
        std::memcpy(&header, image.data(), sizeof(header));
        std::uint32_t first_key_bytes = 0;
        std::memcpy(&first_key_bytes, image.data() + header.pagesOffset,
                    sizeof(first_key_bytes));
        const std::size_t flip_at =
            header.pagesOffset + sizeof(rhmodel::curve_io::RecordHeader) +
            ((first_key_bytes + 7) & ~std::size_t{7}) + 3;
        auto corrupt_image = image;
        corrupt_image[flip_at] =
            static_cast<char>(corrupt_image[flip_at] ^ 0x40);
        const std::string corrupt_path = snap_path + ".corrupt";
        write_variant(corrupt_path, corrupt_image);

        bool fallback_ok = false;
        {
            std::string error;
            auto corrupt_reader =
                snap::Reader::open(corrupt_path, error);
            RHS_ASSERT(corrupt_reader != nullptr,
                       "corrupt-payload snapshot must still open: ",
                       error);
            snap::StoreFactory corrupt_factory;
            corrupt_factory.attachReader(corrupt_reader);
            exp::FleetCache corrupt_fleet;
            attach(corrupt_fleet, corrupt_factory);
            warmModules(corrupt_fleet, ctx.scale.seed);
            double corrupt_seconds = 0.0;
            const std::uint64_t corrupt_chain = runWorkload(
                corrupt_fleet, work, ctx.scale.seed, corrupt_seconds);
            // The flipped byte hits exactly one record: its digest
            // check must fail (counted), the curve must be recomputed
            // live, and the results must still be byte-identical.
            fallback_ok = corrupt_chain == cold_chain &&
                          corrupt_reader->corrupt() >= 1;
        }

        // (b) truncation and (c) bad magic: must fail to open.
        const std::string truncated_path = snap_path + ".truncated";
        write_variant(truncated_path,
                      {image.begin(),
                       image.begin() +
                           static_cast<std::ptrdiff_t>(image.size() / 2)});
        std::string truncated_error;
        const bool truncated_rejected =
            snap::Reader::open(truncated_path, truncated_error) ==
                nullptr &&
            !truncated_error.empty();

        auto bad_magic_image = image;
        bad_magic_image[0] = static_cast<char>(bad_magic_image[0] ^ 0xff);
        const std::string bad_magic_path = snap_path + ".badmagic";
        write_variant(bad_magic_path, bad_magic_image);
        std::string bad_magic_error;
        const bool bad_magic_rejected =
            snap::Reader::open(bad_magic_path, bad_magic_error) ==
                nullptr &&
            !bad_magic_error.empty();

        for (const auto &scratch :
             {corrupt_path, truncated_path, bad_magic_path}) {
            std::error_code ec;
            std::filesystem::remove(scratch, ec);
        }

        if (ctx.table)
            std::printf("  degrade  flipped-byte fallback %s, "
                        "truncated %s, bad magic %s\n",
                        fallback_ok ? "ok" : "FAILED",
                        truncated_rejected ? "rejected" : "ACCEPTED",
                        bad_magic_rejected ? "rejected" : "ACCEPTED");

        // --- Document -----------------------------------------------
        doc.addSeries("wall_seconds", {"cold", "build", "open", "warm"},
                      {cold_seconds, build_elapsed.count(),
                       open_elapsed.count(), warm_seconds});
        doc.data.set("curves", work.size());
        doc.data.set("speedup", speedup);
        doc.data.set("snapshot_bytes", snapshot_bytes);
        doc.data.set("bytes_per_curve",
                     static_cast<double>(snapshot_bytes) /
                         static_cast<double>(work.size()));
        doc.data.set("build_curves_per_second",
                     static_cast<double>(work.size()) /
                         std::max(build_elapsed.count(), 1e-9));
        doc.data.set("load_curves_per_second",
                     static_cast<double>(work.size()) /
                         std::max(warm_seconds, 1e-9));
        doc.data.set("reader_hits", reader->hits());
        doc.data.set("reader_misses", reader->misses());
        doc.data.set("serve_mismatches", serve_mismatches);
        doc.data.set("deep_verify", deep_ok);

        doc.check("snapshot_speedup", "perf target",
                  "warm start from the mmapped snapshot beats cold "
                  "computation by the required factor",
                  speedup >= min_speedup,
                  "speedup " + std::to_string(speedup) + "x (need " +
                      std::to_string(min_speedup) + "x)");
        doc.check("snapshot_identical", "serving contract",
                  "snapshot-served curves and rhs-rpc responses are "
                  "byte-identical to live computation",
                  warm_chain == cold_chain && all_from_snapshot &&
                      serve_mismatches == 0 && deep_ok,
                  "digest chains " +
                      std::string(warm_chain == cold_chain
                                      ? "equal"
                                      : "DIFFER") +
                      ", " + std::to_string(serve_mismatches) +
                      " serve mismatches, all-hits: " +
                      (all_from_snapshot ? "yes" : "no"));
        doc.check("snapshot_fallback", "robustness invariant",
                  "corrupt or malformed snapshots degrade to live "
                  "computation (flipped byte) or fail open cleanly "
                  "(truncated, bad magic)",
                  fallback_ok && truncated_rejected &&
                      bad_magic_rejected,
                  std::string("flipped-byte fallback: ") +
                      (fallback_ok ? "ok" : "FAILED") +
                      ", truncated: " +
                      (truncated_rejected ? "rejected" : "ACCEPTED") +
                      ", bad magic: " +
                      (bad_magic_rejected ? "rejected" : "ACCEPTED"));

        bench::stampEnvelope(doc, ctx.scale);
        report::JsonWriter().writeFile(out_path, doc.toJson());
        if (ctx.table)
            std::printf("\nwrote %s\n", out_path.c_str());
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerSnapshotWarmstart()
{
    exp::Registry::add(std::make_unique<SnapshotWarmstart>());
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates the §8.1 attack-improvement analyses:
 *  1. temperature-aware aggressor selection,
 *  2. temperature-triggered attack cells,
 *  3. extended aggressor on-time via READ bursts.
 */

#include <cstdio>
#include <memory>

#include "attack/long_aggressor.hh"
#include "attack/temperature_aware.hh"
#include "attack/trigger_cell.hh"
#include "bench_common.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class AttacksImprovements final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "attacks_improvements";
    }

    std::string
    title() const override
    {
        return "Section 8.1: attack improvements";
    }

    std::string
    source() const override
    {
        return "Improvements 1-3 (paper: ~50% HCfirst reduction from "
               "informed row choice; narrow-range trigger cells; "
               "BER x3.2-10.2 and HCfirst -36% from 10-15 READs)";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table)
            printHeader(title(), source());

        const auto &fleet = ctx.fleet.fleet(ctx.scale);

        if (ctx.table) {
            std::printf("Improvement 1: temperature-aware victim "
                        "placement\n");
            std::printf("%-8s %-8s %-12s %-12s %-10s\n", "Module",
                        "T(C)", "best HCfirst", "median", "reduction");
            printRule();
        }
        std::vector<std::string> labels;
        std::vector<double> reductions;
        bool informed_helps = true;
        bool any_choice = false;
        for (const auto &entry : fleet) {
            for (double temp : {50.0, 80.0}) {
                const auto choice = attack::pickRowForTemperature(
                    *entry.tester, 0, entry.rows, temp, entry.wcdp);
                if (choice.bestHcFirst == 0)
                    continue;
                if (ctx.table)
                    std::printf("%-8s %-8.0f %9.1fK %9.1fK %8.0f%%\n",
                                entry.dimm->label().c_str(), temp,
                                choice.bestHcFirst / 1e3,
                                choice.medianHcFirst / 1e3,
                                100.0 * choice.reduction());
                any_choice = true;
                labels.push_back(entry.dimm->label());
                reductions.push_back(100.0 * choice.reduction());
                if (choice.reduction() < 0.0)
                    informed_helps = false;
            }
        }

        if (ctx.table) {
            std::printf("\nImprovement 2: temperature-triggered "
                        "attack cells (target 70 degC)\n");
            printRule();
        }
        std::vector<double> trigger_counts;
        for (const auto &entry : fleet) {
            const auto triggers = attack::findTriggerCells(
                *entry.tester, 0, entry.rows, entry.wcdp, 70.0, 5.0);
            if (ctx.table) {
                std::printf("%-8s narrow-range trigger cells found: "
                            "%zu",
                            entry.dimm->label().c_str(),
                            triggers.size());
                if (!triggers.empty()) {
                    const auto &t = triggers.front();
                    std::printf(
                        "   first: chip %u col %u bit %u, range "
                        "[%.0f, %.0f] degC, fires@70=%s fires@50=%s",
                        t.location.chip, t.location.column,
                        t.location.bit, t.rangeLow, t.rangeHigh,
                        attack::triggerFires(*entry.tester, t, 0,
                                             entry.wcdp, 70.0)
                            ? "yes"
                            : "no",
                        attack::triggerFires(*entry.tester, t, 0,
                                             entry.wcdp, 50.0)
                            ? "yes"
                            : "no");
                }
                std::printf("\n");
            }
            trigger_counts.push_back(
                static_cast<double>(triggers.size()));
        }

        if (ctx.table) {
            std::printf("\nImprovement 3: extended aggressor on-time "
                        "via READ bursts\n");
            std::printf("%-8s %-7s %-10s %-10s %-10s %-12s %-8s\n",
                        "Module", "#READs", "tAggOn", "BER gain",
                        "HC drop", "defeats cfg?", "");
            printRule();
        }
        std::vector<double> ber_gains;
        bool bursts_gain = true;
        bool any_burst = false;
        for (const auto &entry : fleet) {
            for (unsigned reads : {10u, 15u}) {
                const auto report = attack::analyzeLongAggressor(
                    *entry.tester, 0, entry.rows, entry.wcdp, reads);
                if (ctx.table)
                    std::printf("%-8s %-7u %7.1fns %8.2fx %8.1f%% "
                                "%-12s\n",
                                entry.dimm->label().c_str(), reads,
                                report.effectiveOnTimeNs,
                                report.berGain(),
                                100.0 * report.hcFirstReduction(),
                                report.defeatsBaselineThreshold()
                                    ? "yes"
                                    : "no");
                if (report.berGain() > 0.0) {
                    any_burst = true;
                    ber_gains.push_back(report.berGain());
                    if (report.berGain() < 1.0)
                        bursts_gain = false;
                }
            }
        }

        doc.addSeries("informed_reduction_pct", labels, reductions);
        doc.addSeries("trigger_cells_found", trigger_counts);
        doc.addSeries("read_burst_ber_gain", ber_gains);
        doc.check("impr1_informed_choice", "Section 8.1, Impr. 1",
                  "temperature-aware victim choice never hurts "
                  "(HCfirst reduction >= 0 vs the median row)",
                  !any_choice || informed_helps,
                  any_choice ? "reductions in series "
                               "informed_reduction_pct"
                             : "no vulnerable rows at this scale");
        doc.check("impr3_read_bursts", "Section 8.1, Impr. 3",
                  "extending tAggOn with READ bursts multiplies BER "
                  "(gain >= 1x)",
                  !any_burst || bursts_gain,
                  any_burst
                      ? "gains in series read_burst_ber_gain"
                      : "no measurable BER at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerAttacksImprovements()
{
    exp::Registry::add(std::make_unique<AttacksImprovements>());
}

} // namespace rhs::bench

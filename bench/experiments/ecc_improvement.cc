/**
 * @file
 * Regenerates Defense Improvement 6 (§8.2): ECC against RowHammer's
 * non-uniform column error distribution.
 *
 * Because flips cluster in vulnerable columns (Obsvs. 13-14), a
 * SEC-DED word built from 8 consecutive columns sees correlated
 * multi-bit errors. Interleaving each word's bytes across distant
 * columns ("ECC schemes optimized for non-uniform bit error
 * probability distributions across columns") converts detected /
 * silently mis-corrected words back into correctable single-bit
 * errors.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "ecc/rowhammer_ecc.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class EccImprovement final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "ecc_improvement";
    }

    std::string
    title() const override
    {
        return "Defense Improvement 6: SEC-DED vs RowHammer flips";
    }

    std::string
    source() const override
    {
        return "Section 8.2 Improvement 6 (column-aware ECC)";
    }

    exp::ScaleDefaults
    scaleDefaults() const override
    {
        // The word-level outcome mix needs row volume; 30 rows keeps
        // the smoke run meaningful.
        return {6'000, 2, 2'000, 30};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table)
            printHeader(title(), source());

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        if (ctx.table) {
            std::printf("Aggressive attack conditions: "
                        "tAggOn=154.5ns, 75 degC, 512K hammers "
                        "(maximizes multi-bit words)\n\n");
            std::printf("%-8s %-13s %-8s %-10s %-10s %-10s %-9s\n",
                        "Module", "layout", "words", "corrected",
                        "detected", "silent", "silent%");
            printRule();
        }

        std::vector<std::string> labels;
        std::vector<double> contiguous_silent_pct,
            interleaved_silent_pct;
        std::uint64_t total_words[2] = {0, 0};
        std::uint64_t total_silent[2] = {0, 0};
        bool any_words = false;
        for (const auto &entry : fleet) {
            rhmodel::Conditions conditions;
            conditions.temperature = 75.0;
            conditions.tAggOn = 154.5;

            double silent_rates[2] = {0.0, 0.0};
            std::uint64_t words_seen = 0;
            for (auto layout : {ecc::WordLayout::Contiguous,
                                ecc::WordLayout::Interleaved}) {
                ecc::EccOutcome outcome;
                for (unsigned row : entry.rows) {
                    const auto detail = entry.tester->berDetail(
                        0, row, conditions, entry.wcdp,
                        core::kMaxHammers);
                    outcome.merge(ecc::analyzeFlips(
                        detail.flips,
                        entry.dimm->module().geometry(), layout));
                }
                if (ctx.table)
                    std::printf(
                        "%-8s %-13s %-8llu %-10llu %-10llu %-10llu "
                        "%8.3f%%\n",
                        entry.dimm->label().c_str(),
                        layout == ecc::WordLayout::Contiguous
                            ? "contiguous"
                            : "interleaved",
                        static_cast<unsigned long long>(
                            outcome.words),
                        static_cast<unsigned long long>(
                            outcome.corrected),
                        static_cast<unsigned long long>(
                            outcome.detected),
                        static_cast<unsigned long long>(
                            outcome.silentCorruption),
                        100.0 * outcome.silentRate());
                const std::size_t which =
                    layout == ecc::WordLayout::Interleaved;
                silent_rates[which] = 100.0 * outcome.silentRate();
                total_words[which] += outcome.words;
                total_silent[which] += outcome.silentCorruption;
                words_seen = outcome.words;
            }
            if (ctx.table)
                printRule();

            labels.push_back(entry.dimm->label());
            contiguous_silent_pct.push_back(silent_rates[0]);
            interleaved_silent_pct.push_back(silent_rates[1]);
            if (words_seen > 0)
                any_words = true;
        }

        // A single module's silent rate at reduced scale rides on a
        // handful of words; Improvement 6 is a claim about the error
        // population, so compare the fleet-wide rates.
        const double contiguous_rate =
            total_words[0] > 0 ? static_cast<double>(total_silent[0]) /
                                     static_cast<double>(total_words[0])
                               : 0.0;
        const double interleaved_rate =
            total_words[1] > 0 ? static_cast<double>(total_silent[1]) /
                                     static_cast<double>(total_words[1])
                               : 0.0;

        if (ctx.table) {
            std::printf("Column-aware interleaving shifts "
                        "detected/silent words into the corrected "
                        "column: the Improvement 6 claim.\n");
        }

        doc.addSeries("contiguous_silent_pct", labels,
                      contiguous_silent_pct);
        doc.addSeries("interleaved_silent_pct", labels,
                      interleaved_silent_pct);
        char aggregate[96];
        std::snprintf(aggregate, sizeof aggregate,
                      "fleet silent rate: contiguous %.4f%% vs "
                      "interleaved %.4f%%",
                      100.0 * contiguous_rate,
                      100.0 * interleaved_rate);
        doc.data.set("fleet_contiguous_silent_rate", contiguous_rate);
        doc.data.set("fleet_interleaved_silent_rate",
                     interleaved_rate);
        doc.check("impr6_column_aware_ecc", "Section 8.2, Impr. 6",
                  "interleaving ECC words across distant columns "
                  "does not raise the fleet-wide silent-corruption "
                  "rate",
                  !any_words || interleaved_rate <= contiguous_rate,
                  any_words
                      ? aggregate
                      : "no ECC words with flips at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerEccImprovement()
{
    exp::Registry::add(std::make_unique<EccImprovement>());
}

} // namespace rhs::bench

/**
 * @file
 * Defense Improvement 5, quantified end-to-end: row-buffer policies
 * bound the aggressor-row active time, which bounds the damage rate
 * Obsv. 8 measures. Services the same synthetic request stream under
 * each policy, reports the measured on-time distribution, and converts
 * it to the per-manufacturer damage factor the timing model implies.
 */

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "mc/scheduler.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;
using namespace rhs::mc;

class RowPolicyExperiment final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "row_policy";
    }

    std::string
    title() const override
    {
        return "Defense Improvement 5: row-buffer policy vs "
               "aggressor active time";
    }

    std::string
    source() const override
    {
        return "Section 8.2 Improvement 5 (bounding tAggOn in the "
               "memory controller)";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"requests", "20000", "requests in the trace"},
                {"locality", "0.75", "row locality of the trace"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        TraceConfig config;
        config.requests = static_cast<std::uint64_t>(
            ctx.cli.getInt("requests",
                           ctx.scale.smoke ? 4'000 : 20'000));
        config.rowLocality = ctx.cli.getDouble("locality", 0.75);

        if (ctx.table)
            printHeader(title(), source());

        const auto trace = makeTrace(config);
        if (ctx.table) {
            std::printf("Trace: %llu requests, row locality %.2f (an "
                        "attacker maximizes locality to stretch "
                        "tAggOn)\n\n",
                        static_cast<unsigned long long>(
                            config.requests),
                        config.rowLocality);

            std::printf("%-14s %-9s %-9s %-11s %-11s %-11s %-22s\n",
                        "policy", "hit rate", "#ACTs", "mean tOn",
                        "P95 tOn", "max tOn",
                        "damage factor A/B/C/D");
            printRule();
        }

        std::vector<std::string> labels;
        std::vector<double> mean_on_times, damage_factor_a;
        for (auto policy :
             {RowPolicy::OpenPage, RowPolicy::TimeoutPage,
              RowPolicy::ClosedPage}) {
            dram::Geometry geometry;
            geometry.banks = 4;
            geometry.subarraysPerBank = 8;
            geometry.rowsPerSubarray = 512;
            geometry.columnsPerRow = 64;
            dram::ModuleInfo info;
            info.label = "MC";
            info.chips = 2;
            info.serial = 0xBEEF;
            dram::Module module(info, geometry, dram::ddr4_2400(),
                                dram::makeIdentityMapping());

            Scheduler scheduler(module, policy, 100.0);
            const auto result = scheduler.run(trace);

            double max_on = 0.0;
            for (double t : result.onTimes)
                max_on = std::max(max_on, t);

            // Per-manufacturer damage factor at the mean on-time:
            // the multiplier on RowHammer damage vs the tRAS
            // baseline (derived from the paper's Obsv. 8
            // calibration).
            char factors[64];
            double f[4];
            {
                const auto &timing = module.timing();
                int i = 0;
                for (auto mfr : rhmodel::allMfrs) {
                    const auto &p = rhmodel::profileFor(mfr);
                    const double g_on =
                        1.0 + p.kOn *
                                  (result.meanOnTime() -
                                   timing.tRAS) /
                                  timing.tRAS;
                    f[i++] = (1.0 - p.wCouple) * g_on + p.wCouple;
                }
                std::snprintf(factors, sizeof(factors),
                              "%.2f / %.2f / %.2f / %.2f", f[0], f[1],
                              f[2], f[3]);
            }

            if (ctx.table)
                std::printf("%-14s %8.1f%% %-9llu %8.1fns %8.1fns "
                            "%8.1fns  %s\n",
                            to_string(policy).c_str(),
                            100.0 * result.hitRate(),
                            static_cast<unsigned long long>(
                                result.activations),
                            result.meanOnTime(),
                            stats::quantile(result.onTimes, 0.95),
                            max_on, factors);

            labels.push_back(to_string(policy));
            mean_on_times.push_back(result.meanOnTime());
            damage_factor_a.push_back(f[0]);
        }

        if (ctx.table) {
            std::printf("\nBounding the active time (timeout/closed "
                        "page) pins the damage factor near 1.0 at a "
                        "row-hit-rate cost — the trade Improvement 5 "
                        "proposes.\n");
        }

        doc.addSeries("mean_on_time_ns", labels, mean_on_times);
        doc.addSeries("damage_factor_mfr_a", labels,
                      damage_factor_a);
        // Index order above: open, timeout, closed page.
        doc.check("impr5_policy_bounds_damage",
                  "Section 8.2, Impr. 5",
                  "closed-page scheduling yields a mean aggressor "
                  "on-time (and damage factor) no higher than "
                  "open-page",
                  mean_on_times.size() == 3 &&
                      mean_on_times[2] <= mean_on_times[0] &&
                      damage_factor_a[2] <= damage_factor_a[0],
                  "per-policy values in series mean_on_time_ns / "
                  "damage_factor_mfr_a");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerRowPolicy()
{
    exp::Registry::add(std::make_unique<RowPolicyExperiment>());
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates Fig. 10: the distribution of per-row HCfirst as the
 * bank precharged time (tAggOff) grows.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/timing_analysis.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Fig10HcFirstVsTaggOff final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig10_hcfirst_vs_taggoff";
    }

    std::string
    title() const override
    {
        return "Fig. 10: per-row HCfirst vs aggressor row off-time "
               "(tAggOff)";
    }

    std::string
    source() const override
    {
        return "Fig. 10 (paper: HCfirst +33.8 / +24.7 / +50.1 / "
               "+33.7 % for A/B/C/D at 40.5 ns; Obsv. 10)";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table) {
            printHeader(title(), source());
            std::printf("%-8s %-9s %-52s\n", "Module", "tAggOff",
                        "letter values of HCfirst (K hammers)");
            printRule();
        }

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        std::vector<std::string> labels;
        std::vector<double> hc_change_pct;
        bool hcfirst_rises = true;
        bool any_data = false;
        for (const auto &entry : fleet) {
            const auto sweep = core::sweepAggressorOffTime(
                *entry.tester, 0, entry.rows, entry.wcdp);
            std::vector<double> medians;
            for (std::size_t v = 0; v < sweep.values.size(); ++v) {
                const auto &data = sweep.hcFirstPerRow[v];
                if (data.empty())
                    continue;
                const auto lv = stats::letterValues(data, 3);
                medians.push_back(lv.median);
                if (!ctx.table)
                    continue;
                std::printf("%-8s %6.1fns  median %7.1fK",
                            entry.dimm->label().c_str(),
                            sweep.values[v], lv.median / 1e3);
                for (const auto &[lo, hi] : lv.boxes)
                    std::printf("  [%7.1fK, %7.1fK]", lo / 1e3,
                                hi / 1e3);
                std::printf("\n");
            }
            if (ctx.table) {
                std::printf("%-8s HCfirst change (40.5 vs 16.5): "
                            "%+.1f%%   CV change: %+.0f%%\n",
                            entry.dimm->label().c_str(),
                            100.0 * sweep.hcFirstChange(),
                            100.0 * sweep.hcFirstCvChange());
                printRule();
            }
            if (!medians.empty()) {
                any_data = true;
                labels.push_back(entry.dimm->label());
                hc_change_pct.push_back(100.0 *
                                        sweep.hcFirstChange());
                doc.addSeries("median_hcfirst_" + entry.dimm->label(),
                              medians);
                if (sweep.hcFirstChange() <= 0.0)
                    hcfirst_rises = false;
            }
        }

        if (ctx.table) {
            std::printf("Obsv. 11 check: HCfirst CV does not grow "
                        "with tAggOff (uniform relief across "
                        "rows).\n");
        }

        doc.addSeries("hcfirst_change_pct", labels, hc_change_pct);
        doc.check("obsv10_hcfirst_rises", "Obsv. 10 / Fig. 10",
                  "HCfirst at tAggOff=40.5 ns is above the tRP "
                  "baseline for every module",
                  any_data && hcfirst_rises,
                  any_data
                      ? "per-module changes in series hcfirst_change_pct"
                      : "no vulnerable rows at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig10HcFirstVsTaggOff()
{
    exp::Registry::add(std::make_unique<Fig10HcFirstVsTaggOff>());
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates Fig. 7: the distribution of average bit flips per victim
 * row across chips as the aggressor row on-time (tAggOn) grows from
 * tRAS (34.5 ns) to 154.5 ns.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/timing_analysis.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Fig7BerVsTaggOn final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig7_ber_vs_taggon";
    }

    std::string
    title() const override
    {
        return "Fig. 7: bit flips per victim row vs aggressor row "
               "on-time (tAggOn)";
    }

    std::string
    source() const override
    {
        return "Fig. 7 (paper: BER x10.2 / x3.1 / x4.4 / x9.6 for "
               "A/B/C/D at 154.5 ns; Obsv. 8)";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table) {
            printHeader(title(), source());
            std::printf("%-8s %-9s %-40s %-10s\n", "Module", "tAggOn",
                        "box plot of flips/row per chip", "mean");
            printRule();
        }

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        std::vector<std::string> labels;
        std::vector<double> ber_ratios;
        bool ratios_grow = true;
        bool any_data = false;
        for (const auto &entry : fleet) {
            const auto sweep = core::sweepAggressorOnTime(
                *entry.tester, 0, entry.rows, entry.wcdp);
            std::vector<double> means;
            for (std::size_t v = 0; v < sweep.values.size(); ++v) {
                const auto &data = sweep.flipsPerRowPerChip[v];
                means.push_back(stats::mean(data));
                if (!ctx.table)
                    continue;
                const auto box = stats::boxSummary(data);
                std::printf("%-8s %6.1fns  [%6.2f |%6.2f {%6.2f} "
                            "%6.2f| %6.2f]  %8.2f\n",
                            entry.dimm->label().c_str(),
                            sweep.values[v], box.whiskerLow, box.q1,
                            box.median, box.q3, box.whiskerHigh,
                            stats::mean(data));
            }
            if (ctx.table) {
                std::printf("%-8s BER ratio (154.5/34.5): %.2fx   "
                            "CV change: %+.0f%%\n",
                            entry.dimm->label().c_str(),
                            sweep.berRatio(),
                            100.0 * sweep.berCvChange());
                printRule();
            }

            any_data = true;
            labels.push_back(entry.dimm->label());
            ber_ratios.push_back(sweep.berRatio());
            doc.addSeries("mean_flips_per_row_" + entry.dimm->label(),
                          means);
            if (sweep.berRatio() <= 1.0)
                ratios_grow = false;
        }

        if (ctx.table) {
            std::printf("Obsv. 8/9 check: BER grows monotonically "
                        "with tAggOn and the CV shrinks (consistent "
                        "worsening).\n");
        }

        doc.addSeries("ber_ratio", labels, ber_ratios);
        doc.check("obsv8_ber_grows", "Obsv. 8 / Fig. 7",
                  "BER at tAggOn=154.5 ns exceeds the tRAS baseline "
                  "for every module",
                  any_data && ratios_grow,
                  any_data ? "per-module ratios in series ber_ratio"
                           : "no flips at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig7BerVsTaggOn()
{
    exp::Registry::add(std::make_unique<Fig7BerVsTaggOn>());
}

} // namespace rhs::bench

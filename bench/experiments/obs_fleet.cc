/**
 * @file
 * Fleet observability gate: distributed tracing and metrics
 * aggregation across a REAL multi-process rhs-route/rhs-serve fleet.
 *
 * The PR 10 tentpole adds an optional `trace` member to rhs-rpc/1
 * requests, propagated by the router on fan-out and recorded by every
 * hop, plus the `fleet_stats` / `trace_pull` control ops. This
 * experiment is the proof that the whole chain works *across process
 * boundaries* — two rhs-serve shards are forked as subprocesses
 * (discovered via --port-file), with an in-process router in front —
 * and that it stays free:
 *
 *  1. Byte identity: a routed request carrying a `trace` member gets
 *     back exactly the bytes a direct QueryEngine call on the
 *     trace-free request produces — the trace context is invisible
 *     end to end, through the router rewrite and the shard engine.
 *
 *  2. Stitch completeness: requests tagged with a known trace id
 *     surface spans under that id on the router node AND on at least
 *     one shard node when the fleet trace is pulled (`trace_pull`
 *     fan-out), and the stitched Chrome document names every node.
 *     Compiled-out builds (RHS_OBS=OFF) pass trivially with a note —
 *     the protocol surface still works, recording does not exist.
 *
 *  3. fleet_stats merge: the router reaches both replicas, merged
 *     counters equal the per-shard sums, and the merged latency
 *     histogram's p50/p99 are real quantiles (inside [min, max]).
 *
 *  4. Overhead: fleet CPU time (experiment process + both shard
 *     subprocesses, via their per-process CPU clocks) per pipelined
 *     batch of profile_slice requests over a FIXED row set with a
 *     fresh trial each batch — every batch runs the same ~200 full
 *     RowEval evaluations, recording on vs off, orientation swapped
 *     per pair, per-orientation trimmed mean — must stay under
 *     --max-overhead percent.
 *
 * Options:
 *   --requests N      requests per overhead batch (default 8)
 *   --reps N          on/off batch pairs (default 96; 48 under
 *                     --smoke)
 *   --max-overhead P  overhead fail threshold, percent (default 2;
 *                     CI passes a high value in sanitizer builds)
 *   --out FILE        JSON output path (default BENCH_obs_fleet.json)
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/wait.h>
#include <time.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_common.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "report/writer.hh"
#include "route/router.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/query_engine.hh"
#include "util/logging.hh"

namespace
{

using namespace rhs;
using Clock = std::chrono::steady_clock;

/** Directory of the running binary (rhs-serve lives next to it). */
std::string
selfDirectory()
{
    char buffer[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
    if (n <= 0)
        return {};
    buffer[n] = '\0';
    std::string path(buffer);
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

/** One forked rhs-serve shard, discovered through --port-file. */
struct ShardProcess
{
    pid_t pid = -1;
    unsigned short port = 0;
    std::string portFile;
};

ShardProcess
spawnShard(const std::string &binary, unsigned index)
{
    ShardProcess shard;
    shard.portFile = "/tmp/rhs_obs_fleet_" +
                     std::to_string(::getpid()) + "_s" +
                     std::to_string(index) + ".port";
    ::unlink(shard.portFile.c_str());
    shard.pid = ::fork();
    if (shard.pid == 0) {
        ::execl(binary.c_str(), "rhs-serve", "--port", "0",
                "--port-file", shard.portFile.c_str(), "--log",
                "silent", static_cast<char *>(nullptr));
        std::fprintf(stderr, "obs_fleet: exec %s: %s\n",
                     binary.c_str(), std::strerror(errno));
        ::_exit(127);
    }
    RHS_ASSERT(shard.pid > 0, "obs_fleet: fork() failed");
    // The child writes the file atomically once listening.
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (Clock::now() < deadline) {
        if (std::FILE *f = std::fopen(shard.portFile.c_str(), "r")) {
            unsigned port = 0;
            const bool got = std::fscanf(f, "%u", &port) == 1;
            std::fclose(f);
            if (got && port != 0) {
                shard.port = static_cast<unsigned short>(port);
                return shard;
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    RHS_FATAL("obs_fleet: shard ", index,
              " never wrote its port file (", shard.portFile, ")");
}

/** A small deterministic engine-op mix spreading across both shards
 *  (mfr x bank varies the consistent-hash key). */
report::Json
makeRequest(unsigned index)
{
    auto request = report::Json::object();
    const std::int64_t id = 1000 + index;
    const char mfr[2] = {"ABCD"[index % 4], '\0'};
    const unsigned bank = index % 4;
    const unsigned row = 2 + (index * 7) % 40;
    switch (index % 3) {
      case 0:
        request.set("op", "row_hcfirst");
        request.set("id", id);
        request.set("mfr", mfr);
        request.set("bank", bank);
        request.set("row", row);
        request.set("trial", index % 2);
        break;
      case 1:
        request.set("op", "ber");
        request.set("id", id);
        request.set("mfr", mfr);
        request.set("bank", bank);
        request.set("row", row);
        request.set("hammers", 120'000);
        break;
      default:
        request.set("op", "profile_slice");
        request.set("id", id);
        request.set("mfr", mfr);
        request.set("bank", bank);
        request.set("row0", 1 + (index * 5) % 30);
        request.set("count", 2);
        break;
    }
    return request;
}

/** The same request with a trace context attached. */
std::string
withTrace(report::Json request, const std::string &trace_id)
{
    auto trace = report::Json::object();
    trace.set("id", trace_id);
    trace.set("parent", std::int64_t{1});
    request.set("trace", std::move(trace));
    return serve::serialize(request);
}

/** Find a histogram object inside a merged registry document. */
const report::Json *
findHistogram(const report::Json &registry, const std::string &name)
{
    const auto *histograms = registry.find("histograms");
    return histograms != nullptr ? histograms->find(name) : nullptr;
}

class ObsFleet final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "obs_fleet";
    }

    std::string
    title() const override
    {
        return "Fleet observability: cross-process trace stitching "
               "and stats aggregation";
    }

    std::string
    source() const override
    {
        return "one routed request = one stitched trace; tracing "
               "costs nothing and changes no byte";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"requests", "8",
                 "requests per overhead batch (8 covers every "
                 "(mfr, bank) shard key once)"},
                {"reps", "96",
                 "on/off batch pairs for the overhead phase (48 "
                 "under --smoke)"},
                {"max-overhead", "2",
                 "routed-path overhead fail threshold, percent"},
                {"out", "BENCH_obs_fleet.json", "JSON output path"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        const auto requests = static_cast<unsigned>(
            ctx.cli.getInt("requests", 8));
        const auto reps = static_cast<unsigned>(
            ctx.cli.getInt("reps", ctx.scale.smoke ? 48 : 96));
        // Identity and stitch phases use their own request count: the
        // overhead batch is sized for timing, not coverage.
        const unsigned mix_requests = ctx.scale.smoke ? 16u : 24u;
        const double max_overhead = static_cast<double>(
            ctx.cli.getInt("max-overhead", 2));
        const std::string out_path =
            ctx.cli.get("out", "BENCH_obs_fleet.json");
        RHS_ASSERT(requests > 0 && reps > 0,
                   "need at least one request and one timing pair");

        if (ctx.table) {
            bench::printHeader(title(), source());
            std::printf("2 shard subprocesses + in-process router; "
                        "%u requests/sweep, %u timing pairs, spans "
                        "compiled %s\n\n",
                        mix_requests, reps,
                        obs::kCompiledIn ? "in" : "out");
        }

        // --- Fleet: two rhs-serve subprocesses, router in front -----
        const std::string binary = selfDirectory() + "/rhs-serve";
        std::vector<ShardProcess> shards;
        route::RouterConfig router_config;
        for (unsigned i = 0; i < 2; ++i) {
            shards.push_back(spawnShard(binary, i));
            route::Endpoint endpoint;
            endpoint.port = shards.back().port;
            router_config.shards.push_back({endpoint});
        }
        // A quiet prober: health probes landing inside a timed batch
        // would pollute its CPU sample, and nothing here fails over.
        router_config.health.probeIntervalMs = 5000;
        route::Router router(router_config);
        router.start();

        serve::QueryEngine direct;
        obs::setEnabled(true);

        // --- Phase 1: byte identity with tracing attached -----------
        // The routed reply to a request *with* a trace member must be
        // the exact bytes the direct engine produces for the request
        // *without* one: the context is invisible end to end.
        unsigned mismatches = 0, transport_errors = 0;
        {
            serve::Client client;
            RHS_ASSERT(client.connect("127.0.0.1", router.port()),
                       "obs_fleet: cannot reach the router");
            for (unsigned k = 0; k < mix_requests; ++k) {
                const auto request = makeRequest(k);
                const std::string plain = serve::serialize(request);
                const std::string traced = withTrace(
                    request,
                    obs::traceIdToHex(0, 0xf1ee700000000000ull + k));
                const std::string reply = client.callRaw(traced);
                if (reply.empty()) {
                    ++transport_errors;
                    continue;
                }
                if (reply != direct.executeRaw(plain))
                    ++mismatches;
            }
        }
        if (ctx.table)
            std::printf("  identity   %u traced requests: %u "
                        "mismatches, %u transport errors\n",
                        mix_requests, mismatches, transport_errors);

        // --- Phase 2: overhead of tracing on the routed path --------
        // The measured quantity is fleet CPU time — the experiment
        // process (router + client) plus both shard subprocesses via
        // their per-process CPU clocks — not wall time: on a shared
        // host, wall-clock batches drift by tens of percent from
        // scheduling alone while the effect is well under one, and
        // tracing's real cost IS the extra cycles it burns. Each
        // timed unit is a PIPELINED batch (all bodies sent before any
        // reply is read, so idle-fleet futex wake-ups are paid once
        // per batch, not once per request).
        //
        // The workload is built so adjacent batches do near-IDENTICAL
        // work: every batch issues the same 8 profile_slice requests
        // — one per (mfr, bank) shard key, each sweeping the same
        // fixed 24-row window — and only the `trial` parameter
        // advances per batch. A fresh trial misses the RowEval cache,
        // so each batch runs ~200 full evaluations (several ms of
        // model compute; the fixed per-request trace cost is ~2 us),
        // while the per-row cell state stays warm and the row set
        // never changes — fresh random rows would let row-dependent
        // model cost (parity, subarray position) correlate with the
        // on/off orientation and masquerade as tracing overhead.
        // On/off orientation swaps per pair so warm-up and frequency
        // drift cancel across the two orientations.
        constexpr unsigned kSliceRows = 24;
        std::uint64_t batch_no = 0;
        auto batch_bodies = [&] {
            std::vector<std::string> bodies;
            // trial wraps at the protocol bound; at default scale
            // (<600 batches including retries) it never does, so
            // every (key, trial) pair is new and every slice is a
            // full RowEval miss.
            const auto trial =
                static_cast<std::int64_t>(batch_no++ % 1024);
            for (unsigned k = 0; k < requests; ++k) {
                auto request = report::Json::object();
                const char mfr[2] = {"AB"[(k / 4) % 2], '\0'};
                request.set("op", "profile_slice");
                request.set("id", static_cast<std::int64_t>(
                                      5000 + batch_no * 64 + k));
                request.set("mfr", mfr);
                request.set("bank", static_cast<unsigned>(k % 4));
                request.set("row0", 2);
                request.set("count", kSliceRows);
                request.set("trial", trial);
                bodies.push_back(serve::serialize(request));
            }
            return bodies;
        };
        std::vector<clockid_t> cpu_clocks{CLOCK_PROCESS_CPUTIME_ID};
        for (const ShardProcess &shard : shards) {
            clockid_t clock;
            RHS_ASSERT(::clock_getcpuclockid(shard.pid, &clock) == 0,
                       "obs_fleet: no CPU clock for shard pid ",
                       shard.pid);
            cpu_clocks.push_back(clock);
        }
        auto cpu_samples = [&] {
            std::vector<double> seconds;
            for (const clockid_t clock : cpu_clocks) {
                timespec ts{};
                RHS_ASSERT(::clock_gettime(clock, &ts) == 0,
                           "obs_fleet: clock_gettime failed");
                seconds.push_back(static_cast<double>(ts.tv_sec) +
                                  static_cast<double>(ts.tv_nsec) *
                                      1e-9);
            }
            return seconds;
        };
        auto measure = [&] {
            serve::Client client;
            RHS_ASSERT(client.connect("127.0.0.1", router.port()),
                       "obs_fleet: cannot reach the router");
            std::vector<double> perClock(cpu_clocks.size(), 0.0);
            std::vector<double> onClock(cpu_clocks.size(), 0.0);
            std::vector<double> offClock(cpu_clocks.size(), 0.0);
            auto timed_batch = [&] {
                const auto bodies = batch_bodies();
                const auto start = cpu_samples();
                for (const std::string &body : bodies)
                    if (!client.sendRaw(body))
                        ++transport_errors;
                std::string reply;
                for (std::size_t i = 0; i < bodies.size(); ++i)
                    if (!client.recvRaw(reply))
                        ++transport_errors;
                const auto end = cpu_samples();
                double total = 0.0;
                for (std::size_t i = 0; i < end.size(); ++i) {
                    total += end[i] - start[i];
                    perClock[i] += end[i] - start[i];
                }
                return total;
            };
            timed_batch(); // Warm rows, connections and code paths.
            std::vector<double> deltas[2];
            std::vector<double> baselines;
            for (unsigned pair = 0; pair < reps; ++pair) {
                const bool record_first = (pair & 1) != 0;
                obs::setEnabled(record_first);
                std::fill(perClock.begin(), perClock.end(), 0.0);
                const double first = timed_batch();
                auto &firstClock = record_first ? onClock : offClock;
                for (std::size_t i = 0; i < perClock.size(); ++i)
                    firstClock[i] += perClock[i];
                obs::setEnabled(!record_first);
                std::fill(perClock.begin(), perClock.end(), 0.0);
                const double second = timed_batch();
                auto &secondClock = record_first ? offClock : onClock;
                for (std::size_t i = 0; i < perClock.size(); ++i)
                    secondClock[i] += perClock[i];
                const double on = record_first ? first : second;
                const double off = record_first ? second : first;
                deltas[record_first ? 1 : 0].push_back(on - off);
                baselines.push_back(off);
            }
            obs::setEnabled(true);
            if (std::getenv("RHS_OBS_FLEET_DEBUG") != nullptr)
                for (std::size_t i = 0; i < onClock.size(); ++i)
                    std::printf("    clock %zu: on %.3f ms, off %.3f "
                                "ms, delta %+.1f us/req\n",
                                i, onClock[i] * 1e3, offClock[i] * 1e3,
                                (onClock[i] - offClock[i]) * 1e6 /
                                    (reps * requests));
            // Estimator: trimmed mean of the per-pair CPU DELTAS over
            // a trimmed mean of the baseline batch cost. Differences,
            // not per-pair ratios — averaging on/off ratios inflates
            // the estimate by the baseline's variance (Jensen's
            // inequality on 1/off) even when the true delta is zero.
            // The trim drops the top and bottom quarter (a single
            // descheduled or module-building batch shifts its pair by
            // 10x the effect); the two orientations average so
            // warm-up drift cancels.
            auto trimmed_mean = [](std::vector<double> &v) {
                if (v.empty())
                    return 0.0;
                std::sort(v.begin(), v.end());
                const std::size_t lo = v.size() / 4;
                const std::size_t hi = v.size() - lo;
                double sum = 0.0;
                for (std::size_t i = lo; i < hi; ++i)
                    sum += v[i];
                return sum / static_cast<double>(hi - lo);
            };
            const double delta = (trimmed_mean(deltas[0]) +
                                  trimmed_mean(deltas[1])) /
                                 2.0;
            const double baseline = trimmed_mean(baselines);
            return baseline > 0.0 ? 1.0 + delta / baseline : 1.0;
        };
        double overhead_pct = 100.0 * (measure() - 1.0);
        unsigned retries = 0;
        if (overhead_pct > max_overhead) {
            // Noise passes a re-measure; a real regression fails all
            // three. Median of three decides.
            std::vector<double> estimates{overhead_pct};
            for (retries = 0; retries < 2; ++retries)
                estimates.push_back(100.0 * (measure() - 1.0));
            std::sort(estimates.begin(), estimates.end());
            overhead_pct = estimates[estimates.size() / 2];
        }
        if (ctx.table)
            std::printf("  overhead   routed path with tracing: "
                        "%+.2f%% (threshold %.0f%%)\n",
                        overhead_pct, max_overhead);

        // --- Phase 3: stitch completeness ---------------------------
        // Tag fresh requests with one known trace id, then pull the
        // fleet trace; the id must surface on the router node and on
        // at least one shard node, and the stitched Chrome document
        // must name every node.
        const std::string stitch_id =
            "00000000c0ffee0000000000deadbeef";
        std::uint64_t stitch_hi = 0, stitch_lo = 0;
        obs::traceIdFromHex(stitch_id, stitch_hi, stitch_lo);
        {
            serve::Client client;
            RHS_ASSERT(client.connect("127.0.0.1", router.port()),
                       "obs_fleet: cannot reach the router");
            for (unsigned k = 0; k < mix_requests; ++k)
                if (client.callRaw(withTrace(makeRequest(k),
                                             stitch_id))
                        .empty())
                    ++transport_errors;
        }
        const auto nodes = router.pullFleetTrace();
        bool router_has_id = false, shard_has_id = false;
        std::int64_t fleet_spans = 0;
        for (const auto &node : nodes) {
            fleet_spans += static_cast<std::int64_t>(node.spans.size());
            for (const auto &span : node.spans)
                if (span.traceHi == stitch_hi &&
                    span.traceLo == stitch_lo) {
                    if (node.node.rfind("route:", 0) == 0)
                        router_has_id = true;
                    else if (node.node.rfind("serve:", 0) == 0)
                        shard_has_id = true;
                }
        }
        const report::Json stitched = obs::chromeTraceJson(nodes);
        std::size_t named_nodes = 0;
        if (const auto *events = stitched.find("traceEvents")) {
            for (std::size_t i = 0; i < events->size(); ++i) {
                const auto *name = events->at(i).find("name");
                if (name != nullptr &&
                    name->type() == report::Json::Type::String &&
                    name->asString() == "process_name")
                    ++named_nodes;
            }
        }
        const bool stitch_ok =
            !obs::kCompiledIn ||
            (nodes.size() == 3 && router_has_id && shard_has_id &&
             named_nodes == nodes.size());
        if (ctx.table)
            std::printf("  stitch     %zu nodes, %lld spans; trace id "
                        "on router %s, shard %s%s\n",
                        nodes.size(),
                        static_cast<long long>(fleet_spans),
                        router_has_id ? "yes" : "NO",
                        shard_has_id ? "yes" : "NO",
                        obs::kCompiledIn
                            ? ""
                            : " (spans compiled out: trivially ok)");

        // --- Phase 4: fleet_stats aggregation -----------------------
        report::Json fleet;
        {
            serve::Client client;
            RHS_ASSERT(client.connect("127.0.0.1", router.port()),
                       "obs_fleet: cannot reach the router");
            auto request = report::Json::object();
            request.set("op", "fleet_stats");
            request.set("id", std::int64_t{7});
            report::Json response;
            RHS_ASSERT(client.call(request, response),
                       "obs_fleet: fleet_stats transport error");
            const auto *result = response.find("result");
            RHS_ASSERT(result != nullptr,
                       "obs_fleet: fleet_stats returned an error");
            fleet = *result;
        }
        std::int64_t reached = 0;
        if (const auto *value = fleet.find("replicas_reached"))
            reached = value->asInt();
        // Merged counter == sum over per-shard raw stats.
        std::int64_t merged_responses = -1, summed_responses = 0;
        if (const auto *merged = fleet.find("merged"))
            if (const auto *server = merged->find("server"))
                if (const auto *counters = server->find("counters"))
                    if (const auto *v =
                            counters->find("responses_sent"))
                        merged_responses = v->asInt();
        if (const auto *per_shard = fleet.find("per_shard"))
            for (std::size_t i = 0; i < per_shard->size(); ++i)
                if (const auto *stats =
                        per_shard->at(i).find("stats"))
                    if (const auto *v = stats->find("responses_sent"))
                        summed_responses += v->asInt();
        // Merged latency histogram: count sums, quantiles are sane.
        std::int64_t merged_count = 0, parts_count = 0;
        double p50 = 0, p99 = 0, lat_min = 0, lat_max = 0;
        if (const auto *merged = fleet.find("merged"))
            if (const auto *server = merged->find("server"))
                if (const auto *hist =
                        findHistogram(*server, "latency_ms")) {
                    merged_count = hist->at("count").asInt();
                    p50 = hist->at("p50").asDouble();
                    p99 = hist->at("p99").asDouble();
                    lat_min = hist->at("min").asDouble();
                    lat_max = hist->at("max").asDouble();
                }
        if (const auto *per_shard = fleet.find("per_shard"))
            for (std::size_t i = 0; i < per_shard->size(); ++i)
                if (const auto *stats =
                        per_shard->at(i).find("stats"))
                    if (const auto *metrics = stats->find("metrics"))
                        if (const auto *server =
                                metrics->find("server"))
                            if (const auto *hist = findHistogram(
                                    *server, "latency_ms"))
                                parts_count +=
                                    hist->at("count").asInt();
        const bool quantiles_ok =
            merged_count == 0 ||
            (lat_min <= p50 && p50 <= p99 && p99 <= lat_max);
        if (ctx.table)
            std::printf("  fleet      %lld/2 replicas; merged "
                        "responses %lld (parts %lld), latency count "
                        "%lld  p50 %.3f ms  p99 %.3f ms\n",
                        static_cast<long long>(reached),
                        static_cast<long long>(merged_responses),
                        static_cast<long long>(summed_responses),
                        static_cast<long long>(merged_count), p50,
                        p99);

        // --- Teardown ----------------------------------------------
        router.stop();
        bool shards_clean = true;
        for (auto &shard : shards) {
            serve::Client client;
            if (client.connect("127.0.0.1", shard.port))
                client.shutdownServer();
            int status = 0;
            ::waitpid(shard.pid, &status, 0);
            shards_clean = shards_clean && WIFEXITED(status) &&
                           WEXITSTATUS(status) == 0;
            ::unlink(shard.portFile.c_str());
        }

        // --- Document ----------------------------------------------
        doc.addSeries("overhead_pct", {overhead_pct});
        doc.data.set("spans_compiled_in", obs::kCompiledIn);
        doc.data.set("requests_per_sweep", mix_requests);
        doc.data.set("overhead_batch_requests", requests);
        doc.data.set("overhead_slice_rows", kSliceRows);
        doc.data.set("timing_pairs", reps);
        doc.data.set("noise_retries", retries);
        doc.data.set("max_overhead_pct", max_overhead);
        doc.data.set("identity_mismatches", mismatches);
        doc.data.set("transport_errors", transport_errors);
        doc.data.set("trace_nodes",
                     static_cast<std::int64_t>(nodes.size()));
        doc.data.set("fleet_spans", fleet_spans);
        doc.data.set("stitch_router_has_id", router_has_id);
        doc.data.set("stitch_shard_has_id", shard_has_id);
        doc.data.set("replicas_reached", reached);
        doc.data.set("merged_responses_sent", merged_responses);
        doc.data.set("summed_responses_sent", summed_responses);
        doc.data.set("merged_latency_count", merged_count);
        doc.data.set("parts_latency_count", parts_count);
        doc.data.set("fleet_p50_ms", p50);
        doc.data.set("fleet_p99_ms", p99);
        doc.data.set("shards_exited_clean", shards_clean);

        doc.check("fleet_identity", "byte-identity contract",
                  "a routed request with a trace context returns the "
                  "exact bytes of the direct trace-free engine call",
                  mismatches == 0 && transport_errors == 0,
                  std::to_string(mismatches) + " mismatches, " +
                      std::to_string(transport_errors) +
                      " transport errors");
        doc.check("fleet_stitch", "distributed tracing",
                  "a tagged request's trace id surfaces on the router "
                  "and a shard node in one stitched fleet trace",
                  stitch_ok,
                  obs::kCompiledIn
                      ? std::to_string(nodes.size()) + " nodes, " +
                            std::to_string(fleet_spans) + " spans"
                      : "spans compiled out (RHS_OBS=OFF)");
        doc.check("fleet_merge", "metrics aggregation",
                  "fleet_stats reaches every replica and merges "
                  "counters and histograms exactly",
                  reached == 2 && merged_responses >= 0 &&
                      merged_responses == summed_responses &&
                      merged_count == parts_count && quantiles_ok,
                  std::to_string(reached) + "/2 replicas, merged " +
                      std::to_string(merged_responses) + " vs parts " +
                      std::to_string(summed_responses));
        doc.check("fleet_overhead", "performance guard",
                  "tracing on the routed path costs under " +
                      std::to_string(
                          static_cast<long long>(max_overhead)) +
                      "%",
                  overhead_pct <= max_overhead,
                  "measured " + std::to_string(overhead_pct) + "%");

        bench::stampEnvelope(doc, ctx.scale);
        report::JsonWriter().writeFile(out_path, doc.toJson());
        if (ctx.table)
            std::printf("\nwrote %s\n", out_path.c_str());
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerObsFleet()
{
    exp::Registry::add(std::make_unique<ObsFleet>());
}

} // namespace rhs::bench

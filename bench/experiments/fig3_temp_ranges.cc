/**
 * @file
 * Regenerates Fig. 3: the population of vulnerable DRAM cells
 * clustered by their vulnerable temperature range. Rows are the upper
 * limit of the range, columns the lower limit; each bucket shows the
 * percentage of all vulnerable cells.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/temp_analysis.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Fig3TempRanges final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig3_temp_ranges";
    }

    std::string
    title() const override
    {
        return "Fig. 3: population of vulnerable cells clustered by "
               "vulnerable temperature range";
    }

    std::string
    source() const override
    {
        return "Fig. 3 (paper highlights: full-range cells "
               "14.2/17.4/9.6/29.8 %, e.g. 5.4% of Mfr. A cells in "
               "70-90 degC)";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table)
            printHeader(title(), source());

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        std::vector<std::string> labels;
        std::vector<double> full_range_pct, no_gap_pct, single_pct;
        bool bounded_ranges = true;
        bool any_vulnerable = false;
        for (auto mfr : rhmodel::allMfrs) {
            core::TempRangeAnalysis merged;
            merged.temps = core::standardTemperatures();
            merged.rangeCount.assign(
                merged.temps.size(),
                std::vector<std::uint64_t>(merged.temps.size(), 0));
            for (const auto &entry : fleet) {
                if (entry.dimm->mfr() != mfr)
                    continue;
                merged.merge(core::analyzeTempRanges(
                    *entry.tester, 0, entry.rows, entry.wcdp));
            }

            if (ctx.table) {
                std::printf("\n%s  (vulnerable cells: %llu)\n",
                            rhmodel::to_string(mfr).c_str(),
                            static_cast<unsigned long long>(
                                merged.vulnerableCells));
                std::printf("Upper\\Lower ");
                for (double t : merged.temps)
                    std::printf("%6.0f ", t);
                std::printf("\n");
                for (std::size_t hi = 0; hi < merged.temps.size();
                     ++hi) {
                    std::printf("   %3.0f degC ", merged.temps[hi]);
                    for (std::size_t lo = 0; lo < merged.temps.size();
                         ++lo) {
                        if (lo > hi) {
                            std::printf("%6s ", "");
                            continue;
                        }
                        std::printf("%5.1f%% ",
                                    100.0 *
                                        merged.rangeFraction(lo, hi));
                    }
                    std::printf("\n");
                }
                std::printf(
                    "No gaps: %.2f%%   1 gap: %.2f%%   full-range "
                    "(50-90): %.1f%%   single-temp total: %.1f%%\n",
                    100.0 * merged.noGapFraction(),
                    merged.vulnerableCells
                        ? 100.0 *
                              static_cast<double>(merged.oneGapCells) /
                              static_cast<double>(
                                  merged.vulnerableCells)
                        : 0.0,
                    100.0 * merged.fullRangeFraction(),
                    100.0 * merged.singlePointFraction());
            }

            labels.push_back(rhmodel::to_string(mfr));
            full_range_pct.push_back(100.0 *
                                     merged.fullRangeFraction());
            no_gap_pct.push_back(100.0 * merged.noGapFraction());
            single_pct.push_back(100.0 *
                                 merged.singlePointFraction());
            if (merged.vulnerableCells > 0) {
                any_vulnerable = true;
                // Obsv. 2: ranges are bounded but not degenerate —
                // neither the full-range nor the single-temperature
                // population holds every vulnerable cell.
                if (merged.fullRangeFraction() >= 1.0 ||
                    merged.singlePointFraction() >= 1.0)
                    bounded_ranges = false;
            }
        }

        doc.addSeries("full_range_pct", labels, full_range_pct);
        doc.addSeries("no_gap_pct", labels, no_gap_pct);
        doc.addSeries("single_temp_pct", labels, single_pct);
        doc.check("obsv2_bounded_ranges", "Obsv. 2 / Fig. 3",
                  "vulnerable temperature ranges cluster between "
                  "single-point and full-window extremes",
                  any_vulnerable && bounded_ranges,
                  any_vulnerable ? "range populations recorded in "
                                   "series full_range_pct / "
                                   "single_temp_pct"
                                 : "no vulnerable cells at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig3TempRanges()
{
    exp::Registry::add(std::make_unique<Fig3TempRanges>());
}

} // namespace rhs::bench

/**
 * @file
 * Observability overhead and determinism guard.
 *
 * The obs:: instrumentation (striped counters on the cache hot paths,
 * pool task accounting, trace spans) is only acceptable if it is
 * invisible twice over: the row-evaluation kernel must not slow down
 * measurably, and no experiment byte may depend on whether metrics are
 * recording. This experiment measures both on the HCfirst-search
 * workload from the roweval_kernel bench:
 *
 *  1. Overhead: one loop of inner x reps sweeps alternates the
 *     runtime kill-switch (obs::setEnabled) every sweep and times
 *     each sweep individually. The checked estimate is the median
 *     over adjacent (disabled, recording) sweep pairs of the pair's
 *     time ratio: the two sweeps of a pair run back to back
 *     (~100us-1ms apart), so background load — even a sustained
 *     spike on a busy CI machine — inflates both sides of a pair
 *     together, and pairs where a spike landed on exactly one side
 *     are outliers the median discards. Per-state minimum sweep
 *     times are also reported for context. The jobs=1 estimate is
 *     the checked number — single-threaded timing is the least
 *     noisy — and must come in under --max-overhead percent; a
 *     first estimate over the threshold is re-measured twice and
 *     the median of the three decides (noise passes, a genuine
 *     regression fails all three).
 *
 *  2. Determinism: a separate pure-enabled and pure-disabled run of
 *     the same workload are serialized and digest-compared, per job
 *     count. Together with the RHS_OBS=OFF build configuration in CI
 *     (which runs this bench compiled without spans), this enforces
 *     the contract that metrics observe the computation and never
 *     feed back into it.
 *
 * Options:
 *   --rows N          victim rows (default 40; 6 under --smoke)
 *   --trials N        repetitions per row (default core::kRepetitions;
 *                     2 under --smoke)
 *   --inner N         sweeps per timed region (default 100). Each
 *                     sweep evaluates a fresh set of (row, trial)
 *                     keys — full kernel work through the miss path,
 *                     with inserts and (once the LRU fills) evictions
 *                     — then re-probes the same keys, which resolve
 *                     on the cache-hit path where the counter bumps
 *                     are the only work beyond the probe arithmetic.
 *                     One sweep finishes in single-digit milliseconds
 *                     — far too short for a stable percentage — so
 *                     the timed region repeats it with new keys.
 *   --reps N          alternation rounds: the timed loop runs
 *                     inner x reps sweeps per job count (default 5)
 *   --max-overhead P  fail threshold for the jobs=1 overhead, in
 *                     percent (default 2; CI passes a high value in
 *                     sanitizer builds, where timing is meaningless)
 *   --out FILE        JSON output path (default BENCH_obs.json)
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/tester.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "obs/metrics.hh"
#include "report/writer.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace rhs;

constexpr unsigned kJobCounts[] = {1, 8};

/** FNV-1a, reported in the JSON so runs can be compared offline. */
std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

class ObsOverhead final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "obs_overhead";
    }

    std::string
    title() const override
    {
        return "Observability overhead: instrumented kernel vs "
               "recording disabled";
    }

    std::string
    source() const override
    {
        return "metrics observe the computation, never feed back "
               "into it";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"rows", "40", "victim rows"},
                {"trials", "kRepetitions", "repetitions per row"},
                {"inner", "100", "sweeps per timed region"},
                {"reps", "5", "timing repetitions per state"},
                {"max-overhead", "2",
                 "jobs=1 overhead fail threshold, percent"},
                {"out", "BENCH_obs.json", "JSON output path"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        const auto max_rows = static_cast<unsigned>(ctx.cli.getInt(
            "rows", ctx.scale.smoke ? 6 : 40));
        const auto trials = static_cast<unsigned>(ctx.cli.getInt(
            "trials", ctx.scale.smoke
                          ? 2
                          : static_cast<int>(core::kRepetitions)));
        const auto inner = static_cast<unsigned>(
            ctx.cli.getInt("inner", 100));
        const auto reps = static_cast<unsigned>(
            ctx.cli.getInt("reps", 5));
        const double max_overhead =
            static_cast<double>(ctx.cli.getInt("max-overhead", 2));
        const std::string out_path =
            ctx.cli.get("out", "BENCH_obs.json");
        RHS_ASSERT(reps > 0, "need at least one timing repetition");

        if (ctx.table) {
            bench::printHeader(title(), source());
            std::printf("spans compiled %s; %u rows x %u trials x "
                        "%u sweeps, min of %u reps\n\n",
                        obs::kCompiledIn ? "in" : "out", max_rows,
                        trials, inner, reps);
        }

        // The same HCfirst workload the roweval_kernel bench times:
        // rows x trials step searches, each bottoming out in the
        // instrumented rowEval/cellsOfRow caches.
        rhmodel::SimulatedDimm sample_dimm(rhmodel::Mfr::B, 0);
        const auto all = core::testedRows(
            sample_dimm.module().geometry(), max_rows / 3 + 1);
        std::vector<unsigned> rows;
        for (std::size_t i = 0; i < max_rows && i < all.size(); ++i)
            rows.push_back(all[i * all.size() / max_rows]);
        RHS_ASSERT(!rows.empty(), "no tested rows at this scale");
        const rhmodel::DataPattern pattern(
            rhmodel::PatternId::Checkered,
            sample_dimm.module().info().serial);
        rhmodel::Conditions conditions;
        conditions.temperature = 75.0;

        // One sweep: a miss pass over fresh (row, trial) keys — full
        // kernel work plus LRU inserts and, once the cache fills,
        // evictions — then a hit pass re-probing the same keys off
        // the cache, where the counter bumps are the only work
        // beyond the probe arithmetic. Both passes fold into the
        // determinism digest.
        auto do_sweep = [&](core::Tester &tester, unsigned sweep,
                            std::vector<std::uint64_t> &hc,
                            std::vector<std::uint64_t> &folded) {
            util::parallelFor(0, hc.size(), [&](std::size_t i) {
                hc[i] = tester.hcFirstSearch(
                    0, rows[i / trials], conditions, pattern,
                    static_cast<unsigned>(sweep * trials +
                                          i % trials));
            });
            util::parallelFor(0, hc.size(), [&](std::size_t i) {
                folded[i] = folded[i] * 0x100000001b3ull + hc[i] +
                            tester.hcFirstSearch(
                                0, rows[i / trials], conditions,
                                pattern,
                                static_cast<unsigned>(
                                    sweep * trials + i % trials));
            });
        };

        // Pre-warm the per-row cell cache so the sweeps measure the
        // rowEval kernel plus its cache traffic, not one-time cell
        // synthesis.
        auto prewarm = [&](rhmodel::SimulatedDimm &dimm) {
            for (unsigned row : rows)
                dimm.cellModel().cellsOfRow(0, row);
        };

        // Determinism probe: a pure run at one recording state.
        auto run_pure = [&](unsigned jobs, bool record) {
            util::ThreadPool::configure(jobs);
            obs::setEnabled(record);
            rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0);
            core::Tester tester(dimm);
            prewarm(dimm);
            std::vector<std::uint64_t> hc(rows.size() * trials, 0);
            std::vector<std::uint64_t> folded(hc.size(), 0);
            for (unsigned sweep = 0; sweep < inner; ++sweep)
                do_sweep(tester, sweep, hc, folded);
            obs::setEnabled(true);
            std::ostringstream out;
            for (auto value : folded)
                out << value << '\n';
            return out.str();
        };

        // Overhead probe: alternate the recording state every sweep;
        // estimate overhead as the median time ratio over adjacent
        // (disabled, recording) pairs. A pair's two sweeps run back
        // to back, so background load inflates both sides together,
        // and the median discards pairs where a spike landed on one
        // side only. Also keeps the minimum sweep time per state.
        struct Measurement
        {
            double minOn, minOff, medianRatio;
        };
        auto measure = [&](unsigned jobs) {
            util::ThreadPool::configure(jobs);
            rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0);
            core::Tester tester(dimm);
            prewarm(dimm);
            std::vector<std::uint64_t> hc(rows.size() * trials, 0);
            std::vector<std::uint64_t> folded(hc.size(), 0);
            Measurement m{std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::max(), 1.0};
            // Per-orientation ratio samples: the second sweep of a
            // pair runs measurably faster (CPU caches and branch
            // predictors primed by the first), so "recording ran
            // second" ratios are biased low and "recording ran
            // first" ratios biased high by the same factor. Swap the
            // order every pair, take each orientation's median, and
            // average — the position bias cancels exactly.
            std::vector<double> ratios[2];
            double pair_first = 0.0;
            for (unsigned sweep = 0; sweep < inner * reps; ++sweep) {
                const unsigned pair = sweep >> 1;
                const bool second = (sweep & 1) != 0;
                const bool record = second != ((pair & 1) != 0);
                obs::setEnabled(record);
                const auto start = std::chrono::steady_clock::now();
                do_sweep(tester, sweep, hc, folded);
                const std::chrono::duration<double> elapsed =
                    std::chrono::steady_clock::now() - start;
                const double seconds = elapsed.count();
                double &slot = record ? m.minOn : m.minOff;
                slot = std::min(slot, seconds);
                if (!second) {
                    pair_first = seconds;
                } else if (pair_first > 0.0) {
                    const double on = record ? seconds : pair_first;
                    const double off = record ? pair_first : seconds;
                    ratios[record ? 1 : 0].push_back(on / off);
                }
            }
            obs::setEnabled(true);
            auto median = [](std::vector<double> &v) {
                RHS_ASSERT(!v.empty(), "no timing pairs collected");
                std::sort(v.begin(), v.end());
                return v[v.size() / 2];
            };
            m.medianRatio =
                (median(ratios[0]) + median(ratios[1])) / 2.0;
            return m;
        };

        std::vector<double> seconds_on, seconds_off, overhead_pct;
        std::string bytes_on, bytes_off;
        bool identical = true;
        for (unsigned jobs : kJobCounts) {
            bytes_off = run_pure(jobs, false);
            bytes_on = run_pure(jobs, true);
            identical = identical && bytes_on == bytes_off;
            const Measurement m = measure(jobs);
            seconds_on.push_back(m.minOn);
            seconds_off.push_back(m.minOff);
            overhead_pct.push_back(100.0 * (m.medianRatio - 1.0));
        }
        // The true overhead is sub-percent, but wall-time noise on a
        // loaded CI machine occasionally exceeds the threshold. A
        // genuine regression fails every measurement; noise does not
        // — so when the first jobs=1 estimate fails, re-measure
        // twice and keep the median of the three.
        double checked = overhead_pct[0]; // jobs=1.
        unsigned retries = 0;
        if (checked > max_overhead) {
            std::vector<double> estimates{checked};
            for (retries = 0; retries < 2; ++retries)
                estimates.push_back(
                    100.0 * (measure(kJobCounts[0]).medianRatio - 1.0));
            std::sort(estimates.begin(), estimates.end());
            checked = estimates[estimates.size() / 2];
            overhead_pct[0] = checked;
        }
        // Restore the pool width the driver selected.
        util::ThreadPool::configure(ctx.scale.jobs);

        std::vector<std::string> job_labels;
        for (unsigned jobs : kJobCounts)
            job_labels.push_back("jobs=" + std::to_string(jobs));
        if (ctx.table) {
            for (std::size_t j = 0; j < std::size(kJobCounts); ++j)
                std::printf("  %-8s recording %8.4f ms/sweep  "
                            "disabled %8.4f ms/sweep  pair-median "
                            "overhead %+6.2f%%\n",
                            job_labels[j].c_str(),
                            seconds_on[j] * 1e3,
                            seconds_off[j] * 1e3, overhead_pct[j]);
            std::printf("\n  results %s across recording states\n",
                        identical ? "byte-identical" : "DIVERGED");
        }

        doc.addSeries("sweep_seconds_recording", job_labels, seconds_on);
        doc.addSeries("sweep_seconds_disabled", job_labels, seconds_off);
        doc.addSeries("overhead_pct", job_labels, overhead_pct);
        doc.data.set("spans_compiled_in", obs::kCompiledIn);
        doc.data.set("reps", reps);
        doc.data.set("noise_retries", retries);
        doc.data.set("max_overhead_pct", max_overhead);
        char digest[32];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(fnv1a(bytes_on)));
        doc.data.set("digest_recording", digest);
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(fnv1a(bytes_off)));
        doc.data.set("digest_disabled", digest);

        doc.check("obs_determinism", "determinism contract",
                  "HCfirst results are byte-identical with metrics "
                  "recording and disabled",
                  identical, "digests in data");
        doc.check("obs_overhead", "performance guard",
                  "jobs=1 kernel overhead of recording stays under " +
                      std::to_string(
                          static_cast<long long>(max_overhead)) +
                      "%",
                  checked <= max_overhead,
                  "measured " + std::to_string(checked) + "%");

        bench::stampEnvelope(doc, ctx.scale);
        report::JsonWriter().writeFile(out_path, doc.toJson());
        if (ctx.table)
            std::printf("\nwrote %s\n", out_path.c_str());
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerObsOverhead()
{
    exp::Registry::add(std::make_unique<ObsOverhead>());
}

} // namespace rhs::bench

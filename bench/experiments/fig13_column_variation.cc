/**
 * @file
 * Regenerates Fig. 13: DRAM columns clustered by relative RowHammer
 * vulnerability (y) and its coefficient of variation across chips (x).
 * Columns with CV ~ 0 indicate design-induced variation; CV ~ 1
 * indicates manufacturing-process variation (Obsv. 14).
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/spatial.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "stats/histogram.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Fig13ColumnVariation final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig13_column_variation";
    }

    std::string
    title() const override
    {
        return "Fig. 13: columns clustered by relative vulnerability "
               "and cross-chip variation";
    }

    std::string
    source() const override
    {
        return "Fig. 13 (paper: CV=0 mass 50.9% for Mfr. B / 16.6% "
               "for C; CV=1 mass 59.8/30.6/29.1 % for A/C/D)";
    }

    exp::ScaleDefaults
    scaleDefaults() const override
    {
        // Same row-volume requirement as Fig. 12: the cross-chip CV
        // needs columns with flips on every chip.
        return {24'000, 2, 8'000, 60};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table)
            printHeader(title(), source());

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        std::vector<std::string> labels;
        std::vector<double> design_pct, process_pct;
        bool fractions_bounded = true;
        bool any_data = false;
        for (const auto &entry : fleet) {
            const auto counts = core::columnFlipSurvey(
                *entry.tester, 0, entry.rows, entry.wcdp);
            const auto variation =
                core::analyzeColumnVariation(counts);

            stats::Histogram2d buckets(0.0, 1.0001, 11, 0.0, 1.0001,
                                       11);
            bool module_has_data = false;
            for (std::size_t col = 0;
                 col < variation.relativeVulnerability.size();
                 ++col) {
                if (variation.relativeVulnerability[col] <= 0.0)
                    continue;
                module_has_data = true;
                buckets.add(variation.cvExcessAcrossChips[col],
                            variation.relativeVulnerability[col]);
            }

            if (ctx.table) {
                std::printf("\n%s  RelVuln \\ noise-corrected CV ->\n",
                            entry.dimm->label().c_str());
                for (std::size_t y = buckets.ySize(); y-- > 0;) {
                    std::printf("  %4.1f ",
                                (static_cast<double>(y) + 0.5) / 11);
                    for (std::size_t x = 0; x < buckets.xSize();
                         ++x) {
                        const double f =
                            100.0 * buckets.fraction(x, y);
                        if (f == 0.0)
                            std::printf("      ");
                        else
                            std::printf("%5.1f%%", f);
                    }
                    std::printf("\n");
                }
                std::printf("  design-consistent columns (CV~0): "
                            "%5.1f%%   process-dominated (CV~1): "
                            "%5.1f%%\n",
                            100.0 *
                                variation.designConsistentFraction(),
                            100.0 *
                                variation.processDominatedFraction());
            }

            labels.push_back(entry.dimm->label());
            const double design =
                100.0 * variation.designConsistentFraction();
            const double process =
                100.0 * variation.processDominatedFraction();
            design_pct.push_back(design);
            process_pct.push_back(process);
            if (module_has_data)
                any_data = true;
            if (design + process > 100.0 + 1e-9)
                fractions_bounded = false;
        }

        if (ctx.table) {
            std::printf("\nObsv. 14 check: Mfr. B is design-dominated "
                        "(large CV~0 mass), Mfr. A process-dominated "
                        "(large CV~1 mass).\n");
        }

        doc.addSeries("design_consistent_pct", labels, design_pct);
        doc.addSeries("process_dominated_pct", labels, process_pct);
        doc.check("obsv14_variation_split", "Obsv. 14 / Fig. 13",
                  "columns split into design-consistent (CV~0) and "
                  "process-dominated (CV~1) masses that never exceed "
                  "100% combined",
                  any_data && fractions_bounded,
                  any_data ? "per-module masses in series "
                             "design_consistent_pct / "
                             "process_dominated_pct"
                           : "no flipping columns at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig13ColumnVariation()
{
    exp::Registry::add(std::make_unique<Fig13ColumnVariation>());
}

} // namespace rhs::bench

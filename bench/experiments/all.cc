#include "experiments/all.hh"

namespace rhs::bench
{

void
registerAllExperiments()
{
    static bool done = false;
    if (done)
        return;
    done = true;

    registerTable2Modules();
    registerTable3TempContinuity();
    registerFig3TempRanges();
    registerFig4BerVsTemp();
    registerFig5HcFirstVsTemp();
    registerFig6CommandTiming();
    registerFig7BerVsTaggOn();
    registerFig8HcFirstVsTaggOn();
    registerFig9BerVsTaggOff();
    registerFig10HcFirstVsTaggOff();
    registerFig11HcFirstRows();
    registerFig12ColumnFlips();
    registerFig13ColumnVariation();
    registerFig14Subarrays();
    registerFig15Bhattacharyya();
    registerAblations();
    registerAttacksImprovements();
    registerEccImprovement();
    registerTrrespassBypass();
    registerFuzzSweep();
    registerDefenseMatrix();
    registerDefensesImprovements();
    registerRefreshRate();
    registerRowPolicy();
    registerParallelScaling();
    registerRowEvalKernel();
    registerObsOverhead();
    registerObsFleet();
    registerRouteLoadgen();
    registerServeLoadgen();
    registerSnapshotWarmstart();
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates Fig. 15: the cumulative distribution of the normalized
 * Bhattacharyya distance between the HCfirst distributions of subarray
 * pairs from (1) the same module and (2) different modules.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "core/spatial.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "stats/bhattacharyya.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Fig15Bhattacharyya final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig15_bhattacharyya";
    }

    std::string
    title() const override
    {
        return "Fig. 15: normalized Bhattacharyya distance between "
               "subarray HCfirst distributions";
    }

    std::string
    source() const override
    {
        return "Fig. 15 (paper: same-module pairs cluster near 1.0 "
               "(P5 ~0.975 for Mfr. C); cross-module pairs spread "
               "much wider (P5 ~0.66); Obsv. 16)";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"modules", "3", "modules per manufacturer"},
                {"subarrays", "6", "subarrays surveyed per module"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        const unsigned modules_per_mfr = static_cast<unsigned>(
            ctx.cli.getInt("modules", ctx.scale.smoke ? 2 : 3));
        const unsigned subarrays = static_cast<unsigned>(
            ctx.cli.getInt("subarrays", ctx.scale.smoke ? 2 : 6));

        if (ctx.table) {
            printHeader(title(), source());
            std::printf("%-8s %-22s %-22s\n", "Mfr.",
                        "same-module  P5/P50/P95",
                        "diff-module  P5/P50/P95");
            printRule();
        }

        std::vector<std::string> labels;
        std::vector<double> same_p50, diff_p50;
        bool same_tighter = true;
        bool any_data = false;
        for (auto mfr : rhmodel::allMfrs) {
            // Collect per-subarray HCfirst samples of every module.
            std::vector<std::vector<std::vector<double>>> modules;
            for (unsigned index = 0; index < modules_per_mfr;
                 ++index) {
                auto &module = ctx.fleet.module(mfr, index);
                const auto &wcdp = ctx.fleet.wcdp(
                    module, 0, {100, 2000, 6000});
                const auto survey = core::subarraySurvey(
                    *module.tester, 0, subarrays, 32, wcdp);
                std::vector<std::vector<double>> dists;
                for (const auto &entry : survey)
                    dists.push_back(entry.hcFirstValues);
                modules.push_back(std::move(dists));
            }

            std::vector<double> same, different;
            for (std::size_t m = 0; m < modules.size(); ++m) {
                for (std::size_t a = 0; a < modules[m].size(); ++a) {
                    for (std::size_t b = 0; b < modules[m].size();
                         ++b) {
                        if (a != b)
                            same.push_back(
                                stats::bhattacharyyaNormalized(
                                    modules[m][a], modules[m][b],
                                    12));
                    }
                    for (std::size_t n = 0; n < modules.size(); ++n) {
                        if (n == m)
                            continue;
                        for (const auto &other : modules[n])
                            different.push_back(
                                stats::bhattacharyyaNormalized(
                                    modules[m][a], other, 12));
                    }
                }
            }

            auto fmt = [](const std::vector<double> &xs) {
                char buffer[64];
                if (xs.empty())
                    return std::string("-");
                std::snprintf(buffer, sizeof(buffer),
                              "%.3f/%.3f/%.3f",
                              stats::quantile(xs, 0.05),
                              stats::quantile(xs, 0.50),
                              stats::quantile(xs, 0.95));
                return std::string(buffer);
            };
            if (ctx.table)
                std::printf("%-8s %-22s %-22s\n",
                            rhmodel::to_string(mfr).c_str(),
                            fmt(same).c_str(),
                            fmt(different).c_str());

            labels.push_back(rhmodel::to_string(mfr));
            same_p50.push_back(
                same.empty() ? 0.0 : stats::quantile(same, 0.50));
            diff_p50.push_back(different.empty()
                                   ? 0.0
                                   : stats::quantile(different,
                                                     0.50));
            // Obsv. 16: same-module pairs are at least as similar
            // (higher normalized distance) as cross-module pairs.
            // Medians over a handful of pairs swing freely, so a
            // manufacturer only votes once both populations are large
            // enough for P50 to be stable.
            if (same.size() >= 16 && different.size() >= 16) {
                any_data = true;
                if (stats::quantile(same, 0.50) <
                    stats::quantile(different, 0.50))
                    same_tighter = false;
            }
        }

        if (ctx.table) {
            std::printf("\nObsv. 16 check: a subarray's HCfirst "
                        "distribution is representative of other "
                        "subarrays of the SAME module, not of other "
                        "modules.\n");
        }

        doc.addSeries("same_module_p50", labels, same_p50);
        doc.addSeries("diff_module_p50", labels, diff_p50);
        doc.check("obsv16_same_module_similarity",
                  "Obsv. 16 / Fig. 15",
                  "the median similarity of same-module subarray "
                  "pairs is at least that of cross-module pairs",
                  !any_data || same_tighter,
                  any_data ? "per-mfr medians in series "
                             "same_module_p50 / diff_module_p50"
                           : "too few subarray pairs for stable "
                             "medians at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig15Bhattacharyya()
{
    exp::Registry::add(std::make_unique<Fig15Bhattacharyya>());
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates Fig. 8: the distribution of per-row HCfirst as the
 * aggressor row on-time grows (letter-value summaries).
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/timing_analysis.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Fig8HcFirstVsTaggOn final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig8_hcfirst_vs_taggon";
    }

    std::string
    title() const override
    {
        return "Fig. 8: per-row HCfirst vs aggressor row on-time "
               "(tAggOn)";
    }

    std::string
    source() const override
    {
        return "Fig. 8 (paper: HCfirst -40.0 / -28.3 / -32.7 / -37.3 "
               "% for A/B/C/D at 154.5 ns; Obsv. 8)";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table) {
            printHeader(title(), source());
            std::printf("%-8s %-9s %-52s\n", "Module", "tAggOn",
                        "letter values of HCfirst (K hammers)");
            printRule();
        }

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        std::vector<std::string> labels;
        std::vector<double> hc_change_pct;
        bool hcfirst_drops = true;
        bool any_data = false;
        for (const auto &entry : fleet) {
            const auto sweep = core::sweepAggressorOnTime(
                *entry.tester, 0, entry.rows, entry.wcdp);
            std::vector<double> medians;
            for (std::size_t v = 0; v < sweep.values.size(); ++v) {
                const auto &data = sweep.hcFirstPerRow[v];
                if (data.empty())
                    continue;
                const auto lv = stats::letterValues(data, 3);
                medians.push_back(lv.median);
                if (!ctx.table)
                    continue;
                std::printf("%-8s %6.1fns  median %7.1fK",
                            entry.dimm->label().c_str(),
                            sweep.values[v], lv.median / 1e3);
                for (const auto &[lo, hi] : lv.boxes)
                    std::printf("  [%7.1fK, %7.1fK]", lo / 1e3,
                                hi / 1e3);
                std::printf("\n");
            }
            if (ctx.table) {
                std::printf("%-8s HCfirst change (154.5 vs 34.5): "
                            "%+.1f%%   CV change: %+.0f%%\n",
                            entry.dimm->label().c_str(),
                            100.0 * sweep.hcFirstChange(),
                            100.0 * sweep.hcFirstCvChange());
                printRule();
            }
            if (!medians.empty()) {
                any_data = true;
                labels.push_back(entry.dimm->label());
                hc_change_pct.push_back(100.0 *
                                        sweep.hcFirstChange());
                doc.addSeries("median_hcfirst_" + entry.dimm->label(),
                              medians);
                if (sweep.hcFirstChange() >= 0.0)
                    hcfirst_drops = false;
            }
        }

        if (ctx.table) {
            std::printf("Takeaway 3: a longer-active aggressor row "
                        "makes victims flip at smaller hammer "
                        "counts.\n");
        }

        doc.addSeries("hcfirst_change_pct", labels, hc_change_pct);
        doc.check("obsv8_hcfirst_drops", "Obsv. 8 / Fig. 8",
                  "HCfirst at tAggOn=154.5 ns is below the tRAS "
                  "baseline for every module",
                  any_data && hcfirst_drops,
                  any_data
                      ? "per-module changes in series hcfirst_change_pct"
                      : "no vulnerable rows at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig8HcFirstVsTaggOn()
{
    exp::Registry::add(std::make_unique<Fig8HcFirstVsTaggOn>());
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates Table 3: the percentage of vulnerable DRAM cells that
 * flip at every temperature point within their vulnerable temperature
 * range (Obsv. 1).
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/temp_analysis.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Table3TempContinuity final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "table3_temp_continuity";
    }

    std::string
    title() const override
    {
        return "Table 3: vulnerable cells flipping at all temperature "
               "points in their range";
    }

    std::string
    source() const override
    {
        return "Table 3 (paper: 99.1 / 98.9 / 98.0 / 99.2 % for "
               "Mfrs. A/B/C/D)";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table) {
            printHeader(title(), source());
            std::printf("%-8s %-12s %-12s %-12s %-12s\n", "Mfr.",
                        "vuln cells", "no gaps", "1 gap", ">1 gap");
            printRule();
        }

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        std::vector<std::string> labels;
        std::vector<double> no_gap_pct, vuln_cells;
        bool continuity = true;
        bool any_vulnerable = false;
        for (auto mfr : rhmodel::allMfrs) {
            core::TempRangeAnalysis merged;
            merged.temps = core::standardTemperatures();
            merged.rangeCount.assign(
                merged.temps.size(),
                std::vector<std::uint64_t>(merged.temps.size(), 0));
            for (const auto &entry : fleet) {
                if (entry.dimm->mfr() != mfr)
                    continue;
                merged.merge(core::analyzeTempRanges(
                    *entry.tester, 0, entry.rows, entry.wcdp));
            }
            const double no_gap = 100.0 * merged.noGapFraction();
            const double one_gap =
                merged.vulnerableCells == 0
                    ? 0.0
                    : 100.0 *
                          static_cast<double>(merged.oneGapCells) /
                          static_cast<double>(merged.vulnerableCells);
            if (ctx.table) {
                std::printf("%-8s %-12llu %-11.2f%% %-11.2f%% "
                            "%-11.2f%%\n",
                            rhmodel::to_string(mfr).c_str(),
                            static_cast<unsigned long long>(
                                merged.vulnerableCells),
                            no_gap, one_gap,
                            100.0 - no_gap - one_gap);
            }
            labels.push_back(rhmodel::to_string(mfr));
            no_gap_pct.push_back(no_gap);
            vuln_cells.push_back(
                static_cast<double>(merged.vulnerableCells));
            if (merged.vulnerableCells > 0) {
                any_vulnerable = true;
                // The paper reports 98.0-99.2%; small samples are
                // noisier, so gate on a conservative floor.
                if (no_gap < 80.0)
                    continuity = false;
            }
        }
        if (ctx.table) {
            std::printf("\nTakeaway 1 check: cells flip with very "
                        "high probability at every temperature inside "
                        "their own bounded range.\n");
        }

        doc.addSeries("no_gap_pct", labels, no_gap_pct);
        doc.addSeries("vulnerable_cells", labels, vuln_cells);
        doc.check("takeaway1_continuity", "Obsv. 1 / Table 3",
                  "vulnerable cells flip at (nearly) every "
                  "temperature point inside their own range",
                  any_vulnerable && continuity,
                  any_vulnerable ? "per-mfr no-gap fractions recorded "
                                   "in series no_gap_pct"
                                 : "no vulnerable cells at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerTable3TempContinuity()
{
    exp::Registry::add(std::make_unique<Table3TempContinuity>());
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates Fig. 12: the distribution of RowHammer bit flips across
 * column addresses of each chip (summary statistics of the heat maps).
 */

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/spatial.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Fig12ColumnFlips final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig12_column_flips";
    }

    std::string
    title() const override
    {
        return "Fig. 12: bit flip distribution across columns per "
               "chip";
    }

    std::string
    source() const override
    {
        return "Fig. 12 (paper: zero-flip columns 27.8/0/31.1/9.96 % "
               "and >100-flip columns 0.59/-/0.01/0.61 % for A/C/D; "
               "Obsv. 13)";
    }

    exp::ScaleDefaults
    scaleDefaults() const override
    {
        // Column statistics need row volume (the paper uses 24K
        // tested rows).
        return {24'000, 2, 8'000, 60};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table)
            printHeader(title(), source());

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        std::vector<std::string> labels;
        std::vector<double> zero_fraction_pct, max_per_column;
        bool variation_exists = true;
        bool any_data = false;
        for (const auto &entry : fleet) {
            const auto counts = core::columnFlipSurvey(
                *entry.tester, 0, entry.rows, entry.wcdp);

            std::uint64_t max_count = 0, total = 0;
            for (const auto &chip : counts.counts)
                for (auto c : chip) {
                    max_count = std::max(max_count, c);
                    total += c;
                }

            if (ctx.table) {
                std::printf("\n%s  (rows tested: %zu, total flips: "
                            "%llu)\n",
                            entry.dimm->label().c_str(),
                            entry.rows.size(),
                            static_cast<unsigned long long>(total));
                std::printf("  zero-flip column slots: %5.2f%%   max "
                            "per column: %llu\n",
                            100.0 * counts.zeroFraction(),
                            static_cast<unsigned long long>(
                                max_count));
            }
            // The paper's ">100 flips" threshold is tied to 24K
            // tested rows; scale it with the sample size.
            const auto threshold = static_cast<std::uint64_t>(
                100.0 * static_cast<double>(entry.rows.size()) /
                24'000.0);
            if (ctx.table) {
                std::printf("  columns above the scaled '>100 @24K "
                            "rows' threshold (%llu): %5.2f%%\n",
                            static_cast<unsigned long long>(threshold),
                            100.0 * counts.overFraction(threshold));
                std::printf("  per-chip minimum flips/column:");
                for (unsigned chip = 0; chip < counts.counts.size();
                     ++chip)
                    std::printf(" %llu",
                                static_cast<unsigned long long>(
                                    counts.chipMinimum(chip)));
                std::printf("\n");
            }

            labels.push_back(entry.dimm->label());
            zero_fraction_pct.push_back(100.0 *
                                        counts.zeroFraction());
            max_per_column.push_back(
                static_cast<double>(max_count));
            if (total > 0) {
                any_data = true;
                // Obsv. 13: flips concentrate — some column must
                // collect strictly more than its fair share.
                const std::size_t slots = counts.counts.empty()
                                              ? 1
                                              : counts.counts.size() *
                                                    counts.counts[0]
                                                        .size();
                const double fair =
                    static_cast<double>(total) /
                    static_cast<double>(slots);
                if (static_cast<double>(max_count) <= fair)
                    variation_exists = false;
            }
        }

        if (ctx.table) {
            std::printf("\nObsv. 13 check: certain columns are "
                        "significantly more vulnerable than others; "
                        "Mfr. B has no dead columns (every column "
                        "flips).\n");
        }

        doc.addSeries("zero_flip_columns_pct", labels,
                      zero_fraction_pct);
        doc.addSeries("max_flips_per_column", labels, max_per_column);
        doc.check("obsv13_column_concentration", "Obsv. 13 / Fig. 12",
                  "bit flips concentrate in vulnerable columns (the "
                  "fullest column holds more than a uniform share)",
                  any_data && variation_exists,
                  any_data ? "per-module maxima in series "
                             "max_flips_per_column"
                           : "no flips at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig12ColumnFlips()
{
    exp::Registry::add(std::make_unique<Fig12ColumnFlips>());
}

} // namespace rhs::bench

/**
 * @file
 * Regenerates Fig. 4: the percentage change in BER (RowHammer bit
 * flips per row) as temperature rises from 50 degC, for the
 * double-sided victim (distance 0) and the single-sided victims
 * (distance ±2). Mean and 95% CI across rows.
 */

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/temp_analysis.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"

namespace
{

using namespace rhs;
using namespace rhs::bench;

class Fig4BerVsTemp final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "fig4_ber_vs_temp";
    }

    std::string
    title() const override
    {
        return "Fig. 4: BER change with temperature vs 50 degC";
    }

    std::string
    source() const override
    {
        return "Fig. 4 (paper: A/C/D increase with temperature, B "
               "decreases; Obsv. 4)";
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        if (ctx.table)
            printHeader(title(), source());

        const auto &fleet = ctx.fleet.fleet(ctx.scale);
        // Obsv. 4's shape survives any sample size: Mfr. A's BER
        // rises with temperature, Mfr. B's falls, and Mfrs. C and D
        // dip mid-range before rebounding toward 90 degC. The raw
        // +,-,+,+ signs at 90 degC only emerge once thousands of rows
        // average out per-row noise, so the check pins the shape.
        bool shape_matches = true;
        bool any_data = false;
        std::string observed_signs;
        for (auto mfr : rhmodel::allMfrs) {
            // Aggregate rows from all of this manufacturer's modules.
            if (ctx.table) {
                std::printf("\n%s (distance from victim row: -2 / 0 / "
                            "+2)\n",
                            rhmodel::to_string(mfr).c_str());
                std::printf("%-6s %-22s %-22s %-22s\n", "T(C)",
                            "dist -2 (mean±CI %)",
                            "dist 0 (mean±CI %)",
                            "dist +2 (mean±CI %)");
                printRule();
            }

            for (const auto &entry : fleet) {
                if (entry.dimm->mfr() != mfr)
                    continue;
                const auto result = core::analyzeBerVsTemperature(
                    *entry.tester, 0, entry.rows, entry.wcdp);
                for (std::size_t t = 0; t < result.temps.size(); ++t) {
                    if (!ctx.table)
                        continue;
                    std::printf("%-6.0f", result.temps[t]);
                    for (int offset : {-2, 0, 2}) {
                        std::printf(" %9.1f ± %-9.1f",
                                    result.meanChangePct.at(offset)[t],
                                    result.ci95Pct.at(offset)[t]);
                    }
                    std::printf("\n");
                }

                const auto &victim = result.meanChangePct.at(0);
                doc.addSeries("mean_change_pct_dist0_" +
                                  entry.dimm->label(),
                              victim);
                if (!victim.empty()) {
                    any_data = true;
                    const double at90 = victim.back();
                    const double dip = *std::min_element(
                        victim.begin(), victim.end());
                    bool ok = true;
                    if (mfr == rhmodel::Mfr::A)
                        ok = at90 > 0.0;
                    else if (mfr == rhmodel::Mfr::B)
                        ok = at90 < 0.0;
                    else
                        ok = at90 > dip;
                    if (!ok)
                        shape_matches = false;
                    observed_signs += rhmodel::to_string(mfr) + ":" +
                                      (at90 > 0.0 ? "+" : "-") + " ";
                }
                break; // One module per manufacturer in the main table.
            }
        }

        if (ctx.table) {
            std::printf("\nObsv. 4 check: sign of the 90 degC change "
                        "per manufacturer -- paper expects +,-,+,+ "
                        "for A,B,C,D.\n");
        }
        doc.check("obsv4_sign", "Obsv. 4 / Fig. 4",
                  "BER rises with temperature for Mfr. A, falls for "
                  "Mfr. B, and rebounds from a mid-range dip by 90 "
                  "degC for Mfrs. C and D",
                  any_data && shape_matches,
                  any_data ? observed_signs
                           : "no temperature data at this scale");
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerFig4BerVsTemp()
{
    exp::Registry::add(std::make_unique<Fig4BerVsTemp>());
}

} // namespace rhs::bench

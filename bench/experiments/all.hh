/**
 * @file
 * Explicit registration of every experiment.
 *
 * One function per experiment TU, called by registerAllExperiments()
 * in registration order — which is also the stable `--list` / `--all`
 * execution order. Explicit calls (rather than static-initializer
 * self-registration) survive static-library linking and keep the
 * order deterministic.
 */

#ifndef RHS_BENCH_EXPERIMENTS_ALL_HH
#define RHS_BENCH_EXPERIMENTS_ALL_HH

namespace rhs::bench
{

void registerTable2Modules();
void registerTable3TempContinuity();
void registerFig3TempRanges();
void registerFig4BerVsTemp();
void registerFig5HcFirstVsTemp();
void registerFig6CommandTiming();
void registerFig7BerVsTaggOn();
void registerFig8HcFirstVsTaggOn();
void registerFig9BerVsTaggOff();
void registerFig10HcFirstVsTaggOff();
void registerFig11HcFirstRows();
void registerFig12ColumnFlips();
void registerFig13ColumnVariation();
void registerFig14Subarrays();
void registerFig15Bhattacharyya();
void registerAblations();
void registerAttacksImprovements();
void registerEccImprovement();
void registerTrrespassBypass();
void registerFuzzSweep();
void registerDefenseMatrix();
void registerDefensesImprovements();
void registerRefreshRate();
void registerRowPolicy();
void registerParallelScaling();
void registerRowEvalKernel();
void registerObsOverhead();
void registerObsFleet();
void registerRouteLoadgen();
void registerServeLoadgen();
void registerSnapshotWarmstart();

/** Register every experiment exactly once (idempotent). */
void registerAllExperiments();

} // namespace rhs::bench

#endif // RHS_BENCH_EXPERIMENTS_ALL_HH

/**
 * @file
 * Parallel characterization engine scaling measurement.
 *
 * Runs the three headline workloads — the full campaign, the
 * temperature sweep (§5 / Table 3) and the Fig. 11 per-row HCfirst
 * scan — at 1, 2, 4 and 8 worker threads, verifies the results are
 * byte-identical at every width, and writes the wall-clock numbers
 * plus speedups (in the shared rhs-report envelope) to the --out path.
 *
 * Options:
 *   --rows N    sample size per workload (default 30; 6 under --smoke)
 *   --out FILE  JSON output path (default BENCH_parallel.json)
 *
 * Determinism is checked, not assumed: each workload's result is
 * serialized and the serialization at every thread count must equal
 * the jobs=1 baseline exactly, or the bench aborts.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/campaign.hh"
#include "core/profile_io.hh"
#include "core/spatial.hh"
#include "core/temp_analysis.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "experiments/all.hh"
#include "report/writer.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace rhs;

constexpr unsigned kJobCounts[] = {1, 2, 4, 8};

/** FNV-1a, reported in the JSON so runs can be compared offline. */
std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

struct Measurement
{
    std::string name;
    std::vector<double> seconds;  //!< Indexed like kJobCounts.
    std::uint64_t digest = 0;     //!< FNV-1a of the serialized result.
    bool deterministic = true;    //!< All widths byte-identical.
};

std::string
serializeTempRanges(const core::TempRangeAnalysis &analysis)
{
    std::ostringstream out;
    out << analysis.vulnerableCells << ' ' << analysis.noGapCells << ' '
        << analysis.oneGapCells << '\n';
    for (const auto &row : analysis.rangeCount) {
        for (auto count : row)
            out << count << ' ';
        out << '\n';
    }
    return out.str();
}

class ParallelScaling final : public exp::Experiment
{
  public:
    std::string
    name() const override
    {
        return "parallel_scaling";
    }

    std::string
    title() const override
    {
        return "Parallel engine scaling: campaign / temperature / "
               "row scan";
    }

    std::string
    source() const override
    {
        return "tentpole measurement; results byte-identical at "
               "every width";
    }

    std::vector<exp::OptionSpec>
    options() const override
    {
        return {{"rows", "30", "sample size per workload"},
                {"out", "BENCH_parallel.json", "JSON output path"}};
    }

    report::Document
    run(exp::RunContext &ctx) override
    {
        auto doc = makeDocument();
        // The campaign workload refuses samples under 10 rows, so the
        // smoke default stays just above that floor.
        const auto max_rows = static_cast<unsigned>(ctx.cli.getInt(
            "rows", ctx.scale.smoke ? 12 : 30));
        const std::string out_path =
            ctx.cli.get("out", "BENCH_parallel.json");
        const bool table = ctx.table;

        if (table)
            bench::printHeader(title(), source());
        const unsigned hw = util::ThreadPool::hardwareJobs();
        if (table)
            std::printf("hardware threads: %u\n", hw);
        const unsigned max_jobs = *std::max_element(
            std::begin(kJobCounts), std::end(kJobCounts));
        if (hw < max_jobs && table) {
            std::printf("warning: only %u hardware threads for "
                        "jobs<=%u — wide-job speedups measure "
                        "oversubscription and are flagged unreliable "
                        "in the JSON\n",
                        hw, max_jobs);
        }
        if (table)
            std::printf("\n");

        // Time `work` (which returns the result serialized to a
        // string) at every thread width and verify the bytes never
        // change.
        auto measure = [&](const std::string &workload_name,
                           auto &&work) {
            Measurement m;
            m.name = workload_name;
            std::string baseline;
            for (unsigned jobs : kJobCounts) {
                util::ThreadPool::configure(jobs);
                const auto start = std::chrono::steady_clock::now();
                const std::string serialized = work();
                const std::chrono::duration<double> elapsed =
                    std::chrono::steady_clock::now() - start;
                m.seconds.push_back(elapsed.count());
                if (jobs == 1) {
                    baseline = serialized;
                    m.digest = fnv1a(serialized);
                } else if (serialized != baseline) {
                    m.deterministic = false;
                }
                if (table)
                    std::printf(
                        "  %-18s jobs=%u  %8.3f s  digest %016llx%s\n",
                        workload_name.c_str(), jobs, elapsed.count(),
                        static_cast<unsigned long long>(
                            fnv1a(serialized)),
                        serialized == baseline ? "" : "  MISMATCH");
            }
            RHS_ASSERT(m.deterministic, "parallel results diverged "
                                        "from the serial baseline");
            return m;
        };

        rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0);
        core::Tester tester(dimm);

        const auto all = core::testedRows(dimm.module().geometry(),
                                          max_rows / 3 + 1);
        std::vector<unsigned> rows;
        for (std::size_t i = 0; i < max_rows && i < all.size(); ++i)
            rows.push_back(all[i * all.size() / max_rows]);
        rhmodel::Conditions reference;
        const auto wcdp = tester.findWorstCasePattern(
            0, {rows.front(), rows[rows.size() / 2], rows.back()},
            reference);

        std::vector<Measurement> measurements;

        core::CampaignConfig config;
        config.maxRows = max_rows;
        config.rowsPerRegion = max_rows / 3 + 1;
        measurements.push_back(measure("campaign", [&] {
            const auto report = core::runCampaign(tester, config);
            std::ostringstream out;
            out << report.summary();
            core::saveProfile(out, report.profile);
            return out.str();
        }));

        measurements.push_back(measure("temperature_sweep", [&] {
            return serializeTempRanges(
                core::analyzeTempRanges(tester, 0, rows, wcdp));
        }));

        measurements.push_back(measure("fig11_row_scan", [&] {
            const auto hcs =
                core::rowHcFirstSurvey(tester, 0, rows, wcdp);
            std::ostringstream out;
            for (double hc : hcs)
                out << hc << '\n';
            return out.str();
        }));

        // The measurements reconfigured the global pool; restore the
        // width the driver selected for the remaining experiments.
        util::ThreadPool::configure(ctx.scale.jobs);

        // Fill the document: one series per workload plus the shared
        // metadata the old hand-rolled emitter carried.
        std::vector<std::string> job_labels;
        for (unsigned jobs : kJobCounts)
            job_labels.push_back("jobs=" + std::to_string(jobs));
        bool all_deterministic = true;
        auto workloads = report::Json::array();
        for (const auto &m : measurements) {
            doc.addSeries("seconds_" + m.name, job_labels, m.seconds);
            std::vector<double> speedup;
            for (double s : m.seconds)
                speedup.push_back(s > 0.0 ? m.seconds.front() / s
                                          : 0.0);
            doc.addSeries("speedup_" + m.name, job_labels, speedup);
            char digest[32];
            std::snprintf(digest, sizeof digest, "%016llx",
                          static_cast<unsigned long long>(m.digest));
            auto entry = report::Json::object();
            entry.set("name", m.name);
            entry.set("digest", digest);
            entry.set("deterministic", m.deterministic);
            workloads.push(std::move(entry));
            if (!m.deterministic)
                all_deterministic = false;
        }
        doc.data.set("hardware_threads", hw);
        auto job_counts = report::Json::array();
        for (unsigned jobs : kJobCounts)
            job_counts.push(jobs);
        doc.data.set("job_counts", std::move(job_counts));
        // On machines with fewer hardware threads than the widest job
        // count, the wide-job numbers measure oversubscription, not
        // scaling: flag them unreliable rather than letting them read
        // as regressions. Determinism checks are unaffected.
        doc.data.set("speedups_reliable", hw >= max_jobs);
        doc.data.set("workloads", std::move(workloads));
        doc.check("parallel_determinism", "engine contract",
                  "every workload's result is byte-identical at 1, "
                  "2, 4 and 8 worker threads",
                  all_deterministic,
                  "digests in data.workloads");

        bench::stampEnvelope(doc, ctx.scale);
        report::JsonWriter().writeFile(out_path, doc.toJson());
        if (table)
            std::printf("\nwrote %s; all workloads byte-identical "
                        "across 1/2/4/8 worker threads\n",
                        out_path.c_str());
        return doc;
    }
};

} // namespace

namespace rhs::bench
{

void
registerParallelScaling()
{
    exp::Registry::add(std::make_unique<ParallelScaling>());
}

} // namespace rhs::bench

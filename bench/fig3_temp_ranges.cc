/**
 * @file
 * Regenerates Fig. 3: the population of vulnerable DRAM cells
 * clustered by their vulnerable temperature range. Rows are the upper
 * limit of the range, columns the lower limit; each bucket shows the
 * percentage of all vulnerable cells.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/temp_analysis.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv);
    printHeader("Fig. 3: population of vulnerable cells clustered by "
                "vulnerable temperature range",
                "Fig. 3 (paper highlights: full-range cells "
                "14.2/17.4/9.6/29.8 %, e.g. 5.4% of Mfr. A cells in "
                "70-90 degC)");

    auto fleet = makeBenchFleet(scale);
    for (auto mfr : rhmodel::allMfrs) {
        core::TempRangeAnalysis merged;
        merged.temps = core::standardTemperatures();
        merged.rangeCount.assign(
            merged.temps.size(),
            std::vector<std::uint64_t>(merged.temps.size(), 0));
        for (auto &entry : fleet) {
            if (entry.dimm->mfr() != mfr)
                continue;
            merged.merge(core::analyzeTempRanges(
                *entry.tester, 0, entry.rows, entry.wcdp));
        }

        std::printf("\n%s  (vulnerable cells: %llu)\n",
                    rhmodel::to_string(mfr).c_str(),
                    static_cast<unsigned long long>(
                        merged.vulnerableCells));
        std::printf("Upper\\Lower ");
        for (double t : merged.temps)
            std::printf("%6.0f ", t);
        std::printf("\n");
        for (std::size_t hi = 0; hi < merged.temps.size(); ++hi) {
            std::printf("   %3.0f degC ", merged.temps[hi]);
            for (std::size_t lo = 0; lo < merged.temps.size(); ++lo) {
                if (lo > hi) {
                    std::printf("%6s ", "");
                    continue;
                }
                std::printf("%5.1f%% ",
                            100.0 * merged.rangeFraction(lo, hi));
            }
            std::printf("\n");
        }
        std::printf("No gaps: %.2f%%   1 gap: %.2f%%   full-range "
                    "(50-90): %.1f%%   single-temp total: %.1f%%\n",
                    100.0 * merged.noGapFraction(),
                    merged.vulnerableCells
                        ? 100.0 *
                              static_cast<double>(merged.oneGapCells) /
                              static_cast<double>(merged.vulnerableCells)
                        : 0.0,
                    100.0 * merged.fullRangeFraction(),
                    100.0 * merged.singlePointFraction());
    }
    return 0;
}

/**
 * @file
 * Regenerates Fig. 9: the distribution of average bit flips per victim
 * row across chips as the bank precharged time (tAggOff) grows from
 * tRP (16.5 ns) to 40.5 ns.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/timing_analysis.hh"
#include "stats/descriptive.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv);
    printHeader("Fig. 9: bit flips per victim row vs aggressor row "
                "off-time (tAggOff)",
                "Fig. 9 (paper: BER /6.3 / /2.9 / /4.9 / /5.0 for "
                "A/B/C/D at 40.5 ns; Obsv. 10)");

    auto fleet = makeBenchFleet(scale);
    std::printf("%-8s %-9s %-40s %-10s\n", "Module", "tAggOff",
                "box plot of flips/row per chip", "mean");
    printRule();

    for (auto &entry : fleet) {
        const auto sweep = core::sweepAggressorOffTime(
            *entry.tester, 0, entry.rows, entry.wcdp);
        for (std::size_t v = 0; v < sweep.values.size(); ++v) {
            const auto &data = sweep.flipsPerRowPerChip[v];
            const auto box = stats::boxSummary(data);
            std::printf("%-8s %6.1fns  [%6.2f |%6.2f {%6.2f} %6.2f| "
                        "%6.2f]  %8.2f\n",
                        entry.dimm->label().c_str(), sweep.values[v],
                        box.whiskerLow, box.q1, box.median, box.q3,
                        box.whiskerHigh, stats::mean(data));
        }
        const double reduction =
            sweep.berRatio() > 0.0 ? 1.0 / sweep.berRatio() : 0.0;
        std::printf("%-8s BER reduction (16.5/40.5): %.2fx   "
                    "CV change: %+.0f%%\n",
                    entry.dimm->label().c_str(), reduction,
                    100.0 * sweep.berCvChange());
        printRule();
    }

    std::printf("Takeaway 4: victims become less vulnerable when the "
                "bank stays precharged longer.\n");
    return 0;
}

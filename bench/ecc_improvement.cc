/**
 * @file
 * Regenerates Defense Improvement 6 (§8.2): ECC against RowHammer's
 * non-uniform column error distribution.
 *
 * Because flips cluster in vulnerable columns (Obsvs. 13-14), a
 * SEC-DED word built from 8 consecutive columns sees correlated
 * multi-bit errors. Interleaving each word's bytes across distant
 * columns ("ECC schemes optimized for non-uniform bit error
 * probability distributions across columns") converts detected /
 * silently mis-corrected words back into correctable single-bit
 * errors.
 */

#include <cstdio>

#include "bench_common.hh"
#include "ecc/rowhammer_ecc.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv, 6'000, 2, 2'000);
    printHeader("Defense Improvement 6: SEC-DED vs RowHammer flips",
                "Section 8.2 Improvement 6 (column-aware ECC)");

    auto fleet = makeBenchFleet(scale);
    std::printf("Aggressive attack conditions: tAggOn=154.5ns, 75 degC, "
                "512K hammers (maximizes multi-bit words)\n\n");
    std::printf("%-8s %-13s %-8s %-10s %-10s %-10s %-9s\n", "Module",
                "layout", "words", "corrected", "detected", "silent",
                "silent%");
    printRule();

    for (auto &entry : fleet) {
        rhmodel::Conditions conditions;
        conditions.temperature = 75.0;
        conditions.tAggOn = 154.5;

        for (auto layout : {ecc::WordLayout::Contiguous,
                            ecc::WordLayout::Interleaved}) {
            ecc::EccOutcome outcome;
            for (unsigned row : entry.rows) {
                const auto detail = entry.tester->berDetail(
                    0, row, conditions, entry.wcdp,
                    core::kMaxHammers);
                outcome.merge(ecc::analyzeFlips(
                    detail.flips,
                    entry.dimm->module().geometry(), layout));
            }
            std::printf("%-8s %-13s %-8llu %-10llu %-10llu %-10llu "
                        "%8.3f%%\n",
                        entry.dimm->label().c_str(),
                        layout == ecc::WordLayout::Contiguous
                            ? "contiguous"
                            : "interleaved",
                        static_cast<unsigned long long>(outcome.words),
                        static_cast<unsigned long long>(
                            outcome.corrected),
                        static_cast<unsigned long long>(
                            outcome.detected),
                        static_cast<unsigned long long>(
                            outcome.silentCorruption),
                        100.0 * outcome.silentRate());
        }
        printRule();
    }

    std::printf("Column-aware interleaving shifts detected/silent "
                "words into the corrected column: the Improvement 6 "
                "claim.\n");
    return 0;
}

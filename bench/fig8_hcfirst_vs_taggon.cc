/**
 * @file
 * Regenerates Fig. 8: the distribution of per-row HCfirst as the
 * aggressor row on-time grows (letter-value summaries).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/timing_analysis.hh"
#include "stats/descriptive.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv);
    printHeader("Fig. 8: per-row HCfirst vs aggressor row on-time "
                "(tAggOn)",
                "Fig. 8 (paper: HCfirst -40.0 / -28.3 / -32.7 / -37.3 % "
                "for A/B/C/D at 154.5 ns; Obsv. 8)");

    auto fleet = makeBenchFleet(scale);
    std::printf("%-8s %-9s %-52s\n", "Module", "tAggOn",
                "letter values of HCfirst (K hammers)");
    printRule();

    for (auto &entry : fleet) {
        const auto sweep = core::sweepAggressorOnTime(
            *entry.tester, 0, entry.rows, entry.wcdp);
        for (std::size_t v = 0; v < sweep.values.size(); ++v) {
            const auto &data = sweep.hcFirstPerRow[v];
            if (data.empty())
                continue;
            const auto lv = stats::letterValues(data, 3);
            std::printf("%-8s %6.1fns  median %7.1fK",
                        entry.dimm->label().c_str(), sweep.values[v],
                        lv.median / 1e3);
            for (const auto &[lo, hi] : lv.boxes)
                std::printf("  [%7.1fK, %7.1fK]", lo / 1e3, hi / 1e3);
            std::printf("\n");
        }
        std::printf("%-8s HCfirst change (154.5 vs 34.5): %+.1f%%   "
                    "CV change: %+.0f%%\n",
                    entry.dimm->label().c_str(),
                    100.0 * sweep.hcFirstChange(),
                    100.0 * sweep.hcFirstCvChange());
        printRule();
    }

    std::printf("Takeaway 3: a longer-active aggressor row makes "
                "victims flip at smaller hammer counts.\n");
    return 0;
}

/**
 * @file
 * Regenerates Fig. 10: the distribution of per-row HCfirst as the
 * bank precharged time (tAggOff) grows.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/timing_analysis.hh"
#include "stats/descriptive.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv);
    printHeader("Fig. 10: per-row HCfirst vs aggressor row off-time "
                "(tAggOff)",
                "Fig. 10 (paper: HCfirst +33.8 / +24.7 / +50.1 / "
                "+33.7 % for A/B/C/D at 40.5 ns; Obsv. 10)");

    auto fleet = makeBenchFleet(scale);
    std::printf("%-8s %-9s %-52s\n", "Module", "tAggOff",
                "letter values of HCfirst (K hammers)");
    printRule();

    for (auto &entry : fleet) {
        const auto sweep = core::sweepAggressorOffTime(
            *entry.tester, 0, entry.rows, entry.wcdp);
        for (std::size_t v = 0; v < sweep.values.size(); ++v) {
            const auto &data = sweep.hcFirstPerRow[v];
            if (data.empty())
                continue;
            const auto lv = stats::letterValues(data, 3);
            std::printf("%-8s %6.1fns  median %7.1fK",
                        entry.dimm->label().c_str(), sweep.values[v],
                        lv.median / 1e3);
            for (const auto &[lo, hi] : lv.boxes)
                std::printf("  [%7.1fK, %7.1fK]", lo / 1e3, hi / 1e3);
            std::printf("\n");
        }
        std::printf("%-8s HCfirst change (40.5 vs 16.5): %+.1f%%   "
                    "CV change: %+.0f%%\n",
                    entry.dimm->label().c_str(),
                    100.0 * sweep.hcFirstChange(),
                    100.0 * sweep.hcFirstCvChange());
        printRule();
    }

    std::printf("Obsv. 11 check: HCfirst CV does not grow with "
                "tAggOff (uniform relief across rows).\n");
    return 0;
}

/**
 * @file
 * Regenerates Fig. 14: per-subarray (average HCfirst, minimum HCfirst)
 * points across modules of each manufacturer, with the linear fit and
 * R2 score the paper reports.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/spatial.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    util::Cli cli(argc, argv, {"modules", "rows", "full", "subarrays"});
    const unsigned modules_per_mfr =
        static_cast<unsigned>(cli.getInt("modules", 3));
    const unsigned subarrays =
        static_cast<unsigned>(cli.getInt("subarrays", 8));

    printHeader("Fig. 14: HCfirst variation across subarrays",
                "Fig. 14 (paper fits: A y=0.46x+3773 R2=.73, B "
                "y=0.41x+2737 R2=.78, C y=0.42x+3833 R2=.93, D "
                "y=0.67x-25410 R2=.42; Obsv. 15)");

    for (auto mfr : rhmodel::allMfrs) {
        std::vector<core::SubarrayStats> all;
        std::printf("\n%s\n", rhmodel::to_string(mfr).c_str());
        std::printf("  %-8s %-10s %-14s %-14s\n", "Module", "subarray",
                    "avg HCfirst", "min HCfirst");
        for (unsigned index = 0; index < modules_per_mfr; ++index) {
            rhmodel::SimulatedDimm dimm(mfr, index);
            core::Tester tester(dimm);
            rhmodel::Conditions reference;
            const auto wcdp = tester.findWorstCasePattern(
                0, {100, 2000, 6000}, reference);
            const auto survey =
                core::subarraySurvey(tester, 0, subarrays, 24, wcdp);
            for (const auto &entry : survey) {
                std::printf("  %-8s %-10u %11.1fK %11.1fK\n",
                            dimm.label().c_str(), entry.subarray,
                            entry.averageHcFirst / 1e3,
                            entry.minimumHcFirst / 1e3);
                all.push_back(entry);
            }
        }
        if (all.size() >= 2) {
            const auto fit = core::fitSubarrayModel(all);
            std::printf("  linear fit: min = %.2f * avg %+.0f   "
                        "R2 = %.2f\n",
                        fit.slope, fit.intercept, fit.r2);
        }
    }

    std::printf("\nObsv. 15 check: the most vulnerable row of a "
                "subarray sits far below the subarray average, and the "
                "relation is linear within a manufacturer.\n");
    return 0;
}

/**
 * @file
 * Defense Improvement 5, quantified end-to-end: row-buffer policies
 * bound the aggressor-row active time, which bounds the damage rate
 * Obsv. 8 measures. Services the same synthetic request stream under
 * each policy, reports the measured on-time distribution, and converts
 * it to the per-manufacturer damage factor the timing model implies.
 */

#include <cstdio>

#include "bench_common.hh"
#include "mc/scheduler.hh"
#include "stats/descriptive.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;
    using namespace rhs::mc;

    util::Cli cli(argc, argv, {"requests", "locality", "full",
                               "modules", "rows"});
    TraceConfig config;
    config.requests = static_cast<std::uint64_t>(
        cli.getInt("requests", 20'000));
    config.rowLocality = cli.getDouble("locality", 0.75);

    printHeader("Defense Improvement 5: row-buffer policy vs aggressor "
                "active time",
                "Section 8.2 Improvement 5 (bounding tAggOn in the "
                "memory controller)");

    const auto trace = makeTrace(config);
    std::printf("Trace: %llu requests, row locality %.2f (an attacker "
                "maximizes locality to stretch tAggOn)\n\n",
                static_cast<unsigned long long>(config.requests),
                config.rowLocality);

    std::printf("%-14s %-9s %-9s %-11s %-11s %-11s %-22s\n", "policy",
                "hit rate", "#ACTs", "mean tOn", "P95 tOn", "max tOn",
                "damage factor A/B/C/D");
    printRule();

    for (auto policy : {RowPolicy::OpenPage, RowPolicy::TimeoutPage,
                        RowPolicy::ClosedPage}) {
        dram::Geometry geometry;
        geometry.banks = 4;
        geometry.subarraysPerBank = 8;
        geometry.rowsPerSubarray = 512;
        geometry.columnsPerRow = 64;
        dram::ModuleInfo info;
        info.label = "MC";
        info.chips = 2;
        info.serial = 0xBEEF;
        dram::Module module(info, geometry, dram::ddr4_2400(),
                            dram::makeIdentityMapping());

        Scheduler scheduler(module, policy, 100.0);
        const auto result = scheduler.run(trace);

        double max_on = 0.0;
        for (double t : result.onTimes)
            max_on = std::max(max_on, t);

        // Per-manufacturer damage factor at the mean on-time: the
        // multiplier on RowHammer damage vs the tRAS baseline
        // (derived from the paper's Obsv. 8 calibration).
        char factors[64];
        {
            const auto &timing = module.timing();
            double f[4];
            int i = 0;
            for (auto mfr : rhmodel::allMfrs) {
                const auto &p = rhmodel::profileFor(mfr);
                const double g_on =
                    1.0 + p.kOn *
                              (result.meanOnTime() - timing.tRAS) /
                              timing.tRAS;
                f[i++] = (1.0 - p.wCouple) * g_on + p.wCouple;
            }
            std::snprintf(factors, sizeof(factors),
                          "%.2f / %.2f / %.2f / %.2f", f[0], f[1],
                          f[2], f[3]);
        }

        std::printf("%-14s %8.1f%% %-9llu %8.1fns %8.1fns %8.1fns  %s\n",
                    to_string(policy).c_str(),
                    100.0 * result.hitRate(),
                    static_cast<unsigned long long>(result.activations),
                    result.meanOnTime(),
                    stats::quantile(result.onTimes, 0.95), max_on,
                    factors);
    }

    std::printf("\nBounding the active time (timeout/closed page) "
                "pins the damage factor near 1.0 at a row-hit-rate "
                "cost — the trade Improvement 5 proposes.\n");
    return 0;
}

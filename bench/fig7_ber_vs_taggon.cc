/**
 * @file
 * Regenerates Fig. 7: the distribution of average bit flips per victim
 * row across chips as the aggressor row on-time (tAggOn) grows from
 * tRAS (34.5 ns) to 154.5 ns.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/timing_analysis.hh"
#include "stats/descriptive.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv);
    printHeader("Fig. 7: bit flips per victim row vs aggressor row "
                "on-time (tAggOn)",
                "Fig. 7 (paper: BER x10.2 / x3.1 / x4.4 / x9.6 for "
                "A/B/C/D at 154.5 ns; Obsv. 8)");

    auto fleet = makeBenchFleet(scale);
    std::printf("%-8s %-9s %-40s %-10s\n", "Module", "tAggOn",
                "box plot of flips/row per chip", "mean");
    printRule();

    for (auto &entry : fleet) {
        const auto sweep = core::sweepAggressorOnTime(
            *entry.tester, 0, entry.rows, entry.wcdp);
        for (std::size_t v = 0; v < sweep.values.size(); ++v) {
            const auto &data = sweep.flipsPerRowPerChip[v];
            const auto box = stats::boxSummary(data);
            std::printf("%-8s %6.1fns  [%6.2f |%6.2f {%6.2f} %6.2f| "
                        "%6.2f]  %8.2f\n",
                        entry.dimm->label().c_str(), sweep.values[v],
                        box.whiskerLow, box.q1, box.median, box.q3,
                        box.whiskerHigh, stats::mean(data));
        }
        std::printf("%-8s BER ratio (154.5/34.5): %.2fx   CV change: "
                    "%+.0f%%\n",
                    entry.dimm->label().c_str(), sweep.berRatio(),
                    100.0 * sweep.berCvChange());
        printRule();
    }

    std::printf("Obsv. 8/9 check: BER grows monotonically with tAggOn "
                "and the CV shrinks (consistent worsening).\n");
    return 0;
}

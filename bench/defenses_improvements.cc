/**
 * @file
 * Regenerates the §8.2 defense-improvement analyses:
 *  1. non-uniform per-row thresholds shrink counter structures,
 *  2. subarray-sampled profiling predicts the worst-case HCfirst,
 *  4. cooling reduces BER for increasing-trend manufacturers,
 *  5. bounding the aggressor active time restores the baseline
 *     threshold.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/profiler.hh"
#include "core/spatial.hh"
#include "defense/nonuniform.hh"
#include "defense/para.hh"
#include "stats/descriptive.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv);
    printHeader("Section 8.2: defense improvements",
                "Improvements 1, 2, 4, 5 (paper: Graphene area -80%, "
                "BlockHammer -33%; 8-of-128 subarray profiling; "
                "cooling cuts Mfr. A BER ~25%)");

    auto fleet = makeBenchFleet(scale);

    std::printf("Improvement 1: per-row-class thresholds "
                "(Obsv. 12)\n");
    std::printf("%-8s %-12s %-14s %-14s %-9s\n", "Module",
                "worst HC", "uniform bits", "split bits", "savings");
    printRule();
    for (auto &entry : fleet) {
        const auto hcs = core::rowHcFirstSurvey(*entry.tester, 0,
                                                entry.rows, entry.wcdp);
        if (hcs.empty())
            continue;
        const double worst = stats::minValue(hcs);
        // Refresh-window activation budget: 64 ms of back-to-back
        // activations at ~51 ns each.
        const double window = 64e6 / 51.0;
        const auto report =
            defense::counterAreaSavings(worst, 0.05, 2.0, window);
        std::printf("%-8s %9.1fK %11.0f b %11.0f b %7.0f%%\n",
                    entry.dimm->label().c_str(), worst / 1e3,
                    report.uniformBits, report.nonUniformBits,
                    report.savingsPct);
    }
    std::printf("PARA analogue: probability for worst-case vs 2x "
                "threshold: p=%.4f vs p=%.4f (refresh rate halves for "
                "95%% of rows)\n",
                defense::Para::probabilityFor(33'000.0),
                defense::Para::probabilityFor(66'000.0));

    std::printf("\nImprovement 2: profiling by subarray sampling "
                "(Obsvs. 15-16)\n");
    std::printf("%-8s %-10s %-12s %-12s %-12s %-12s\n", "Module",
                "rows", "sampled avg", "sampled min", "predicted",
                "full-scan min");
    printRule();
    for (auto &entry : fleet) {
        const auto survey =
            core::subarraySurvey(*entry.tester, 0, 8, 8, entry.wcdp);
        if (survey.size() < 2)
            continue;
        const auto model = core::fitSubarrayModel(survey);
        const auto estimate = core::profileBySampling(
            *entry.tester, 0, 4, 6, entry.wcdp, model);
        const auto full = core::rowHcFirstSurvey(
            *entry.tester, 0, entry.rows, entry.wcdp);
        std::printf("%-8s %-10u %9.1fK %9.1fK %9.1fK %9.1fK\n",
                    entry.dimm->label().c_str(), estimate.rowsTested,
                    estimate.sampledAverageHcFirst / 1e3,
                    estimate.sampledMinimumHcFirst / 1e3,
                    estimate.predictedWorstCase / 1e3,
                    full.empty() ? 0.0
                                 : stats::minValue(full) / 1e3);
    }

    std::printf("\nImprovement 4: cooling as mitigation (Obsv. 4)\n");
    printRule();
    for (auto &entry : fleet) {
        rhmodel::Conditions cold, hot;
        cold.temperature = 50.0;
        hot.temperature = 90.0;
        double ber_cold = 0.0, ber_hot = 0.0;
        for (unsigned row : entry.rows) {
            ber_cold += entry.tester->berOfRow(0, row, cold,
                                               entry.wcdp);
            ber_hot += entry.tester->berOfRow(0, row, hot, entry.wcdp);
        }
        if (ber_hot <= 0.0)
            continue;
        std::printf("%-8s cooling 90->50 degC changes BER by %+.0f%%\n",
                    entry.dimm->label().c_str(),
                    100.0 * (ber_cold - ber_hot) / ber_hot);
    }

    std::printf("\nImprovement 5: bounding aggressor active time "
                "(Obsv. 8)\n");
    printRule();
    for (auto &entry : fleet) {
        rhmodel::Conditions base, open_page;
        open_page.tAggOn = 154.5; // Unbounded open-page policy.
        double flips_bound = 0.0, flips_open = 0.0;
        for (unsigned row : entry.rows) {
            flips_bound += entry.tester->berOfRow(0, row, base,
                                                  entry.wcdp);
            flips_open += entry.tester->berOfRow(0, row, open_page,
                                                 entry.wcdp);
        }
        std::printf("%-8s closing rows promptly avoids %.0f%% of the "
                    "open-page flips\n",
                    entry.dimm->label().c_str(),
                    flips_open > 0.0
                        ? 100.0 * (flips_open - flips_bound) /
                              flips_open
                        : 0.0);
    }
    return 0;
}

/**
 * @file
 * Regenerates Fig. 6: the DRAM command timings of the three
 * aggressor-active-time experiments (Baseline, Aggressor On, and
 * Aggressor Off tests). Builds the actual SoftMC programs, executes
 * them against the device model, and prints the measured per-command
 * schedule and activation windows.
 */

#include <cstdio>

#include "bench_common.hh"
#include "softmc/host.hh"
#include "softmc/program.hh"

namespace
{

using namespace rhs;

struct WindowListener : dram::ActivationListener
{
    std::vector<dram::ActivationRecord> records;

    void
    onActivation(const dram::ActivationRecord &record) override
    {
        records.push_back(record);
    }
};

void
runCase(const char *name, dram::Ns t_on, dram::Ns t_off)
{
    dram::Geometry geometry;
    geometry.banks = 1;
    geometry.subarraysPerBank = 1;
    geometry.rowsPerSubarray = 64;
    geometry.columnsPerRow = 16;
    dram::ModuleInfo info;
    info.label = "F6";
    info.chips = 1;
    info.serial = 6;
    dram::Module module(info, geometry, dram::ddr4_2400(),
                        dram::makeIdentityMapping());
    WindowListener listener;
    module.addListener(&listener);

    softmc::HammerProgramSpec spec;
    spec.aggressorA = 10; // "Row A" of Fig. 6.
    spec.aggressorB = 12; // "Row B".
    spec.hammers = 3;
    spec.tAggOn = t_on;
    spec.tAggOff = t_off;
    const auto program =
        softmc::makeHammerProgram(module.timing(), spec);

    softmc::Host host(module);
    host.run(program);

    std::printf("%-18s", name);
    for (const auto &record : listener.records) {
        std::printf(" | ACT(Row%c) %5.1fns PRE %5.1fns",
                    record.physicalRow == 10 ? 'A' : 'B',
                    record.onTime, record.offTime);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace rhs::bench;

    printHeader("Fig. 6: command timings of the aggressor active-time "
                "experiments",
                "Fig. 6 (Baseline: tRAS/tRP; Aggressor On: stretched "
                "tAggOn; Aggressor Off: stretched tAggOff)");

    std::printf("Measured activation windows (on-time, preceding "
                "off-time) of the first hammers:\n\n");
    runCase("Baseline", 0.0, 0.0);        // tRAS=34.5, tRP=16.5.
    runCase("Aggressor On", 94.5, 0.0);   // Stretched on-time.
    runCase("Aggressor Off", 0.0, 32.5);  // Stretched off-time.

    std::printf("\nAll three programs are JEDEC-legal: the bank FSM "
                "validates every interval (the first off-time of each "
                "row reports the nominal tRP).\n");
    std::printf("Overall attack time per hammer: Baseline "
                "(tRAS+tRP)=51ns, On (tAggOn+tRP), Off "
                "(tRAS+tAggOff) -- as Fig. 6 annotates.\n");
    return 0;
}

/**
 * @file
 * Shared scaffolding for the per-figure bench harnesses.
 *
 * Every bench binary regenerates one table or figure of the paper's
 * evaluation at a reduced default scale (pass --full for larger runs,
 * --rows/--modules to control the sample directly) and prints the
 * same rows/series the paper reports.
 */

#ifndef RHS_BENCH_COMMON_HH
#define RHS_BENCH_COMMON_HH

#include <memory>
#include <string>
#include <vector>

#include "core/tester.hh"
#include "rhmodel/dimm.hh"
#include "util/cli.hh"

namespace rhs::bench
{

/** Scale options common to all benches. */
struct BenchScale
{
    unsigned modulesPerMfr = 1; //!< DIMMs per manufacturer.
    unsigned rowsPerRegion = 40; //!< Rows per first/middle/last region.
    unsigned maxRows = 120;      //!< Cap on total rows per module.
    unsigned jobs = 0;           //!< Worker count (0 = all hardware threads).
};

/**
 * Parse the common CLI options (--modules, --rows, --full, --jobs)
 * and configure the global thread pool to scale.jobs (default: one
 * job per hardware thread; --jobs 1 forces fully serial runs).
 */
BenchScale parseScale(int argc, const char *const *argv,
                      unsigned full_rows = 400, unsigned full_modules = 2,
                      unsigned default_rows = 120);

/** One module under test with its tester and WCDP resolved. */
struct BenchModule
{
    std::unique_ptr<rhmodel::SimulatedDimm> dimm;
    std::unique_ptr<core::Tester> tester;
    rhmodel::DataPattern wcdp{rhmodel::PatternId::Checkered};
    std::vector<unsigned> rows; //!< Tested victim rows.
};

/**
 * Build the fleet: `scale.modulesPerMfr` modules per manufacturer,
 * each with its WCDP determined per §4.2 and its tested-row sample.
 */
std::vector<BenchModule> makeBenchFleet(const BenchScale &scale);

/** Section header. */
void printHeader(const std::string &title, const std::string &source);

/** Horizontal rule. */
void printRule();

} // namespace rhs::bench

#endif // RHS_BENCH_COMMON_HH

/**
 * @file
 * Shared table-printing helpers for the experiment harness.
 *
 * Every experiment regenerates one table or figure of the paper's
 * evaluation and, under `--format table`, prints the same rows/series
 * the paper reports. Scale resolution lives in exp/scale.hh and fleet
 * construction in exp/fleet_cache.hh; this header only owns the
 * classic stdout formatting.
 */

#ifndef RHS_BENCH_COMMON_HH
#define RHS_BENCH_COMMON_HH

#include <string>

#include "exp/scale.hh"
#include "report/document.hh"

namespace rhs::bench
{

/** Section header. */
void printHeader(const std::string &title, const std::string &source);

/** Horizontal rule. */
void printRule();

/**
 * Fill a document's provenance envelope (modules, rows, jobs, seed,
 * smoke) from the resolved scale. The driver stamps these after run()
 * returns, which is too late for experiments that write extra BENCH
 * files themselves (the loadgens, snapshot_warmstart, the kernel
 * benches): call this right before any self-managed writeFile so those
 * envelopes carry real values instead of zeros.
 */
void stampEnvelope(report::Document &doc, const exp::Scale &scale);

} // namespace rhs::bench

#endif // RHS_BENCH_COMMON_HH

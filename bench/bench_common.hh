/**
 * @file
 * Shared table-printing helpers for the experiment harness.
 *
 * Every experiment regenerates one table or figure of the paper's
 * evaluation and, under `--format table`, prints the same rows/series
 * the paper reports. Scale resolution lives in exp/scale.hh and fleet
 * construction in exp/fleet_cache.hh; this header only owns the
 * classic stdout formatting.
 */

#ifndef RHS_BENCH_COMMON_HH
#define RHS_BENCH_COMMON_HH

#include <string>

namespace rhs::bench
{

/** Section header. */
void printHeader(const std::string &title, const std::string &source);

/** Horizontal rule. */
void printRule();

} // namespace rhs::bench

#endif // RHS_BENCH_COMMON_HH

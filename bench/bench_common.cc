#include "bench_common.hh"

#include <cstdio>

#include "util/thread_pool.hh"

namespace rhs::bench
{

BenchScale
parseScale(int argc, const char *const *argv, unsigned full_rows,
           unsigned full_modules, unsigned default_rows)
{
    util::Cli cli(argc, argv, {"modules", "rows", "full", "jobs"});
    BenchScale scale;
    scale.maxRows = default_rows;
    scale.rowsPerRegion = default_rows / 3 + 1;
    if (cli.has("full")) {
        scale.rowsPerRegion = full_rows / 3 + 1;
        scale.maxRows = full_rows;
        scale.modulesPerMfr = full_modules;
    }
    scale.modulesPerMfr = static_cast<unsigned>(
        cli.getInt("modules", scale.modulesPerMfr));
    scale.maxRows =
        static_cast<unsigned>(cli.getInt("rows", scale.maxRows));
    scale.rowsPerRegion = scale.maxRows / 3 + 1;
    scale.jobs = static_cast<unsigned>(cli.getInt("jobs", 0));
    util::ThreadPool::configure(scale.jobs);
    return scale;
}

std::vector<BenchModule>
makeBenchFleet(const BenchScale &scale)
{
    std::vector<BenchModule> fleet;
    for (auto mfr : rhmodel::allMfrs) {
        for (unsigned index = 0; index < scale.modulesPerMfr; ++index) {
            BenchModule entry;
            entry.dimm =
                std::make_unique<rhmodel::SimulatedDimm>(mfr, index);
            entry.tester =
                std::make_unique<core::Tester>(*entry.dimm);

            const auto all = core::testedRows(
                entry.dimm->module().geometry(), scale.rowsPerRegion);
            const std::size_t take =
                std::min<std::size_t>(scale.maxRows, all.size());
            entry.rows.reserve(take);
            for (std::size_t i = 0; i < take; ++i)
                entry.rows.push_back(all[i * all.size() / take]);

            // Determine the module's WCDP on a small sample (§4.2).
            rhmodel::Conditions reference;
            std::vector<unsigned> sample{
                entry.rows[0], entry.rows[entry.rows.size() / 2],
                entry.rows.back()};
            entry.wcdp = entry.tester->findWorstCasePattern(0, sample,
                                                            reference);
            fleet.push_back(std::move(entry));
        }
    }
    return fleet;
}

void
printHeader(const std::string &title, const std::string &source)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(reproduces %s)\n", source.c_str());
    std::printf("==================================================="
                "===========================\n");
}

void
printRule()
{
    std::printf("--------------------------------------------------"
                "----------------------------\n");
}

} // namespace rhs::bench

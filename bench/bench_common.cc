#include "bench_common.hh"

#include <cstdio>

namespace rhs::bench
{

void
printHeader(const std::string &title, const std::string &source)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(reproduces %s)\n", source.c_str());
    std::printf("==================================================="
                "===========================\n");
}

void
printRule()
{
    std::printf("--------------------------------------------------"
                "----------------------------\n");
}

void
stampEnvelope(report::Document &doc, const exp::Scale &scale)
{
    doc.modulesPerMfr = scale.modulesPerMfr;
    doc.maxRows = scale.maxRows;
    doc.rowsPerRegion = scale.rowsPerRegion;
    doc.jobs = scale.jobs;
    doc.seed = scale.seed;
    doc.smoke = scale.smoke;
}

} // namespace rhs::bench

#include "bench_common.hh"

#include <cstdio>

namespace rhs::bench
{

void
printHeader(const std::string &title, const std::string &source)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(reproduces %s)\n", source.c_str());
    std::printf("==================================================="
                "===========================\n");
}

void
printRule()
{
    std::printf("--------------------------------------------------"
                "----------------------------\n");
}

} // namespace rhs::bench

/**
 * @file
 * Supporting experiment: the defense mechanisms the §8.2 implications
 * build on, evaluated against a live double-sided attack — flips
 * prevented, refresh overhead, throttling, and storage.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "defense/blockhammer.hh"
#include "defense/evaluate.hh"
#include "defense/graphene.hh"
#include "defense/nonuniform.hh"
#include "defense/para.hh"
#include "defense/rfm.hh"
#include "defense/trr.hh"
#include "defense/twice.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;
    using namespace rhs::defense;

    util::Cli cli(argc, argv, {"hammers", "full", "modules", "rows"});
    const auto hammers = static_cast<std::uint64_t>(
        cli.getInt("hammers", 200'000));

    printHeader("Defense evaluation matrix",
                "supports the Section 8.2 analysis (PARA, Graphene, "
                "TWiCe, BlockHammer vs the double-sided attack)");

    rhmodel::DimmOptions options;
    options.subarraysPerBank = 4;
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0, options);
    core::Tester tester(dimm);
    const rhmodel::DataPattern pattern(rhmodel::PatternId::Checkered);

    // Pick a clearly vulnerable victim.
    AttackConfig config;
    config.hammers = hammers;
    rhmodel::Conditions reference;
    for (unsigned row = 100; row < 400; ++row) {
        if (tester.berOfRow(0, row, reference, pattern, hammers) >= 3) {
            config.victimPhysicalRow = row;
            break;
        }
    }

    const auto baseline = evaluateUndefended(dimm, pattern, config);
    std::printf("Attack: double-sided, %llu hammers on victim row %u "
                "(Mfr. B)\n",
                static_cast<unsigned long long>(hammers),
                config.victimPhysicalRow);
    std::printf("Undefended flips: %u\n\n", baseline.flips);

    std::printf("%-22s %-7s %-11s %-10s %-11s %-12s\n", "Defense",
                "flips", "refreshes", "throttled", "ovh/act", "storage");
    printRule();

    const std::uint64_t window = 2 * hammers;
    const std::uint64_t threshold = 8'000;

    auto report = [&](Defense &defense) {
        const auto result =
            evaluateDefense(dimm, defense, pattern, config);
        std::printf("%-22s %-7u %-11llu %-10llu %-11.5f %9.0f b\n",
                    defense.name().c_str(), result.flips,
                    static_cast<unsigned long long>(result.refreshes),
                    static_cast<unsigned long long>(
                        result.throttledActs),
                    result.refreshOverhead(), result.storageBits);
    };

    Para para(Para::probabilityFor(20'000.0, 1e-12), 11);
    report(para);

    Graphene graphene(threshold, window);
    report(graphene);

    Twice twice(threshold, window, 4'096);
    report(twice);

    BlockHammer blockhammer(threshold, window);
    report(blockhammer);

    NonUniform nonuniform(
        std::make_unique<Graphene>(2 * threshold, window),
        std::make_unique<Graphene>(threshold, window),
        {config.victimPhysicalRow});
    report(nonuniform);

    // In-DRAM mitigations need periodic refresh commands to act on.
    AttackConfig ref_config = config;
    ref_config.refreshEveryActivations = 150;
    InDramTrr trr(4);
    {
        const auto result =
            evaluateDefense(dimm, trr, pattern, ref_config);
        std::printf("%-22s %-7u %-11llu %-10llu %-11.5f %9.0f b\n",
                    trr.name().c_str(), result.flips,
                    static_cast<unsigned long long>(result.refreshes),
                    static_cast<unsigned long long>(
                        result.throttledActs),
                    result.refreshOverhead(), result.storageBits);
    }

    Rfm rfm(64, 64);
    report(rfm);

    std::printf("\nEvery correctly-provisioned defense prevents all "
                "flips; costs differ (Section 8.2 Improvement 1 "
                "exploits the row-vulnerability spread to shrink "
                "them).\n");
    return 0;
}

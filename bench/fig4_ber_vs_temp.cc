/**
 * @file
 * Regenerates Fig. 4: the percentage change in BER (RowHammer bit
 * flips per row) as temperature rises from 50 degC, for the
 * double-sided victim (distance 0) and the single-sided victims
 * (distance ±2). Mean and 95% CI across rows.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/temp_analysis.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    using namespace rhs::bench;

    const auto scale = parseScale(argc, argv);
    printHeader("Fig. 4: BER change with temperature vs 50 degC",
                "Fig. 4 (paper: A/C/D increase with temperature, B "
                "decreases; Obsv. 4)");

    auto fleet = makeBenchFleet(scale);
    for (auto mfr : rhmodel::allMfrs) {
        // Aggregate rows from all of this manufacturer's modules.
        std::printf("\n%s (distance from victim row: -2 / 0 / +2)\n",
                    rhmodel::to_string(mfr).c_str());
        std::printf("%-6s %-22s %-22s %-22s\n", "T(C)",
                    "dist -2 (mean±CI %)", "dist 0 (mean±CI %)",
                    "dist +2 (mean±CI %)");
        printRule();

        for (auto &entry : fleet) {
            if (entry.dimm->mfr() != mfr)
                continue;
            const auto result = core::analyzeBerVsTemperature(
                *entry.tester, 0, entry.rows, entry.wcdp);
            for (std::size_t t = 0; t < result.temps.size(); ++t) {
                std::printf("%-6.0f", result.temps[t]);
                for (int offset : {-2, 0, 2}) {
                    std::printf(" %9.1f ± %-9.1f",
                                result.meanChangePct.at(offset)[t],
                                result.ci95Pct.at(offset)[t]);
                }
                std::printf("\n");
            }
            break; // One module per manufacturer in the main table.
        }
    }

    std::printf("\nObsv. 4 check: sign of the 90 degC change per "
                "manufacturer -- paper expects +,-,+,+ for A,B,C,D.\n");
    return 0;
}

/**
 * @file
 * Example: a miniature end-to-end characterization campaign over one
 * module, following the paper's methodology (§4.2):
 *
 *   1. determine the module's worst-case data pattern (WCDP),
 *   2. sweep temperature 50..90 degC and report BER / range stats,
 *   3. sweep the aggressor timings,
 *   4. survey per-row HCfirst.
 *
 * Options: --jobs N (worker threads; 0 or absent = all hardware
 * threads, 1 = fully serial). Results are identical for any N.
 */

#include <cstdio>

#include "core/spatial.hh"
#include "core/temp_analysis.hh"
#include "core/tester.hh"
#include "core/timing_analysis.hh"
#include "stats/descriptive.hh"
#include "util/cli.hh"
#include "util/thread_pool.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;

    const util::Cli cli(argc, argv, {"jobs"});
    util::ThreadPool::configure(
        static_cast<unsigned>(cli.getInt("jobs", 0)));

    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::A, 0);
    core::Tester tester(dimm);
    const auto rows = core::testedRows(dimm.module().geometry(), 30);
    std::vector<unsigned> sample;
    for (std::size_t i = 0; i < 60; ++i)
        sample.push_back(rows[i * rows.size() / 60]);

    // 1. WCDP.
    rhmodel::Conditions reference;
    const auto wcdp = tester.findWorstCasePattern(
        0, {sample[0], sample[20], sample[40]}, reference);
    std::printf("Module %s WCDP: %s\n", dimm.label().c_str(),
                to_string(wcdp.id()).c_str());

    // 2. Temperature.
    const auto ranges =
        core::analyzeTempRanges(tester, 0, sample, wcdp);
    std::printf("Temperature: %llu vulnerable cells, %.1f%% flip at "
                "every in-range temperature, %.1f%% across all of "
                "50..90 degC\n",
                static_cast<unsigned long long>(ranges.vulnerableCells),
                100.0 * ranges.noGapFraction(),
                100.0 * ranges.fullRangeFraction());

    // 3. Aggressor timings.
    const auto on_sweep =
        core::sweepAggressorOnTime(tester, 0, sample, wcdp);
    const auto off_sweep =
        core::sweepAggressorOffTime(tester, 0, sample, wcdp);
    std::printf("Aggressor on-time 34.5 -> 154.5 ns: BER x%.1f, "
                "HCfirst %+.0f%%\n",
                on_sweep.berRatio(),
                100.0 * on_sweep.hcFirstChange());
    std::printf("Aggressor off-time 16.5 -> 40.5 ns: BER x%.2f, "
                "HCfirst %+.0f%%\n",
                off_sweep.berRatio(),
                100.0 * off_sweep.hcFirstChange());

    // 4. Row survey.
    const auto hcs = core::rowHcFirstSurvey(tester, 0, sample, wcdp);
    if (!hcs.empty()) {
        const auto summary = core::summarizeRowVariation(hcs);
        std::printf("Rows: %zu vulnerable; most vulnerable needs %.0f "
                    "hammers; P5 of rows sits at %.1fx that\n",
                    hcs.size(), summary.minHcFirst, summary.p5Ratio);
    }
    return 0;
}

/**
 * @file
 * Example: reverse-engineer the DRAM-internal logical-to-physical row
 * mapping by single-sided hammering, as §4.2 of the paper describes —
 * a prerequisite for any double-sided attack, since the aggressors
 * must be *physically* adjacent to the victim.
 */

#include <cstdio>

#include "core/row_mapping_re.hh"
#include "rhmodel/dimm.hh"

int
main()
{
    using namespace rhs;

    for (auto mfr : rhmodel::allMfrs) {
        rhmodel::SimulatedDimm dimm(mfr, 0);
        core::Tester tester(dimm);

        std::printf("\n%s (true scheme: %s)\n", dimm.label().c_str(),
                    dimm.module().rowMapping().name().c_str());

        // Probe a block of logical rows with single-sided hammering;
        // the two victims with the most flips are the physical
        // neighbours.
        std::vector<unsigned> probes;
        for (unsigned row = 16; row < 32; ++row)
            probes.push_back(row);
        const auto inferred = core::inferAdjacency(tester, 0, probes);

        std::printf("  %-10s %-14s %-14s\n", "aggressor",
                    "victim (low)", "victim (high)");
        for (const auto &entry : inferred) {
            std::printf("  %-10u %-14s %-14s\n", entry.aggressorLogical,
                        entry.victimLow
                            ? std::to_string(*entry.victimLow).c_str()
                            : "-",
                        entry.victimHigh
                            ? std::to_string(*entry.victimHigh).c_str()
                            : "-");
        }
        std::printf("  inference accuracy vs device mapping: %.0f%%\n",
                    100.0 * core::adjacencyAccuracy(tester, inferred));
    }
    return 0;
}

/**
 * @file
 * Example: the temperature-dependent attack improvements of §8.1.
 *
 * Part 1 (Improvement 1): an attacker who knows the operating
 * temperature picks the row that is most vulnerable *at that
 * temperature*, cutting the required hammer count.
 *
 * Part 2 (Improvement 2): cells vulnerable only in a narrow
 * temperature band act as a thermometer — hammering them and checking
 * for a flip reveals whether the chip has reached a target
 * temperature, triggering the main attack at the right moment.
 */

#include <cstdio>
#include <numeric>

#include "attack/temperature_aware.hh"
#include "attack/trigger_cell.hh"
#include "rhmodel/dimm.hh"
#include "softmc/temperature_controller.hh"

int
main()
{
    using namespace rhs;

    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0);
    core::Tester tester(dimm);
    const rhmodel::DataPattern pattern(rhmodel::PatternId::Checkered);

    std::vector<unsigned> candidates(160);
    std::iota(candidates.begin(), candidates.end(), 100u);

    std::printf("Part 1: temperature-aware victim selection\n");
    for (double temp : {50.0, 70.0, 90.0}) {
        const auto choice = attack::pickRowForTemperature(
            tester, 0, candidates, temp, pattern);
        std::printf("  at %.0f degC: best row %u needs %llu hammers "
                    "(median row: %llu) -> %.0f%% fewer\n",
                    temp, choice.bestRow,
                    static_cast<unsigned long long>(choice.bestHcFirst),
                    static_cast<unsigned long long>(
                        choice.medianHcFirst),
                    100.0 * choice.reduction());
    }

    std::printf("\nPart 2: temperature-triggered attack (target: "
                "70 degC)\n");
    const auto triggers = attack::findTriggerCells(
        tester, 0, candidates, pattern, 70.0, 5.0);
    std::printf("  trigger candidates found: %zu\n", triggers.size());
    if (triggers.empty())
        return 0;

    const auto &trigger = triggers.front();
    std::printf("  using cell chip=%u row=%u col=%u bit=%u "
                "(vulnerable range %.0f-%.0f degC)\n",
                trigger.location.chip, trigger.location.row,
                trigger.location.column, trigger.location.bit,
                trigger.rangeLow, trigger.rangeHigh);

    // Sweep the chip through a heating profile and watch the trigger.
    softmc::TemperatureController controller;
    for (double target : {50.0, 60.0, 70.0, 80.0, 90.0}) {
        controller.setTarget(target);
        controller.settle(0.1);
        const bool fired = attack::triggerFires(
            tester, trigger, 0, pattern, controller.measure());
        std::printf("  chip at %.0f degC -> trigger %s\n", target,
                    fired ? "FIRES (launch main attack)" : "silent");
    }
    return 0;
}

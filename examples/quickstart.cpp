/**
 * @file
 * Quickstart: simulate a DIMM, run one double-sided RowHammer test
 * end-to-end through the SoftMC host, and inspect the bit flips.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/hammer_session.hh"
#include "core/tester.hh"
#include "rhmodel/dimm.hh"
#include "softmc/temperature_controller.hh"

int
main()
{
    using namespace rhs;

    // 1. Instantiate a simulated DDR4 DIMM of manufacturer B.
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, /*module_index=*/0);
    std::printf("Module %s: %u chips, %u rows/bank, mapping %s\n",
                dimm.label().c_str(), dimm.module().chipCount(),
                dimm.module().geometry().rowsPerBank(),
                dimm.module().rowMapping().name().c_str());

    // 2. Bring the chip to the test temperature, as the paper's
    //    heater-pad + PID controller setup does (+-0.1 degC).
    softmc::TemperatureController controller;
    controller.setTarget(75.0);
    controller.settle(0.1);
    std::printf("Temperature settled at %.2f degC\n",
                controller.measure());

    // 3. Run a double-sided hammer test: write the checkered pattern
    //    to the victim's neighbourhood, hammer the two physically
    //    adjacent rows 150K times, read back and diff.
    core::CycleTestConfig config;
    config.victimPhysicalRow = 300;
    config.conditions.temperature = controller.measure();
    config.hammers = 150'000;

    const rhmodel::DataPattern pattern(rhmodel::PatternId::Checkered);
    const auto result = core::runCycleHammerTest(dimm, pattern, config);

    std::printf("Attack took %.1f ms on the bus\n",
                result.elapsedNs / 1e6);
    for (const auto &[offset, flips] : result.flipsByOffset)
        std::printf("  row V%+d: %u bit flips\n", offset, flips);

    // 4. Measure the victim row's HCfirst with the paper's binary
    //    search (min across 5 repetitions).
    core::Tester tester(dimm);
    const auto hc_first = tester.hcFirstMin(
        0, config.victimPhysicalRow, config.conditions, pattern);
    std::printf("HCfirst of row %u at 75 degC: %llu hammers\n",
                config.victimPhysicalRow,
                static_cast<unsigned long long>(hc_first));
    return 0;
}

/**
 * @file
 * Example: system-level implications (§8.2 Improvements 5 and 6).
 *
 * Shows how two system knobs outside the DRAM device change RowHammer
 * exposure: the memory controller's row-buffer policy (which bounds
 * the aggressor active time of Obsv. 8) and the ECC word layout
 * (which decides whether the clustered column errors of Obsvs. 13-14
 * stay correctable).
 */

#include <cstdio>

#include "core/tester.hh"
#include "ecc/rowhammer_ecc.hh"
#include "mc/scheduler.hh"
#include "rhmodel/dimm.hh"

int
main()
{
    using namespace rhs;

    // --- Part 1: row-buffer policy vs aggressor active time. ---
    std::printf("Part 1 (Improvement 5): row-buffer policy bounds "
                "tAggOn\n");
    mc::TraceConfig trace_config;
    trace_config.requests = 12'000;
    trace_config.rowLocality = 0.8; // Attacker-friendly locality.
    const auto trace = mc::makeTrace(trace_config);

    for (auto policy : {mc::RowPolicy::OpenPage,
                        mc::RowPolicy::TimeoutPage,
                        mc::RowPolicy::ClosedPage}) {
        dram::Geometry geometry;
        geometry.banks = 4;
        geometry.columnsPerRow = 64;
        dram::ModuleInfo info;
        info.label = "SYS";
        info.chips = 2;
        info.serial = 0x5151;
        dram::Module module(info, geometry, dram::ddr4_2400(),
                            dram::makeIdentityMapping());

        mc::Scheduler scheduler(module, policy, 100.0);
        const auto stats = scheduler.run(trace);
        std::printf("  %-13s hit rate %5.1f%%   mean active time "
                    "%6.1f ns\n",
                    to_string(policy).c_str(), 100.0 * stats.hitRate(),
                    stats.meanOnTime());
    }

    // --- Part 2: ECC layout vs clustered flips. ---
    std::printf("\nPart 2 (Improvement 6): ECC word layout vs "
                "clustered column errors\n");
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::C, 0);
    core::Tester tester(dimm);
    const rhmodel::DataPattern pattern(rhmodel::PatternId::Checkered);
    rhmodel::Conditions harsh;
    harsh.temperature = 75.0;
    harsh.tAggOn = 154.5;

    for (auto layout : {ecc::WordLayout::Contiguous,
                        ecc::WordLayout::Interleaved}) {
        ecc::EccOutcome outcome;
        for (unsigned row = 100; row < 800; ++row) {
            const auto detail = tester.berDetail(
                0, row, harsh, pattern, core::kMaxHammers);
            outcome.merge(ecc::analyzeFlips(
                detail.flips, dimm.module().geometry(), layout));
        }
        std::printf("  %-12s error words %6llu   corrected %5.1f%%   "
                    "detected %5.1f%%   silent %6.3f%%\n",
                    layout == ecc::WordLayout::Contiguous
                        ? "contiguous"
                        : "interleaved",
                    static_cast<unsigned long long>(outcome.words),
                    100.0 * outcome.correctedRate(),
                    100.0 * static_cast<double>(outcome.detected) /
                        static_cast<double>(outcome.words),
                    100.0 * outcome.silentRate());
    }

    std::printf("\nBoth knobs live outside the DRAM device — the "
                "system-DRAM cooperation the paper advocates.\n");
    return 0;
}

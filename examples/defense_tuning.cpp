/**
 * @file
 * Example: profile a module, then configure defenses per §8.2.
 *
 * A defense must be configured for the module's worst-case HCfirst.
 * The naive route measures every row; Improvement 2 samples a few
 * subarrays instead. Improvement 1 then exploits the row-vulnerability
 * spread (Obsv. 12): protecting only the profiled weak rows at the
 * tight threshold shrinks the counter structures.
 */

#include <cstdio>
#include <memory>
#include <unordered_set>

#include "core/profiler.hh"
#include "core/spatial.hh"
#include "defense/evaluate.hh"
#include "defense/graphene.hh"
#include "defense/nonuniform.hh"
#include "rhmodel/dimm.hh"
#include "stats/descriptive.hh"

int
main()
{
    using namespace rhs;

    rhmodel::DimmOptions options;
    options.subarraysPerBank = 8;
    rhmodel::SimulatedDimm dimm(rhmodel::Mfr::B, 0, options);
    core::Tester tester(dimm);
    const rhmodel::DataPattern pattern(rhmodel::PatternId::Checkered);

    // --- Step 1: fast profiling by subarray sampling (Imp. 2). ---
    const auto survey = core::subarraySurvey(tester, 0, 8, 16, pattern);
    const auto model = core::fitSubarrayModel(survey);
    const auto estimate =
        core::profileBySampling(tester, 0, 3, 12, pattern, model);
    std::printf("Sampled profiling: %u rows tested, avg HCfirst %.0f, "
                "observed min %.0f, model-predicted worst case %.0f\n",
                estimate.rowsTested, estimate.sampledAverageHcFirst,
                estimate.sampledMinimumHcFirst,
                estimate.predictedWorstCase);
    const double threshold = estimate.recommendedThreshold() / 2.0;
    std::printf("Defense threshold (with 2x safety margin): %.0f\n\n",
                threshold);

    // --- Step 2: find the weak rows (Obsv. 12 tail). ---
    std::vector<unsigned> rows;
    for (unsigned row = 100; row < 260; ++row)
        rows.push_back(row);
    const auto hcs = core::rowHcFirstSurvey(tester, 0, rows, pattern);
    const double weak_cut = stats::quantile(hcs, 0.05);
    std::unordered_set<unsigned> weak_rows;
    for (std::size_t i = 0; i < rows.size() && i < hcs.size(); ++i) {
        if (hcs[i] <= weak_cut)
            weak_rows.insert(rows[i]);
    }
    std::printf("Profiled %zu rows; %zu classified as weak (P5 cut "
                "at %.0f hammers)\n\n",
                hcs.size(), weak_rows.size(), weak_cut);

    // --- Step 3: uniform vs non-uniform Graphene (Imp. 1). ---
    const std::uint64_t window = 600'000;
    const auto tight = static_cast<std::uint64_t>(threshold);

    defense::Graphene uniform(tight, window);
    defense::NonUniform split(
        std::make_unique<defense::Graphene>(2 * tight, window),
        std::make_unique<defense::Graphene>(tight, window), weak_rows);

    defense::AttackConfig attack;
    attack.victimPhysicalRow = 130;
    attack.hammers = 250'000;

    for (defense::Defense *defense :
         {static_cast<defense::Defense *>(&uniform),
          static_cast<defense::Defense *>(&split)}) {
        const auto result =
            defense::evaluateDefense(dimm, *defense, pattern, attack);
        std::printf("%-22s flips=%u refreshes=%llu storage=%.0f bits\n",
                    defense->name().c_str(), result.flips,
                    static_cast<unsigned long long>(result.refreshes),
                    result.storageBits);
    }

    const auto cost = defense::counterAreaSavings(
        threshold, 0.05, 2.0, static_cast<double>(window));
    std::printf("\nCounter-area model: uniform %.0f bits vs split "
                "%.0f bits -> %.0f%% saved (paper reports up to 80%% "
                "for Graphene)\n",
                cost.uniformBits, cost.nonUniformBits, cost.savingsPct);
    return 0;
}

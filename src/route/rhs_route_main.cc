/**
 * @file
 * `rhs-route` — the standalone router for a sharded rhs-serve fleet.
 *
 *   rhs-route --shards "H:P[,H:P...][;H:P[,H:P...]]..."
 *             [--host H] [--port P] [--max-conns N] [--vnodes N]
 *             [--inbox N] [--pipeline N] [--attempts N]
 *             [--probe-ms N] [--fail-threshold N] [--rise-threshold N]
 *             [--log LEVEL]
 *
 * --shards is the routing table: shards are separated by ';', and a
 * shard's replicas (identical rhs-serve processes) by ','. Example —
 * two shards, the first with a standby replica:
 *
 *   rhs-route --shards "127.0.0.1:7001,127.0.0.1:7101;127.0.0.1:7002"
 *
 * The router speaks rhs-rpc/1 on its own port exactly like a shard
 * (same ops, same error bytes), so any rhs-serve client works
 * unchanged. --port 0 (default) binds an ephemeral port announced on
 * stderr ("listening on ..."). Runs until SIGTERM/SIGINT or a
 * `shutdown` request, then drains: every routed request in flight is
 * answered before exit.
 */

#include <csignal>
#include <cstdio>
#include <thread>
#include <unistd.h>

#include "obs/export.hh"
#include "report/writer.hh"
#include "route/router.hh"
#include "util/cli.hh"
#include "util/logging.hh"

namespace
{

using namespace rhs;

// Self-pipe: the signal handler may only touch async-signal-safe
// calls, so it writes one byte and a watcher thread does the rest.
int signalPipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    [[maybe_unused]] const auto ignored =
        ::write(signalPipe[1], &byte, 1);
}

/** "H:P,H:P;H:P" -> shards[i] = replica endpoint list. */
std::vector<std::vector<route::Endpoint>>
parseShards(const std::string &spec)
{
    std::vector<std::vector<route::Endpoint>> shards;
    std::size_t shard_start = 0;
    while (shard_start <= spec.size()) {
        std::size_t shard_end = spec.find(';', shard_start);
        if (shard_end == std::string::npos)
            shard_end = spec.size();
        const std::string shard_spec =
            spec.substr(shard_start, shard_end - shard_start);
        std::vector<route::Endpoint> replicas;
        std::size_t replica_start = 0;
        while (replica_start <= shard_spec.size()) {
            std::size_t replica_end =
                shard_spec.find(',', replica_start);
            if (replica_end == std::string::npos)
                replica_end = shard_spec.size();
            const std::string entry = shard_spec.substr(
                replica_start, replica_end - replica_start);
            if (!entry.empty()) {
                const std::size_t colon = entry.rfind(':');
                if (colon == std::string::npos || colon == 0 ||
                    colon + 1 == entry.size())
                    RHS_FATAL("--shards entry '", entry,
                              "' is not host:port");
                route::Endpoint endpoint;
                endpoint.host = entry.substr(0, colon);
                try {
                    endpoint.port = static_cast<unsigned short>(
                        std::stoul(entry.substr(colon + 1)));
                } catch (...) {
                    RHS_FATAL("--shards entry '", entry,
                              "' has a bad port");
                }
                replicas.push_back(std::move(endpoint));
            }
            if (replica_end == shard_spec.size())
                break;
            replica_start = replica_end + 1;
        }
        if (!replicas.empty())
            shards.push_back(std::move(replicas));
        if (shard_end == spec.size())
            break;
        shard_start = shard_end + 1;
    }
    return shards;
}

} // namespace

int
main(int argc, char **argv)
{
    const util::Cli cli(argc, argv,
                        {"shards", "host", "port", "max-conns",
                         "vnodes", "inbox", "pipeline", "attempts",
                         "probe-ms", "fail-threshold",
                         "rise-threshold", "log", "trace-out",
                         "slow-ms", "help"});
    if (cli.has("help")) {
        std::printf(
            "usage: rhs-route --shards \"H:P[,H:P...][;...]\"\n"
            "                 [--host H] [--port P] [--max-conns N]\n"
            "                 [--vnodes N] [--inbox N] [--pipeline N]\n"
            "                 [--attempts N] [--probe-ms N]\n"
            "                 [--fail-threshold N] "
            "[--rise-threshold N]\n"
            "                 [--log silent|warn|info|debug]\n"
            "                 [--trace-out FILE] [--slow-ms MS]\n"
            "--shards lists the fleet: ';' separates shards, ','\n"
            "separates a shard's replicas. The (mfr, module, bank)\n"
            "keyspace is consistent-hashed across the shards; each\n"
            "request is forwarded to its owning shard's live replica\n"
            "with automatic failover between replicas.\n"
            "--trace-out pulls every replica's retained spans on\n"
            "shutdown (the trace_pull op) and writes ONE stitched\n"
            "Chrome trace-event JSON for the whole fleet\n"
            "(chrome://tracing / ui.perfetto.dev). --slow-ms records\n"
            "routed requests slower end to end than MS milliseconds\n"
            "in a bounded exemplar log surfaced by the stats op (0,\n"
            "the default, disables).\n");
        return 0;
    }

    const std::string log = cli.get("log", "info");
    if (log == "silent")
        util::setLogLevel(util::LogLevel::Silent);
    else if (log == "warn")
        util::setLogLevel(util::LogLevel::Warn);
    else if (log == "debug")
        util::setLogLevel(util::LogLevel::Debug);
    else if (log != "info")
        RHS_FATAL("--log must be silent, warn, info, or debug");
    util::setLogThreadTag("main");

    route::RouterConfig config;
    config.shards = parseShards(cli.get("shards", ""));
    if (config.shards.empty())
        RHS_FATAL("rhs-route: --shards is required "
                  "(\"host:port[,host:port...][;...]\")");
    config.host = cli.get("host", "127.0.0.1");
    config.port = static_cast<unsigned short>(cli.getInt("port", 0));
    config.maxConnections =
        static_cast<unsigned>(cli.getInt("max-conns", 1024));
    config.vnodesPerShard =
        static_cast<unsigned>(cli.getInt("vnodes", 64));
    config.inboxCapacity =
        static_cast<unsigned>(cli.getInt("inbox", 1024));
    config.pipelineMax =
        static_cast<unsigned>(cli.getInt("pipeline", 64));
    config.maxAttempts =
        static_cast<unsigned>(cli.getInt("attempts", 6));
    config.health.probeIntervalMs =
        static_cast<unsigned>(cli.getInt("probe-ms", 200));
    config.health.failThreshold =
        static_cast<unsigned>(cli.getInt("fail-threshold", 2));
    config.health.riseThreshold =
        static_cast<unsigned>(cli.getInt("rise-threshold", 1));
    config.slowMs = cli.getDouble("slow-ms", 0.0);
    if (config.slowMs < 0)
        RHS_FATAL("--slow-ms must be non-negative (0 disables)");

    route::Router router(std::move(config));
    router.start();

    if (::pipe(signalPipe) != 0)
        RHS_FATAL("rhs-route: pipe(): cannot set up signal handling");
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::thread watcher([&router] {
        util::setLogThreadTag("signals");
        char byte;
        if (::read(signalPipe[0], &byte, 1) == 1) {
            util::inform("rhs-route: signal received; draining");
            router.requestStop();
        }
    });

    router.waitForStopRequest();
    router.stop();

    // Wake the watcher if the stop came from a shutdown request.
    const char byte = 0;
    [[maybe_unused]] const auto ignored =
        ::write(signalPipe[1], &byte, 1);
    watcher.join();
    ::close(signalPipe[0]);
    ::close(signalPipe[1]);

    std::fprintf(stderr, "%s\n",
                 report::JsonWriter()
                     .toString(router.statsJson())
                     .c_str());
    if (const std::string trace_out = cli.get("trace-out", "");
        !trace_out.empty()) {
        // After the drain every routed request's spans are closed;
        // the replicas are separate processes and outlive our stop,
        // so their rings are still pullable.
        const auto nodes = router.pullFleetTrace();
        obs::writeChromeTrace(trace_out, nodes);
        util::inform("rhs-route: stitched fleet trace (",
                     nodes.size(), " nodes) written to ", trace_out);
    }
    return 0;
}

#include "route/hash_ring.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhs::route
{

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

HashRing::HashRing(unsigned shard_count, unsigned vnodes_per_shard)
    : shards(shard_count)
{
    RHS_ASSERT(shard_count > 0, "HashRing needs at least one shard");
    RHS_ASSERT(vnodes_per_shard > 0,
               "HashRing needs at least one vnode per shard");
    ring.reserve(static_cast<std::size_t>(shard_count) *
                 vnodes_per_shard);
    for (unsigned shard = 0; shard < shard_count; ++shard)
        for (unsigned vnode = 0; vnode < vnodes_per_shard; ++vnode) {
            const std::string point = "shard-" +
                                      std::to_string(shard) + "#" +
                                      std::to_string(vnode);
            ring.emplace_back(mix64(fnv1a64(point)), shard);
        }
    std::sort(ring.begin(), ring.end());
    // A position collision between two shards' vnodes would make
    // ownership depend on sort tie-breaking; with 64-bit FNV over
    // distinct strings it does not happen for any sane fleet size,
    // but assert so a pathological config fails loudly.
    for (std::size_t i = 1; i < ring.size(); ++i)
        RHS_ASSERT(ring[i].first != ring[i - 1].first ||
                       ring[i].second == ring[i - 1].second,
                   "HashRing vnode position collision");
}

std::string
HashRing::bankKey(char mfr_letter, unsigned module_index, unsigned bank)
{
    std::string key;
    key += mfr_letter;
    key += '/';
    key += std::to_string(module_index);
    key += '/';
    key += std::to_string(bank);
    return key;
}

unsigned
HashRing::owner(std::uint64_t key_hash) const
{
    const auto it = std::lower_bound(
        ring.begin(), ring.end(),
        std::make_pair(key_hash, 0u),
        [](const auto &a, const auto &b) { return a.first < b.first; });
    if (it == ring.end())
        return ring.front().second; // Wrap past the highest point.
    return it->second;
}

} // namespace rhs::route

/**
 * @file
 * Consistent hashing of the characterization keyspace onto shards.
 *
 * A fleet query is owned by exactly one shard, chosen by the (mfr,
 * module, bank) triple it touches — the same triple that names a
 * RowEval cache, a snapshot record group, and a spill segment, so one
 * shard accumulates a *contiguous* slice of warm state instead of
 * every shard slowly warming everything. The ring is the routing
 * contract: anything keyed by bankKey() (today the router; next the
 * per-shard snapshot slicer, ROADMAP item 4) lands on the same shard
 * for the same fleet layout.
 *
 * Classic consistent hashing with virtual nodes: each shard owns
 * `vnodesPerShard` points on a 64-bit ring (FNV-1a of "shard-i#v"),
 * a key is owned by the first point at or clockwise after its hash.
 * Properties the tests pin:
 *  - deterministic: same (shardCount, vnodesPerShard) → same mapping
 *    in every process, every run — a router restart cannot strand a
 *    warmed shard;
 *  - balanced: with >= 64 vnodes the per-shard share of a uniform
 *    keyspace is within a few percent of 1/N;
 *  - stable: removing one shard remaps only the keys that shard
 *    owned (~1/N of the space), never shuffles survivors.
 */

#ifndef RHS_ROUTE_HASH_RING_HH
#define RHS_ROUTE_HASH_RING_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rhs::route
{

/** FNV-1a 64-bit; stable across platforms and builds. */
std::uint64_t fnv1a64(std::string_view bytes);

/**
 * splitmix64 finalizer. FNV-1a alone clusters badly on short, similar
 * strings (bank keys differ in a couple of digits; measured shares as
 * skewed as 10%/43% on a 4-shard ring) — one avalanche round restores
 * near-uniform placement. Applied to both vnode positions and key
 * hashes, so it is part of the stable routing contract.
 */
std::uint64_t mix64(std::uint64_t x);

/** The shard-ownership ring (immutable once built). */
class HashRing
{
  public:
    /**
     * @param shardCount     Number of shards (>= 1).
     * @param vnodesPerShard Ring points per shard (>= 1; 64 default
     *        keeps the worst shard within ~5% of the mean share).
     */
    explicit HashRing(unsigned shardCount, unsigned vnodesPerShard = 64);

    unsigned shardCount() const { return shards; }

    /** The canonical routing key for a query: "mfr/module/bank". */
    static std::string bankKey(char mfr_letter, unsigned module_index,
                               unsigned bank);

    /** Owning shard of a raw 64-bit key hash. */
    unsigned owner(std::uint64_t key_hash) const;

    /** Owning shard of a routing key (hashes, mixes, then owner()). */
    unsigned ownerOf(std::string_view key) const
    {
        return owner(mix64(fnv1a64(key)));
    }

  private:
    //! (ring position, shard) sorted by position.
    std::vector<std::pair<std::uint64_t, unsigned>> ring;
    unsigned shards;
};

} // namespace rhs::route

#endif // RHS_ROUTE_HASH_RING_HH

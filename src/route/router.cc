#include "route/router.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/export.hh"
#include "serve/protocol.hh"
#include "serve/query_engine.hh"
#include "util/logging.hh"

namespace rhs::route
{

Router::Router(RouterConfig config_in)
    : config(std::move(config_in)),
      hashRing(static_cast<unsigned>(config.shards.size()),
               config.vnodesPerShard)
{
    RHS_ASSERT(!config.shards.empty(),
               "router needs at least one shard");
    RHS_ASSERT(config.inboxCapacity > 0,
               "inboxCapacity must be positive");
    RHS_ASSERT(config.pipelineMax > 0, "pipelineMax must be positive");
    monitor =
        std::make_unique<HealthMonitor>(config.health, config.shards);
    for (unsigned i = 0; i < config.shards.size(); ++i) {
        auto shard = std::make_unique<Shard>();
        shard->index = i;
        const std::string prefix =
            "route.shard." + std::to_string(i) + ".";
        shard->nSent = &registry_.counter(prefix + "sent");
        shard->nFailed = &registry_.counter(prefix + "failed");
        shard->nFailover = &registry_.counter(prefix + "failover");
        shardStates.push_back(std::move(shard));
    }
}

Router::~Router()
{
    stop();
}

unsigned short
Router::port() const
{
    return connLayer ? connLayer->port() : 0;
}

std::size_t
Router::connectionCount() const
{
    return connLayer ? connLayer->connectionCount() : 0;
}

void
Router::start()
{
    serve::ConnLayerConfig net;
    net.host = config.host;
    net.port = config.port;
    net.maxConnections = config.maxConnections;
    net.name = "rhs-route";

    serve::ConnLayer::Events events;
    events.onFrame = [this](const ConnPtr &conn, std::string &&body) {
        handleFrame(conn, body);
    };
    events.onOversize = [this](const ConnPtr &conn) {
        nMalformed.add(1);
        nLocal.add(1);
        send(conn,
             serve::makeError(serve::kNoRequestId,
                              serve::err::kFrameTooLarge,
                              "frame exceeds " +
                                  std::to_string(serve::kMaxFrameBytes) +
                                  " bytes"));
    };
    events.onTruncated = [this] { nMalformed.add(1); };
    events.onAccepted = [this](unsigned) { nConnections.add(1); };
    events.onRejected = [this](int fd) {
        nRejected.add(1);
        serve::writeFrame(
            fd, serve::serialize(serve::makeError(
                    serve::kNoRequestId, serve::err::kOverloaded,
                    "connection limit reached")));
    };

    connLayer = std::make_unique<serve::ConnLayer>(std::move(net),
                                                   std::move(events));
    connLayer->start();
    monitor->start();
    for (auto &shard : shardStates)
        shard->thread =
            std::thread([this, s = shard.get()] { forwarderLoop(*s); });
    util::inform("rhs-route: listening on ", config.host, ":",
                 connLayer->port(), " (", config.shards.size(),
                 " shards, ", config.vnodesPerShard,
                 " vnodes/shard)");
}

void
Router::requestStop()
{
    if (stopping.exchange(true))
        return;
    {
        std::lock_guard lock(stopMutex);
    }
    stopCv.notify_all();
    for (auto &shard : shardStates) {
        std::lock_guard lock(shard->mutex);
        shard->cv.notify_all();
    }
    if (connLayer)
        connLayer->stopAccepting();
}

void
Router::waitForStopRequest()
{
    std::unique_lock lock(stopMutex);
    stopCv.wait(lock, [this] { return stopping.load(); });
}

void
Router::stop()
{
    requestStop();
    {
        std::lock_guard lock(stopMutex);
        if (stopped)
            return;
        stopped = true;
    }
    // Forwarders drain their inboxes before exiting, so every routed
    // request accepted before the stop request is answered; the event
    // thread stays up underneath to flush those replies out.
    for (auto &shard : shardStates)
        if (shard->thread.joinable())
            shard->thread.join();
    monitor->stop();
    if (connLayer)
        connLayer->drainAndStop();
    util::inform("rhs-route: stopped (", nRouted.value(),
                 " requests routed, ", nLocal.value(),
                 " local replies)");
}

bool
Router::send(const ConnPtr &conn, const report::Json &response)
{
    return connLayer->send(conn, serve::serialize(response));
}

unsigned
Router::shardOf(const report::Json &request) const
{
    // Routing is best-effort on the raw parameters: an out-of-range
    // module or a bogus mfr still lands on *one deterministic* shard,
    // whose engine produces the identical bad_request reply any other
    // shard would have (validation is pure). Defaults mirror
    // query_engine.cc: mfr A, module 0, bank 0.
    char mfr = 'A';
    if (const auto *value = request.find("mfr");
        value != nullptr &&
        value->type() == report::Json::Type::String &&
        value->asString().size() == 1)
        mfr = value->asString()[0];
    std::int64_t module_index = 0;
    if (const auto *value = request.find("module");
        value != nullptr && value->type() == report::Json::Type::Int)
        module_index = value->asInt();
    std::int64_t bank = 0;
    if (const auto *value = request.find("bank");
        value != nullptr && value->type() == report::Json::Type::Int)
        bank = value->asInt();
    std::string key;
    key += mfr;
    key += '/';
    key += std::to_string(module_index);
    key += '/';
    key += std::to_string(bank);
    return hashRing.ownerOf(key);
}

void
Router::handleFrame(const ConnPtr &conn, const std::string &body)
{
    // The control-plane surface is kept request-for-request identical
    // to serve::Server::handleFrame (same checks, same order, same
    // message bytes) so a client cannot tell a router from a shard.
    if (body.empty()) {
        nMalformed.add(1);
        nLocal.add(1);
        send(conn, serve::makeError(serve::kNoRequestId,
                                    serve::err::kBadRequest,
                                    "empty frame body"));
        return;
    }

    report::Json request;
    std::string parse_error;
    if (!report::Json::parse(body, request, parse_error)) {
        nMalformed.add(1);
        nLocal.add(1);
        send(conn, serve::makeError(serve::kNoRequestId,
                                    serve::err::kBadRequest,
                                    "malformed JSON: " + parse_error));
        return;
    }

    std::int64_t id = serve::kNoRequestId;
    bool has_id = false;
    if (request.type() == report::Json::Type::Object) {
        if (const auto *id_value = request.find("id");
            id_value != nullptr &&
            id_value->type() == report::Json::Type::Int) {
            id = id_value->asInt();
            has_id = true;
        }
    }
    const report::Json *op_value =
        request.type() == report::Json::Type::Object
            ? request.find("op")
            : nullptr;
    if (op_value == nullptr ||
        op_value->type() != report::Json::Type::String) {
        nLocal.add(1);
        send(conn, serve::makeError(id, serve::err::kBadRequest,
                                    "request needs a string 'op'"));
        return;
    }
    const std::string &op = op_value->asString();

    if (op == "ping") {
        auto result = report::Json::object();
        result.set("protocol", serve::kProtocol);
        nLocal.add(1);
        send(conn, serve::makeResult(id, std::move(result)));
        return;
    }
    if (op == "stats") {
        nLocal.add(1);
        send(conn, serve::makeResult(id, statsJson()));
        return;
    }
    if (op == "shutdown") {
        auto result = report::Json::object();
        result.set("draining", true);
        nLocal.add(1);
        send(conn, serve::makeResult(id, std::move(result)));
        util::inform("rhs-route: shutdown requested by conn",
                     conn->id);
        requestStop();
        return;
    }
    if (!serve::QueryEngine::isEngineOp(op)) {
        nLocal.add(1);
        send(conn, serve::makeError(id, serve::err::kUnknownOp,
                                    "unknown op '" + op + "'"));
        return;
    }

    // Engine op. Check order matches the direct path: a shard
    // validates deadline_ms in handleFrame *before* its engine
    // notices a missing id, so the router must too.
    if (const auto *deadline = request.find("deadline_ms");
        deadline != nullptr &&
        (deadline->type() != report::Json::Type::Int ||
         deadline->asInt() < 0)) {
        nLocal.add(1);
        send(conn, serve::makeError(id, serve::err::kBadRequest,
                                    "'deadline_ms' must be a "
                                    "non-negative integer"));
        return;
    }
    if (!has_id) {
        // The id rewrite below would *insert* an id and mask the
        // engine's contract; answer with the engine's exact reply.
        nLocal.add(1);
        send(conn, serve::makeError(serve::kNoRequestId,
                                    serve::err::kBadRequest,
                                    "request needs an integer 'id'"));
        return;
    }

    Job job;
    job.conn = conn;
    job.originalId = id;
    job.internalId = nextInternalId.fetch_add(1) + 1;
    request.set("id", static_cast<std::int64_t>(job.internalId));
    job.body = serve::serialize(request);

    Shard &shard = *shardStates[shardOf(request)];
    {
        std::lock_guard lock(shard.mutex);
        if (stopping.load()) {
            nLocal.add(1);
            send(conn, serve::makeError(id, serve::err::kShuttingDown,
                                        "router is draining"));
            return;
        }
        if (shard.inbox.size() >= config.inboxCapacity) {
            nInboxFull.add(1);
            nLocal.add(1);
            send(conn,
                 serve::makeError(
                     id, serve::err::kOverloaded,
                     "router inbox is full (capacity " +
                         std::to_string(config.inboxCapacity) + ")"));
            return;
        }
        shard.inbox.push_back(std::move(job));
        nRouted.add(1);
    }
    shard.cv.notify_one();
}

bool
Router::connectShard(Shard &shard)
{
    const auto &replicas = config.shards[shard.index];
    const unsigned preferred =
        shard.replica >= 0 ? static_cast<unsigned>(shard.replica) : 0;
    const int pick = monitor->pickUp(shard.index, preferred);
    // Dial the healthy pick first, then cold-dial the rest in ring
    // order: a replica that restarted a millisecond ago is still
    // marked down until the next probe sweep, but it answers a
    // connect, and finding it here is what makes failback seamless.
    std::vector<unsigned> order;
    if (pick >= 0)
        order.push_back(static_cast<unsigned>(pick));
    for (unsigned step = 0; step < replicas.size(); ++step) {
        const unsigned candidate =
            (preferred + step) % replicas.size();
        if (pick < 0 || candidate != static_cast<unsigned>(pick))
            order.push_back(candidate);
    }
    for (const unsigned candidate : order) {
        const Endpoint &endpoint = replicas[candidate];
        if (shard.client.connect(endpoint.host, endpoint.port)) {
            shard.replica = static_cast<int>(candidate);
            monitor->reportSuccess(shard.index, candidate);
            return true;
        }
        monitor->reportFailure(shard.index, candidate);
    }
    shard.replica = -1;
    return false;
}

void
Router::processGroup(Shard &shard, std::vector<Job> &group)
{
    std::vector<Job> remaining = std::move(group);
    group.clear();
    unsigned attempts = 0;
    unsigned delay_ms = config.redialBackoffMs;
    while (!remaining.empty()) {
        if (!shard.client.connected()) {
            if (attempts >= config.maxAttempts)
                break;
            if (attempts > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay_ms));
                delay_ms *= 2;
            }
            ++attempts;
            if (!connectShard(shard))
                continue;
        }

        // Pipeline every unanswered request, then collect exactly as
        // many replies as made it onto the wire, matching by the
        // rewritten id (a shard interleaves inline error replies with
        // batch replies, so arrival order proves nothing).
        bool transport_ok = true;
        std::size_t sent = 0;
        for (const Job &job : remaining) {
            if (!shard.client.sendRaw(job.body)) {
                transport_ok = false;
                break;
            }
            ++sent;
        }
        const std::size_t before = remaining.size();
        bool saw_draining = false;
        for (std::size_t i = 0; i < sent && transport_ok; ++i) {
            std::string reply;
            if (!shard.client.recvRaw(reply)) {
                transport_ok = false;
                break;
            }
            report::Json parsed;
            std::string parse_error;
            if (!report::Json::parse(reply, parsed, parse_error)) {
                // A shard never emits unparseable bytes; treat as a
                // corrupted connection and fail over.
                transport_ok = false;
                break;
            }
            const auto *id_value = parsed.find("id");
            if (id_value == nullptr ||
                id_value->type() != report::Json::Type::Int)
                continue;
            const auto internal =
                static_cast<std::uint64_t>(id_value->asInt());
            const auto it = std::find_if(
                remaining.begin(), remaining.end(),
                [internal](const Job &job) {
                    return job.internalId == internal;
                });
            if (it == remaining.end())
                continue;
            if (serve::isError(parsed, serve::err::kShuttingDown)) {
                // The replica is draining: it still answers work it
                // already queued but refuses this request. Keep the
                // job unanswered and fail over below — the drain of
                // one replica must be invisible to the client. (Only
                // when a whole shard is gone does the client see an
                // error, and then it is `internal`.)
                saw_draining = true;
                continue;
            }
            parsed.set("id", it->originalId);
            send(it->conn, parsed);
            shard.nSent->add(1);
            remaining.erase(it);
        }
        if (transport_ok && saw_draining)
            transport_ok = false; // Redial away from the drain.
        else if (transport_ok && remaining.size() == before) {
            // Replies arrived but none matched: protocol violation;
            // a retry loop here would spin, so treat it like a dead
            // replica.
            transport_ok = false;
        }
        if (!transport_ok) {
            if (shard.replica >= 0)
                monitor->reportFailure(
                    shard.index,
                    static_cast<unsigned>(shard.replica));
            shard.client.close();
            shard.replica = -1;
            shard.nFailover->add(1);
            // Unanswered requests are resent on the next replica:
            // engine ops are idempotent and the dead connection can
            // no longer deliver a reply, so this is exactly-once as
            // observed by the client.
        }
    }
    for (const Job &job : remaining) {
        shard.nFailed->add(1);
        send(job.conn,
             serve::makeError(job.originalId, serve::err::kInternal,
                              "shard " + std::to_string(shard.index) +
                                  " unavailable"));
    }
}

void
Router::forwarderLoop(Shard &shard)
{
    util::setLogThreadTag("fwd" + std::to_string(shard.index));
    std::vector<Job> group;
    while (true) {
        group.clear();
        {
            std::unique_lock lock(shard.mutex);
            shard.cv.wait(lock, [this, &shard] {
                return !shard.inbox.empty() || stopping.load();
            });
            if (shard.inbox.empty() && stopping.load())
                return; // Fully drained.
            while (!shard.inbox.empty() &&
                   group.size() < config.pipelineMax) {
                group.push_back(std::move(shard.inbox.front()));
                shard.inbox.pop_front();
            }
        }
        fanoutHist.observe(static_cast<double>(group.size()));
        processGroup(shard, group);
    }
}

report::Json
Router::statsJson() const
{
    auto json = report::Json::object();
    json.set("protocol", serve::kProtocol);
    json.set("role", "router");
    json.set("shards",
             static_cast<std::int64_t>(config.shards.size()));
    json.set("vnodes_per_shard",
             static_cast<std::int64_t>(config.vnodesPerShard));
    json.set("requests_routed", nRouted.value());
    json.set("local_replies", nLocal.value());
    json.set("malformed_frames", nMalformed.value());
    json.set("connections_accepted", nConnections.value());
    json.set("connections_rejected", nRejected.value());
    json.set("inbox_full", nInboxFull.value());
    json.set("health", monitor->json());
    auto metrics = report::Json::object();
    metrics.set("router", obs::registryJson(registry_));
    json.set("metrics", std::move(metrics));
    return json;
}

} // namespace rhs::route

#include "route/router.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/export.hh"
#include "serve/protocol.hh"
#include "serve/query_engine.hh"
#include "util/logging.hh"

namespace rhs::route
{

Router::Router(RouterConfig config_in)
    : config(std::move(config_in)),
      hashRing(static_cast<unsigned>(config.shards.size()),
               config.vnodesPerShard)
{
    RHS_ASSERT(!config.shards.empty(),
               "router needs at least one shard");
    RHS_ASSERT(config.inboxCapacity > 0,
               "inboxCapacity must be positive");
    RHS_ASSERT(config.pipelineMax > 0, "pipelineMax must be positive");
    RHS_ASSERT(config.controlCapacity > 0,
               "controlCapacity must be positive");
    monitor =
        std::make_unique<HealthMonitor>(config.health, config.shards);
    for (unsigned i = 0; i < config.shards.size(); ++i) {
        auto shard = std::make_unique<Shard>();
        shard->index = i;
        const std::string prefix =
            "route.shard." + std::to_string(i) + ".";
        shard->nSent = &registry_.counter(prefix + "sent");
        shard->nFailed = &registry_.counter(prefix + "failed");
        shard->nFailover = &registry_.counter(prefix + "failover");
        shardStates.push_back(std::move(shard));
    }
}

Router::~Router()
{
    stop();
}

unsigned short
Router::port() const
{
    return connLayer ? connLayer->port() : 0;
}

std::size_t
Router::connectionCount() const
{
    return connLayer ? connLayer->connectionCount() : 0;
}

void
Router::start()
{
    serve::ConnLayerConfig net;
    net.host = config.host;
    net.port = config.port;
    net.maxConnections = config.maxConnections;
    net.name = "rhs-route";

    serve::ConnLayer::Events events;
    events.onFrame = [this](const ConnPtr &conn, std::string &&body) {
        handleFrame(conn, body);
    };
    events.onOversize = [this](const ConnPtr &conn) {
        nMalformed.add(1);
        nLocal.add(1);
        send(conn,
             serve::makeError(serve::kNoRequestId,
                              serve::err::kFrameTooLarge,
                              "frame exceeds " +
                                  std::to_string(serve::kMaxFrameBytes) +
                                  " bytes"));
    };
    events.onTruncated = [this] { nMalformed.add(1); };
    events.onAccepted = [this](unsigned) { nConnections.add(1); };
    events.onRejected = [this](int fd) {
        nRejected.add(1);
        serve::writeFrame(
            fd, serve::serialize(serve::makeError(
                    serve::kNoRequestId, serve::err::kOverloaded,
                    "connection limit reached")));
    };

    connLayer = std::make_unique<serve::ConnLayer>(std::move(net),
                                                   std::move(events));
    connLayer->start();
    nodeName_ = "route:" + std::to_string(connLayer->port());
    slowLog_.setThresholdMs(config.slowMs);
    monitor->start();
    for (auto &shard : shardStates)
        shard->thread =
            std::thread([this, s = shard.get()] { forwarderLoop(*s); });
    controlThread = std::thread([this] { controlLoop(); });
    util::inform("rhs-route: listening on ", config.host, ":",
                 connLayer->port(), " (", config.shards.size(),
                 " shards, ", config.vnodesPerShard,
                 " vnodes/shard)");
}

void
Router::requestStop()
{
    if (stopping.exchange(true))
        return;
    {
        std::lock_guard lock(stopMutex);
    }
    stopCv.notify_all();
    for (auto &shard : shardStates) {
        std::lock_guard lock(shard->mutex);
        shard->cv.notify_all();
    }
    {
        std::lock_guard lock(controlMutex);
        controlCv.notify_all();
    }
    if (connLayer)
        connLayer->stopAccepting();
}

void
Router::waitForStopRequest()
{
    std::unique_lock lock(stopMutex);
    stopCv.wait(lock, [this] { return stopping.load(); });
}

void
Router::stop()
{
    requestStop();
    {
        std::lock_guard lock(stopMutex);
        if (stopped)
            return;
        stopped = true;
    }
    // Forwarders drain their inboxes before exiting, so every routed
    // request accepted before the stop request is answered; the event
    // thread stays up underneath to flush those replies out.
    for (auto &shard : shardStates)
        if (shard->thread.joinable())
            shard->thread.join();
    if (controlThread.joinable())
        controlThread.join();
    monitor->stop();
    if (connLayer)
        connLayer->drainAndStop();
    util::inform("rhs-route: stopped (", nRouted.value(),
                 " requests routed, ", nLocal.value(),
                 " local replies)");
}

bool
Router::send(const ConnPtr &conn, const report::Json &response)
{
    return connLayer->send(conn, serve::serialize(response));
}

unsigned
Router::shardOf(const report::Json &request) const
{
    // Routing is best-effort on the raw parameters: an out-of-range
    // module or a bogus mfr still lands on *one deterministic* shard,
    // whose engine produces the identical bad_request reply any other
    // shard would have (validation is pure). Defaults mirror
    // query_engine.cc: mfr A, module 0, bank 0.
    char mfr = 'A';
    if (const auto *value = request.find("mfr");
        value != nullptr &&
        value->type() == report::Json::Type::String &&
        value->asString().size() == 1)
        mfr = value->asString()[0];
    std::int64_t module_index = 0;
    if (const auto *value = request.find("module");
        value != nullptr && value->type() == report::Json::Type::Int)
        module_index = value->asInt();
    std::int64_t bank = 0;
    if (const auto *value = request.find("bank");
        value != nullptr && value->type() == report::Json::Type::Int)
        bank = value->asInt();
    std::string key;
    key += mfr;
    key += '/';
    key += std::to_string(module_index);
    key += '/';
    key += std::to_string(bank);
    return hashRing.ownerOf(key);
}

void
Router::handleFrame(const ConnPtr &conn, const std::string &body)
{
    // The control-plane surface is kept request-for-request identical
    // to serve::Server::handleFrame (same checks, same order, same
    // message bytes) so a client cannot tell a router from a shard.
    if (body.empty()) {
        nMalformed.add(1);
        nLocal.add(1);
        send(conn, serve::makeError(serve::kNoRequestId,
                                    serve::err::kBadRequest,
                                    "empty frame body"));
        return;
    }

    report::Json request;
    std::string parse_error;
    if (!report::Json::parse(body, request, parse_error)) {
        nMalformed.add(1);
        nLocal.add(1);
        send(conn, serve::makeError(serve::kNoRequestId,
                                    serve::err::kBadRequest,
                                    "malformed JSON: " + parse_error));
        return;
    }

    std::int64_t id = serve::kNoRequestId;
    bool has_id = false;
    if (request.type() == report::Json::Type::Object) {
        if (const auto *id_value = request.find("id");
            id_value != nullptr &&
            id_value->type() == report::Json::Type::Int) {
            id = id_value->asInt();
            has_id = true;
        }
    }
    const report::Json *op_value =
        request.type() == report::Json::Type::Object
            ? request.find("op")
            : nullptr;
    if (op_value == nullptr ||
        op_value->type() != report::Json::Type::String) {
        nLocal.add(1);
        send(conn, serve::makeError(id, serve::err::kBadRequest,
                                    "request needs a string 'op'"));
        return;
    }
    const std::string &op = op_value->asString();

    if (op == "ping") {
        auto result = report::Json::object();
        result.set("protocol", serve::kProtocol);
        nLocal.add(1);
        send(conn, serve::makeResult(id, std::move(result)));
        return;
    }
    if (op == "stats") {
        nLocal.add(1);
        send(conn, serve::makeResult(id, statsJson()));
        return;
    }
    if (op == "trace_pull" || op == "fleet_stats") {
        // Fan-out ops dial every replica, so they must not run on the
        // epoll event thread; a dedicated control thread serves them
        // from a bounded inbox (same backpressure contract as the
        // data plane: full queue = immediate `overloaded`).
        ControlJob control;
        control.conn = conn;
        control.id = id;
        control.op = op;
        control.maxSpans = serve::kDefaultPullSpans;
        if (const auto *value = request.find("max_spans");
            op == "trace_pull" && value != nullptr) {
            if (value->type() != report::Json::Type::Int ||
                value->asInt() < 0 ||
                value->asInt() >
                    static_cast<std::int64_t>(serve::kMaxPullSpans)) {
                nLocal.add(1);
                send(conn,
                     serve::makeError(
                         id, serve::err::kBadRequest,
                         "'max_spans' must be an integer in [0, " +
                             std::to_string(serve::kMaxPullSpans) +
                             "]"));
                return;
            }
            control.maxSpans =
                static_cast<std::size_t>(value->asInt());
        }
        {
            std::lock_guard lock(controlMutex);
            if (stopping.load()) {
                nLocal.add(1);
                send(conn,
                     serve::makeError(id, serve::err::kShuttingDown,
                                      "router is draining"));
                return;
            }
            if (controlInbox.size() >= config.controlCapacity) {
                nLocal.add(1);
                send(conn,
                     serve::makeError(
                         id, serve::err::kOverloaded,
                         "control queue is full (capacity " +
                             std::to_string(config.controlCapacity) +
                             ")"));
                return;
            }
            controlInbox.push_back(std::move(control));
        }
        controlCv.notify_one();
        return;
    }
    if (op == "shutdown") {
        auto result = report::Json::object();
        result.set("draining", true);
        nLocal.add(1);
        send(conn, serve::makeResult(id, std::move(result)));
        util::inform("rhs-route: shutdown requested by conn",
                     conn->id);
        requestStop();
        return;
    }
    if (!serve::QueryEngine::isEngineOp(op)) {
        nLocal.add(1);
        send(conn, serve::makeError(id, serve::err::kUnknownOp,
                                    "unknown op '" + op + "'"));
        return;
    }

    // Engine op. Check order matches the direct path: a shard
    // validates deadline_ms in handleFrame *before* its engine
    // notices a missing id, so the router must too.
    if (const auto *deadline = request.find("deadline_ms");
        deadline != nullptr &&
        (deadline->type() != report::Json::Type::Int ||
         deadline->asInt() < 0)) {
        nLocal.add(1);
        send(conn, serve::makeError(id, serve::err::kBadRequest,
                                    "'deadline_ms' must be a "
                                    "non-negative integer"));
        return;
    }
    // The optional trace context is validated with the exact check —
    // and error bytes — a shard uses, in the same position (after
    // deadline_ms), so a router stays indistinguishable from a shard.
    serve::TraceField trace;
    std::string trace_error;
    if (!serve::parseTraceField(request, trace, trace_error)) {
        nLocal.add(1);
        send(conn, serve::makeError(id, serve::err::kBadRequest,
                                    trace_error));
        return;
    }
    if (!has_id) {
        // The id rewrite below would *insert* an id and mask the
        // engine's contract; answer with the engine's exact reply.
        nLocal.add(1);
        send(conn, serve::makeError(serve::kNoRequestId,
                                    serve::err::kBadRequest,
                                    "request needs an integer 'id'"));
        return;
    }

    Job job;
    job.conn = conn;
    job.originalId = id;
    job.internalId = nextInternalId.fetch_add(1) + 1;
    job.op = op;
    request.set("id", static_cast<std::int64_t>(job.internalId));
    if (obs::timingActive()) {
        // Adopt the client's trace id (or mint one) and advertise the
        // router's route.request span as the shard spans' parent — the
        // rewrite that chains both hops into one stitched trace. With
        // timing off the body is forwarded verbatim: no injection, so
        // the no-trace wire bytes stay untouched end to end.
        if (trace.present) {
            job.ctx.hi = trace.hi;
            job.ctx.lo = trace.lo;
            job.ctx.parent = trace.parent;
        } else {
            const obs::TraceContext fresh = obs::makeTraceId();
            job.ctx.hi = fresh.hi;
            job.ctx.lo = fresh.lo;
        }
        job.spanId = obs::nextSpanId();
        job.enqueueUs = obs::traceNowUs();
        auto trace_out = report::Json::object();
        trace_out.set("id",
                      obs::traceIdToHex(job.ctx.hi, job.ctx.lo));
        trace_out.set("parent",
                      static_cast<std::int64_t>(job.spanId));
        request.set("trace", std::move(trace_out));
    }
    job.body = serve::serialize(request);

    Shard &shard = *shardStates[shardOf(request)];
    {
        std::lock_guard lock(shard.mutex);
        if (stopping.load()) {
            nLocal.add(1);
            send(conn, serve::makeError(id, serve::err::kShuttingDown,
                                        "router is draining"));
            return;
        }
        if (shard.inbox.size() >= config.inboxCapacity) {
            nInboxFull.add(1);
            nLocal.add(1);
            send(conn,
                 serve::makeError(
                     id, serve::err::kOverloaded,
                     "router inbox is full (capacity " +
                         std::to_string(config.inboxCapacity) + ")"));
            return;
        }
        shard.inbox.push_back(std::move(job));
        nRouted.add(1);
    }
    shard.cv.notify_one();
}

bool
Router::connectShard(Shard &shard)
{
    const auto &replicas = config.shards[shard.index];
    const unsigned preferred =
        shard.replica >= 0 ? static_cast<unsigned>(shard.replica) : 0;
    const int pick = monitor->pickUp(shard.index, preferred);
    // Dial the healthy pick first, then cold-dial the rest in ring
    // order: a replica that restarted a millisecond ago is still
    // marked down until the next probe sweep, but it answers a
    // connect, and finding it here is what makes failback seamless.
    std::vector<unsigned> order;
    if (pick >= 0)
        order.push_back(static_cast<unsigned>(pick));
    for (unsigned step = 0; step < replicas.size(); ++step) {
        const unsigned candidate =
            (preferred + step) % replicas.size();
        if (pick < 0 || candidate != static_cast<unsigned>(pick))
            order.push_back(candidate);
    }
    for (const unsigned candidate : order) {
        const Endpoint &endpoint = replicas[candidate];
        if (shard.client.connect(endpoint.host, endpoint.port)) {
            shard.replica = static_cast<int>(candidate);
            monitor->reportSuccess(shard.index, candidate);
            return true;
        }
        monitor->reportFailure(shard.index, candidate);
    }
    shard.replica = -1;
    return false;
}

void
Router::processGroup(Shard &shard, std::vector<Job> &group)
{
    std::vector<Job> remaining = std::move(group);
    group.clear();
    unsigned attempts = 0;
    unsigned delay_ms = config.redialBackoffMs;
    while (!remaining.empty()) {
        if (!shard.client.connected()) {
            if (attempts >= config.maxAttempts)
                break;
            // The dial/redial interval (backoff included) is a span of
            // its own so a stitched trace shows failover time as
            // router-side, not shard compute.
            obs::Span dial(attempts > 0 ? "route.redial"
                                        : "route.dial");
            if (attempts > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay_ms));
                delay_ms *= 2;
            }
            ++attempts;
            if (!connectShard(shard))
                continue;
        }

        // Pipeline every unanswered request, then collect exactly as
        // many replies as made it onto the wire, matching by the
        // rewritten id (a shard interleaves inline error replies with
        // batch replies, so arrival order proves nothing).
        bool transport_ok = true;
        std::size_t sent = 0;
        for (const Job &job : remaining) {
            if (!shard.client.sendRaw(job.body)) {
                transport_ok = false;
                break;
            }
            ++sent;
        }
        const std::size_t before = remaining.size();
        bool saw_draining = false;
        for (std::size_t i = 0; i < sent && transport_ok; ++i) {
            std::string reply;
            if (!shard.client.recvRaw(reply)) {
                transport_ok = false;
                break;
            }
            report::Json parsed;
            std::string parse_error;
            if (!report::Json::parse(reply, parsed, parse_error)) {
                // A shard never emits unparseable bytes; treat as a
                // corrupted connection and fail over.
                transport_ok = false;
                break;
            }
            const auto *id_value = parsed.find("id");
            if (id_value == nullptr ||
                id_value->type() != report::Json::Type::Int)
                continue;
            const auto internal =
                static_cast<std::uint64_t>(id_value->asInt());
            const auto it = std::find_if(
                remaining.begin(), remaining.end(),
                [internal](const Job &job) {
                    return job.internalId == internal;
                });
            if (it == remaining.end())
                continue;
            if (serve::isError(parsed, serve::err::kShuttingDown)) {
                // The replica is draining: it still answers work it
                // already queued but refuses this request. Keep the
                // job unanswered and fail over below — the drain of
                // one replica must be invisible to the client. (Only
                // when a whole shard is gone does the client see an
                // error, and then it is `internal`.)
                saw_draining = true;
                continue;
            }
            parsed.set("id", it->originalId);
            send(it->conn, parsed);
            shard.nSent->add(1);
            if (it->enqueueUs != 0 && obs::timingActive()) {
                // The route.request span closes when the reply goes
                // out: its id is what the shard's spans name as
                // parent, so recording it completes the cross-process
                // chain client → router → shard.
                const std::uint64_t now_us = obs::traceNowUs();
                obs::recordSpanWith("route.request", it->enqueueUs,
                                    now_us, it->ctx, it->spanId);
                const double total_ms =
                    static_cast<double>(now_us - it->enqueueUs) /
                    1000.0;
                if (slowLog_.qualifies(total_ms)) {
                    obs::SlowLog::Entry entry;
                    entry.op = it->op;
                    entry.digest = obs::paramsDigest(it->body);
                    entry.totalMs = total_ms;
                    if (it->ctx.valid())
                        entry.traceId = obs::traceIdToHex(it->ctx.hi,
                                                          it->ctx.lo);
                    if (it->dequeueUs != 0) {
                        entry.hops.emplace_back(
                            "queue_ms",
                            static_cast<double>(it->dequeueUs -
                                                it->enqueueUs) /
                                1000.0);
                        entry.hops.emplace_back(
                            "backend_ms",
                            static_cast<double>(now_us -
                                                it->dequeueUs) /
                                1000.0);
                    }
                    slowLog_.record(std::move(entry));
                }
            }
            remaining.erase(it);
        }
        if (transport_ok && saw_draining)
            transport_ok = false; // Redial away from the drain.
        else if (transport_ok && remaining.size() == before) {
            // Replies arrived but none matched: protocol violation;
            // a retry loop here would spin, so treat it like a dead
            // replica.
            transport_ok = false;
        }
        if (!transport_ok) {
            if (shard.replica >= 0)
                monitor->reportFailure(
                    shard.index,
                    static_cast<unsigned>(shard.replica));
            shard.client.close();
            shard.replica = -1;
            shard.nFailover->add(1);
            // Unanswered requests are resent on the next replica:
            // engine ops are idempotent and the dead connection can
            // no longer deliver a reply, so this is exactly-once as
            // observed by the client.
        }
    }
    for (const Job &job : remaining) {
        shard.nFailed->add(1);
        send(job.conn,
             serve::makeError(job.originalId, serve::err::kInternal,
                              "shard " + std::to_string(shard.index) +
                                  " unavailable"));
        // Failed requests still spent router time (all the redials);
        // close their spans too so the trace shows where it went.
        if (job.enqueueUs != 0 && obs::timingActive())
            obs::recordSpanWith("route.request", job.enqueueUs,
                                obs::traceNowUs(), job.ctx,
                                job.spanId);
    }
}

void
Router::forwarderLoop(Shard &shard)
{
    util::setLogThreadTag("fwd" + std::to_string(shard.index));
    std::vector<Job> group;
    while (true) {
        group.clear();
        {
            std::unique_lock lock(shard.mutex);
            shard.cv.wait(lock, [this, &shard] {
                return !shard.inbox.empty() || stopping.load();
            });
            if (shard.inbox.empty() && stopping.load())
                return; // Fully drained.
            while (!shard.inbox.empty() &&
                   group.size() < config.pipelineMax) {
                group.push_back(std::move(shard.inbox.front()));
                shard.inbox.pop_front();
            }
        }
        if (obs::timingActive()) {
            // Each request's inbox wait is its own child span of the
            // route.request span, recorded by the dequeuing thread
            // under the request's context.
            const std::uint64_t now_us = obs::traceNowUs();
            for (Job &job : group)
                if (job.enqueueUs != 0) {
                    job.dequeueUs = now_us;
                    obs::recordSpanWith(
                        "route.queue", job.enqueueUs, now_us,
                        obs::TraceContext{job.ctx.hi, job.ctx.lo,
                                          job.spanId},
                        obs::nextSpanId());
                }
        }
        fanoutHist.observe(static_cast<double>(group.size()));
        processGroup(shard, group);
    }
}

void
Router::controlLoop()
{
    util::setLogThreadTag("ctrl");
    while (true) {
        ControlJob job;
        {
            std::unique_lock lock(controlMutex);
            controlCv.wait(lock, [this] {
                return !controlInbox.empty() || stopping.load();
            });
            if (controlInbox.empty() && stopping.load())
                return; // Fully drained.
            job = std::move(controlInbox.front());
            controlInbox.pop_front();
        }
        if (job.op == "fleet_stats")
            send(job.conn,
                 serve::makeResult(job.id, fleetStatsJson()));
        else
            send(job.conn,
                 serve::makeResult(job.id,
                                   fleetTracePullJson(job.maxSpans)));
    }
}

void
Router::forEachReplica(
    const std::string &body,
    const std::function<void(unsigned, unsigned, bool,
                             const report::Json &)> &visit)
{
    // Fresh connections, not the forwarders' pipelined ones: a fan-out
    // must reach *every* replica (the forwarders only talk to the live
    // pick), and must not interleave with routed data traffic.
    for (unsigned i = 0; i < config.shards.size(); ++i) {
        for (unsigned j = 0; j < config.shards[i].size(); ++j) {
            const Endpoint &endpoint = config.shards[i][j];
            serve::Client client;
            report::Json reply;
            std::string parse_error;
            bool ok = client.connect(endpoint.host, endpoint.port);
            if (ok) {
                const std::string raw = client.callRaw(body);
                ok = !raw.empty() &&
                     report::Json::parse(raw, reply, parse_error);
            }
            visit(i, j, ok, reply);
        }
    }
}

report::Json
Router::localTraceJson(std::size_t max_spans) const
{
    // Same drain semantics as serve::Server::tracePullJson.
    const std::uint64_t recorded = obs::traceRecorded();
    const std::uint64_t dropped = obs::traceDropped();
    const auto spans = obs::traceSnapshot();
    bool truncated = false;
    auto json = report::Json::object();
    json.set("node", nodeName_);
    json.set("epoch_unix_us", obs::traceEpochUnixUs());
    json.set("compiled", obs::kCompiledIn);
    json.set("recorded", recorded);
    json.set("dropped", dropped);
    auto span_list = obs::spansJson(spans, max_spans, truncated);
    json.set("truncated", truncated);
    json.set("spans", std::move(span_list));
    obs::clearTrace();
    return json;
}

report::Json
Router::fleetStatsJson()
{
    auto stats_request = report::Json::object();
    stats_request.set("op", "stats");
    stats_request.set("id", std::int64_t{1});
    const std::string body = serve::serialize(stats_request);

    std::vector<std::pair<std::string, report::Json>> servers;
    std::vector<std::pair<std::string, report::Json>> processes;
    auto per_shard = report::Json::array();
    std::int64_t total = 0;
    std::int64_t reached = 0;
    forEachReplica(body, [&](unsigned shard, unsigned replica,
                             bool ok, const report::Json &reply) {
        ++total;
        auto entry = report::Json::object();
        entry.set("shard", shard);
        entry.set("replica", replica);
        entry.set("ok", ok);
        const auto *result = ok ? reply.find("result") : nullptr;
        if (result != nullptr &&
            result->type() == report::Json::Type::Object) {
            ++reached;
            const std::string label = "s" + std::to_string(shard) +
                                      "r" + std::to_string(replica);
            entry.set("stats", *result);
            if (const auto *metrics = result->find("metrics");
                metrics != nullptr) {
                if (const auto *server = metrics->find("server"))
                    servers.emplace_back(label, *server);
                if (const auto *process = metrics->find("process"))
                    processes.emplace_back(label, *process);
            }
        }
        per_shard.push(std::move(entry));
    });

    auto json = report::Json::object();
    json.set("protocol", serve::kProtocol);
    json.set("role", "router");
    json.set("shards",
             static_cast<std::int64_t>(config.shards.size()));
    json.set("replicas_total", total);
    json.set("replicas_reached", reached);
    auto merged = report::Json::object();
    merged.set("server", obs::mergeRegistryJson(servers));
    merged.set("process", obs::mergeRegistryJson(processes));
    json.set("merged", std::move(merged));
    json.set("per_shard", std::move(per_shard));
    return json;
}

report::Json
Router::fleetTracePullJson(std::size_t max_spans)
{
    // Split the span budget across the fleet so the merged reply
    // still fits one rhs-rpc/1 frame no matter how many nodes answer.
    std::size_t node_count = 1;
    for (const auto &replicas : config.shards)
        node_count += replicas.size();
    std::size_t per_node = max_spans / node_count;
    if (per_node == 0 && max_spans > 0)
        per_node = 1;

    auto pull_request = report::Json::object();
    pull_request.set("op", "trace_pull");
    pull_request.set("id", std::int64_t{1});
    pull_request.set("max_spans",
                     static_cast<std::int64_t>(per_node));
    const std::string body = serve::serialize(pull_request);

    auto nodes = report::Json::array();
    nodes.push(localTraceJson(per_node));
    forEachReplica(body, [&](unsigned, unsigned, bool ok,
                             const report::Json &reply) {
        const auto *result = ok ? reply.find("result") : nullptr;
        if (result != nullptr &&
            result->type() == report::Json::Type::Object)
            nodes.push(*result);
    });
    auto json = report::Json::object();
    json.set("nodes", std::move(nodes));
    return json;
}

std::vector<obs::NodeTrace>
Router::pullFleetTrace(std::size_t max_spans)
{
    std::vector<obs::NodeTrace> nodes;
    const report::Json fleet = fleetTracePullJson(max_spans);
    const auto *list = fleet.find("nodes");
    if (list == nullptr ||
        list->type() != report::Json::Type::Array)
        return nodes;
    for (std::size_t i = 0; i < list->size(); ++i) {
        obs::NodeTrace node;
        if (obs::nodeTraceFromJson(list->at(i), node))
            nodes.push_back(std::move(node));
    }
    return nodes;
}

report::Json
Router::statsJson() const
{
    auto json = report::Json::object();
    json.set("protocol", serve::kProtocol);
    json.set("role", "router");
    json.set("shards",
             static_cast<std::int64_t>(config.shards.size()));
    json.set("vnodes_per_shard",
             static_cast<std::int64_t>(config.vnodesPerShard));
    json.set("requests_routed", nRouted.value());
    json.set("local_replies", nLocal.value());
    json.set("malformed_frames", nMalformed.value());
    json.set("connections_accepted", nConnections.value());
    json.set("connections_rejected", nRejected.value());
    json.set("inbox_full", nInboxFull.value());
    // Trace-ring health + the slow-request exemplar log, mirroring
    // the serve stats payload so fleet tooling reads both the same.
    auto trace = report::Json::object();
    trace.set("recorded", obs::traceRecorded());
    trace.set("dropped", obs::traceDropped());
    json.set("trace", std::move(trace));
    json.set("slow_log", slowLog_.toJson());
    json.set("health", monitor->json());
    auto metrics = report::Json::object();
    metrics.set("router", obs::registryJson(registry_));
    json.set("metrics", std::move(metrics));
    return json;
}

} // namespace rhs::route

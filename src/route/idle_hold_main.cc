/**
 * @file
 * `rhs-route-idle` — connection-holding helper for fleet scale tests.
 *
 *   rhs-route-idle --port P [--host H] [--count N] [--ping-every N]
 *
 * Opens `count` rhs-rpc/1 connections to one server, verifies a ping
 * on every ping-every'th of them, prints "HELD <n>" on stdout, then
 * holds every connection open until stdin reaches EOF (the parent
 * closes the pipe) or SIGTERM. Exit code 0 iff all `count`
 * connections were established and every sampled ping succeeded.
 *
 * This exists because the "one shard holds >= 10k idle connections"
 * gate cannot run in the load generator's own process: this
 * container's fd ceiling is 20000, and 10k sockets exist *twice* on
 * loopback (server end + client end). Holding the client ends in a
 * child process gives each side its own fd table.
 */

#include <csignal>
#include <cstdio>
#include <memory>
#include <vector>

#include "serve/client.hh"
#include "util/cli.hh"
#include "util/logging.hh"

int
main(int argc, char **argv)
{
    using namespace rhs;
    const util::Cli cli(
        argc, argv, {"host", "port", "count", "ping-every", "help"});
    if (cli.has("help")) {
        std::printf("usage: rhs-route-idle --port P [--host H] "
                    "[--count N] [--ping-every N]\n");
        return 0;
    }
    std::signal(SIGPIPE, SIG_IGN);
    util::setLogLevel(util::LogLevel::Warn);

    const std::string host = cli.get("host", "127.0.0.1");
    const auto port =
        static_cast<unsigned short>(cli.getInt("port", 0));
    const auto count =
        static_cast<std::size_t>(cli.getInt("count", 10000));
    const auto ping_every =
        static_cast<std::size_t>(cli.getInt("ping-every", 1000));
    if (port == 0)
        RHS_FATAL("rhs-route-idle: --port is required");

    std::vector<std::unique_ptr<serve::Client>> held;
    held.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto client = std::make_unique<serve::Client>();
        std::string error;
        if (!client->connect(host, port, &error)) {
            std::fprintf(stderr,
                         "rhs-route-idle: connection %zu: %s\n", i,
                         error.c_str());
            return 1;
        }
        // Sampled liveness: every ping-every'th connection proves the
        // server still answers while thousands sit idle around it.
        if (ping_every > 0 && i % ping_every == 0 &&
            !client->ping(static_cast<std::int64_t>(i))) {
            std::fprintf(stderr,
                         "rhs-route-idle: ping failed on "
                         "connection %zu\n",
                         i);
            return 1;
        }
        held.push_back(std::move(client));
    }

    std::printf("HELD %zu\n", held.size());
    std::fflush(stdout);

    // Hold until the parent hangs up.
    int c;
    while ((c = std::getchar()) != EOF) {
    }
    return 0;
}

/**
 * @file
 * `rhs-route`: the rhs-rpc/1 router in front of a sharded fleet.
 *
 * The router speaks the exact protocol a single rhs-serve shard does,
 * so clients (and the load generator's byte-comparison harness) do
 * not know it exists. It owns three kinds of thread:
 *
 *   epoll event thread (serve::ConnLayer, shared with rhs-serve)
 *        │ onFrame: parse, answer control ops inline, or
 *        │ route by HashRing(mfr, module, bank)
 *        ▼
 *   one forwarder thread per shard, each with a bounded inbox
 *        │ pipelined serve::Client to the shard's live replica;
 *        │ failover on transport error (HealthMonitor)
 *        ▼
 *   one health probe thread (route::HealthMonitor)
 *
 * Request-id multiplexing: two clients may use the same "id" value,
 * and a backend connection carries many clients' requests at once, so
 * the router rewrites every forwarded request's id to a router-unique
 * internal id, matches the backend's replies by that id, and restores
 * the original before answering. Restoration is byte-exact because
 * report::Json's parse→serialize round trip is bit-identical and
 * set() on an existing key updates in place — a routed reply is the
 * same bytes a direct shard would have produced (route_loadgen
 * proves this against a private QueryEngine for every reply).
 *
 * Failover: a transport error on a forwarder's backend connection
 * marks the replica down, redials the shard's next healthy replica
 * (HealthMonitor::pickUp, falling back to a cold round-robin redial
 * so a just-restarted replica is found before the next probe sweep),
 * and resends only the still-unanswered requests of the pipelined
 * group — engine ops are idempotent, so a request answered twice is
 * impossible and a request lost is retried, never dropped. Only when
 * maxAttempts redials all fail does the group get `internal` error
 * replies.
 *
 * The router never touches util::ThreadPool: forwarders block on
 * backend sockets, and the pool is the property of the shards'
 * dispatchers (on a small machine the router often shares a process
 * with its shards — tests do — and borrowing pool workers for
 * network waits would deadlock the fleet).
 */

#ifndef RHS_ROUTE_ROUTER_HH
#define RHS_ROUTE_ROUTER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/slow_log.hh"
#include "obs/trace.hh"
#include "report/json.hh"
#include "route/hash_ring.hh"
#include "route/health.hh"
#include "serve/client.hh"
#include "serve/conn_layer.hh"
#include "serve/protocol.hh"

namespace rhs::route
{

/** Router tunables. */
struct RouterConfig
{
    std::string host = "127.0.0.1";
    unsigned short port = 0;       //!< 0 = ephemeral.
    unsigned maxConnections = 1024;
    unsigned vnodesPerShard = 64;  //!< HashRing granularity.
    unsigned inboxCapacity = 1024; //!< Per-shard forwarder queue.
    unsigned pipelineMax = 64;     //!< Requests in flight per shard.
    //! Replica redials per pipelined group before giving up and
    //! answering `internal` (covers restart gaps: attempts x backoff
    //! must exceed a replica's restart time for seamless failover).
    unsigned maxAttempts = 6;
    unsigned redialBackoffMs = 50; //!< Doubles per attempt.
    //! Bounded queue in front of the control thread that serves the
    //! fan-out ops (fleet_stats, trace_pull) without ever blocking
    //! the epoll event thread.
    unsigned controlCapacity = 16;
    //! Slow-request exemplar threshold in milliseconds (`--slow-ms`);
    //! routed requests slower end to end than this are recorded in
    //! the bounded slow log surfaced by the stats op. 0 disables.
    double slowMs = 0.0;
    HealthConfig health;
    //! shards[i] = replica endpoints of shard i (each >= 1 entry).
    std::vector<std::vector<Endpoint>> shards;
};

/** The rhs-rpc/1 fan-out router. */
class Router
{
  public:
    explicit Router(RouterConfig config);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** Bind, start the event/forwarder/health threads. RHS_FATAL on
     *  socket errors. */
    void start();

    unsigned short port() const;

    void requestStop(); //!< Idempotent, any thread.
    bool stopRequested() const { return stopping.load(); }
    void waitForStopRequest();
    void stop(); //!< Drain inboxes, answer everything, join. Idempotent.

    /**
     * The router's stats-op payload: protocol + role marker, the
     * routing table shape, per-replica health (HealthMonitor::json),
     * and the router registry (route.shard.*.sent/failed/failover
     * counters, route.fanout histogram).
     */
    report::Json statsJson() const;

    /**
     * The `fleet_stats` op's payload: the router fans a `stats`
     * request to every replica of every shard and merges the
     * registry snapshots (counters summed, histograms merged
     * bucket-wise with fleet-level p50/p99, gauges kept per replica
     * under "s<shard>r<replica>" labels). The per-shard raw payloads
     * ride along so nothing is lost in the merge.
     */
    report::Json fleetStatsJson();

    /**
     * The router's `trace_pull` payload: {nodes: [...]} — the
     * router's own drained span ring plus every reachable replica's
     * (each fetched with a per-node slice of `max_spans` so the
     * merged reply still fits one frame).
     */
    report::Json fleetTracePullJson(std::size_t max_spans);

    /**
     * fleetTracePullJson decoded into obs::NodeTrace records, ready
     * for obs::writeChromeTrace(path, nodes) — the `--trace-out`
     * path of rhs-route, which emits ONE stitched Chrome trace for
     * the whole fleet.
     */
    std::vector<obs::NodeTrace>
    pullFleetTrace(std::size_t max_spans = serve::kDefaultPullSpans);

    const obs::Registry &metricsRegistry() const { return registry_; }
    const HealthMonitor &health() const { return *monitor; }
    const HashRing &ring() const { return hashRing; }
    std::size_t connectionCount() const;

  private:
    using ConnPtr = serve::ConnLayer::ConnPtr;

    /** One routed request waiting in / in flight from a shard inbox. */
    struct Job
    {
        ConnPtr conn;
        std::int64_t originalId = -1;
        std::uint64_t internalId = 0;
        std::string body; //!< Serialized with the rewritten id.
        std::string op;   //!< For the slow-request exemplar log.
        //! Distributed-trace bookkeeping, stamped only while
        //! obs::timingActive(): the request's trace context (client's
        //! parent preserved), the router-allocated route.request span
        //! id advertised downstream as the shard spans' parent, and
        //! the enqueue/dequeue instants for per-hop attribution.
        obs::TraceContext ctx;
        std::uint64_t spanId = 0;
        std::uint64_t enqueueUs = 0;
        std::uint64_t dequeueUs = 0;
    };

    /** One queued fan-out control request (fleet_stats/trace_pull). */
    struct ControlJob
    {
        ConnPtr conn;
        std::int64_t id = -1;
        std::string op;
        std::size_t maxSpans = 0;
    };

    /** One shard's forwarding state (forwarder thread owns client). */
    struct Shard
    {
        unsigned index = 0;
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<Job> inbox; //!< Bounded by config.inboxCapacity.
        std::thread thread;
        serve::Client client;
        int replica = -1; //!< Connected replica, -1 = none.
        obs::Counter *nSent = nullptr;     //!< route.shard.i.sent
        obs::Counter *nFailed = nullptr;   //!< route.shard.i.failed
        obs::Counter *nFailover = nullptr; //!< route.shard.i.failover
    };

    void handleFrame(const ConnPtr &conn, const std::string &body);
    unsigned shardOf(const report::Json &request) const;
    void forwarderLoop(Shard &shard);
    void controlLoop();
    /** Dial every replica once and call `body` on it; `visit` gets
     *  (shard, replica, ok, reply). Serialized fan-out off the event
     *  thread — only the control thread and stop() call this. */
    void forEachReplica(
        const std::string &body,
        const std::function<void(unsigned, unsigned, bool,
                                 const report::Json &)> &visit);
    /** The router's own trace_pull node payload (drains the rings). */
    report::Json localTraceJson(std::size_t max_spans) const;
    /** Forward a pipelined group, answering every job exactly once. */
    void processGroup(Shard &shard, std::vector<Job> &group);
    bool connectShard(Shard &shard);
    bool send(const ConnPtr &conn, const report::Json &response);

    RouterConfig config;
    HashRing hashRing;
    std::unique_ptr<HealthMonitor> monitor;
    std::unique_ptr<serve::ConnLayer> connLayer;
    std::vector<std::unique_ptr<Shard>> shardStates;

    std::atomic<std::uint64_t> nextInternalId{0};

    std::string nodeName_; //!< "route:<port>", set at start().
    obs::SlowLog slowLog_;

    std::mutex controlMutex;
    std::condition_variable controlCv;
    std::deque<ControlJob> controlInbox;
    std::thread controlThread;

    std::atomic<bool> stopping{false};
    bool stopped = false;
    std::mutex stopMutex;
    std::condition_variable stopCv;

    obs::Registry registry_;
    obs::Counter &nRouted{registry_.counter("route.requests")};
    obs::Counter &nLocal{registry_.counter("route.local_replies")};
    obs::Counter &nMalformed{registry_.counter("route.malformed_frames")};
    obs::Counter &nConnections{
        registry_.counter("route.connections_accepted")};
    obs::Counter &nRejected{
        registry_.counter("route.connections_rejected")};
    obs::Counter &nInboxFull{registry_.counter("route.inbox_full")};
    //! Requests per pipelined forwarder group (the fan-out width a
    //! burst actually achieved; 1, 2, 4, ... overflow > pipelineMax).
    obs::Histogram &fanoutHist{registry_.histogram(
        "route.fanout", obs::exponentialBounds(1.0, 2.0, 8))};
};

} // namespace rhs::route

#endif // RHS_ROUTE_ROUTER_HH

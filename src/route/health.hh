/**
 * @file
 * Replica health tracking for the routed serving fleet.
 *
 * Each shard is a list of replicas (identical rhs-serve processes
 * warmed for the same slice of the keyspace). The monitor keeps one
 * up/down flag per replica, fed from two directions:
 *
 *  - a probe thread pings every replica each probeIntervalMs and also
 *    reads its `stats` snapshot, recording the PR 5 load signals
 *    (queue_depth gauge, overloaded counter) next to the flag;
 *  - the data path calls reportFailure() the instant a forwarded
 *    request hits a transport error, taking the replica down
 *    *immediately* — failover must not wait out a probe interval.
 *
 * The up/down state machine is streak-based and asymmetric:
 *
 *        probe/data failure x failThreshold
 *   UP ────────────────────────────────────▶ DOWN
 *   UP ◀──────────────────────────────────── DOWN
 *        probe success x riseThreshold
 *
 * (reportFailure counts as failThreshold failures at once.) Dropping
 * fast and rising deliberately keeps a flapping replica from
 * bouncing requests; the streak counters are the entire state, so
 * the machine is trivially restartable.
 */

#ifndef RHS_ROUTE_HEALTH_HH
#define RHS_ROUTE_HEALTH_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "report/json.hh"

namespace rhs::route
{

/** One backend address. */
struct Endpoint
{
    std::string host = "127.0.0.1";
    unsigned short port = 0;

    std::string str() const
    {
        return host + ":" + std::to_string(port);
    }
};

/** Probe cadence and streak thresholds. */
struct HealthConfig
{
    unsigned probeIntervalMs = 200;
    unsigned failThreshold = 2; //!< Probe failures to take a replica down.
    unsigned riseThreshold = 1; //!< Probe successes to bring it back.
};

/** One replica's view (snapshot copy; see HealthMonitor::snapshot). */
struct ReplicaHealth
{
    Endpoint endpoint;
    bool up = true;
    unsigned failStreak = 0;
    unsigned okStreak = 0;
    std::uint64_t probes = 0;
    std::uint64_t probeFailures = 0;
    // Last-probed load signals (serve stats: queue_depth gauge and
    // the overloaded counter) — the fleet's backpressure at a glance.
    std::int64_t queueDepth = 0;
    std::uint64_t overloaded = 0;
};

/** Tracks replica liveness for every shard; one probe thread. */
class HealthMonitor
{
  public:
    HealthMonitor(HealthConfig config,
                  std::vector<std::vector<Endpoint>> shards);
    ~HealthMonitor();

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    void start();
    void stop(); //!< Idempotent; joins the probe thread.

    bool isUp(unsigned shard, unsigned replica) const;

    /**
     * The replica the data path should use for `shard`: `preferred`
     * itself when it is up, else the next up replica clockwise from
     * it. -1 when every replica of the shard is down (callers may
     * still try a cold redial — see Router::connectShard).
     */
    int pickUp(unsigned shard, unsigned preferred) const;

    /** Data-path transport error: take the replica down now. */
    void reportFailure(unsigned shard, unsigned replica);

    /** Data-path success (a completed call): clears the fail streak. */
    void reportSuccess(unsigned shard, unsigned replica);

    /** Copy of the full state (stats op / tests). */
    std::vector<std::vector<ReplicaHealth>> snapshot() const;

    /** The stats-op payload: per shard, per replica state objects. */
    report::Json json() const;

    /** Run one synchronous probe sweep (tests; no thread needed). */
    void probeSweep();

  private:
    void probeLoop();
    void applyProbe(unsigned shard, unsigned replica, bool ok,
                    std::int64_t queue_depth, std::uint64_t overloaded);

    HealthConfig config;
    mutable std::mutex mutex; //!< Guards `state`.
    std::vector<std::vector<ReplicaHealth>> state;

    std::thread probeThread;
    std::atomic<bool> stopping{false};
    bool started = false;
    std::mutex stopMutex;
    std::condition_variable stopCv;
};

} // namespace rhs::route

#endif // RHS_ROUTE_HEALTH_HH

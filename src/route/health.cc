#include "route/health.hh"

#include <chrono>

#include "serve/client.hh"
#include "util/logging.hh"

namespace rhs::route
{

HealthMonitor::HealthMonitor(HealthConfig config,
                             std::vector<std::vector<Endpoint>> shards)
    : config(config)
{
    RHS_ASSERT(config.failThreshold > 0,
               "failThreshold must be positive");
    RHS_ASSERT(config.riseThreshold > 0,
               "riseThreshold must be positive");
    state.resize(shards.size());
    for (std::size_t shard = 0; shard < shards.size(); ++shard) {
        RHS_ASSERT(!shards[shard].empty(),
                   "every shard needs at least one replica");
        for (const Endpoint &endpoint : shards[shard]) {
            ReplicaHealth replica;
            replica.endpoint = endpoint;
            state[shard].push_back(std::move(replica));
        }
    }
}

HealthMonitor::~HealthMonitor()
{
    stop();
}

void
HealthMonitor::start()
{
    started = true;
    probeThread = std::thread([this] { probeLoop(); });
}

void
HealthMonitor::stop()
{
    if (!stopping.exchange(true)) {
        std::lock_guard lock(stopMutex);
    }
    stopCv.notify_all();
    if (probeThread.joinable())
        probeThread.join();
}

bool
HealthMonitor::isUp(unsigned shard, unsigned replica) const
{
    std::lock_guard lock(mutex);
    return state[shard][replica].up;
}

int
HealthMonitor::pickUp(unsigned shard, unsigned preferred) const
{
    std::lock_guard lock(mutex);
    const auto &replicas = state[shard];
    for (std::size_t step = 0; step < replicas.size(); ++step) {
        const std::size_t candidate =
            (preferred + step) % replicas.size();
        if (replicas[candidate].up)
            return static_cast<int>(candidate);
    }
    return -1;
}

void
HealthMonitor::reportFailure(unsigned shard, unsigned replica)
{
    std::lock_guard lock(mutex);
    ReplicaHealth &r = state[shard][replica];
    r.okStreak = 0;
    r.failStreak += config.failThreshold; // Down *now*, not next probe.
    if (r.up) {
        r.up = false;
        util::warn("rhs-route: shard ", shard, " replica ",
                   r.endpoint.str(), " down (transport error)");
    }
}

void
HealthMonitor::reportSuccess(unsigned shard, unsigned replica)
{
    std::lock_guard lock(mutex);
    ReplicaHealth &r = state[shard][replica];
    r.failStreak = 0;
}

void
HealthMonitor::applyProbe(unsigned shard, unsigned replica, bool ok,
                          std::int64_t queue_depth,
                          std::uint64_t overloaded)
{
    std::lock_guard lock(mutex);
    ReplicaHealth &r = state[shard][replica];
    r.probes += 1;
    if (ok) {
        r.failStreak = 0;
        r.okStreak += 1;
        r.queueDepth = queue_depth;
        r.overloaded = overloaded;
        if (!r.up && r.okStreak >= config.riseThreshold) {
            r.up = true;
            util::inform("rhs-route: shard ", shard, " replica ",
                         r.endpoint.str(), " back up");
        }
    } else {
        r.probeFailures += 1;
        r.okStreak = 0;
        r.failStreak += 1;
        if (r.up && r.failStreak >= config.failThreshold) {
            r.up = false;
            util::warn("rhs-route: shard ", shard, " replica ",
                       r.endpoint.str(), " down (probe failures)");
        }
    }
}

void
HealthMonitor::probeSweep()
{
    for (std::size_t shard = 0; shard < state.size(); ++shard) {
        std::size_t replicas;
        {
            std::lock_guard lock(mutex);
            replicas = state[shard].size();
        }
        for (std::size_t replica = 0; replica < replicas; ++replica) {
            Endpoint endpoint;
            {
                std::lock_guard lock(mutex);
                endpoint = state[shard][replica].endpoint;
            }
            serve::Client probe;
            bool ok = probe.connect(endpoint.host, endpoint.port) &&
                      probe.ping(0);
            std::int64_t queue_depth = 0;
            std::uint64_t overloaded = 0;
            if (ok) {
                // Load signals ride on the same probe connection:
                // the legacy `overloaded` counter plus the PR 5
                // queue_depth gauge from the server's registry.
                const report::Json stats = probe.stats(0);
                if (const auto *v = stats.find("overloaded");
                    v != nullptr &&
                    v->type() == report::Json::Type::Int)
                    overloaded =
                        static_cast<std::uint64_t>(v->asInt());
                if (const auto *metrics = stats.find("metrics"))
                    if (const auto *server = metrics->find("server"))
                        if (const auto *gauges =
                                server->find("gauges"))
                            if (const auto *depth =
                                    gauges->find("queue_depth");
                                depth != nullptr &&
                                depth->type() ==
                                    report::Json::Type::Int)
                                queue_depth = depth->asInt();
            }
            applyProbe(static_cast<unsigned>(shard),
                       static_cast<unsigned>(replica), ok,
                       queue_depth, overloaded);
        }
    }
}

void
HealthMonitor::probeLoop()
{
    util::setLogThreadTag("health");
    while (!stopping.load()) {
        probeSweep();
        std::unique_lock lock(stopMutex);
        stopCv.wait_for(lock,
                        std::chrono::milliseconds(
                            config.probeIntervalMs),
                        [this] { return stopping.load(); });
    }
}

std::vector<std::vector<ReplicaHealth>>
HealthMonitor::snapshot() const
{
    std::lock_guard lock(mutex);
    return state;
}

report::Json
HealthMonitor::json() const
{
    const auto snap = snapshot();
    auto shards = report::Json::array();
    for (const auto &replicas : snap) {
        auto shard = report::Json::array();
        for (const ReplicaHealth &r : replicas) {
            auto entry = report::Json::object();
            entry.set("endpoint", r.endpoint.str());
            entry.set("up", r.up);
            entry.set("probes", r.probes);
            entry.set("probe_failures", r.probeFailures);
            entry.set("queue_depth", r.queueDepth);
            entry.set("overloaded", r.overloaded);
            shard.push(std::move(entry));
        }
        shards.push(std::move(shard));
    }
    return shards;
}

} // namespace rhs::route

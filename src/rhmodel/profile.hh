/**
 * @file
 * Per-manufacturer RowHammer vulnerability profiles.
 *
 * A profile is calibrated to the paper's published per-manufacturer
 * results and *derives* the internal model constants from them:
 *
 *  - The aggressor-timing response (coupling weight wCouple and on-time
 *    slope kOn) is solved from the paper's HCfirst shifts at the sweep
 *    endpoints (Obsv. 8/10: e.g. Mfr. A: HCfirst -40.0% at
 *    tAggOn = 154.5 ns, +33.8% at tAggOff = 40.5 ns).
 *  - The per-cell log-threshold dispersion (cellSigma) and the position
 *    of the 150K-hammer BER operating point (zBase) are solved from the
 *    paper's BER amplification factors (Obsv. 8/10: e.g. Mfr. A:
 *    BER x10.2 at max on-time, /6.3 at max off-time) by inverting the
 *    log-normal tail ratios.
 *
 * The damage model (see CellModel) is
 *
 *   damage/hammer = [(1-wCouple)*gOn(tOn) + wCouple*gOff(tOff)]
 *                   * H(T; cell) * distanceFactor * dataFactor
 *
 * with gOn(t) = 1 + kOn*(t-tRAS)/tRAS, gOff(t) = tRP/t, and H a
 * unimodal response around the cell's temperature inflection point,
 * normalized to 1 at the 50 degC reference (so a cell's threshold *is*
 * its HCfirst at reference conditions).
 */

#ifndef RHS_RHMODEL_PROFILE_HH
#define RHS_RHMODEL_PROFILE_HH

#include <string>
#include <vector>

#include "rhmodel/mfr.hh"

namespace rhs::rhmodel
{

/** Published endpoint numbers the timing/BER response is derived from. */
struct CalibrationTargets
{
    double hcOnReduction;  //!< HCfirst drop at tAggOn=154.5ns (0.400 = 40%).
    double hcOffIncrease;  //!< HCfirst rise at tAggOff=40.5ns (0.338 = 33.8%).
    double berOnRatio;     //!< BER multiplier at max on-time (10.2).
    double berOffRatio;    //!< BER divisor at max off-time (6.3).
};

/**
 * One component of the temperature-inflection-point mixture. The
 * diversity of (T_inf, width) across cells produces the bounded
 * per-cell vulnerable temperature ranges of Obsvs. 1-3 and the
 * manufacturer-dependent BER trends of Obsv. 4.
 */
struct TempComponent
{
    double fraction;   //!< Mixture weight.
    double tinfMean;   //!< Mean inflection temperature (degC).
    double tinfSigma;  //!< Std-dev of the inflection temperature.
    double widthMin;   //!< Min response width (degC).
    double widthMax;   //!< Max response width (degC).
    //! Scale on cellSigma for this component's thresholds. A scale
    //! below 1 thins the component's deep tail, so a bank row's
    //! minimum-HCfirst cell is usually a reference-temperature cell,
    //! and the *governing* cell can switch as temperature rises --
    //! the mechanism behind the mixed HCfirst shifts of Obsv. 5.
    double sigmaScale = 1.0;
    //! Additive shift on the component's median log-threshold. A
    //! positive shift with a small sigmaScale builds a "booster"
    //! population: cells far above the threshold at 50 degC that drop
    //! into reach only when their temperature response peaks, raising
    //! hot-temperature BER without dominating row minima.
    double logMedianShift = 0.0;
};

/** Full per-manufacturer model parameterization. */
struct ManufacturerProfile
{
    Mfr mfr = Mfr::A;
    std::string name;          //!< "Mfr. A".
    std::string mappingScheme; //!< Row remapping ("identity", ...).

    CalibrationTargets targets{};

    //! BER-ratio targets handed to the shape solver. The measured
    //! module-level ratios come out *below* the per-cell solve targets
    //! because row/subarray variation flattens the log-normal tail, so
    //! these are set above `targets` such that the measured ratios land
    //! on the published numbers (0 = use `targets` unmodified).
    double solveBerOnRatio = 0.0;
    double solveBerOffRatio = 0.0;

    //! Upper bound on cellSigma given to the shape solver; keeps the
    //! absolute HCfirst level in the paper's range when the two ratio
    //! targets cannot be met simultaneously by one log-normal.
    double sigmaCap = 0.65;

    //! Temperature inflection mixture (fractions sum to 1).
    std::vector<TempComponent> tempMixture;

    // --- Cell population -------------------------------------------------
    double cellsPerRowMean = 240.0; //!< Mean vulnerable cells per row.
    double rowSigma = 0.16;      //!< Log-sigma of the per-row factor.
    double weakRowFraction = 0.05; //!< Fraction of extra-weak rows.
    double weakRowFactor = 0.55; //!< Threshold multiplier for weak rows.
    double subarraySigma = 0.10; //!< Log-sigma of the subarray factor.
    double moduleSigma = 0.12;   //!< Log-sigma of the module factor.

    // --- Column placement (Fig. 12/13) -----------------------------------
    double designMix = 0.5;      //!< Weight of design-induced variation.
    double designDeadFraction = 0.0;  //!< Columns dead by design.
    double processDeadFraction = 0.0; //!< Columns dead per chip (process).
    double columnSigma = 0.9;    //!< Log-sigma of column weights.

    // --- Noise ------------------------------------------------------------
    double trialNoiseSigma = 0.012; //!< Per-trial threshold noise (log).

    // --- Blast radius -----------------------------------------------------
    double distance1Damage = 0.5;   //!< Damage per ACT at distance 1.
    double distance2Damage = 0.075; //!< Damage per ACT at distance 2.

    // --- Data-pattern coupling --------------------------------------------
    double dataFactorBase = 0.7; //!< Floor of the data-dependent factor.

    // --- Derived by finalize() --------------------------------------------
    double wCouple = 0.0;    //!< Cross-talk (off-time) damage weight.
    double kOn = 0.0;        //!< On-time damage slope.
    double cellSigma = 0.45; //!< Log-sigma of per-cell thresholds.
    double zBase = -2.2;     //!< z of the 150K BER point at reference.
    double hcMedianLog = 0;  //!< Mean log-threshold (from zBase).

    /**
     * Solve the derived constants from the calibration targets.
     *
     * @param t_ras Baseline on-time (ns).
     * @param t_rp Baseline off-time (ns).
     * @param t_on_max Sweep-endpoint on-time (154.5 ns).
     * @param t_off_max Sweep-endpoint off-time (40.5 ns).
     * @param ber_hammers BER test hammer count the z-point refers to.
     */
    void finalize(double t_ras = 34.5, double t_rp = 16.5,
                  double t_on_max = 154.5, double t_off_max = 40.5,
                  double ber_hammers = 150e3);
};

/** Calibrated profile for one manufacturer. */
const ManufacturerProfile &profileFor(Mfr mfr);

/** Standard normal CDF (exposed for tests). */
double normalCdf(double z);

} // namespace rhs::rhmodel

#endif // RHS_RHMODEL_PROFILE_HH

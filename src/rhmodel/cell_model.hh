/**
 * @file
 * Procedural per-cell RowHammer vulnerability model.
 *
 * Every vulnerable cell of a simulated module is a pure function of the
 * module serial and the cell's physical position; nothing is stored.
 * A cell carries:
 *
 *  - threshold: its HCfirst at reference conditions (50 degC, baseline
 *    tRAS/tRP double-sided hammering, ideal data coupling);
 *  - (tinf, width): a temperature inflection point and response width
 *    giving the unimodal temperature behaviour hypothesized by the
 *    paper's circuit-level justification (Yang et al. charge-trap
 *    model, Section 5.3) and hence the bounded vulnerable temperature
 *    ranges of Obsvs. 1-3;
 *  - chargedValue: the stored bit value that can be disturbed
 *    (true-cell vs anti-cell), which creates the data-pattern
 *    dependence the WCDP methodology (Section 4.2) probes.
 *
 * Damage accrues per aggressor activation as
 *
 *   damage = distanceFactor(|victim - aggressor|)
 *          * [(1-wCouple)*gOn(tAggOn) + wCouple*gOff(tAggOff)]
 *          * H(T; tinf, width)
 *          * dataFactor(cell, aggressor byte)
 *
 * and the cell flips when accumulated damage crosses its threshold.
 */

#ifndef RHS_RHMODEL_CELL_MODEL_HH
#define RHS_RHMODEL_CELL_MODEL_HH

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dram/module.hh"
#include "dram/organization.hh"
#include "dram/timing.hh"
#include "rhmodel/profile.hh"

namespace rhs::rhmodel
{

/** Environmental/timing conditions of a hammer test. */
struct Conditions
{
    double temperature = 50.0; //!< DRAM chip temperature (degC).
    //! Aggressor row active time; 0 = the module's own tRAS
    //! (34.5 ns for the DDR4 parts, 35 ns for DDR3).
    dram::Ns tAggOn = 0.0;
    //! Bank precharged time; 0 = the module's own tRP.
    dram::Ns tAggOff = 0.0;
};

/** One vulnerable cell, fully described by procedural parameters. */
struct VulnerableCell
{
    dram::CellLocation loc;   //!< Physical position (row = victim row).
    std::uint64_t seed = 0;   //!< Stable identity for derived hashes.
    double threshold = 0.0;   //!< HCfirst at reference conditions.
    double tinf = 50.0;       //!< Temperature inflection point (degC).
    double width = 40.0;      //!< Temperature response width (degC).
    bool chargedValue = true; //!< Stored value that can flip away.
};

/** The generative vulnerability model of one module. */
class CellModel
{
  public:
    /**
     * @param profile Manufacturer calibration (not owned; must outlive).
     * @param info Module identity; info.serial seeds everything.
     * @param geometry Chip geometry.
     * @param timing Timing parameters (baseline tRAS/tRP).
     */
    CellModel(const ManufacturerProfile &profile,
              const dram::ModuleInfo &info, const dram::Geometry &geometry,
              const dram::TimingParams &timing);

    const ManufacturerProfile &profile() const { return prof; }

    /**
     * Generate the vulnerable cells of one physical row. The result
     * is memoized in a sharded, promote-on-hit LRU cache (generation
     * is deterministic, so this is purely a speed optimization for
     * the HCfirst binary search, which probes the same row many
     * times). Safe to call concurrently from any number of threads:
     * each shard is guarded by its own mutex and rows map to shards
     * by hash(bank, row).
     *
     * Reference validity: the returned reference stays valid until
     * the *calling thread* performs kKeepAlive further cellsOfRow
     * calls (a per-thread ring of strong references pins recently
     * returned rows against concurrent eviction). Use the cells
     * immediately or copy them; do not stash the reference across
     * unrelated batches of calls.
     */
    const std::vector<VulnerableCell> &cellsOfRow(unsigned bank,
                                                  unsigned physical_row)
        const;

    /** Column addresses per row (memo sizing for the eval kernel). */
    unsigned columnsPerRow() const { return geom.columnsPerRow; }

    /** Timing damage multiplier (1.0 at baseline tRAS/tRP). */
    double timingFactor(const Conditions &conditions) const;

    /** Temperature damage multiplier (1.0 at the 50 degC reference). */
    double temperatureFactor(const VulnerableCell &cell,
                             double temperature) const;

    /** Damage per activation at a victim-to-aggressor row distance. */
    double distanceFactor(unsigned distance) const;

    /**
     * Data-coupling multiplier in [dataFactorBase, 1], a reproducible
     * function of the aggressor's stored byte at the cell's column.
     * Different data patterns excite a cell differently, which is what
     * makes the worst-case data pattern module-specific.
     */
    double dataFactor(const VulnerableCell &cell,
                      std::uint8_t aggressor_byte) const;

    /**
     * Per-trial multiplicative threshold noise (log-normal around 1),
     * modelling measurement repeatability. Keyed on (cell, trial,
     * temperature) so each repetition at each temperature point
     * re-rolls, which is what produces the paper's ~1% of cells with
     * gaps inside their vulnerable temperature range (Table 3).
     *
     * @param cell The cell under test.
     * @param trial Repetition index (the paper repeats each test 5x).
     * @param temperature Test temperature (degC).
     */
    double trialNoise(const VulnerableCell &cell, unsigned trial,
                      double temperature) const;

    /** Spatial threshold factor of a row (includes weak-row tail). */
    double rowFactor(unsigned bank, unsigned physical_row) const;

    /** Spatial threshold factor of a subarray. */
    double subarrayFactor(unsigned bank, unsigned subarray) const;

    /** Module-wide threshold factor. */
    double moduleFactor() const { return modFactor; }

    /**
     * Relative likelihood that a vulnerable cell lands in a column
     * (the design + process column weighting behind Figs. 12/13).
     */
    double columnWeight(unsigned chip, unsigned column) const;

    //! Row-cache geometry: kCacheShards independent LRU shards of
    //! kCacheCapacity / kCacheShards entries each. Public so benches
    //! can size their working sets against it explicitly.
    static constexpr std::size_t kCacheShards = 16;
    static constexpr std::size_t kCacheCapacity = 256;
    //! Per-thread strong references pinning the most recently
    //! returned rows (see cellsOfRow reference-validity contract).
    static constexpr std::size_t kKeepAlive = 8;

  private:
    using RowCells = std::shared_ptr<const std::vector<VulnerableCell>>;

    /**
     * One LRU shard: list front = most recently used; the map holds
     * iterators into the list. The mutex guards both. Shards are
     * independent, so concurrent lookups of different rows rarely
     * contend.
     */
    struct CacheShard
    {
        mutable std::mutex mutex;
        mutable std::list<std::pair<std::uint64_t, RowCells>> lru;
        mutable std::unordered_map<
            std::uint64_t,
            std::list<std::pair<std::uint64_t, RowCells>>::iterator>
            index;
    };

    double sampleColumnFromCdf(unsigned chip, double u) const;
    std::vector<VulnerableCell> generateCells(unsigned bank,
                                              unsigned physical_row) const;

    const ManufacturerProfile &prof;
    const dram::ModuleInfo &moduleInfo;
    const dram::Geometry &geom;
    const dram::TimingParams &timing;
    double modFactor = 1.0;
    //! Per-chip cumulative distribution over column addresses.
    std::vector<std::vector<double>> columnCdf;

    mutable std::array<CacheShard, kCacheShards> cacheShards;
};

} // namespace rhs::rhmodel

#endif // RHS_RHMODEL_CELL_MODEL_HH

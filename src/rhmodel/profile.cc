#include "rhmodel/profile.hh"

#include <cmath>
#include <map>

#include "util/logging.hh"

namespace rhs::rhmodel
{

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

namespace
{

/**
 * Solve z from phi(z + delta) = ratio * phi(z). The left/right ratio is
 * continuous and strictly decreasing in z (from +inf to 1 for
 * delta > 0), so bisection applies.
 */
double
solveZ(double delta, double ratio)
{
    RHS_ASSERT(delta > 0.0 && ratio > 1.0, "invalid z-solve inputs");
    double lo = -12.0, hi = 8.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double r = normalCdf(mid + delta) / normalCdf(mid);
        if (r > ratio)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

/**
 * Solve (cellSigma, zBase) from the two BER amplification targets.
 * For each candidate sigma, z is pinned by the on-time ratio; the
 * off-time ratio then monotonically decreases with sigma, so a second
 * bisection (with clamping when the target is outside the reachable
 * band) finds sigma.
 */
void
solveBerShape(double d_on, double d_off, double ratio_on, double ratio_off,
              double sigma_cap, double &sigma_out, double &z_out)
{
    auto off_ratio_at = [&](double sigma) {
        const double z = solveZ(d_on / sigma, ratio_on);
        return normalCdf(z) / normalCdf(z + d_off / sigma);
    };

    double lo = 0.10, hi = sigma_cap;
    if (off_ratio_at(hi) >= ratio_off) {
        sigma_out = hi; // Target unreachable within the cap; take cap.
    } else if (off_ratio_at(lo) <= ratio_off) {
        sigma_out = lo;
    } else {
        for (int i = 0; i < 100; ++i) {
            const double mid = 0.5 * (lo + hi);
            if (off_ratio_at(mid) > ratio_off)
                lo = mid;
            else
                hi = mid;
        }
        sigma_out = 0.5 * (lo + hi);
    }
    z_out = solveZ(d_on / sigma_out, ratio_on);
}

} // namespace

void
ManufacturerProfile::finalize(double t_ras, double t_rp, double t_on_max,
                              double t_off_max, double ber_hammers)
{
    RHS_ASSERT(targets.hcOnReduction > 0.0 && targets.hcOnReduction < 1.0);
    RHS_ASSERT(targets.hcOffIncrease > 0.0);
    RHS_ASSERT(targets.berOnRatio > 1.0 && targets.berOffRatio > 1.0);

    // --- Timing response: exact solve from the HCfirst endpoints. ---
    // HCfirst scales as 1/damage, so the damage multipliers at the
    // sweep endpoints are fixed by the paper's percentages.
    const double d_on_target = 1.0 / (1.0 - targets.hcOnReduction);
    const double d_off_target = 1.0 / (1.0 + targets.hcOffIncrease);
    const double g_off_max = t_rp / t_off_max;

    wCouple = (1.0 - d_off_target) / (1.0 - g_off_max);
    RHS_ASSERT(wCouple > 0.0 && wCouple < 1.0,
               "coupling weight out of range: ", wCouple);

    const double g_on_max = (d_on_target - wCouple) / (1.0 - wCouple);
    kOn = (g_on_max - 1.0) / ((t_on_max - t_ras) / t_ras);
    RHS_ASSERT(kOn > 0.0, "on-time slope must be positive");

    // --- Threshold-distribution shape from the BER ratios. ---
    // Caps keep the absolute HCfirst level in the paper's range when
    // the two ratio targets are not exactly consistent with a single
    // log-normal (the solver then matches the on-time ratio exactly
    // and gets as close as possible on the off-time ratio).
    const double on_ratio = solveBerOnRatio > 0.0 ? solveBerOnRatio
                                                  : targets.berOnRatio;
    const double off_ratio = solveBerOffRatio > 0.0 ? solveBerOffRatio
                                                    : targets.berOffRatio;
    solveBerShape(std::log(d_on_target), std::log(d_off_target), on_ratio,
                  off_ratio, sigmaCap, cellSigma, zBase);

    // Position the distribution so that a ber_hammers-hammer test at
    // reference conditions sits at zBase.
    hcMedianLog = std::log(ber_hammers) - zBase * cellSigma;

    // --- Sanity on the temperature mixture. ---
    double total = 0.0;
    for (const auto &comp : tempMixture) {
        RHS_ASSERT(comp.fraction > 0.0 && comp.widthMax >= comp.widthMin);
        total += comp.fraction;
    }
    RHS_ASSERT(std::abs(total - 1.0) < 1e-6,
               "temperature mixture fractions must sum to 1, got ", total);
}

namespace
{

ManufacturerProfile
makeProfileA()
{
    ManufacturerProfile p;
    p.mfr = Mfr::A;
    p.name = "Mfr. A";
    p.mappingScheme = "xor";
    p.targets = {0.400, 0.338, 10.2, 6.3}; // Obsvs. 8 and 10.
    p.solveBerOnRatio = 400.0;
    p.solveBerOffRatio = 200.0;
    p.tempMixture = {
        {0.565, 38.0, 6.0, 24.0, 36.0, 1.0, 0.0},
        {0.33, 100.0, 12.0, 60.0, 75.0, 0.8, 0.0},
        {0.08, 70.0, 10.0, 120.0, 200.0, 0.9, 0.0},
        {0.025, 97.0, 3.0, 36.0, 40.0, 0.25, -0.12},
    };
    p.cellsPerRowMean = 400.0;
    p.rowSigma = 0.16;
    p.subarraySigma = 0.10;
    p.moduleSigma = 0.22;
    p.designMix = 0.2;
    p.designDeadFraction = 0.0;
    p.processDeadFraction = 0.28;
    p.columnSigma = 1.0;
    p.finalize();
    return p;
}

ManufacturerProfile
makeProfileB()
{
    ManufacturerProfile p;
    p.mfr = Mfr::B;
    p.name = "Mfr. B";
    p.mappingScheme = "identity";
    p.targets = {0.283, 0.247, 3.1, 2.9};
    p.solveBerOnRatio = 2.7;
    p.solveBerOffRatio = 3.2;
    p.tempMixture = {
        {0.60, 35.0, 10.0, 38.0, 55.0, 1.0, 0.0},
        {0.396, 78.0, 8.0, 50.0, 70.0, 0.7, 0.0},
        {0.004, 95.0, 3.0, 36.0, 40.0, 0.25, 0.25},
    };
    p.cellsPerRowMean = 300.0;
    p.rowSigma = 0.15;
    p.subarraySigma = 0.09;
    p.moduleSigma = 0.28;
    p.designMix = 0.85;
    p.designDeadFraction = 0.0;
    p.processDeadFraction = 0.0;
    p.columnSigma = 0.8;
    p.finalize();
    return p;
}

ManufacturerProfile
makeProfileC()
{
    ManufacturerProfile p;
    p.mfr = Mfr::C;
    p.name = "Mfr. C";
    p.mappingScheme = "msb-pair";
    p.targets = {0.327, 0.501, 4.4, 4.9};
    p.solveBerOnRatio = 4.6;
    p.sigmaCap = 0.50;
    p.tempMixture = {
        {0.612, 42.0, 8.0, 30.0, 48.0, 1.0, 0.0},
        {0.38, 95.0, 12.0, 48.0, 62.0, 0.7, 0.0},
        {0.008, 97.0, 3.0, 36.0, 40.0, 0.25, -0.25},
    };
    p.cellsPerRowMean = 400.0;
    p.rowSigma = 0.17;
    p.subarraySigma = 0.11;
    p.moduleSigma = 0.35;
    p.designMix = 0.5;
    p.designDeadFraction = 0.20;
    p.processDeadFraction = 0.12;
    p.columnSigma = 0.9;
    p.finalize();
    return p;
}

ManufacturerProfile
makeProfileD()
{
    ManufacturerProfile p;
    p.mfr = Mfr::D;
    p.name = "Mfr. D";
    p.mappingScheme = "xor";
    p.targets = {0.373, 0.337, 9.6, 5.0};
    p.solveBerOnRatio = 14.0;
    p.solveBerOffRatio = 10.0;
    p.tempMixture = {
        {0.375, 45.0, 8.0, 28.0, 40.0, 1.0, 0.0},
        {0.335, 130.0, 15.0, 70.0, 95.0, 0.7, 0.0},
        {0.28, 70.0, 10.0, 150.0, 250.0, 1.05, 0.0},
        {0.01, 100.0, 3.0, 38.0, 42.0, 0.25, -0.08},
    };
    p.cellsPerRowMean = 420.0;
    p.rowSigma = 0.12;
    p.subarraySigma = 0.07;
    p.moduleSigma = 0.04;
    p.designMix = 0.3;
    p.designDeadFraction = 0.02;
    p.processDeadFraction = 0.08;
    p.columnSigma = 0.9;
    p.finalize();
    return p;
}

} // namespace

const ManufacturerProfile &
profileFor(Mfr mfr)
{
    static const std::map<Mfr, ManufacturerProfile> profiles = {
        {Mfr::A, makeProfileA()},
        {Mfr::B, makeProfileB()},
        {Mfr::C, makeProfileC()},
        {Mfr::D, makeProfileD()},
    };
    return profiles.at(mfr);
}

} // namespace rhs::rhmodel

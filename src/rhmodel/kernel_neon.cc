/**
 * @file
 * The NEON kernel variant: 2 double lanes per vector. AdvSIMD is
 * architectural on aarch64, so this TU needs no extra ISA flags and
 * the variant is always supported there.
 *
 * NEON has no 64-bit lane multiply; the hash chain's multiplies run
 * per lane through the scalar unit (the f64 math stays vectorized,
 * which is where the kernel's time goes).
 */

#if defined(__aarch64__)

#include <arm_neon.h>

#include "rhmodel/kernel.hh"
#include "rhmodel/kernel_math.hh"

namespace rhs::rhmodel::kern
{

namespace
{

struct NeonBackend
{
    static constexpr std::size_t kLanes = 2;
    using F = float64x2_t;
    using U = uint64x2_t;
    using M = uint64x2_t; //!< All-ones / all-zeros per lane.

    static F fbroadcast(double v) { return vdupq_n_f64(v); }
    static F fload(const double *p) { return vld1q_f64(p); }
    static void fstore(double *p, F v) { vst1q_f64(p, v); }
    static F add(F a, F b) { return vaddq_f64(a, b); }
    static F sub(F a, F b) { return vsubq_f64(a, b); }
    static F mul(F a, F b) { return vmulq_f64(a, b); }
    static F div(F a, F b) { return vdivq_f64(a, b); }
    static F sqrt(F a) { return vsqrtq_f64(a); }
    static F fmin(F a, F b) { return vminq_f64(a, b); }
    static F fmax(F a, F b) { return vmaxq_f64(a, b); }
    static M gt(F a, F b) { return vcgtq_f64(a, b); }
    static M lt(F a, F b) { return vcltq_f64(a, b); }
    static M le(F a, F b) { return vcleq_f64(a, b); }
    static F select(M m, F a, F b) { return vbslq_f64(m, a, b); }
    static M mand(M a, M b) { return vandq_u64(a, b); }
    static bool any(M m)
    {
        return (vgetq_lane_u64(m, 0) | vgetq_lane_u64(m, 1)) != 0;
    }

    static U ubroadcast(std::uint64_t v) { return vdupq_n_u64(v); }
    static U uload(const std::uint64_t *p) { return vld1q_u64(p); }
    static void ustore(std::uint64_t *p, U v) { vst1q_u64(p, v); }
    static U uadd(U a, U b) { return vaddq_u64(a, b); }
    static U usub(U a, U b) { return vsubq_u64(a, b); }
    static U uand(U a, U b) { return vandq_u64(a, b); }
    static U uor(U a, U b) { return vorrq_u64(a, b); }
    static U uxor(U a, U b) { return veorq_u64(a, b); }

    //! Per-lane scalar multiply (no 64-bit NEON lane multiply).
    static U
    umul(U a, U b)
    {
        U r = vdupq_n_u64(0);
        r = vsetq_lane_u64(
            vgetq_lane_u64(a, 0) * vgetq_lane_u64(b, 0), r, 0);
        r = vsetq_lane_u64(
            vgetq_lane_u64(a, 1) * vgetq_lane_u64(b, 1), r, 1);
        return r;
    }

    template <int N> static U ushl(U a) { return vshlq_n_u64(a, N); }
    template <int N> static U ushr(U a) { return vshrq_n_u64(a, N); }
    static U ushrv(U a, U n)
    {
        return vshlq_u64(a, vnegq_s64(vreinterpretq_s64_u64(n)));
    }
    static M ueq(U a, U b) { return vceqq_u64(a, b); }

    //! ucvtf is exact below 2^53 (the only inputs used).
    static F u2f(U v) { return vcvtq_f64_u64(v); }
    static U f2bits(F v) { return vreinterpretq_u64_f64(v); }
    static F bits2f(U v) { return vreinterpretq_f64_u64(v); }
};

} // namespace

double
runNeon(const KernelArgs &args)
{
    return kernelLoop<NeonBackend>(args, 0, args.n);
}

void
fillNeon(std::uint64_t rowHash, std::uint8_t *dst, std::size_t columns)
{
    fillLoop<NeonBackend>(rowHash, dst, columns);
}

} // namespace rhs::rhmodel::kern

#endif // __aarch64__

/**
 * @file
 * The AVX2 kernel variant: 4 double lanes per vector. This TU is
 * compiled with -mavx2 (see src/rhmodel/CMakeLists.txt) and must only
 * be entered through the dispatch table after cpuSupports(Avx2)
 * confirmed the host — including the scalar-backend tail loop
 * instantiated here, which carries VEX encodings.
 *
 * AVX2 lacks a 64-bit lane multiply and an unsigned 64→double convert;
 * both are emulated below with exact sequences (the convert is exact
 * for inputs < 2^53, which every call site guarantees).
 */

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "rhmodel/kernel.hh"
#include "rhmodel/kernel_math.hh"

namespace rhs::rhmodel::kern
{

namespace
{

struct Avx2Backend
{
    static constexpr std::size_t kLanes = 4;
    using F = __m256d;
    using U = __m256i;
    using M = __m256d; //!< All-ones / all-zeros per lane.

    static F fbroadcast(double v) { return _mm256_set1_pd(v); }
    static F fload(const double *p) { return _mm256_loadu_pd(p); }
    static void fstore(double *p, F v) { _mm256_storeu_pd(p, v); }
    static F add(F a, F b) { return _mm256_add_pd(a, b); }
    static F sub(F a, F b) { return _mm256_sub_pd(a, b); }
    static F mul(F a, F b) { return _mm256_mul_pd(a, b); }
    static F div(F a, F b) { return _mm256_div_pd(a, b); }
    static F sqrt(F a) { return _mm256_sqrt_pd(a); }
    static F fmin(F a, F b) { return _mm256_min_pd(a, b); }
    static F fmax(F a, F b) { return _mm256_max_pd(a, b); }
    static M gt(F a, F b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
    static M lt(F a, F b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
    static M le(F a, F b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
    static F select(M m, F a, F b) { return _mm256_blendv_pd(b, a, m); }
    static M mand(M a, M b) { return _mm256_and_pd(a, b); }
    static bool any(M m) { return _mm256_movemask_pd(m) != 0; }

    static U ubroadcast(std::uint64_t v)
    {
        return _mm256_set1_epi64x(static_cast<long long>(v));
    }
    static U uload(const std::uint64_t *p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
    }
    static void ustore(std::uint64_t *p, U v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }
    static U uadd(U a, U b) { return _mm256_add_epi64(a, b); }
    static U usub(U a, U b) { return _mm256_sub_epi64(a, b); }
    static U uand(U a, U b) { return _mm256_and_si256(a, b); }
    static U uor(U a, U b) { return _mm256_or_si256(a, b); }
    static U uxor(U a, U b) { return _mm256_xor_si256(a, b); }

    //! 64x64→64 low product from three 32-bit partial products
    //! (AVX2 has no vpmullq).
    static U
    umul(U a, U b)
    {
        const U lo = _mm256_mul_epu32(a, b);
        const U a_hi_b = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
        const U a_b_hi = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
        const U cross =
            _mm256_slli_epi64(_mm256_add_epi64(a_hi_b, a_b_hi), 32);
        return _mm256_add_epi64(lo, cross);
    }

    template <int N> static U ushl(U a) { return _mm256_slli_epi64(a, N); }
    template <int N> static U ushr(U a) { return _mm256_srli_epi64(a, N); }
    static U ushrv(U a, U n) { return _mm256_srlv_epi64(a, n); }
    static M ueq(U a, U b)
    {
        return _mm256_castsi256_pd(_mm256_cmpeq_epi64(a, b));
    }

    //! Unsigned 64→double via the split magic-number trick; exact for
    //! v < 2^53 (the only inputs used), matching the scalar cast.
    static F
    u2f(U v)
    {
        const U hi = _mm256_or_si256(
            _mm256_srli_epi64(v, 32),
            _mm256_set1_epi64x(0x4530000000000000LL)); // 2^84 + hi
        const U lo = _mm256_blend_epi32(
            v, _mm256_set1_epi64x(0x4330000000000000LL),
            0xaa); // 2^52 + lo
        const F hi_f = _mm256_sub_pd(
            _mm256_castsi256_pd(hi),
            _mm256_set1_pd(19342813118337666422669312.0)); // 2^84+2^52
        return _mm256_add_pd(hi_f, _mm256_castsi256_pd(lo));
    }
    static U f2bits(F v) { return _mm256_castpd_si256(v); }
    static F bits2f(U v) { return _mm256_castsi256_pd(v); }
};

} // namespace

double
runAvx2(const KernelArgs &args)
{
    return kernelLoop<Avx2Backend>(args, 0, args.n);
}

void
fillAvx2(std::uint64_t rowHash, std::uint8_t *dst, std::size_t columns)
{
    fillLoop<Avx2Backend>(rowHash, dst, columns);
}

} // namespace rhs::rhmodel::kern

#endif // x86_64

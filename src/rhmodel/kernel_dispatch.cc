/**
 * @file
 * Runtime resolution of the row-evaluation kernel variant.
 *
 * The selection is process-wide and sticky: the first kernel consumer
 * (or an explicit setVariant/forceVariant call) resolves it, logs it
 * once, and publishes it as obs metrics. Re-resolving mid-run is
 * supported for tests and the --simd flag, but is not synchronized
 * against kernel passes in flight — callers switch variants only at
 * startup or between experiment phases.
 */

#include "rhmodel/kernel.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace rhs::rhmodel::kern
{

namespace
{

obs::Counter &
passCounter(Simd simd)
{
    return obs::Registry::global().counter(
        std::string("roweval.kernel.passes.") + name(simd));
}

/** Publish the resolved choice (idempotent; last writer wins). */
void
publish(Simd simd, const char *origin)
{
    obs::Registry::global()
        .gauge("roweval.simd.variant")
        .set(static_cast<std::int64_t>(simd));
    obs::Registry::global().info("roweval.simd.variant").set(name(simd));
    util::status("roweval kernel: ", name(simd), " (", origin, ")");
}

struct Resolved
{
    Active active;
    std::mutex mutex; //!< Guards re-resolution, not reads.
    std::atomic<bool> ready{false};
};

Resolved &
resolved()
{
    static Resolved *instance = new Resolved;
    return *instance;
}

Active
makeActive(Simd simd)
{
    Active active;
    active.id = simd;
    active.passes = &passCounter(simd);
    switch (simd) {
      case Simd::Scalar:
        active.kernel = &runScalar;
        active.fill = &fillScalar;
        break;
#if defined(__x86_64__) || defined(_M_X64)
      case Simd::Avx2:
        active.kernel = &runAvx2;
        active.fill = &fillAvx2;
        break;
      case Simd::Avx512:
        active.kernel = &runAvx512;
        active.fill = &fillAvx512;
        break;
#endif
#if defined(__aarch64__)
      case Simd::Neon:
        active.kernel = &runNeon;
        active.fill = &fillNeon;
        break;
#endif
      default:
        RHS_PANIC("variant not compiled in: ", name(simd));
    }
    return active;
}

/** Install a resolved choice and publish it. */
void
install(Simd simd, const char *origin)
{
    auto &r = resolved();
    r.active = makeActive(simd);
    publish(simd, origin);
    r.ready.store(true, std::memory_order_release);
}

Simd
best()
{
    const auto supported = supportedVariants();
    Simd pick = Simd::Scalar;
    for (Simd simd : supported) {
        if (static_cast<int>(simd) > static_cast<int>(pick))
            pick = simd;
    }
    return pick;
}

bool
parseSpec(const std::string &spec, Simd *out)
{
    if (spec == "scalar") {
        *out = Simd::Scalar;
    } else if (spec == "neon") {
        *out = Simd::Neon;
    } else if (spec == "avx2") {
        *out = Simd::Avx2;
    } else if (spec == "avx512") {
        *out = Simd::Avx512;
    } else if (spec == "auto") {
        *out = best();
    } else {
        return false;
    }
    return true;
}

bool
isSupported(Simd simd)
{
    for (Simd candidate : supportedVariants()) {
        if (candidate == simd)
            return true;
    }
    return false;
}

} // namespace

const char *
name(Simd simd)
{
    switch (simd) {
      case Simd::Scalar: return "scalar";
      case Simd::Neon: return "neon";
      case Simd::Avx2: return "avx2";
      case Simd::Avx512: return "avx512";
    }
    return "?";
}

std::vector<Simd>
compiledVariants()
{
    std::vector<Simd> variants{Simd::Scalar};
#if defined(__aarch64__)
    variants.push_back(Simd::Neon);
#endif
#if defined(__x86_64__) || defined(_M_X64)
    variants.push_back(Simd::Avx2);
    variants.push_back(Simd::Avx512);
#endif
    return variants;
}

bool
cpuSupports(Simd simd)
{
    switch (simd) {
      case Simd::Scalar:
        return true;
      case Simd::Neon:
#if defined(__aarch64__)
        return true; // AdvSIMD is architectural on aarch64.
#else
        return false;
#endif
      case Simd::Avx2:
#if defined(__x86_64__) || defined(_M_X64)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case Simd::Avx512:
#if defined(__x86_64__) || defined(_M_X64)
        return __builtin_cpu_supports("avx512f") != 0 &&
               __builtin_cpu_supports("avx512dq") != 0;
#else
        return false;
#endif
    }
    return false;
}

std::vector<Simd>
supportedVariants()
{
    std::vector<Simd> variants;
    for (Simd simd : compiledVariants()) {
        if (cpuSupports(simd))
            variants.push_back(simd);
    }
    return variants;
}

const Active &
active()
{
    auto &r = resolved();
    if (!r.ready.load(std::memory_order_acquire)) {
        std::lock_guard lock(r.mutex);
        if (!r.ready.load(std::memory_order_relaxed)) {
            if (const char *env = std::getenv("RHS_SIMD");
                env != nullptr && *env != '\0') {
                Simd simd = Simd::Scalar;
                if (!parseSpec(env, &simd)) {
                    RHS_FATAL("RHS_SIMD=", env,
                              ": unknown variant (expected scalar, "
                              "avx2, avx512, neon, or auto)");
                }
                if (!isSupported(simd)) {
                    RHS_FATAL("RHS_SIMD=", env,
                              ": variant not supported on this host");
                }
                install(simd, "RHS_SIMD");
            } else {
                install(best(), "auto");
            }
        }
    }
    return r.active;
}

bool
setVariant(const std::string &spec, std::string *error)
{
    Simd simd = Simd::Scalar;
    if (!parseSpec(spec, &simd)) {
        if (error != nullptr) {
            *error = "unknown SIMD variant '" + spec +
                     "' (expected scalar, avx2, avx512, neon, or auto)";
        }
        return false;
    }
    if (!isSupported(simd)) {
        if (error != nullptr) {
            *error = std::string("SIMD variant '") + name(simd) +
                     "' is not supported on this host";
        }
        return false;
    }
    auto &r = resolved();
    std::lock_guard lock(r.mutex);
    install(simd, "override");
    return true;
}

void
forceVariant(Simd simd)
{
    RHS_ASSERT(isSupported(simd), "forcing unsupported variant ",
               name(simd));
    auto &r = resolved();
    std::lock_guard lock(r.mutex);
    install(simd, "forced");
}

} // namespace rhs::rhmodel::kern

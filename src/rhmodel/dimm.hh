/**
 * @file
 * A complete simulated DIMM: device model + fault model + injector.
 *
 * Also provides the tested-module inventory of Table 4 and a fleet
 * factory that instantiates the simulated counterparts of the paper's
 * 21 DDR4 DIMMs and 3 DDR3 SODIMMs.
 */

#ifndef RHS_RHMODEL_DIMM_HH
#define RHS_RHMODEL_DIMM_HH

#include <memory>
#include <string>
#include <vector>

#include "dram/module.hh"
#include "rhmodel/analytic.hh"
#include "rhmodel/cell_model.hh"
#include "rhmodel/fault_injector.hh"
#include "rhmodel/mfr.hh"

namespace rhs::rhmodel
{

/** Construction options for a simulated DIMM. */
struct DimmOptions
{
    dram::Standard standard = dram::Standard::DDR4;
    unsigned banks = 4;            //!< Banks per chip (tests use bank 0).
    unsigned subarraysPerBank = 16;
    unsigned rowsPerSubarray = 512;
    unsigned columnsPerRow = 1024;
    unsigned chips = 0; //!< 0 = manufacturer default (Table 4 org).

    //! Override the calibrated manufacturer profile (not owned; must
    //! outlive the DIMM). Used by the model-ablation studies.
    const ManufacturerProfile *customProfile = nullptr;
};

/** One simulated module with its vulnerability model attached. */
class SimulatedDimm
{
  public:
    /**
     * @param mfr Manufacturer whose calibrated profile to use.
     * @param module_index Index within the manufacturer's fleet; the
     *        (mfr, index) pair seeds all procedural randomness.
     * @param options Geometry/standard options.
     */
    SimulatedDimm(Mfr mfr, unsigned module_index,
                  const DimmOptions &options = {});

    /** Label such as "A0", "B3". */
    const std::string &label() const { return dimmLabel; }

    Mfr mfr() const { return profileRef.mfr; }
    const ManufacturerProfile &profile() const { return profileRef; }
    dram::Module &module() { return *dramModule; }
    const dram::Module &module() const { return *dramModule; }
    CellModel &cellModel() { return *cells; }
    const CellModel &cellModel() const { return *cells; }
    FaultInjector &injector() { return *faultInjector; }
    AnalyticEngine &analytic() { return *analyticEngine; }
    const AnalyticEngine &analytic() const { return *analyticEngine; }

  private:
    const ManufacturerProfile &profileRef;
    std::string dimmLabel;
    std::unique_ptr<dram::Module> dramModule;
    std::unique_ptr<CellModel> cells;
    std::unique_ptr<FaultInjector> faultInjector;
    std::unique_ptr<AnalyticEngine> analyticEngine;
};

/** One row of the Table 4 inventory. */
struct InventoryEntry
{
    Mfr mfr;
    dram::Standard standard;
    std::string chipIdentifier;
    std::string moduleVendor;
    std::string moduleIdentifier;
    unsigned frequencyMTs;
    std::string dateCode;
    std::string density;
    std::string dieRevision;
    std::string organization;
    unsigned modules;
    unsigned chipsPerModule;
};

/** The paper's tested-module inventory (Table 4). */
const std::vector<InventoryEntry> &paperInventory();

/** Chips per module for a manufacturer's DDR4 parts (Table 4 org). */
unsigned defaultChipCount(Mfr mfr, dram::Standard standard);

/**
 * Instantiate a fleet of simulated DIMMs.
 *
 * @param modules_per_mfr DDR4 modules per manufacturer (the paper has
 *        9/4/5/4 for A/B/C/D; benches default to fewer for speed).
 * @param options Geometry options shared by the fleet.
 */
std::vector<std::unique_ptr<SimulatedDimm>>
makeFleet(unsigned modules_per_mfr, const DimmOptions &options = {});

} // namespace rhs::rhmodel

#endif // RHS_RHMODEL_DIMM_HH

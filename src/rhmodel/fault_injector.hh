/**
 * @file
 * Cycle-accurate RowHammer fault injection.
 *
 * Subscribes to the module's activation stream and accumulates
 * disturbance damage into the vulnerable cells of the rows neighbouring
 * each activated row, using the *measured* per-activation on/off times
 * (so a SoftMC program that stretches tAggOn with extra reads damages
 * victims more, exactly as in §6). When a cell's accumulated damage
 * crosses its noisy threshold and the stored victim bit holds the
 * cell's charged value, the bit flips in the module's data store.
 */

#ifndef RHS_RHMODEL_FAULT_INJECTOR_HH
#define RHS_RHMODEL_FAULT_INJECTOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dram/module.hh"
#include "rhmodel/cell_model.hh"

namespace rhs::rhmodel
{

/** Applies RowHammer bit flips to a module as commands execute. */
class FaultInjector : public dram::ActivationListener
{
  public:
    /**
     * @param model Cell model (not owned).
     * @param module Module whose data the flips corrupt (not owned).
     *        The injector registers itself as an activation listener.
     */
    FaultInjector(const CellModel &model, dram::Module &module);

    /** Set the DRAM chip temperature for subsequent activations. */
    void setTemperature(double celsius) { temperature = celsius; }

    /** Set the repetition index (selects the trial-noise stream). */
    void setTrial(unsigned trial_index) { trial = trial_index; }

    /**
     * Begin a fresh test: clears accumulated damage and flip state.
     * Call after installing the data pattern and before hammering.
     */
    void beginTest();

    /** Number of flips applied since beginTest(). */
    unsigned flipsApplied() const { return flipCount; }

    /**
     * Refresh a physical row: restores the charge of its cells,
     * clearing accumulated disturbance (what a defense's victim
     * refresh achieves). Already-flipped bits stay flipped — refresh
     * rewrites whatever value the cell currently holds.
     */
    void refreshRow(unsigned bank, unsigned physical_row);

    /**
     * Refresh every tracked row: what a full auto-refresh cycle
     * achieves. Clears all accumulated disturbance (already-flipped
     * bits stay flipped).
     */
    void refreshAllRows();

    void onActivation(const dram::ActivationRecord &record) override;

  private:
    struct CellState
    {
        VulnerableCell cell;
        double damage = 0.0;
        double noisyThreshold = 0.0;
        bool thresholdKnown = false;
        bool resolved = false; //!< Flipped, or suppressed by data value.

        //! Memo of temperatureFactor (constant within a test).
        double tempFactor = -1.0;
        //! Memo of dataFactor per aggressor row (the aggressor's
        //! stored byte is constant within a test).
        std::unordered_map<unsigned, double> dataFactorByAggressor;
    };

    std::vector<CellState> &victimCells(unsigned bank, unsigned row);
    void accumulate(unsigned bank, unsigned victim_row, unsigned distance,
                    const dram::ActivationRecord &record);

    const CellModel &model;
    dram::Module &module;
    double temperature = 50.0;
    unsigned trial = 0;
    unsigned flipCount = 0;
    std::unordered_map<std::uint64_t, std::vector<CellState>> victims;
};

} // namespace rhs::rhmodel

#endif // RHS_RHMODEL_FAULT_INJECTOR_HH

/**
 * @file
 * Closed-form RowHammer outcome computation.
 *
 * Because the per-hammer damage rate is constant for a test with fixed
 * conditions, a cell's HCfirst is simply threshold * noise / rate. The
 * analytic engine exploits this twice over:
 *
 *  1. Outcomes are closed-form, so BER tests and HCfirst searches over
 *     thousands of rows evaluate in microseconds while remaining
 *     bit-exact with the cycle-accurate FaultInjector path
 *     (property-tested in tests/rhmodel_equivalence_test.cc).
 *
 *  2. Every per-cell HCfirst of a row is a pure function of one
 *     (bank, row, attack, conditions, pattern, trial) key, so a single
 *     batched kernel pass (rowEval) computes the whole per-row curve
 *     once — with the row-invariant factors hoisted out of the cell
 *     loop — and memoizes it in a sharded LRU. The paper's HCfirst
 *     step search then replays its ~12 probes against the cached curve
 *     instead of regenerating and re-scoring the identical cell
 *     population per probe (see docs/MODEL.md, "The row-evaluation
 *     kernel").
 *
 * Because a curve is a pure function of its EvalKey, it is also
 * *storable*: an engine may carry a RowEvalStore — a persistence tier
 * consulted on RAM-cache misses (mmap snapshot, eviction spill file;
 * see src/snap) and notified of fresh computations and evictions. The
 * store returns curves byte-identical to a kernel pass or nothing at
 * all, so attaching one can never change a result, only skip work.
 *
 * cellHcFirst/hammerDamage remain the single-cell reference path; the
 * kernel is property-tested byte-identical against them.
 */

#ifndef RHS_RHMODEL_ANALYTIC_HH
#define RHS_RHMODEL_ANALYTIC_HH

#include <array>
#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "rhmodel/cell_model.hh"
#include "rhmodel/pattern.hh"

namespace rhs::rhmodel
{

/**
 * A hammer attack in physical row coordinates: every aggressor row is
 * activated once per "hammer" (so the paper's double-sided attack has
 * two aggressors and one hammer = one activation pair, §4.2).
 */
struct HammerAttack
{
    unsigned bank = 0;
    //! Physical rows activated once per hammer.
    std::vector<unsigned> aggressorRows;
    //! Row around which the data pattern was written (the paper writes
    //! the pattern to V and V±[1..8] relative to the double-sided
    //! victim V).
    unsigned patternCenter = 0;

    /**
     * The standard double-sided attack on victim V (aggressors V±1).
     * @pre victim_row >= 1 — the same precondition the cycle path
     *      (core::runCycleHammerTest) asserts; a victim without both
     *      neighbours must use singleSided explicitly.
     */
    static HammerAttack doubleSided(unsigned bank, unsigned victim_row);

    /** Single-sided attack: one aggressor row. */
    static HammerAttack singleSided(unsigned bank, unsigned aggressor_row);

    /**
     * TRRespass-style many-sided attack: `sides` aggressor rows at
     * stride 2 starting from first_aggressor, sandwiching victims
     * between them. Designed to overflow the capacity of in-DRAM TRR
     * trackers (§2.3).
     */
    static HammerAttack manySided(unsigned bank, unsigned first_aggressor,
                                  unsigned sides);

    /** Victim rows sandwiched between this attack's aggressors. */
    std::vector<unsigned> sandwichedVictims() const;
};

/** Outcome of an analytic BER test on one victim row. */
struct RowBerResult
{
    //! Locations of the cells that flipped.
    std::vector<dram::CellLocation> flips;
    //! Number of vulnerable cells in the row (flipped or not).
    unsigned vulnerableCells = 0;
};

/** Sentinel: the row/cell never flips under the given attack. */
inline constexpr double kNeverFlips = std::numeric_limits<double>::infinity();

/**
 * Full identity of a row evaluation: everything the kernel's output
 * depends on. Compared for equality on every cache hit, so a 64-bit
 * hash collision degrades to a miss instead of returning a wrong
 * curve. Public because persistence tiers (src/snap) serialize it as
 * the curve's lookup key.
 */
struct EvalKey
{
    unsigned bank = 0;
    unsigned victimRow = 0;
    unsigned patternCenter = 0;
    unsigned trial = 0;
    PatternId patternId = PatternId::ColStripe;
    //! Pattern seed, normalized to 0 for column-invariant patterns
    //! (their bytes ignore the seed, so normalizing widens reuse).
    std::uint64_t patternSeed = 0;
    double temperature = 0.0;
    double tAggOn = 0.0;
    double tAggOff = 0.0;
    std::vector<unsigned> aggressors;

    bool operator==(const EvalKey &) const = default;
};

/**
 * The batched evaluation of one (bank, row, attack, conditions,
 * pattern, trial) key: the closed-form flip hammer count of every
 * eligible cell of the row, laid out SoA (hcFirst[i] belongs to
 * loc[i]) in the cell model's generation order. Ineligible cells
 * (wrong stored polarity, or out of coupling range) are omitted — they
 * would carry kNeverFlips and can never appear in a flip list.
 *
 * Any probe of the key is O(1)/O(cells) against this curve:
 * "does the row flip at H hammers" is minHcFirst <= H, and the flip
 * list at H hammers is {loc[i] : hcFirst[i] <= H} in stored order —
 * exactly the order the per-probe reference path reports.
 *
 * Storage: the public members are views. A freshly computed curve
 * adopt()s owned vectors; a curve served from an mmapped snapshot
 * view()s the mapped pages directly (zero copy), pinned by a
 * keep-alive handle. Move-only — moving transfers the owned buffers
 * (heap storage is stable across vector moves, so the views stay
 * valid); copying is deleted because it would alias the source.
 */
class RowEval
{
  public:
    std::span<const double> hcFirst;         //!< Per eligible cell HCfirst.
    std::span<const dram::CellLocation> loc; //!< Parallel to hcFirst.
    //! All vulnerable cells of the row, eligible or not.
    unsigned vulnerableCells = 0;
    //! Minimum over hcFirst (kNeverFlips when no cell is eligible).
    double minHcFirst = kNeverFlips;

    RowEval() = default;
    RowEval(RowEval &&) = default;
    RowEval &operator=(RowEval &&) = default;
    RowEval(const RowEval &) = delete;
    RowEval &operator=(const RowEval &) = delete;

    /** Take ownership of freshly computed arrays. */
    void
    adopt(std::vector<double> hc, std::vector<dram::CellLocation> cells)
    {
        ownedHc = std::move(hc);
        ownedLoc = std::move(cells);
        backing.reset();
        hcFirst = ownedHc;
        loc = ownedLoc;
    }

    /**
     * View externally owned arrays (an mmapped snapshot page) without
     * copying; `keep_alive` pins the mapping for this curve's
     * lifetime.
     */
    void
    view(std::span<const double> hc,
         std::span<const dram::CellLocation> cells,
         std::shared_ptr<const void> keep_alive)
    {
        ownedHc.clear();
        ownedLoc.clear();
        backing = std::move(keep_alive);
        hcFirst = hc;
        loc = cells;
    }

    /** Number of cells flipped after `hammers` hammers. */
    unsigned
    flipsAt(double hammers) const
    {
        unsigned flips = 0;
        for (double hc : hcFirst)
            flips += hc <= hammers ? 1u : 0u;
        return flips;
    }

    /** Invoke fn(loc) for every cell flipped after `hammers` hammers. */
    template <typename Fn>
    void
    forEachFlip(double hammers, Fn &&fn) const
    {
        for (std::size_t i = 0; i < hcFirst.size(); ++i) {
            if (hcFirst[i] <= hammers)
                fn(loc[i]);
        }
    }

  private:
    std::vector<double> ownedHc;
    std::vector<dram::CellLocation> ownedLoc;
    std::shared_ptr<const void> backing;
};

/** Shared handle to a cached row evaluation. */
using RowEvalPtr = std::shared_ptr<const RowEval>;

/**
 * A persistence tier behind the RowEval RAM cache (snapshot reader,
 * eviction spill file, snapshot collector — see src/snap).
 *
 * Contract: load() must return either nullptr or a curve
 * byte-identical to what evaluateRow would compute for `key` — the
 * implementations guarantee this with key-verified, digest-checked
 * lookups that degrade to nullptr (live recompute) on any mismatch.
 * All three hooks are called outside the engine's shard locks and
 * must be thread-safe.
 */
class RowEvalStore
{
  public:
    virtual ~RowEvalStore() = default;

    /** A stored curve for `key`, or nullptr (= compute live). */
    virtual RowEvalPtr load(const EvalKey &key) = 0;

    /** `eval` was freshly computed (snapshot collection hook). */
    virtual void computed(const EvalKey &key, const RowEvalPtr &eval) = 0;

    /** `eval` fell off the RAM LRU (spill-to-disk hook). */
    virtual void evicted(const EvalKey &key, const RowEvalPtr &eval) = 0;
};

/** Closed-form evaluation of hammer tests against a CellModel. */
class AnalyticEngine
{
  public:
    /**
     * @param model Cell model of the module under test (not owned).
     * @param eval_cache_capacity Total RowEval cache entries across
     *        all shards (default kEvalCacheCapacity; tests shrink it
     *        to force evictions through the spill tier).
     */
    explicit AnalyticEngine(const CellModel &model,
                            std::size_t eval_cache_capacity =
                                kEvalCacheCapacity)
        : model(model), evalCapacity(eval_cache_capacity)
    {
    }

    /**
     * Attach (or detach, with nullptr) the persistence tier consulted
     * on RowEval cache misses. Setup-time only: callers attach the
     * store before concurrent evaluation starts (the FleetCache does
     * so at module construction); it is not synchronized against
     * in-flight rowEval calls.
     */
    void
    setEvalStore(std::shared_ptr<RowEvalStore> store)
    {
        evalStore = std::move(store);
    }

    const std::shared_ptr<RowEvalStore> &
    evalStoreRef() const
    {
        return evalStore;
    }

    /**
     * Damage a cell in victim_row accrues per hammer of the attack,
     * under the given conditions and written data pattern.
     *
     * Single-cell reference path: rowEval computes the same value with
     * the row-invariant factors hoisted; the equivalence tests compare
     * the two.
     */
    double hammerDamage(const VulnerableCell &cell, unsigned victim_row,
                        const HammerAttack &attack,
                        const Conditions &conditions,
                        const DataPattern &pattern) const;

    /**
     * The hammer count at which a cell flips (kNeverFlips when the
     * cell is ineligible under the pattern or receives no damage).
     * Single-cell reference path, like hammerDamage.
     */
    double cellHcFirst(const VulnerableCell &cell, unsigned victim_row,
                       const HammerAttack &attack,
                       const Conditions &conditions,
                       const DataPattern &pattern, unsigned trial) const;

    /**
     * The row-evaluation kernel: compute (or fetch from the sharded
     * LRU cache, or load from the attached RowEvalStore) the per-cell
     * HCfirst curve of victim_row under the given
     * attack/conditions/pattern/trial. All other queries — berTest,
     * rowHcFirst, the Tester's step search — consume this curve, so a
     * key probed N times costs one O(cells) kernel pass instead of N.
     *
     * Thread-safe (the cache mirrors CellModel::cellsOfRow's sharded
     * design) and deterministic: cached and stored values are pure
     * functions of the key, so hit/miss order cannot change any
     * result.
     */
    RowEvalPtr rowEval(unsigned victim_row, const HammerAttack &attack,
                       const Conditions &conditions,
                       const DataPattern &pattern, unsigned trial) const;

    /**
     * BER test: which cells of victim_row flip after `hammers` hammers.
     */
    RowBerResult berTest(unsigned victim_row, const HammerAttack &attack,
                         const Conditions &conditions,
                         const DataPattern &pattern, std::uint64_t hammers,
                         unsigned trial) const;

    /**
     * Exact row HCfirst: the minimum cell HCfirst over the row
     * (kNeverFlips when no cell can flip). The characterization
     * toolkit instead measures this with the paper's binary search;
     * tests compare the two.
     */
    double rowHcFirst(unsigned victim_row, const HammerAttack &attack,
                      const Conditions &conditions,
                      const DataPattern &pattern, unsigned trial) const;

    const CellModel &cellModel() const { return model; }

    //! RowEval cache geometry: kEvalCacheShards independent LRU shards
    //! of kEvalCacheCapacity / kEvalCacheShards entries each. Public
    //! so benches can size working sets against it explicitly.
    static constexpr std::size_t kEvalCacheShards = 16;
    static constexpr std::size_t kEvalCacheCapacity = 1024;

    /** The cache key rowEval derives for its arguments (exposed so
     *  persistence tiers and tests build byte-identical keys). */
    static EvalKey makeEvalKey(unsigned victim_row,
                               const HammerAttack &attack,
                               const Conditions &conditions,
                               const DataPattern &pattern, unsigned trial);

  private:
    /**
     * One LRU shard, mirroring CellModel::CacheShard: list front =
     * most recently used; the index maps the key hash to its list
     * node. The mutex guards both.
     */
    struct EvalShard
    {
        struct Entry
        {
            std::uint64_t hash;
            EvalKey key;
            RowEvalPtr eval;
        };
        mutable std::mutex mutex;
        mutable std::list<Entry> lru;
        mutable std::unordered_map<std::uint64_t,
                                   std::list<Entry>::iterator>
            index;
    };

    static std::uint64_t evalKeyHash(const EvalKey &key);

    /** The kernel pass itself (uncached). */
    RowEval evaluateRow(unsigned victim_row, const HammerAttack &attack,
                        const Conditions &conditions,
                        const DataPattern &pattern, unsigned trial) const;

    const CellModel &model;
    const std::size_t evalCapacity;
    std::shared_ptr<RowEvalStore> evalStore;
    mutable std::array<EvalShard, kEvalCacheShards> evalShards;
};

} // namespace rhs::rhmodel

#endif // RHS_RHMODEL_ANALYTIC_HH

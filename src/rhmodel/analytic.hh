/**
 * @file
 * Closed-form RowHammer outcome computation.
 *
 * Because the per-hammer damage rate is constant for a test with fixed
 * conditions, a cell's HCfirst is simply threshold * noise / rate. The
 * analytic engine exploits this to evaluate BER tests and HCfirst
 * searches over thousands of rows in microseconds, while remaining
 * bit-exact with the cycle-accurate FaultInjector path (property-tested
 * in tests/rhmodel_equivalence_test.cc).
 */

#ifndef RHS_RHMODEL_ANALYTIC_HH
#define RHS_RHMODEL_ANALYTIC_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "rhmodel/cell_model.hh"
#include "rhmodel/pattern.hh"

namespace rhs::rhmodel
{

/**
 * A hammer attack in physical row coordinates: every aggressor row is
 * activated once per "hammer" (so the paper's double-sided attack has
 * two aggressors and one hammer = one activation pair, §4.2).
 */
struct HammerAttack
{
    unsigned bank = 0;
    //! Physical rows activated once per hammer.
    std::vector<unsigned> aggressorRows;
    //! Row around which the data pattern was written (the paper writes
    //! the pattern to V and V±[1..8] relative to the double-sided
    //! victim V).
    unsigned patternCenter = 0;

    /** The standard double-sided attack on victim V (aggressors V±1). */
    static HammerAttack doubleSided(unsigned bank, unsigned victim_row);

    /** Single-sided attack: one aggressor row. */
    static HammerAttack singleSided(unsigned bank, unsigned aggressor_row);

    /**
     * TRRespass-style many-sided attack: `sides` aggressor rows at
     * stride 2 starting from first_aggressor, sandwiching victims
     * between them. Designed to overflow the capacity of in-DRAM TRR
     * trackers (§2.3).
     */
    static HammerAttack manySided(unsigned bank, unsigned first_aggressor,
                                  unsigned sides);

    /** Victim rows sandwiched between this attack's aggressors. */
    std::vector<unsigned> sandwichedVictims() const;
};

/** Outcome of an analytic BER test on one victim row. */
struct RowBerResult
{
    //! Locations of the cells that flipped.
    std::vector<dram::CellLocation> flips;
    //! Number of vulnerable cells in the row (flipped or not).
    unsigned vulnerableCells = 0;
};

/** Sentinel: the row/cell never flips under the given attack. */
inline constexpr double kNeverFlips = std::numeric_limits<double>::infinity();

/** Closed-form evaluation of hammer tests against a CellModel. */
class AnalyticEngine
{
  public:
    /** @param model Cell model of the module under test (not owned). */
    explicit AnalyticEngine(const CellModel &model) : model(model) {}

    /**
     * Damage a cell in victim_row accrues per hammer of the attack,
     * under the given conditions and written data pattern.
     */
    double hammerDamage(const VulnerableCell &cell, unsigned victim_row,
                        const HammerAttack &attack,
                        const Conditions &conditions,
                        const DataPattern &pattern) const;

    /**
     * The hammer count at which a cell flips (kNeverFlips when the
     * cell is ineligible under the pattern or receives no damage).
     */
    double cellHcFirst(const VulnerableCell &cell, unsigned victim_row,
                       const HammerAttack &attack,
                       const Conditions &conditions,
                       const DataPattern &pattern, unsigned trial) const;

    /**
     * BER test: which cells of victim_row flip after `hammers` hammers.
     */
    RowBerResult berTest(unsigned victim_row, const HammerAttack &attack,
                         const Conditions &conditions,
                         const DataPattern &pattern, std::uint64_t hammers,
                         unsigned trial) const;

    /**
     * Exact row HCfirst: the minimum cell HCfirst over the row
     * (kNeverFlips when no cell can flip). The characterization
     * toolkit instead measures this with the paper's binary search;
     * tests compare the two.
     */
    double rowHcFirst(unsigned victim_row, const HammerAttack &attack,
                      const Conditions &conditions,
                      const DataPattern &pattern, unsigned trial) const;

    const CellModel &cellModel() const { return model; }

  private:
    const CellModel &model;
};

} // namespace rhs::rhmodel

#endif // RHS_RHMODEL_ANALYTIC_HH

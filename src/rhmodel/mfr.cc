#include "rhmodel/mfr.hh"

#include "util/logging.hh"

namespace rhs::rhmodel
{

std::string
to_string(Mfr mfr)
{
    return std::string("Mfr. ") + letterOf(mfr);
}

char
letterOf(Mfr mfr)
{
    switch (mfr) {
      case Mfr::A: return 'A';
      case Mfr::B: return 'B';
      case Mfr::C: return 'C';
      case Mfr::D: return 'D';
    }
    RHS_PANIC("unhandled manufacturer");
}

} // namespace rhs::rhmodel

#include "rhmodel/analytic.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "obs/metrics.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace rhs::rhmodel
{

namespace
{

/**
 * RowEval cache metrics, aggregated over every AnalyticEngine in the
 * process (the size gauge sums live entries across engines; the
 * capacity gauge reports the per-engine capacity). Counter bumps are
 * striped and wait-free, so they never serialize concurrent sweeps —
 * and metrics never feed back into cache behaviour, per the obs
 * determinism contract.
 */
struct EvalCacheMetrics
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &evictions;
    obs::Gauge &size;

    EvalCacheMetrics()
        : hits(obs::Registry::global().counter("roweval.cache.hits")),
          misses(
              obs::Registry::global().counter("roweval.cache.misses")),
          evictions(obs::Registry::global().counter(
              "roweval.cache.evictions")),
          size(obs::Registry::global().gauge("roweval.cache.size"))
    {
        obs::Registry::global()
            .gauge("roweval.cache.capacity")
            .set(AnalyticEngine::kEvalCacheCapacity);
    }
};

EvalCacheMetrics &
evalCacheMetrics()
{
    static EvalCacheMetrics metrics;
    return metrics;
}

//! One warning per process on the first eviction: an evicting RowEval
//! cache means HCfirst probes of a working set larger than the cache
//! re-run the kernel, which is a sizing problem worth surfacing.
std::atomic<bool> g_eval_evict_warned{false};

} // namespace

HammerAttack
HammerAttack::doubleSided(unsigned bank, unsigned victim_row)
{
    // Same precondition as core::runCycleHammerTest: silently dropping
    // the missing neighbour would degrade to a single-sided attack the
    // caller did not ask for.
    RHS_ASSERT(victim_row >= 1,
               "double-sided victim needs both neighbours: row ",
               victim_row);
    HammerAttack attack;
    attack.bank = bank;
    attack.patternCenter = victim_row;
    attack.aggressorRows.push_back(victim_row - 1);
    attack.aggressorRows.push_back(victim_row + 1);
    return attack;
}

HammerAttack
HammerAttack::singleSided(unsigned bank, unsigned aggressor_row)
{
    HammerAttack attack;
    attack.bank = bank;
    attack.patternCenter = aggressor_row;
    attack.aggressorRows.push_back(aggressor_row);
    return attack;
}

HammerAttack
HammerAttack::manySided(unsigned bank, unsigned first_aggressor,
                        unsigned sides)
{
    RHS_ASSERT(sides >= 2, "a many-sided attack needs >= 2 aggressors");
    HammerAttack attack;
    attack.bank = bank;
    for (unsigned s = 0; s < sides; ++s)
        attack.aggressorRows.push_back(first_aggressor + 2 * s);
    // Centre the data pattern on the middle sandwiched victim.
    attack.patternCenter = first_aggressor + sides - 1;
    return attack;
}

std::vector<unsigned>
HammerAttack::sandwichedVictims() const
{
    std::vector<unsigned> victims;
    for (std::size_t i = 1; i < aggressorRows.size(); ++i) {
        if (aggressorRows[i] == aggressorRows[i - 1] + 2)
            victims.push_back(aggressorRows[i] - 1);
    }
    return victims;
}

double
AnalyticEngine::hammerDamage(const VulnerableCell &cell,
                             unsigned victim_row,
                             const HammerAttack &attack,
                             const Conditions &conditions,
                             const DataPattern &pattern) const
{
    double positional = 0.0;
    for (unsigned aggressor : attack.aggressorRows) {
        const unsigned distance =
            aggressor > victim_row ? aggressor - victim_row
                                   : victim_row - aggressor;
        const double dist_factor = model.distanceFactor(distance);
        if (dist_factor == 0.0)
            continue;
        const std::uint8_t aggr_byte = pattern.byteAt(
            aggressor, attack.patternCenter, cell.loc.column);
        positional += dist_factor * model.dataFactor(cell, aggr_byte);
    }
    if (positional == 0.0)
        return 0.0;
    return positional * model.timingFactor(conditions) *
           model.temperatureFactor(cell, conditions.temperature);
}

double
AnalyticEngine::cellHcFirst(const VulnerableCell &cell,
                            unsigned victim_row,
                            const HammerAttack &attack,
                            const Conditions &conditions,
                            const DataPattern &pattern,
                            unsigned trial) const
{
    // A cell only flips when the pattern stores its charged value.
    if (pattern.bitAt(victim_row, attack.patternCenter, cell.loc.column,
                      cell.loc.bit) != cell.chargedValue) {
        return kNeverFlips;
    }
    const double rate =
        hammerDamage(cell, victim_row, attack, conditions, pattern);
    if (rate <= 0.0)
        return kNeverFlips;
    return cell.threshold *
           model.trialNoise(cell, trial, conditions.temperature) / rate;
}

namespace
{

/**
 * Per-thread scratch deduplicating pattern-byte lookups by column.
 * Slot (stream, column) is valid for the current epoch only; begin()
 * bumps the epoch, so no per-eval clearing is needed. Only the Random
 * pattern reaches this path — every other Table 1 pattern is
 * column-invariant and resolves to one byte per row outside the cell
 * loop.
 */
struct PatternByteMemo
{
    std::vector<std::uint32_t> epoch;
    std::vector<std::uint8_t> bytes;
    std::uint32_t current = 0;

    void
    begin(std::size_t slots)
    {
        if (epoch.size() < slots) {
            epoch.assign(slots, 0);
            bytes.resize(slots);
        }
        if (++current == 0) {
            // Epoch counter wrapped: invalidate every slot once.
            std::fill(epoch.begin(), epoch.end(), 0);
            current = 1;
        }
    }

    template <typename Gen>
    std::uint8_t
    at(std::size_t slot, Gen &&gen)
    {
        if (epoch[slot] != current) {
            epoch[slot] = current;
            bytes[slot] = gen();
        }
        return bytes[slot];
    }
};

thread_local PatternByteMemo g_byte_memo;

} // namespace

RowEval
AnalyticEngine::evaluateRow(unsigned victim_row,
                            const HammerAttack &attack,
                            const Conditions &conditions,
                            const DataPattern &pattern,
                            unsigned trial) const
{
    RowEval eval;
    // Reference, not copy: valid for this scope per the cellsOfRow
    // keep-alive contract.
    const auto &cells = model.cellsOfRow(attack.bank, victim_row);
    eval.vulnerableCells = static_cast<unsigned>(cells.size());
    if (cells.empty())
        return eval;

    // --- Row-invariant factors, hoisted out of the cell loop. ---
    // Each value is computed exactly as the per-cell reference path
    // (cellHcFirst) computes it, so the per-cell arithmetic below is
    // bit-identical; only the redundant recomputation is removed.
    const double timing = model.timingFactor(conditions);

    struct ActiveAggressor
    {
        unsigned row;
        double distFactor;
        std::uint8_t constByte; //!< Row byte when column-invariant.
    };
    std::vector<ActiveAggressor> active;
    active.reserve(attack.aggressorRows.size());
    const bool invariant = pattern.columnInvariant();
    for (unsigned aggressor : attack.aggressorRows) {
        const unsigned distance =
            aggressor > victim_row ? aggressor - victim_row
                                   : victim_row - aggressor;
        const double dist_factor = model.distanceFactor(distance);
        if (dist_factor == 0.0)
            continue; // Out of coupling range: contributes nothing.
        ActiveAggressor entry{aggressor, dist_factor, 0};
        if (invariant) {
            entry.constByte =
                pattern.byteAt(aggressor, attack.patternCenter, 0);
        }
        active.push_back(entry);
    }

    const std::uint8_t victim_const_byte =
        invariant ? pattern.byteAt(victim_row, attack.patternCenter, 0)
                  : 0;

    // Column-dependent (Random) patterns deduplicate byteAt by column:
    // memo stream 0 holds the victim row, streams 1..k the active
    // aggressors.
    const std::size_t columns = model.columnsPerRow();
    PatternByteMemo *memo = nullptr;
    if (!invariant) {
        memo = &g_byte_memo;
        memo->begin((active.size() + 1) * columns);
    }

    // --- The per-cell kernel: SoA output, branch-light loop. ---
    eval.hcFirst.reserve(cells.size());
    eval.loc.reserve(cells.size());
    for (const auto &cell : cells) {
        const unsigned col = cell.loc.column;
        const std::uint8_t victim_byte =
            invariant ? victim_const_byte
                      : memo->at(col, [&] {
                            return pattern.byteAt(
                                victim_row, attack.patternCenter, col);
                        });
        // A cell only flips when the pattern stores its charged value.
        if (static_cast<bool>((victim_byte >> cell.loc.bit) & 1u) !=
            cell.chargedValue) {
            continue;
        }

        double positional = 0.0;
        for (std::size_t a = 0; a < active.size(); ++a) {
            const std::uint8_t aggr_byte =
                invariant ? active[a].constByte
                          : memo->at((a + 1) * columns + col, [&] {
                                return pattern.byteAt(
                                    active[a].row, attack.patternCenter,
                                    col);
                            });
            positional +=
                active[a].distFactor * model.dataFactor(cell, aggr_byte);
        }
        if (positional == 0.0)
            continue;
        const double rate =
            positional * timing *
            model.temperatureFactor(cell, conditions.temperature);
        if (rate <= 0.0)
            continue;
        const double hc =
            cell.threshold *
            model.trialNoise(cell, trial, conditions.temperature) / rate;
        eval.hcFirst.push_back(hc);
        eval.loc.push_back(cell.loc);
        if (hc < eval.minHcFirst)
            eval.minHcFirst = hc;
    }
    return eval;
}

std::uint64_t
AnalyticEngine::evalKeyHash(const EvalKey &key)
{
    std::uint64_t h = util::hashTuple(
        key.bank, key.victimRow, key.patternCenter, key.trial,
        static_cast<std::uint64_t>(key.patternId), key.patternSeed,
        std::bit_cast<std::uint64_t>(key.temperature),
        std::bit_cast<std::uint64_t>(key.tAggOn),
        std::bit_cast<std::uint64_t>(key.tAggOff),
        static_cast<std::uint64_t>(key.aggressors.size()));
    for (unsigned aggressor : key.aggressors)
        h = util::hashCombine(h, aggressor);
    return h;
}

RowEvalPtr
AnalyticEngine::rowEval(unsigned victim_row, const HammerAttack &attack,
                        const Conditions &conditions,
                        const DataPattern &pattern, unsigned trial) const
{
    EvalKey key;
    key.bank = attack.bank;
    key.victimRow = victim_row;
    key.patternCenter = attack.patternCenter;
    key.trial = trial;
    key.patternId = pattern.id();
    key.patternSeed =
        pattern.columnInvariant() ? 0 : pattern.patternSeed();
    key.temperature = conditions.temperature;
    key.tAggOn = conditions.tAggOn;
    key.tAggOff = conditions.tAggOff;
    key.aggressors = attack.aggressorRows;

    const std::uint64_t hash = evalKeyHash(key);
    auto &shard = evalShards[hash % kEvalCacheShards];
    constexpr std::size_t shard_capacity =
        kEvalCacheCapacity / kEvalCacheShards;

    auto &metrics = evalCacheMetrics();
    {
        std::lock_guard lock(shard.mutex);
        if (auto it = shard.index.find(hash);
            it != shard.index.end() && it->second->key == key) {
            // Promote on hit, like the cellsOfRow LRU.
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            metrics.hits.add(1);
            return shard.lru.front().eval;
        }
    }
    metrics.misses.add(1);

    // Miss: run the kernel outside the lock so other threads' lookups
    // (and evaluations of other keys in this shard) proceed
    // concurrently.
    auto eval = std::make_shared<const RowEval>(
        evaluateRow(victim_row, attack, conditions, pattern, trial));

    std::lock_guard lock(shard.mutex);
    if (auto it = shard.index.find(hash); it != shard.index.end()) {
        if (it->second->key == key) {
            // Another thread evaluated this key while we did: keep the
            // incumbent (the kernel is deterministic, both are equal).
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            return shard.lru.front().eval;
        }
        // 64-bit hash collision between different keys: replace the
        // incumbent. Results stay exact — only the hit rate suffers.
        shard.lru.erase(it->second);
        shard.index.erase(it);
        metrics.size.add(-1);
    }
    shard.lru.push_front({hash, std::move(key), eval});
    shard.index.emplace(hash, shard.lru.begin());
    metrics.size.add(1);
    if (shard.lru.size() > shard_capacity) {
        shard.index.erase(shard.lru.back().hash);
        shard.lru.pop_back();
        metrics.evictions.add(1);
        metrics.size.add(-1);
        if (!g_eval_evict_warned.exchange(true)) {
            util::warn("roweval cache evicting (capacity ",
                       kEvalCacheCapacity,
                       "): working set exceeds the cache; repeated "
                       "probes will re-run the kernel");
        }
    }
    return eval;
}

RowBerResult
AnalyticEngine::berTest(unsigned victim_row, const HammerAttack &attack,
                        const Conditions &conditions,
                        const DataPattern &pattern, std::uint64_t hammers,
                        unsigned trial) const
{
    const auto eval =
        rowEval(victim_row, attack, conditions, pattern, trial);
    RowBerResult result;
    result.vulnerableCells = eval->vulnerableCells;
    eval->forEachFlip(static_cast<double>(hammers),
                      [&](const dram::CellLocation &loc) {
                          result.flips.push_back(loc);
                      });
    return result;
}

double
AnalyticEngine::rowHcFirst(unsigned victim_row, const HammerAttack &attack,
                           const Conditions &conditions,
                           const DataPattern &pattern, unsigned trial) const
{
    return rowEval(victim_row, attack, conditions, pattern, trial)
        ->minHcFirst;
}

} // namespace rhs::rhmodel

#include "rhmodel/analytic.hh"

#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace rhs::rhmodel
{

HammerAttack
HammerAttack::doubleSided(unsigned bank, unsigned victim_row)
{
    HammerAttack attack;
    attack.bank = bank;
    attack.patternCenter = victim_row;
    if (victim_row > 0)
        attack.aggressorRows.push_back(victim_row - 1);
    attack.aggressorRows.push_back(victim_row + 1);
    return attack;
}

HammerAttack
HammerAttack::singleSided(unsigned bank, unsigned aggressor_row)
{
    HammerAttack attack;
    attack.bank = bank;
    attack.patternCenter = aggressor_row;
    attack.aggressorRows.push_back(aggressor_row);
    return attack;
}

HammerAttack
HammerAttack::manySided(unsigned bank, unsigned first_aggressor,
                        unsigned sides)
{
    RHS_ASSERT(sides >= 2, "a many-sided attack needs >= 2 aggressors");
    HammerAttack attack;
    attack.bank = bank;
    for (unsigned s = 0; s < sides; ++s)
        attack.aggressorRows.push_back(first_aggressor + 2 * s);
    // Centre the data pattern on the middle sandwiched victim.
    attack.patternCenter = first_aggressor + sides - 1;
    return attack;
}

std::vector<unsigned>
HammerAttack::sandwichedVictims() const
{
    std::vector<unsigned> victims;
    for (std::size_t i = 1; i < aggressorRows.size(); ++i) {
        if (aggressorRows[i] == aggressorRows[i - 1] + 2)
            victims.push_back(aggressorRows[i] - 1);
    }
    return victims;
}

double
AnalyticEngine::hammerDamage(const VulnerableCell &cell,
                             unsigned victim_row,
                             const HammerAttack &attack,
                             const Conditions &conditions,
                             const DataPattern &pattern) const
{
    double positional = 0.0;
    for (unsigned aggressor : attack.aggressorRows) {
        const unsigned distance =
            aggressor > victim_row ? aggressor - victim_row
                                   : victim_row - aggressor;
        const double dist_factor = model.distanceFactor(distance);
        if (dist_factor == 0.0)
            continue;
        const std::uint8_t aggr_byte = pattern.byteAt(
            aggressor, attack.patternCenter, cell.loc.column);
        positional += dist_factor * model.dataFactor(cell, aggr_byte);
    }
    if (positional == 0.0)
        return 0.0;
    return positional * model.timingFactor(conditions) *
           model.temperatureFactor(cell, conditions.temperature);
}

double
AnalyticEngine::cellHcFirst(const VulnerableCell &cell,
                            unsigned victim_row,
                            const HammerAttack &attack,
                            const Conditions &conditions,
                            const DataPattern &pattern,
                            unsigned trial) const
{
    // A cell only flips when the pattern stores its charged value.
    if (pattern.bitAt(victim_row, attack.patternCenter, cell.loc.column,
                      cell.loc.bit) != cell.chargedValue) {
        return kNeverFlips;
    }
    const double rate =
        hammerDamage(cell, victim_row, attack, conditions, pattern);
    if (rate <= 0.0)
        return kNeverFlips;
    return cell.threshold *
           model.trialNoise(cell, trial, conditions.temperature) / rate;
}

RowBerResult
AnalyticEngine::berTest(unsigned victim_row, const HammerAttack &attack,
                        const Conditions &conditions,
                        const DataPattern &pattern, std::uint64_t hammers,
                        unsigned trial) const
{
    RowBerResult result;
    // Reference, not copy: valid for this scope per the cellsOfRow
    // keep-alive contract.
    const auto &cells = model.cellsOfRow(attack.bank, victim_row);
    result.vulnerableCells = static_cast<unsigned>(cells.size());
    for (const auto &cell : cells) {
        const double hc = cellHcFirst(cell, victim_row, attack,
                                      conditions, pattern, trial);
        if (hc <= static_cast<double>(hammers))
            result.flips.push_back(cell.loc);
    }
    return result;
}

double
AnalyticEngine::rowHcFirst(unsigned victim_row, const HammerAttack &attack,
                           const Conditions &conditions,
                           const DataPattern &pattern, unsigned trial) const
{
    double best = kNeverFlips;
    for (const auto &cell : model.cellsOfRow(attack.bank, victim_row)) {
        const double hc = cellHcFirst(cell, victim_row, attack,
                                      conditions, pattern, trial);
        if (hc < best)
            best = hc;
    }
    return best;
}

} // namespace rhs::rhmodel

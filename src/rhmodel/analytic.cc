#include "rhmodel/analytic.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "obs/metrics.hh"
#include "rhmodel/kernel.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace rhs::rhmodel
{

namespace
{

/**
 * RowEval cache metrics, aggregated over every AnalyticEngine in the
 * process (the size gauge sums live entries across engines; the
 * capacity gauge reports the per-engine capacity). Counter bumps are
 * striped and wait-free, so they never serialize concurrent sweeps —
 * and metrics never feed back into cache behaviour, per the obs
 * determinism contract.
 */
struct EvalCacheMetrics
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &evictions;
    obs::Gauge &size;

    EvalCacheMetrics()
        : hits(obs::Registry::global().counter("roweval.cache.hits")),
          misses(
              obs::Registry::global().counter("roweval.cache.misses")),
          evictions(obs::Registry::global().counter(
              "roweval.cache.evictions")),
          size(obs::Registry::global().gauge("roweval.cache.size"))
    {
        obs::Registry::global()
            .gauge("roweval.cache.capacity")
            .set(AnalyticEngine::kEvalCacheCapacity);
    }
};

EvalCacheMetrics &
evalCacheMetrics()
{
    static EvalCacheMetrics metrics;
    return metrics;
}

//! One warning per process on the first eviction: an evicting RowEval
//! cache means HCfirst probes of a working set larger than the cache
//! re-run the kernel, which is a sizing problem worth surfacing.
std::atomic<bool> g_eval_evict_warned{false};

} // namespace

HammerAttack
HammerAttack::doubleSided(unsigned bank, unsigned victim_row)
{
    // Same precondition as core::runCycleHammerTest: silently dropping
    // the missing neighbour would degrade to a single-sided attack the
    // caller did not ask for.
    RHS_ASSERT(victim_row >= 1,
               "double-sided victim needs both neighbours: row ",
               victim_row);
    HammerAttack attack;
    attack.bank = bank;
    attack.patternCenter = victim_row;
    attack.aggressorRows.push_back(victim_row - 1);
    attack.aggressorRows.push_back(victim_row + 1);
    return attack;
}

HammerAttack
HammerAttack::singleSided(unsigned bank, unsigned aggressor_row)
{
    HammerAttack attack;
    attack.bank = bank;
    attack.patternCenter = aggressor_row;
    attack.aggressorRows.push_back(aggressor_row);
    return attack;
}

HammerAttack
HammerAttack::manySided(unsigned bank, unsigned first_aggressor,
                        unsigned sides)
{
    RHS_ASSERT(sides >= 2, "a many-sided attack needs >= 2 aggressors");
    HammerAttack attack;
    attack.bank = bank;
    for (unsigned s = 0; s < sides; ++s)
        attack.aggressorRows.push_back(first_aggressor + 2 * s);
    // Centre the data pattern on the middle sandwiched victim.
    attack.patternCenter = first_aggressor + sides - 1;
    return attack;
}

std::vector<unsigned>
HammerAttack::sandwichedVictims() const
{
    std::vector<unsigned> victims;
    for (std::size_t i = 1; i < aggressorRows.size(); ++i) {
        if (aggressorRows[i] == aggressorRows[i - 1] + 2)
            victims.push_back(aggressorRows[i] - 1);
    }
    return victims;
}

double
AnalyticEngine::hammerDamage(const VulnerableCell &cell,
                             unsigned victim_row,
                             const HammerAttack &attack,
                             const Conditions &conditions,
                             const DataPattern &pattern) const
{
    double positional = 0.0;
    for (unsigned aggressor : attack.aggressorRows) {
        const unsigned distance =
            aggressor > victim_row ? aggressor - victim_row
                                   : victim_row - aggressor;
        const double dist_factor = model.distanceFactor(distance);
        if (dist_factor == 0.0)
            continue;
        const std::uint8_t aggr_byte = pattern.byteAt(
            aggressor, attack.patternCenter, cell.loc.column);
        positional += dist_factor * model.dataFactor(cell, aggr_byte);
    }
    if (positional == 0.0)
        return 0.0;
    return positional * model.timingFactor(conditions) *
           model.temperatureFactor(cell, conditions.temperature);
}

double
AnalyticEngine::cellHcFirst(const VulnerableCell &cell,
                            unsigned victim_row,
                            const HammerAttack &attack,
                            const Conditions &conditions,
                            const DataPattern &pattern,
                            unsigned trial) const
{
    // A cell only flips when the pattern stores its charged value.
    if (pattern.bitAt(victim_row, attack.patternCenter, cell.loc.column,
                      cell.loc.bit) != cell.chargedValue) {
        return kNeverFlips;
    }
    const double rate =
        hammerDamage(cell, victim_row, attack, conditions, pattern);
    if (rate <= 0.0)
        return kNeverFlips;
    return cell.threshold *
           model.trialNoise(cell, trial, conditions.temperature) / rate;
}

namespace
{

/**
 * Per-thread SoA staging for one kernel pass: the per-cell parameter
 * arrays the SIMD lanes stream through, plus the per-row pattern-byte
 * tables of the Random pattern (stream 0 = victim row, streams 1..k =
 * the active aggressors). Buffers only ever grow, so steady-state
 * evaluation allocates nothing.
 */
struct KernelScratch
{
    std::vector<std::uint64_t> seedHash;
    std::vector<double> threshold;
    std::vector<double> tinf;
    std::vector<double> width;
    std::vector<std::uint32_t> column;
    std::vector<std::uint64_t> bit;
    std::vector<std::uint64_t> charged;
    std::vector<double> outHc;
    std::vector<std::uint8_t> byteTables;
    std::vector<double> aggrDist;
    std::vector<const std::uint8_t *> aggrBytes;
    std::vector<std::uint8_t> aggrConstByte;

    void
    resizeCells(std::size_t n)
    {
        seedHash.resize(n);
        threshold.resize(n);
        tinf.resize(n);
        width.resize(n);
        column.resize(n);
        bit.resize(n);
        charged.resize(n);
        outHc.resize(n);
    }
};

thread_local KernelScratch g_scratch;

} // namespace

RowEval
AnalyticEngine::evaluateRow(unsigned victim_row,
                            const HammerAttack &attack,
                            const Conditions &conditions,
                            const DataPattern &pattern,
                            unsigned trial) const
{
    RowEval eval;
    // Reference, not copy: valid for this scope per the cellsOfRow
    // keep-alive contract.
    const auto &cells = model.cellsOfRow(attack.bank, victim_row);
    eval.vulnerableCells = static_cast<unsigned>(cells.size());
    if (cells.empty())
        return eval;

    // --- Row-invariant factors, hoisted out of the kernel pass. ---
    // Each value is computed exactly as the per-cell reference path
    // (cellHcFirst) computes it, so the kernel arithmetic is
    // bit-identical; only the redundant recomputation is removed.
    const double timing = model.timingFactor(conditions);

    struct ActiveAggressor
    {
        unsigned row;
        double distFactor;
    };
    std::vector<ActiveAggressor> active;
    active.reserve(attack.aggressorRows.size());
    const bool invariant = pattern.columnInvariant();
    for (unsigned aggressor : attack.aggressorRows) {
        const unsigned distance =
            aggressor > victim_row ? aggressor - victim_row
                                   : victim_row - aggressor;
        const double dist_factor = model.distanceFactor(distance);
        if (dist_factor == 0.0)
            continue; // Out of coupling range: contributes nothing.
        active.push_back({aggressor, dist_factor});
    }

    // --- Stage the SoA cell arrays the SIMD lanes stream through. ---
    const auto &kernel = kern::active();
    auto &scratch = g_scratch;
    const std::size_t n = cells.size();
    scratch.resizeCells(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &cell = cells[i];
        scratch.seedHash[i] = util::splitMix64(cell.seed);
        scratch.threshold[i] = cell.threshold;
        scratch.tinf[i] = cell.tinf;
        scratch.width[i] = cell.width;
        scratch.column[i] = cell.loc.column;
        scratch.bit[i] = cell.loc.bit;
        scratch.charged[i] = cell.chargedValue ? 1 : 0;
    }

    // Pattern bytes: column-invariant patterns collapse to one byte
    // per row; the Random pattern gets per-row byte tables filled by
    // the kernel's vectorized hash (one table per active stream).
    const std::size_t columns = model.columnsPerRow();
    scratch.aggrDist.resize(active.size());
    scratch.aggrBytes.assign(active.size(), nullptr);
    scratch.aggrConstByte.assign(active.size(), 0);
    for (std::size_t a = 0; a < active.size(); ++a)
        scratch.aggrDist[a] = active[a].distFactor;

    kern::KernelArgs args;
    if (invariant) {
        args.victimConstByte =
            pattern.byteAt(victim_row, attack.patternCenter, 0);
        for (std::size_t a = 0; a < active.size(); ++a) {
            scratch.aggrConstByte[a] =
                pattern.byteAt(active[a].row, attack.patternCenter, 0);
        }
    } else {
        scratch.byteTables.resize((active.size() + 1) * columns);
        const std::uint64_t pattern_hash =
            util::splitMix64(pattern.patternSeed());
        std::uint8_t *victim_table = scratch.byteTables.data();
        kernel.fill(util::hashCombine(pattern_hash, victim_row),
                    victim_table, columns);
        args.victimBytes = victim_table;
        for (std::size_t a = 0; a < active.size(); ++a) {
            std::uint8_t *table =
                scratch.byteTables.data() + (a + 1) * columns;
            kernel.fill(
                util::hashCombine(pattern_hash, active[a].row),
                table, columns);
            scratch.aggrBytes[a] = table;
        }
    }

    args.n = n;
    args.seedHash = scratch.seedHash.data();
    args.threshold = scratch.threshold.data();
    args.tinf = scratch.tinf.data();
    args.width = scratch.width.data();
    args.column = scratch.column.data();
    args.bit = scratch.bit.data();
    args.charged = scratch.charged.data();
    args.aggrCount = active.size();
    args.aggrDist = scratch.aggrDist.data();
    args.aggrBytes = scratch.aggrBytes.data();
    args.aggrConstByte = scratch.aggrConstByte.data();
    args.timing = timing;
    args.temperature = conditions.temperature;
    args.dataBase = model.profile().dataFactorBase;
    args.trialSigma = model.profile().trialNoiseSigma;
    args.trial = trial;
    args.tempKey = static_cast<std::uint64_t>(
        std::llround(conditions.temperature * 10.0));
    args.outHc = scratch.outHc.data();

    // --- One dispatched kernel pass, then compact the survivors. ---
    eval.minHcFirst = kernel.kernel(args);
    kernel.passes->add(1);
    std::vector<double> hc;
    std::vector<dram::CellLocation> loc;
    hc.reserve(n);
    loc.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (scratch.outHc[i] < kNeverFlips) {
            hc.push_back(scratch.outHc[i]);
            loc.push_back(cells[i].loc);
        }
    }
    eval.adopt(std::move(hc), std::move(loc));
    return eval;
}

std::uint64_t
AnalyticEngine::evalKeyHash(const EvalKey &key)
{
    std::uint64_t h = util::hashTuple(
        key.bank, key.victimRow, key.patternCenter, key.trial,
        static_cast<std::uint64_t>(key.patternId), key.patternSeed,
        std::bit_cast<std::uint64_t>(key.temperature),
        std::bit_cast<std::uint64_t>(key.tAggOn),
        std::bit_cast<std::uint64_t>(key.tAggOff),
        static_cast<std::uint64_t>(key.aggressors.size()));
    for (unsigned aggressor : key.aggressors)
        h = util::hashCombine(h, aggressor);
    return h;
}

EvalKey
AnalyticEngine::makeEvalKey(unsigned victim_row,
                            const HammerAttack &attack,
                            const Conditions &conditions,
                            const DataPattern &pattern, unsigned trial)
{
    EvalKey key;
    key.bank = attack.bank;
    key.victimRow = victim_row;
    key.patternCenter = attack.patternCenter;
    key.trial = trial;
    key.patternId = pattern.id();
    key.patternSeed =
        pattern.columnInvariant() ? 0 : pattern.patternSeed();
    key.temperature = conditions.temperature;
    key.tAggOn = conditions.tAggOn;
    key.tAggOff = conditions.tAggOff;
    key.aggressors = attack.aggressorRows;
    return key;
}

RowEvalPtr
AnalyticEngine::rowEval(unsigned victim_row, const HammerAttack &attack,
                        const Conditions &conditions,
                        const DataPattern &pattern, unsigned trial) const
{
    EvalKey key =
        makeEvalKey(victim_row, attack, conditions, pattern, trial);

    const std::uint64_t hash = evalKeyHash(key);
    auto &shard = evalShards[hash % kEvalCacheShards];
    const std::size_t shard_capacity =
        std::max<std::size_t>(1, evalCapacity / kEvalCacheShards);

    auto &metrics = evalCacheMetrics();
    {
        std::lock_guard lock(shard.mutex);
        if (auto it = shard.index.find(hash);
            it != shard.index.end() && it->second->key == key) {
            // Promote on hit, like the cellsOfRow LRU.
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            metrics.hits.add(1);
            return shard.lru.front().eval;
        }
    }
    metrics.misses.add(1);

    // Miss: consult the persistence tier, else run the kernel — both
    // outside the lock so other threads' lookups (and evaluations of
    // other keys in this shard) proceed concurrently. A store can only
    // return a byte-identical curve or nullptr (its lookups are
    // key-verified and digest-checked), so which path filled `eval`
    // is unobservable in any result.
    RowEvalPtr eval;
    if (evalStore)
        eval = evalStore->load(key);
    if (!eval) {
        eval = std::make_shared<const RowEval>(
            evaluateRow(victim_row, attack, conditions, pattern, trial));
        if (evalStore)
            evalStore->computed(key, eval);
    }

    // The evicted entry (if any) leaves the shard under the lock but
    // is handed to the store after it, so a slow spill write never
    // blocks other threads' probes of this shard.
    EvalKey spilled_key;
    RowEvalPtr spilled_eval;
    {
        std::lock_guard lock(shard.mutex);
        if (auto it = shard.index.find(hash); it != shard.index.end()) {
            if (it->second->key == key) {
                // Another thread evaluated this key while we did: keep
                // the incumbent (deterministic, both are equal).
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second);
                return shard.lru.front().eval;
            }
            // 64-bit hash collision between different keys: replace
            // the incumbent. Results stay exact — only the hit rate
            // suffers.
            shard.lru.erase(it->second);
            shard.index.erase(it);
            metrics.size.add(-1);
        }
        shard.lru.push_front({hash, std::move(key), eval});
        shard.index.emplace(hash, shard.lru.begin());
        metrics.size.add(1);
        if (shard.lru.size() > shard_capacity) {
            auto &victim = shard.lru.back();
            spilled_key = std::move(victim.key);
            spilled_eval = std::move(victim.eval);
            shard.index.erase(victim.hash);
            shard.lru.pop_back();
            metrics.evictions.add(1);
            metrics.size.add(-1);
            if (!g_eval_evict_warned.exchange(true)) {
                util::warn(
                    "roweval cache evicting (capacity ", evalCapacity,
                    "): working set exceeds the cache; repeated "
                    "probes will re-run the kernel",
                    evalStore ? " or hit the eviction store" : "");
            }
        }
    }
    if (spilled_eval && evalStore)
        evalStore->evicted(spilled_key, spilled_eval);
    return eval;
}

RowBerResult
AnalyticEngine::berTest(unsigned victim_row, const HammerAttack &attack,
                        const Conditions &conditions,
                        const DataPattern &pattern, std::uint64_t hammers,
                        unsigned trial) const
{
    const auto eval =
        rowEval(victim_row, attack, conditions, pattern, trial);
    RowBerResult result;
    result.vulnerableCells = eval->vulnerableCells;
    eval->forEachFlip(static_cast<double>(hammers),
                      [&](const dram::CellLocation &loc) {
                          result.flips.push_back(loc);
                      });
    return result;
}

double
AnalyticEngine::rowHcFirst(unsigned victim_row, const HammerAttack &attack,
                           const Conditions &conditions,
                           const DataPattern &pattern, unsigned trial) const
{
    return rowEval(victim_row, attack, conditions, pattern, trial)
        ->minHcFirst;
}

} // namespace rhs::rhmodel

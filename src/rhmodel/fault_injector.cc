#include "rhmodel/fault_injector.hh"

#include "util/logging.hh"

namespace rhs::rhmodel
{

FaultInjector::FaultInjector(const CellModel &model, dram::Module &module)
    : model(model), module(module)
{
    module.addListener(this);
}

void
FaultInjector::beginTest()
{
    victims.clear();
    flipCount = 0;
}

std::vector<FaultInjector::CellState> &
FaultInjector::victimCells(unsigned bank, unsigned row)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(bank) << 32) | row;
    auto it = victims.find(key);
    if (it == victims.end()) {
        std::vector<CellState> states;
        for (auto &cell : model.cellsOfRow(bank, row)) {
            CellState state;
            state.cell = cell;
            states.push_back(state);
        }
        it = victims.emplace(key, std::move(states)).first;
    }
    return it->second;
}

void
FaultInjector::refreshRow(unsigned bank, unsigned physical_row)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(bank) << 32) | physical_row;
    auto it = victims.find(key);
    if (it == victims.end())
        return;
    for (auto &state : it->second)
        state.damage = 0.0;
}

void
FaultInjector::refreshAllRows()
{
    for (auto &[key, states] : victims) {
        (void)key;
        for (auto &state : states)
            state.damage = 0.0;
    }
}

void
FaultInjector::onActivation(const dram::ActivationRecord &record)
{
    // Activating a row restores the charge of its own cells (an
    // activation is a refresh), so an aggressor accumulates no
    // disturbance itself.
    refreshRow(record.bank, record.physicalRow);

    const unsigned rows = module.geometry().rowsPerBank();
    for (int delta : {-2, -1, 1, 2}) {
        const long victim =
            static_cast<long>(record.physicalRow) + delta;
        if (victim < 0 || victim >= static_cast<long>(rows))
            continue;
        accumulate(record.bank, static_cast<unsigned>(victim),
                   static_cast<unsigned>(std::abs(delta)), record);
    }
}

void
FaultInjector::accumulate(unsigned bank, unsigned victim_row,
                          unsigned distance,
                          const dram::ActivationRecord &record)
{
    const double dist_factor = model.distanceFactor(distance);
    if (dist_factor == 0.0)
        return;

    Conditions conditions;
    conditions.temperature = temperature;
    conditions.tAggOn = record.onTime;
    conditions.tAggOff = record.offTime;
    const double env_factor = model.timingFactor(conditions);

    for (auto &state : victimCells(bank, victim_row)) {
        if (state.resolved)
            continue;

        if (state.tempFactor < 0.0) {
            state.tempFactor =
                model.temperatureFactor(state.cell, temperature);
        }
        auto data_it =
            state.dataFactorByAggressor.find(record.physicalRow);
        if (data_it == state.dataFactorByAggressor.end()) {
            const std::uint8_t aggr_byte =
                module.chip(state.cell.loc.chip)
                    .readByte(bank, record.physicalRow,
                              state.cell.loc.column);
            data_it = state.dataFactorByAggressor
                          .emplace(record.physicalRow,
                                   model.dataFactor(state.cell,
                                                    aggr_byte))
                          .first;
        }
        state.damage +=
            dist_factor * env_factor * state.tempFactor * data_it->second;

        if (!state.thresholdKnown) {
            state.noisyThreshold =
                state.cell.threshold *
                model.trialNoise(state.cell, trial, temperature);
            state.thresholdKnown = true;
        }

        if (state.damage + 1e-12 >= state.noisyThreshold) {
            // Threshold crossed: the flip manifests only if the stored
            // bit currently holds the cell's charged value.
            const std::uint8_t victim_byte =
                module.chip(state.cell.loc.chip)
                    .readByte(bank, victim_row, state.cell.loc.column);
            const bool stored =
                (victim_byte >> state.cell.loc.bit) & 1;
            if (stored == state.cell.chargedValue) {
                module.flipBit(state.cell.loc);
                ++flipCount;
            }
            state.resolved = true;
        }
    }
}

} // namespace rhs::rhmodel

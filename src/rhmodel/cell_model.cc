#include "rhmodel/cell_model.hh"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/metrics.hh"
#include "rhmodel/kernel_math.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace rhs::rhmodel
{

namespace
{

/**
 * Row-cache metrics, aggregated over every CellModel in the process
 * (the size gauge sums live entries across models; the capacity gauge
 * reports the per-model capacity). Metrics never feed back into cache
 * behaviour, per the obs determinism contract.
 */
struct RowCacheMetrics
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &evictions;
    obs::Gauge &size;

    RowCacheMetrics()
        : hits(obs::Registry::global().counter(
              "cellmodel.row_cache.hits")),
          misses(obs::Registry::global().counter(
              "cellmodel.row_cache.misses")),
          evictions(obs::Registry::global().counter(
              "cellmodel.row_cache.evictions")),
          size(obs::Registry::global().gauge("cellmodel.row_cache.size"))
    {
        obs::Registry::global()
            .gauge("cellmodel.row_cache.capacity")
            .set(CellModel::kCacheCapacity);
    }
};

RowCacheMetrics &
rowCacheMetrics()
{
    static RowCacheMetrics metrics;
    return metrics;
}

//! One warning per process on the first eviction: an evicting row
//! cache regenerates cell populations on every revisit, which is a
//! sizing problem worth surfacing.
std::atomic<bool> g_row_evict_warned{false};

// Salt constants separating the independent hash streams. The trial
// and data streams are recomputed lane-parallel inside the SIMD
// row-evaluation kernel, which carries its own copies of those salts.
enum : std::uint64_t
{
    SaltCells = 0x1001,
    SaltRow = 0x2002,
    SaltWeakRow = 0x2003,
    SaltSubarray = 0x3003,
    SaltModule = 0x4004,
    SaltDesignCol = 0x5005,
    SaltProcessCol = 0x6006,
    SaltTrial = 0x7007,
    SaltData = 0x8008,
};
static_assert(SaltTrial == kern::kSaltTrial &&
                  SaltData == kern::kSaltData,
              "kernel salt copies diverged from the model's streams");

/** Deterministic standard-normal draw from a hash word. */
double
hashedGaussian(std::uint64_t seed)
{
    util::Rng rng(seed);
    return rng.gaussian();
}

} // namespace

CellModel::CellModel(const ManufacturerProfile &profile,
                     const dram::ModuleInfo &info,
                     const dram::Geometry &geometry,
                     const dram::TimingParams &timing)
    : prof(profile), moduleInfo(info), geom(geometry), timing(timing)
{
    modFactor = std::exp(
        prof.moduleSigma *
        hashedGaussian(util::hashTuple(info.serial, SaltModule)));

    // Build the per-chip column sampling CDFs. The weight of a column
    // mixes a design-induced component (identical for every chip of
    // every module of this manufacturer) with a process component
    // (specific to this chip), in the proportion profile.designMix.
    const auto mfr_seed = static_cast<std::uint64_t>(letterOf(prof.mfr));
    columnCdf.resize(info.chips);
    for (unsigned chip = 0; chip < info.chips; ++chip) {
        auto &cdf = columnCdf[chip];
        cdf.resize(geom.columnsPerRow);
        double total = 0.0;
        for (unsigned col = 0; col < geom.columnsPerRow; ++col) {
            // Design-induced variation is spatially structured: the
            // repeating analog elements (wordline drivers, voltage
            // boosters) the paper's §7.4 hypothesizes span blocks of
            // columns, so adjacent columns share their design weight.
            const auto design_seed =
                util::hashTuple(mfr_seed, SaltDesignCol, col / 8);
            const auto process_seed = util::hashTuple(
                info.serial, SaltProcessCol, chip, col);

            double weight = 0.0;
            const bool design_dead =
                util::toUnitDouble(util::splitMix64(design_seed)) <
                prof.designDeadFraction;
            const bool process_dead =
                util::toUnitDouble(util::splitMix64(process_seed)) <
                prof.processDeadFraction;
            if (!design_dead && !process_dead) {
                const double g_design = hashedGaussian(design_seed);
                const double g_process = hashedGaussian(process_seed);
                weight = std::exp(
                    prof.columnSigma * (prof.designMix * g_design +
                                        (1.0 - prof.designMix) *
                                            g_process));
            }
            total += weight;
            cdf[col] = total;
        }
        RHS_ASSERT(total > 0.0, "all columns dead on chip ", chip);
        for (auto &v : cdf)
            v /= total;
    }
}

double
CellModel::sampleColumnFromCdf(unsigned chip, double u) const
{
    const auto &cdf = columnCdf[chip];
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto col = static_cast<unsigned>(
        std::min<std::ptrdiff_t>(it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(cdf.size()) -
                                     1));
    return col;
}

namespace
{

/**
 * Pin the returned shared_ptr in a per-thread ring so the reference
 * handed to the caller cannot dangle if a concurrent thread evicts
 * the entry from its LRU shard. A row vector stays alive until the
 * calling thread makes CellModel::kKeepAlive further cellsOfRow
 * calls (or longer, while still cached).
 */
const std::vector<VulnerableCell> &
pinRowCells(std::shared_ptr<const std::vector<VulnerableCell>> cells)
{
    thread_local std::array<
        std::shared_ptr<const std::vector<VulnerableCell>>,
        CellModel::kKeepAlive>
        ring;
    thread_local std::size_t slot = 0;
    auto &pinned = ring[slot];
    slot = (slot + 1) % ring.size();
    pinned = std::move(cells);
    return *pinned;
}

} // namespace

const std::vector<VulnerableCell> &
CellModel::cellsOfRow(unsigned bank, unsigned physical_row) const
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(bank) << 32) | physical_row;
    auto &shard = cacheShards[util::splitMix64(key) % kCacheShards];
    constexpr std::size_t shard_capacity = kCacheCapacity / kCacheShards;

    auto &metrics = rowCacheMetrics();
    {
        std::lock_guard lock(shard.mutex);
        if (auto it = shard.index.find(key); it != shard.index.end()) {
            // Promote on hit: re-hit entries move to the LRU front
            // (the old FIFO memo never did, so strided access whose
            // working set exceeded the capacity evicted its hottest
            // rows first).
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            metrics.hits.add(1);
            return pinRowCells(it->second->second);
        }
    }
    metrics.misses.add(1);

    // Miss: generate outside the lock so other threads' lookups (and
    // generations of other rows in this shard) proceed concurrently.
    auto cells = std::make_shared<const std::vector<VulnerableCell>>(
        generateCells(bank, physical_row));

    std::lock_guard lock(shard.mutex);
    if (auto it = shard.index.find(key); it != shard.index.end()) {
        // Another thread generated this row while we did: keep the
        // incumbent (generation is deterministic, both are equal).
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return pinRowCells(it->second->second);
    }
    shard.lru.emplace_front(key, std::move(cells));
    shard.index.emplace(key, shard.lru.begin());
    metrics.size.add(1);
    if (shard.lru.size() > shard_capacity) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
        metrics.evictions.add(1);
        metrics.size.add(-1);
        if (!g_row_evict_warned.exchange(true)) {
            util::warn("cellmodel row cache evicting (capacity ",
                       kCacheCapacity,
                       "): working set exceeds the cache; revisited "
                       "rows will regenerate their cells");
        }
    }
    return pinRowCells(shard.lru.front().second);
}

std::vector<VulnerableCell>
CellModel::generateCells(unsigned bank, unsigned physical_row) const
{
    const auto row_seed =
        util::hashTuple(moduleInfo.serial, SaltCells, bank, physical_row);
    util::Rng counter(row_seed);
    const unsigned count = counter.poisson(prof.cellsPerRowMean);

    const double log_spatial =
        std::log(rowFactor(bank, physical_row)) +
        std::log(subarrayFactor(bank, geom.subarrayOf(physical_row))) +
        std::log(modFactor);

    std::vector<VulnerableCell> cells;
    cells.reserve(count);
    // A physical bit position can host at most one vulnerable cell.
    std::unordered_map<std::uint64_t, bool> occupied;
    for (unsigned i = 0; i < count; ++i) {
        VulnerableCell cell;
        cell.seed = util::hashTuple(row_seed, i + 1);
        util::Rng rng(cell.seed);

        cell.loc.chip = static_cast<unsigned>(
            rng.uniformInt(moduleInfo.chips));
        cell.loc.bank = bank;
        cell.loc.row = physical_row;
        cell.loc.column = static_cast<unsigned>(
            sampleColumnFromCdf(cell.loc.chip, rng.uniform()));
        cell.loc.bit = static_cast<unsigned>(
            rng.uniformInt(geom.bitsPerColumn));
        const std::uint64_t position =
            (static_cast<std::uint64_t>(cell.loc.chip) << 24) |
            (cell.loc.column << 4) | cell.loc.bit;
        if (!occupied.emplace(position, true).second)
            continue; // Collision: this position already has a cell.
        cell.chargedValue = rng.bernoulli(0.5);

        const double threshold_gauss = rng.gaussian();

        // Pick a temperature-mixture component.
        double pick = rng.uniform();
        const TempComponent *comp = &prof.tempMixture.back();
        for (const auto &candidate : prof.tempMixture) {
            if (pick < candidate.fraction) {
                comp = &candidate;
                break;
            }
            pick -= candidate.fraction;
        }
        cell.tinf = rng.gaussian(comp->tinfMean, comp->tinfSigma);
        cell.width = rng.uniform(comp->widthMin, comp->widthMax);

        cell.threshold = std::exp(prof.hcMedianLog +
                                  comp->logMedianShift +
                                  prof.cellSigma * comp->sigmaScale *
                                      threshold_gauss +
                                  log_spatial);

        cells.push_back(cell);
    }
    return cells;
}

double
CellModel::timingFactor(const Conditions &conditions) const
{
    const double t_on =
        conditions.tAggOn > 0.0 ? conditions.tAggOn : timing.tRAS;
    const double t_off =
        conditions.tAggOff > 0.0 ? conditions.tAggOff : timing.tRP;
    RHS_ASSERT(t_on + 1e-9 >= timing.tRAS, "tAggOn below tRAS: ", t_on);
    RHS_ASSERT(t_off + 1e-9 >= timing.tRP, "tAggOff below tRP: ", t_off);
    const double g_on =
        1.0 + prof.kOn * (t_on - timing.tRAS) / timing.tRAS;
    const double g_off = timing.tRP / t_off;
    return (1.0 - prof.wCouple) * g_on + prof.wCouple * g_off;
}

double
CellModel::temperatureFactor(const VulnerableCell &cell,
                             double temperature) const
{
    // Unimodal response around tinf, normalized to 1 at the 50 degC
    // reference so cell.threshold is the 50 degC HCfirst. detExp (not
    // std::exp) because this factor is recomputed inside the SIMD
    // row-evaluation kernel, whose lanes must match this reference
    // bit-for-bit on every ISA; kernel_math.hh explains the contract.
    constexpr double ref = 50.0;
    const double a = ref - cell.tinf;
    const double b = temperature - cell.tinf;
    return kern::detExp((a * a - b * b) /
                        ((2.0 * cell.width) * cell.width));
}

double
CellModel::distanceFactor(unsigned distance) const
{
    switch (distance) {
      case 1: return prof.distance1Damage;
      case 2: return prof.distance2Damage;
      default: return 0.0;
    }
}

double
CellModel::dataFactor(const VulnerableCell &cell,
                      std::uint8_t aggressor_byte) const
{
    const double u = util::toUnitDouble(
        util::hashTuple(cell.seed, SaltData, aggressor_byte));
    return prof.dataFactorBase + (1.0 - prof.dataFactorBase) * u;
}

double
CellModel::trialNoise(const VulnerableCell &cell, unsigned trial,
                      double temperature) const
{
    // detExp/detGaussian (not std::exp / Rng::gaussian) because this
    // factor is recomputed inside the SIMD row-evaluation kernel; see
    // temperatureFactor. Generation-time draws (hashedGaussian above)
    // deliberately stay on libm — they never run in the kernel.
    const auto temp_key = static_cast<std::uint64_t>(
        std::llround(temperature * 10.0));
    const auto seed =
        util::hashTuple(cell.seed, SaltTrial, trial, temp_key);
    return kern::detExp(prof.trialNoiseSigma * kern::detGaussian(seed));
}

double
CellModel::rowFactor(unsigned bank, unsigned physical_row) const
{
    const auto seed = util::hashTuple(moduleInfo.serial, SaltRow, bank,
                                      physical_row);
    double factor = std::exp(prof.rowSigma * hashedGaussian(seed));
    const double weak_draw = util::toUnitDouble(util::splitMix64(
        util::hashTuple(moduleInfo.serial, SaltWeakRow, bank,
                        physical_row)));
    if (weak_draw < prof.weakRowFraction)
        factor *= prof.weakRowFactor;
    return factor;
}

double
CellModel::subarrayFactor(unsigned bank, unsigned subarray) const
{
    const auto seed = util::hashTuple(moduleInfo.serial, SaltSubarray,
                                      bank, subarray);
    return std::exp(prof.subarraySigma * hashedGaussian(seed));
}

double
CellModel::columnWeight(unsigned chip, unsigned column) const
{
    RHS_ASSERT(chip < columnCdf.size());
    RHS_ASSERT(column < columnCdf[chip].size());
    const auto &cdf = columnCdf[chip];
    const double prev = column == 0 ? 0.0 : cdf[column - 1];
    return cdf[column] - prev;
}

} // namespace rhs::rhmodel

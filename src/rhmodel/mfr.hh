/**
 * @file
 * Manufacturer identifiers for the four anonymized vendors of the paper.
 */

#ifndef RHS_RHMODEL_MFR_HH
#define RHS_RHMODEL_MFR_HH

#include <array>
#include <string>

namespace rhs::rhmodel
{

/** The four DRAM manufacturers characterized in the paper (Table 4). */
enum class Mfr { A, B, C, D };

/** All manufacturers, for iteration. */
inline constexpr std::array<Mfr, 4> allMfrs{Mfr::A, Mfr::B, Mfr::C, Mfr::D};

/** Short name, e.g. "Mfr. A". */
std::string to_string(Mfr mfr);

/** Single letter, e.g. "A". */
char letterOf(Mfr mfr);

} // namespace rhs::rhmodel

#endif // RHS_RHMODEL_MFR_HH

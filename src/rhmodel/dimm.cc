#include "rhmodel/dimm.hh"

#include "util/hash.hh"
#include "util/logging.hh"

namespace rhs::rhmodel
{

namespace
{

dram::ModuleInfo
makeModuleInfo(const ManufacturerProfile &profile, unsigned module_index,
               const DimmOptions &options, unsigned chips)
{
    dram::ModuleInfo info;
    info.label = std::string(1, letterOf(profile.mfr)) +
                 std::to_string(module_index);
    info.manufacturer = profile.name;
    info.standard = options.standard;
    info.chips = chips;
    info.density = chips == 16 ? "8Gb" : "4Gb";
    info.dieRevision = "S"; // Simulated die.
    info.organization = chips == 16 ? "x4" : "x8";
    info.serial = util::hashTuple(
        static_cast<std::uint64_t>(letterOf(profile.mfr)), 0xd1aau,
        module_index, static_cast<std::uint64_t>(options.standard));
    return info;
}

} // namespace

SimulatedDimm::SimulatedDimm(Mfr mfr, unsigned module_index,
                             const DimmOptions &options)
    : profileRef(options.customProfile ? *options.customProfile
                                       : profileFor(mfr))
{
    const unsigned chips = options.chips != 0
                               ? options.chips
                               : defaultChipCount(mfr, options.standard);

    dram::Geometry geometry;
    geometry.banks = options.banks;
    geometry.subarraysPerBank = options.subarraysPerBank;
    geometry.rowsPerSubarray = options.rowsPerSubarray;
    geometry.columnsPerRow = options.columnsPerRow;
    geometry.bitsPerColumn = 8;

    const dram::TimingParams timing = options.standard ==
                                              dram::Standard::DDR4
                                          ? dram::ddr4_2400()
                                          : dram::ddr3_1600();

    auto info = makeModuleInfo(profileRef, module_index, options, chips);
    dimmLabel = info.label;

    dramModule = std::make_unique<dram::Module>(
        info, geometry, timing, dram::makeMapping(profileRef.mappingScheme));
    cells = std::make_unique<CellModel>(profileRef, dramModule->info(),
                                        dramModule->geometry(),
                                        dramModule->timing());
    faultInjector = std::make_unique<FaultInjector>(*cells, *dramModule);
    analyticEngine = std::make_unique<AnalyticEngine>(*cells);
}

const std::vector<InventoryEntry> &
paperInventory()
{
    static const std::vector<InventoryEntry> inventory = {
        // DDR4 (Table 4, grouped per manufacturer).
        {Mfr::A, dram::Standard::DDR4, "MT40A2G4WE-083E:B", "Micron",
         "MTA18ASF2G72PZ-2G3B1QG", 2400, "1911/1843/1844", "8Gb", "B",
         "x4", 9, 16},
        {Mfr::B, dram::Standard::DDR4, "K4A4G085WF-BCTD", "G.SKILL",
         "F4-2400C17S-8GNT", 2400, "2021 Jan", "4Gb", "F", "x8", 4, 8},
        {Mfr::C, dram::Standard::DDR4, "DWCW (partial marking)",
         "G.SKILL", "F4-2400C17S-8GNT", 2400, "2042", "4Gb", "B", "x8",
         5, 8},
        {Mfr::D, dram::Standard::DDR4, "D1028AN9CPGRK", "Kingston",
         "KVR24N17S8/8", 2400, "2046", "8Gb", "C", "x8", 4, 8},
        // DDR3 SODIMMs.
        {Mfr::A, dram::Standard::DDR3, "MT41K512M8DA-107:P", "Crucial",
         "CT51264BF160BJ.M8FP", 1600, "1703", "4Gb", "P", "x8", 1, 8},
        {Mfr::B, dram::Standard::DDR3, "K4B4G0846Q", "Samsung",
         "M471B5173QH0-YK0", 1600, "1416", "4Gb", "Q", "x8", 1, 8},
        {Mfr::C, dram::Standard::DDR3, "H5TC4G83BFR-PBA", "SK Hynix",
         "HMT451S6BFR8A-PB", 1600, "1535", "4Gb", "B", "x8", 1, 8},
    };
    return inventory;
}

unsigned
defaultChipCount(Mfr mfr, dram::Standard standard)
{
    if (standard == dram::Standard::DDR3)
        return 8;
    return mfr == Mfr::A ? 16 : 8; // Mfr. A DDR4 parts are x4 (Table 4).
}

std::vector<std::unique_ptr<SimulatedDimm>>
makeFleet(unsigned modules_per_mfr, const DimmOptions &options)
{
    RHS_ASSERT(modules_per_mfr > 0);
    std::vector<std::unique_ptr<SimulatedDimm>> fleet;
    for (Mfr mfr : allMfrs) {
        for (unsigned i = 0; i < modules_per_mfr; ++i)
            fleet.push_back(
                std::make_unique<SimulatedDimm>(mfr, i, options));
    }
    return fleet;
}

} // namespace rhs::rhmodel

#include "rhmodel/pattern.hh"

#include "util/hash.hh"
#include "util/logging.hh"

namespace rhs::rhmodel
{

std::string
to_string(PatternId id)
{
    switch (id) {
      case PatternId::ColStripe: return "colstripe";
      case PatternId::ColStripeInv: return "colstripe-inv";
      case PatternId::Checkered: return "checkered";
      case PatternId::CheckeredInv: return "checkered-inv";
      case PatternId::RowStripe: return "rowstripe";
      case PatternId::RowStripeInv: return "rowstripe-inv";
      case PatternId::Random: return "random";
    }
    return "?";
}

std::uint8_t
DataPattern::byteAt(unsigned physical_row, unsigned victim_row,
                    unsigned column) const
{
    // Parity relative to the victim: 0 for V and V±even, 1 for V±odd.
    const unsigned rel_parity = (physical_row ^ victim_row) & 1u;

    switch (patternId) {
      case PatternId::ColStripe:
        return 0x55;
      case PatternId::ColStripeInv:
        return 0xaa;
      case PatternId::Checkered:
        return rel_parity ? 0xaa : 0x55;
      case PatternId::CheckeredInv:
        return rel_parity ? 0x55 : 0xaa;
      case PatternId::RowStripe:
        return rel_parity ? 0xff : 0x00;
      case PatternId::RowStripeInv:
        return rel_parity ? 0x00 : 0xff;
      case PatternId::Random:
        return static_cast<std::uint8_t>(
            util::hashTuple(seed, physical_row, column) & 0xff);
    }
    RHS_PANIC("unhandled pattern id");
}

} // namespace rhs::rhmodel

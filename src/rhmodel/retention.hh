/**
 * @file
 * DRAM retention-error model.
 *
 * §4.2: "we ensure that all RowHammer tests are conducted within a
 * relatively short period of time such that we do not observe
 * retention errors". With refresh disabled, cells leak; the weakest
 * cells lose their data within a few refresh windows. This model
 * makes that methodological constraint *checkable*: a test that runs
 * longer than the weakest touched cell's retention time gets
 * contaminated by flips that have nothing to do with hammering.
 */

#ifndef RHS_RHMODEL_RETENTION_HH
#define RHS_RHMODEL_RETENTION_HH

#include <cstdint>
#include <vector>

#include "dram/organization.hh"
#include "dram/timing.hh"

namespace rhs::rhmodel
{

/** Parameters of the retention-time population. */
struct RetentionParams
{
    //! Median retention time (ms). Real chips retain for tens of
    //! seconds at 50 degC; only the tail approaches the refresh
    //! window.
    double medianMs = 30'000.0;
    //! Log-sigma of the retention-time distribution.
    double sigma = 0.8;
    //! Fraction of cells in the weak tail.
    double weakFraction = 1e-5;
    //! Weak-tail retention times (ms) at 50 degC. Chosen so that the
    //! paper's 64 ms test budget is retention-safe across the whole
    //! 50-90 degC range, as the paper observed, while refresh-free
    //! intervals of seconds are visibly contaminated.
    double weakMinMs = 1'024.0;
    double weakMaxMs = 8'192.0;
    //! Retention shortens ~2x per ~12.6 degC above the reference.
    double temperatureSlopePerDegC = 0.055;
};

/** A cell that lost its charge during a refresh-free interval. */
struct RetentionFailure
{
    dram::CellLocation location;
    double retentionMs = 0.0;
};

/** Procedural per-cell retention times over a module. */
class RetentionModel
{
  public:
    /**
     * @param serial Module serial (seeds the population).
     * @param geometry Chip geometry.
     * @param chips Chips on the module.
     * @param params Distribution parameters.
     */
    RetentionModel(std::uint64_t serial, const dram::Geometry &geometry,
                   unsigned chips, const RetentionParams &params = {});

    /**
     * Cells of a physical row whose retention time at `temperature`
     * is below `elapsed_ms` — the retention failures a refresh-free
     * test of that duration would observe.
     */
    std::vector<RetentionFailure>
    failuresInRow(unsigned bank, unsigned physical_row, double elapsed_ms,
                  double temperature) const;

    /**
     * True when a test of the given duration is retention-safe for a
     * row at a temperature (the §4.2 precondition; the paper caps
     * HCfirst tests at 512K hammers ≈ 52 ms for this reason).
     */
    bool testIsRetentionSafe(unsigned bank, unsigned physical_row,
                             double elapsed_ms, double temperature) const;

    /** Retention time (ms) of one cell position at 50 degC. */
    double retentionMsAt50C(const dram::CellLocation &location) const;

    /** Temperature derating factor (1.0 at 50 degC, < 1 above). */
    double temperatureDerating(double temperature) const;

  private:
    std::uint64_t serial;
    const dram::Geometry &geometry;
    unsigned chips;
    RetentionParams params;
};

} // namespace rhs::rhmodel

#endif // RHS_RHMODEL_RETENTION_HH

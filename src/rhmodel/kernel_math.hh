/**
 * @file
 * Deterministic kernel math, written once and instantiated per ISA.
 *
 * The row-evaluation kernel's per-cell closed form needs exp (the
 * temperature factor and the log-normal trial noise), log and cos (the
 * Box-Muller gaussian behind the trial noise), and the SplitMix64 hash
 * chain (data-coupling factors, trial-noise seeds). libm's exp/log/cos
 * have no cross-implementation accuracy contract, so a vector lane
 * cannot reproduce them bit-for-bit. Instead, every transcendental in
 * the kernel goes through the implementations below:
 *
 *  - detExp: Cody-Waite reduction + the Cephes rational approximation,
 *  - detLog: fdlibm-style atanh-series on the reduced mantissa,
 *  - detCos: 3-term Cody-Waite pi/2 reduction + fdlibm sin/cos
 *    polynomials (arguments are bounded to [0, 2*pi) by construction),
 *
 * each expressed as a fixed sequence of IEEE-754 basic operations
 * (+, -, *, /, sqrt, exact integer conversions below 2^53). Basic
 * operations are exactly rounded on every conforming CPU, so a given
 * input produces bit-identical output in a scalar lane, an AVX2 lane,
 * an AVX-512 lane, or a NEON lane. The scalar reference path
 * (CellModel::temperatureFactor / trialNoise) calls the scalar
 * instantiation of the very same templates, which is what makes the
 * SIMD kernels byte-identical to the reference by construction rather
 * than by tolerance.
 *
 * Two rules keep that property:
 *
 *  1. every TU that instantiates these templates is compiled with
 *     -ffp-contract=off (the rhs_rhmodel CMakeLists enforces it), so
 *     the compiler cannot fuse a written mul+add into an FMA in one
 *     TU but not another;
 *  2. the templates use only the Backend's op set — no libm calls, no
 *     compiler-reassociable expressions.
 *
 * A Backend supplies fixed-width f64/u64 lane types and exactly-
 * rounded ops; ScalarBackend (1 lane) is defined here, the vector
 * backends live in their kernel_<isa>.cc TUs.
 */

#ifndef RHS_RHMODEL_KERNEL_MATH_HH
#define RHS_RHMODEL_KERNEL_MATH_HH

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "rhmodel/kernel.hh"

namespace rhs::rhmodel::kern
{

// Salt constants of the cell model's hash streams (values must match
// the derivation chain documented in cell_model.cc).
inline constexpr std::uint64_t kSaltTrial = 0x7007;
inline constexpr std::uint64_t kSaltData = 0x8008;

//! The Rng stream increment (util::Rng::next).
inline constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

namespace consts
{
// exp: Cody-Waite ln2 split + Cephes expP/expQ rational coefficients.
inline constexpr double kLog2E = 1.4426950408889634073599;
inline constexpr double kExpC1 = 6.93145751953125e-1;
inline constexpr double kExpC2 = 1.42860682030941723212e-6;
inline constexpr double kExpP0 = 1.26177193074810590878e-4;
inline constexpr double kExpP1 = 3.02994407707441961300e-2;
inline constexpr double kExpP2 = 9.99999999999999999910e-1;
inline constexpr double kExpQ0 = 3.00198505138664455042e-6;
inline constexpr double kExpQ1 = 2.52448340349684104192e-3;
inline constexpr double kExpQ2 = 2.27265548208155028766e-1;
inline constexpr double kExpQ3 = 2.00000000000000000005e0;
inline constexpr double kExpOverflow = 709.782712893384;
inline constexpr double kExpUnderflow = -745.133219101941;
//! 1.5 * 2^52: adding then subtracting rounds to nearest-even integer.
inline constexpr double kShifter = 6755399441055744.0;

// log: fdlibm e_log.c coefficients.
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kLg1 = 6.666666666666735130e-01;
inline constexpr double kLg2 = 3.999999999940941908e-01;
inline constexpr double kLg3 = 2.857142874366239149e-01;
inline constexpr double kLg4 = 2.222219843214978396e-01;
inline constexpr double kLg5 = 1.818357216161805012e-01;
inline constexpr double kLg6 = 1.531383769920937332e-01;
inline constexpr double kLg7 = 1.479819860511658591e-01;
inline constexpr double kSqrt2 = 1.41421356237309514547;

// cos: fdlibm k_sin.c / k_cos.c polynomials + 3-term pi/2 split.
inline constexpr double kTwoOverPi = 6.36619772367581382433e-01;
inline constexpr double kPio2_1 = 1.57079632673412561417e+00;
inline constexpr double kPio2_2 = 6.07710050630396597660e-11;
inline constexpr double kPio2_3 = 2.02226624871116645580e-21;
inline constexpr double kS1 = -1.66666666666666324348e-01;
inline constexpr double kS2 = 8.33333333332248946124e-03;
inline constexpr double kS3 = -1.98412698298579493134e-04;
inline constexpr double kS4 = 2.75573137070700676789e-06;
inline constexpr double kS5 = -2.50507602534068634195e-08;
inline constexpr double kS6 = 1.58969099521155010221e-10;
inline constexpr double kC1 = 4.16666666666666019037e-02;
inline constexpr double kC2 = -1.38888888888741095749e-03;
inline constexpr double kC3 = 2.48015872894767294178e-05;
inline constexpr double kC4 = -2.75573143513906633035e-07;
inline constexpr double kC5 = 2.08757232129817482790e-09;
inline constexpr double kC6 = -1.13596475577881948265e-11;

inline constexpr double kTwoPi = 6.28318530717958647693e+00;
inline constexpr double kInf =
    std::numeric_limits<double>::infinity();
} // namespace consts

// Everything below is deliberately TU-local (anonymous namespace):
// the kernel_<isa>.cc TUs are compiled with per-variant ISA flags, and
// a shared (external, ODR-merged) instantiation would let the linker
// keep, say, the AVX2-encoded copy of the scalar kernel loop and run
// it on a host without AVX. Each TU instead owns its private copy,
// built with its own flags; cross-TU value equality is guaranteed by
// IEEE-754 exact rounding, not by sharing code.
namespace
{

/**
 * The 1-lane backend: plain doubles and uint64_t with the same op
 * names the vector backends provide. The scalar kernel variant, the
 * vector variants' tail loops, and the CellModel reference factors all
 * run on this backend.
 */
struct ScalarBackend
{
    static constexpr std::size_t kLanes = 1;
    using F = double;
    using U = std::uint64_t;
    using M = bool;

    static F fbroadcast(double v) { return v; }
    static F fload(const double *p) { return *p; }
    static void fstore(double *p, F v) { *p = v; }
    static F add(F a, F b) { return a + b; }
    static F sub(F a, F b) { return a - b; }
    static F mul(F a, F b) { return a * b; }
    static F div(F a, F b) { return a / b; }
    static F sqrt(F a) { return std::sqrt(a); }
    static F fmin(F a, F b) { return b < a ? b : a; }
    static F fmax(F a, F b) { return b > a ? b : a; }
    static M gt(F a, F b) { return a > b; }
    static M lt(F a, F b) { return a < b; }
    static M le(F a, F b) { return a <= b; }
    static F select(M m, F a, F b) { return m ? a : b; }
    static M mand(M a, M b) { return a && b; }
    static bool any(M m) { return m; }

    static U ubroadcast(std::uint64_t v) { return v; }
    static U uload(const std::uint64_t *p) { return *p; }
    static U uadd(U a, U b) { return a + b; }
    static U usub(U a, U b) { return a - b; }
    static U uand(U a, U b) { return a & b; }
    static U uor(U a, U b) { return a | b; }
    static U uxor(U a, U b) { return a ^ b; }
    static U umul(U a, U b) { return a * b; }
    template <int N> static U ushl(U a) { return a << N; }
    template <int N> static U ushr(U a) { return a >> N; }
    static U ushrv(U a, U n) { return a >> n; }
    static M ueq(U a, U b) { return a == b; }
    static void ustore(std::uint64_t *p, U v) { *p = v; }

    //! Exact for values < 2^53 (all call sites guarantee this).
    static F u2f(U v) { return static_cast<double>(v); }
    static U f2bits(F v) { return std::bit_cast<std::uint64_t>(v); }
    static F bits2f(U v) { return std::bit_cast<double>(v); }
};

// --- The SplitMix64 chain, lane-wide (matches util/hash.hh). --------

template <class B>
inline typename B::U
vSplitMix64(typename B::U x)
{
    x = B::uadd(x, B::ubroadcast(kGolden));
    x = B::umul(B::uxor(x, B::template ushr<30>(x)),
                B::ubroadcast(0xbf58476d1ce4e5b9ULL));
    x = B::umul(B::uxor(x, B::template ushr<27>(x)),
                B::ubroadcast(0x94d049bb133111ebULL));
    return B::uxor(x, B::template ushr<31>(x));
}

template <class B>
inline typename B::U
vHashCombine(typename B::U seed, typename B::U value)
{
    using U = typename B::U;
    const U mixed = B::uadd(value, B::ubroadcast(kGolden));
    const U folded = B::uxor(
        seed, B::uadd(mixed, B::uadd(B::template ushl<6>(seed),
                                     B::template ushr<2>(seed))));
    return vSplitMix64<B>(folded);
}

/** toUnitDouble: (h >> 11) * 2^-53, exact (see util/hash.hh). */
template <class B>
inline typename B::F
vToUnit(typename B::U h)
{
    return B::mul(B::u2f(B::template ushr<11>(h)),
                  B::fbroadcast(0x1.0p-53));
}

// --- Deterministic exp ----------------------------------------------

template <class B>
inline typename B::F
vExp(typename B::F x)
{
    using F = typename B::F;
    using U = typename B::U;
    using M = typename B::M;
    namespace c = consts;

    const M over = B::gt(x, B::fbroadcast(c::kExpOverflow));
    const M under = B::lt(x, B::fbroadcast(c::kExpUnderflow));
    // Clamp so the 2^k construction below stays in range; the over/
    // underflow lanes are overwritten by the selects at the end.
    F xc = B::fmin(B::fmax(x, B::fbroadcast(-746.0)),
                   B::fbroadcast(710.0));

    // k = round-to-nearest-even(x * log2(e)) via the shifter trick;
    // the integer value of k sits in the low mantissa bits of t.
    const F shifter = B::fbroadcast(c::kShifter);
    const F t = B::add(B::mul(xc, B::fbroadcast(c::kLog2E)), shifter);
    const F k = B::sub(t, shifter);
    const U ik = B::usub(B::f2bits(t), B::f2bits(shifter));

    // r = x - k*ln2, Cody-Waite two-term split.
    F r = B::sub(xc, B::mul(k, B::fbroadcast(c::kExpC1)));
    r = B::sub(r, B::mul(k, B::fbroadcast(c::kExpC2)));

    // Cephes rational: exp(r) = 1 + 2 r P(r^2) / (Q(r^2) - r P(r^2)).
    const F rr = B::mul(r, r);
    F p = B::fbroadcast(c::kExpP0);
    p = B::add(B::mul(p, rr), B::fbroadcast(c::kExpP1));
    p = B::add(B::mul(p, rr), B::fbroadcast(c::kExpP2));
    const F rp = B::mul(r, p);
    F q = B::fbroadcast(c::kExpQ0);
    q = B::add(B::mul(q, rr), B::fbroadcast(c::kExpQ1));
    q = B::add(B::mul(q, rr), B::fbroadcast(c::kExpQ2));
    q = B::add(B::mul(q, rr), B::fbroadcast(c::kExpQ3));
    F e = B::div(rp, B::sub(q, rp));
    e = B::add(B::fbroadcast(1.0), B::mul(B::fbroadcast(2.0), e));

    // Scale by 2^k in two exact power-of-two multiplies so the
    // subnormal range (k < -1022) still rounds correctly. ik is in
    // [-1075, 1075]; bias it positive, split, build exponent fields.
    const U biased = B::uadd(ik, B::ubroadcast(2048));
    const U k1 = B::template ushr<1>(biased);
    const U k2 = B::usub(biased, k1);
    // 2^(k1 - 1024): exponent field (k1 - 1024) + 1023 = k1 - 1.
    const F s1 = B::bits2f(
        B::template ushl<52>(B::usub(k1, B::ubroadcast(1))));
    const F s2 = B::bits2f(
        B::template ushl<52>(B::usub(k2, B::ubroadcast(1))));
    F result = B::mul(B::mul(e, s1), s2);
    result = B::select(over, B::fbroadcast(consts::kInf), result);
    result = B::select(under, B::fbroadcast(0.0), result);
    return result;
}

// --- Deterministic log (arguments are normal positive doubles) ------

template <class B>
inline typename B::F
vLog(typename B::F x)
{
    using F = typename B::F;
    using U = typename B::U;
    using M = typename B::M;
    namespace c = consts;

    const U bits = B::f2bits(x);
    // Mantissa rescaled into [1, 2), exponent as a double.
    const U mbits =
        B::uor(B::uand(bits, B::ubroadcast(0x000fffffffffffffULL)),
               B::ubroadcast(0x3ff0000000000000ULL));
    F m = B::bits2f(mbits);
    F e = B::sub(B::u2f(B::template ushr<52>(bits)),
                 B::fbroadcast(1023.0));
    // Normalize into [sqrt2/2, sqrt2) for the series' sweet spot.
    const M big = B::gt(m, B::fbroadcast(c::kSqrt2));
    m = B::select(big, B::mul(m, B::fbroadcast(0.5)), m);
    e = B::select(big, B::add(e, B::fbroadcast(1.0)), e);

    const F f = B::sub(m, B::fbroadcast(1.0));
    const F s = B::div(f, B::add(B::fbroadcast(2.0), f));
    const F z = B::mul(s, s);
    const F w = B::mul(z, z);
    F t1 = B::fbroadcast(c::kLg6);
    t1 = B::add(B::mul(t1, w), B::fbroadcast(c::kLg4));
    t1 = B::add(B::mul(t1, w), B::fbroadcast(c::kLg2));
    t1 = B::mul(t1, w);
    F t2 = B::fbroadcast(c::kLg7);
    t2 = B::add(B::mul(t2, w), B::fbroadcast(c::kLg5));
    t2 = B::add(B::mul(t2, w), B::fbroadcast(c::kLg3));
    t2 = B::add(B::mul(t2, w), B::fbroadcast(c::kLg1));
    t2 = B::mul(t2, z);
    const F rem = B::add(t1, t2);
    const F hfsq =
        B::mul(B::fbroadcast(0.5), B::mul(f, f));
    const F logm =
        B::sub(f, B::sub(hfsq, B::mul(s, B::add(hfsq, rem))));
    return B::add(B::mul(e, B::fbroadcast(c::kLn2Hi)),
                  B::add(logm, B::mul(e, B::fbroadcast(c::kLn2Lo))));
}

// --- Deterministic cos on [0, 2*pi) ---------------------------------

template <class B>
inline typename B::F
vCos(typename B::F x)
{
    using F = typename B::F;
    using U = typename B::U;
    using M = typename B::M;
    namespace c = consts;

    // Quadrant q = round(x * 2/pi) in {0..4}; r = x - q*pi/2 via a
    // 3-term Cody-Waite split (plenty for |q| <= 4).
    const F shifter = B::fbroadcast(c::kShifter);
    const F t =
        B::add(B::mul(x, B::fbroadcast(c::kTwoOverPi)), shifter);
    const F q = B::sub(t, shifter);
    const U iq = B::usub(B::f2bits(t), B::f2bits(shifter));
    F r = B::sub(x, B::mul(q, B::fbroadcast(c::kPio2_1)));
    r = B::sub(r, B::mul(q, B::fbroadcast(c::kPio2_2)));
    r = B::sub(r, B::mul(q, B::fbroadcast(c::kPio2_3)));

    const F z = B::mul(r, r);
    // fdlibm k_sin polynomial: r + r*z*(S1 + z*(... S6)).
    F sp = B::fbroadcast(c::kS6);
    sp = B::add(B::mul(sp, z), B::fbroadcast(c::kS5));
    sp = B::add(B::mul(sp, z), B::fbroadcast(c::kS4));
    sp = B::add(B::mul(sp, z), B::fbroadcast(c::kS3));
    sp = B::add(B::mul(sp, z), B::fbroadcast(c::kS2));
    sp = B::add(B::mul(sp, z), B::fbroadcast(c::kS1));
    const F sinr = B::add(r, B::mul(B::mul(r, z), sp));
    // fdlibm k_cos polynomial: 1 - z/2 + z^2*(C1 + z*(... C6)).
    F cp = B::fbroadcast(c::kC6);
    cp = B::add(B::mul(cp, z), B::fbroadcast(c::kC5));
    cp = B::add(B::mul(cp, z), B::fbroadcast(c::kC4));
    cp = B::add(B::mul(cp, z), B::fbroadcast(c::kC3));
    cp = B::add(B::mul(cp, z), B::fbroadcast(c::kC2));
    cp = B::add(B::mul(cp, z), B::fbroadcast(c::kC1));
    const F cosr =
        B::add(B::sub(B::fbroadcast(1.0),
                      B::mul(B::fbroadcast(0.5), z)),
               B::mul(B::mul(z, z), cp));

    // cos(x) = [cos, -sin, -cos, sin][q mod 4](r).
    const M odd =
        B::ueq(B::uand(iq, B::ubroadcast(1)), B::ubroadcast(1));
    const M neg =
        B::ueq(B::uand(B::uadd(iq, B::ubroadcast(1)),
                       B::ubroadcast(2)),
               B::ubroadcast(2));
    F value = B::select(odd, sinr, cosr);
    const F negated = B::bits2f(B::uxor(
        B::f2bits(value), B::ubroadcast(0x8000000000000000ULL)));
    return B::select(neg, negated, value);
}

// --- The Box-Muller gaussian of the trial-noise stream --------------

/**
 * Scalar replica of util::Rng(seed).gaussian() with the
 * transcendentals swapped for the deterministic ones: the redraw loop,
 * stream order, and arithmetic shape are identical.
 */
[[maybe_unused]] inline double
detGaussian(std::uint64_t seed)
{
    // util::Rng::next() advances state by kGolden, then applies the
    // splitMix64 finalizer (which has its own internal golden pre-add):
    // the first draw is splitMix64(seed + kGolden).
    using B = ScalarBackend;
    std::uint64_t state = seed;
    double u1 = 0.0;
    do {
        state += kGolden;
        u1 = vToUnit<B>(vSplitMix64<B>(state));
    } while (u1 <= 1e-300);
    state += kGolden;
    const double u2 = vToUnit<B>(vSplitMix64<B>(state));
    const double r = std::sqrt(-2.0 * vLog<B>(u1));
    return r * vCos<B>(consts::kTwoPi * u2);
}

// Scalar conveniences for the CellModel reference factors.
[[maybe_unused]] inline double
detExp(double x)
{
    return vExp<ScalarBackend>(x);
}

[[maybe_unused]] inline double
detLog(double x)
{
    return vLog<ScalarBackend>(x);
}

[[maybe_unused]] inline double
detCos(double x)
{
    return vCos<ScalarBackend>(x);
}

// --- The generic kernel loop ----------------------------------------

/**
 * Evaluate cells [begin, end) of the row. Each lane computes, in this
 * exact order (mirroring AnalyticEngine::cellHcFirst and the CellModel
 * factor functions):
 *
 *   eligible0   = ((victimByte >> bit) & 1) == chargedValue
 *   positional  = sum_a distFactor[a] * dataFactor(cell, byte[a])
 *   rate        = (positional * timing) * temperatureFactor(cell, T)
 *   hc          = (threshold * trialNoise(cell, trial, T)) / rate
 *   outHc[i]    = eligible0 && rate > 0 ? hc : +inf
 *
 * and the return value is min(outHc[begin..end)), +inf when empty.
 */
template <class B>
inline double
kernelLoop(const KernelArgs &args, std::size_t begin, std::size_t end)
{
    using F = typename B::F;
    using U = typename B::U;
    using M = typename B::M;
    constexpr std::size_t kLanes = B::kLanes;
    namespace c = consts;

    const F timing = B::fbroadcast(args.timing);
    const F temperature = B::fbroadcast(args.temperature);
    const F ref50 = B::fbroadcast(50.0);
    const F dataBase = B::fbroadcast(args.dataBase);
    const F dataScale = B::fbroadcast(1.0 - args.dataBase);
    const F trialSigma = B::fbroadcast(args.trialSigma);
    const F inf = B::fbroadcast(c::kInf);
    const F zero = B::fbroadcast(0.0);
    const U one = B::ubroadcast(1);
    const U saltData = B::ubroadcast(kSaltData);
    const U saltTrial = B::ubroadcast(kSaltTrial);
    const U trial = B::ubroadcast(args.trial);
    const U tempKey = B::ubroadcast(args.tempKey);

    F minAcc = inf;
    alignas(64) std::uint64_t lane[kLanes];
    alignas(64) double dlane[kLanes];

    for (std::size_t i = begin; i + kLanes <= end; i += kLanes) {
        const U h0 = B::uload(args.seedHash + i);
        const F threshold = B::fload(args.threshold + i);
        const F tinf = B::fload(args.tinf + i);
        const F width = B::fload(args.width + i);

        // Per-lane table lookups (bit index, charged value, pattern
        // bytes by column) go through small stack staging buffers; the
        // heavy math below is all lane-parallel.
        const U bit = B::uload(args.bit + i);
        const U charged = B::uload(args.charged + i);
        U victimByte;
        if (args.victimBytes != nullptr) {
            for (std::size_t l = 0; l < kLanes; ++l)
                lane[l] = args.victimBytes[args.column[i + l]];
            victimByte = B::uload(lane);
        } else {
            victimByte = B::ubroadcast(args.victimConstByte);
        }

        // Eligibility: the pattern must store the cell's charged
        // value at (column, bit).
        const M eligible0 = B::ueq(
            B::uand(B::ushrv(victimByte, bit), one), charged);

        // positional = sum over active aggressors of
        // distFactor * dataFactor(cell, aggressor byte).
        const U hData = vHashCombine<B>(h0, saltData);
        F positional = zero;
        for (std::size_t a = 0; a < args.aggrCount; ++a) {
            U aggrByte;
            if (args.aggrBytes[a] != nullptr) {
                for (std::size_t l = 0; l < kLanes; ++l)
                    lane[l] = args.aggrBytes[a][args.column[i + l]];
                aggrByte = B::uload(lane);
            } else {
                aggrByte = B::ubroadcast(args.aggrConstByte[a]);
            }
            const F u = vToUnit<B>(vHashCombine<B>(hData, aggrByte));
            const F dataF = B::add(dataBase, B::mul(dataScale, u));
            positional = B::add(
                positional,
                B::mul(B::fbroadcast(args.aggrDist[a]), dataF));
        }

        // rate = (positional * timing) * temperatureFactor.
        const F ta = B::sub(ref50, tinf);
        const F tb = B::sub(temperature, tinf);
        const F den =
            B::mul(B::mul(B::fbroadcast(2.0), width), width);
        const F tempF = vExp<B>(
            B::div(B::sub(B::mul(ta, ta), B::mul(tb, tb)), den));
        const F rate = B::mul(B::mul(positional, timing), tempF);

        // Trial noise: exp(sigma * gaussian(trial seed)).
        const U seed = vHashCombine<B>(
            vHashCombine<B>(vHashCombine<B>(h0, saltTrial), trial),
            tempKey);
        // Rng(seed) stream: draw k is splitMix64(seed + k*kGolden).
        const U golden = B::ubroadcast(kGolden);
        const U u1h = vSplitMix64<B>(B::uadd(seed, golden));
        const U u2h = vSplitMix64<B>(
            B::uadd(seed, B::uadd(golden, golden)));
        const F u1 = vToUnit<B>(u1h);
        const F u2 = vToUnit<B>(u2h);
        F gauss;
        const M tiny = B::le(u1, B::fbroadcast(1e-300));
        if (B::any(tiny)) {
            // A zero draw (probability 2^-53 per lane) triggers the
            // redraw loop, which advances the stream; replay the whole
            // vector through the scalar helper (identical sequence).
            for (std::size_t l = 0; l < kLanes; ++l) {
                const std::uint64_t h = vHashCombine<ScalarBackend>(
                    vHashCombine<ScalarBackend>(
                        vHashCombine<ScalarBackend>(
                            args.seedHash[i + l], kSaltTrial),
                        args.trial),
                    args.tempKey);
                dlane[l] = detGaussian(h);
            }
            gauss = B::fload(dlane);
        } else {
            const F r =
                B::sqrt(B::mul(B::fbroadcast(-2.0), vLog<B>(u1)));
            gauss = B::mul(
                r, vCos<B>(B::mul(B::fbroadcast(c::kTwoPi), u2)));
        }
        const F noise = vExp<B>(B::mul(trialSigma, gauss));

        const F hc = B::div(B::mul(threshold, noise), rate);
        const M eligible = B::mand(eligible0, B::gt(rate, zero));
        const F out = B::select(eligible, hc, inf);
        B::fstore(args.outHc + i, out);
        minAcc = B::fmin(minAcc, out);
    }

    // Fold the lane minima; exact, so lane width cannot change it.
    B::fstore(dlane, minAcc);
    double result = dlane[0];
    for (std::size_t l = 1; l < kLanes; ++l)
        result = dlane[l] < result ? dlane[l] : result;

    // Tail cells run on the scalar backend (identical op sequence).
    if constexpr (kLanes > 1) {
        const std::size_t done =
            begin + (end - begin) / kLanes * kLanes;
        if (done < end) {
            const double tail =
                kernelLoop<ScalarBackend>(args, done, end);
            result = tail < result ? tail : result;
        }
    }
    return result;
}

/** The Random pattern's per-column byte table, lane-parallel:
 *  dst[c] = hashCombine(rowHash, c) & 0xff (see DataPattern::byteAt). */
template <class B>
inline void
fillLoop(std::uint64_t rowHash, std::uint8_t *dst, std::size_t columns)
{
    using U = typename B::U;
    constexpr std::size_t kLanes = B::kLanes;
    alignas(64) std::uint64_t lane[kLanes];

    const U row = B::ubroadcast(rowHash);
    std::size_t c = 0;
    for (; c + kLanes <= columns; c += kLanes) {
        for (std::size_t l = 0; l < kLanes; ++l)
            lane[l] = c + l;
        const U bytes = B::uand(vHashCombine<B>(row, B::uload(lane)),
                                B::ubroadcast(0xff));
        B::ustore(lane, bytes);
        for (std::size_t l = 0; l < kLanes; ++l)
            dst[c + l] = static_cast<std::uint8_t>(lane[l]);
    }
    for (; c < columns; ++c) {
        dst[c] = static_cast<std::uint8_t>(
            vHashCombine<ScalarBackend>(rowHash, c) & 0xff);
    }
}

} // namespace

} // namespace rhs::rhmodel::kern

#endif // RHS_RHMODEL_KERNEL_MATH_HH

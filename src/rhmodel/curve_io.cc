#include "rhmodel/curve_io.hh"

#include <bit>
#include <cstring>
#include <type_traits>

#include "rhmodel/dimm.hh"
#include "rhmodel/profile.hh"
#include "util/hash.hh"

namespace rhs::rhmodel::curve_io
{

namespace
{

static_assert(sizeof(dram::CellLocation) == 20,
              "CellLocation layout is part of the record format");
static_assert(std::is_trivially_copyable_v<dram::CellLocation>);

constexpr std::size_t
pad8(std::size_t n)
{
    return (n + 7) & ~std::size_t{7};
}

void
appendRaw(std::vector<std::uint8_t> &out, const void *data,
          std::size_t size)
{
    if (size == 0)
        return;
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    out.insert(out.end(), bytes, bytes + size);
}

template <typename T>
void
append(std::vector<std::uint8_t> &out, T value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    appendRaw(out, &value, sizeof(value));
}

void
appendPadding(std::vector<std::uint8_t> &out, std::size_t upto)
{
    out.resize(upto, 0);
}

} // namespace

void
encodeKey(const ModuleRef &module, const EvalKey &key,
          std::vector<std::uint8_t> &out)
{
    out.clear();
    out.reserve(68 + 4 * key.aggressors.size());
    append<std::uint32_t>(out, module.mfr);
    append<std::uint32_t>(out, module.moduleIndex);
    append<std::uint32_t>(out, module.subarrays);
    append<std::uint32_t>(out, key.bank);
    append<std::uint32_t>(out, key.victimRow);
    append<std::uint32_t>(out, key.patternCenter);
    append<std::uint32_t>(out, key.trial);
    append<std::uint32_t>(out, static_cast<std::uint32_t>(key.patternId));
    append<std::uint64_t>(out, key.patternSeed);
    append<std::uint64_t>(out, std::bit_cast<std::uint64_t>(key.temperature));
    append<std::uint64_t>(out, std::bit_cast<std::uint64_t>(key.tAggOn));
    append<std::uint64_t>(out, std::bit_cast<std::uint64_t>(key.tAggOff));
    append<std::uint32_t>(out,
                          static_cast<std::uint32_t>(key.aggressors.size()));
    for (const unsigned aggressor : key.aggressors)
        append<std::uint32_t>(out, aggressor);
}

void
encodeRecord(std::span<const std::uint8_t> key, const RowEval &eval,
             std::vector<std::uint8_t> &out)
{
    const std::size_t n = eval.hcFirst.size();
    RecordHeader header;
    header.keyBytes = static_cast<std::uint32_t>(key.size());
    header.cellCount = static_cast<std::uint32_t>(n);
    header.vulnerableCells = eval.vulnerableCells;
    header.minHcFirst = eval.minHcFirst;

    out.clear();
    const std::size_t body = sizeof(RecordHeader) + pad8(key.size()) +
                             8 * n + pad8(20 * n);
    out.reserve(body + 8);
    append(out, header);
    appendRaw(out, key.data(), key.size());
    appendPadding(out, sizeof(RecordHeader) + pad8(key.size()));
    appendRaw(out, eval.hcFirst.data(), 8 * n);
    appendRaw(out, eval.loc.data(), 20 * n);
    appendPadding(out, body);
    append<std::uint64_t>(out, util::bytesHash64(out.data(), out.size()));
}

bool
parseRecord(const std::uint8_t *data, std::size_t size, RecordView &view)
{
    if (data == nullptr || size < sizeof(RecordHeader) + 8)
        return false;
    RecordHeader header;
    std::memcpy(&header, data, sizeof(header));
    if (header.flags != 0)
        return false;
    const std::size_t key_end =
        sizeof(RecordHeader) + pad8(header.keyBytes);
    const std::size_t n = header.cellCount;
    const std::size_t body = key_end + 8 * n + pad8(20 * n);
    if (header.keyBytes == 0 || body + 8 != size)
        return false;
    const std::uint8_t *hc_bytes = data + key_end;
    // A span<const double> view requires real 8-byte alignment; the
    // snapshot writer and the spill buffer both provide it, so a
    // misaligned pointer means the container is broken — miss.
    if (reinterpret_cast<std::uintptr_t>(hc_bytes) % alignof(double) != 0)
        return false;
    view.key = {data + sizeof(RecordHeader), header.keyBytes};
    view.hcFirst = {reinterpret_cast<const double *>(hc_bytes), n};
    view.loc = {reinterpret_cast<const dram::CellLocation *>(
                    hc_bytes + 8 * n),
                n};
    view.vulnerableCells = header.vulnerableCells;
    view.minHcFirst = header.minHcFirst;
    return true;
}

bool
verifyRecordDigest(const std::uint8_t *data, std::size_t size)
{
    if (size < 8)
        return false;
    std::uint64_t stored;
    std::memcpy(&stored, data + size - 8, 8);
    return stored == util::bytesHash64(data, size - 8);
}

namespace
{

std::uint64_t
hashProfile(std::uint64_t h, const ManufacturerProfile &profile)
{
    const auto mix = [&h](double v) {
        h = util::hashCombine(h, std::bit_cast<std::uint64_t>(v));
    };
    h = util::hashCombine(h, static_cast<std::uint64_t>(profile.mfr));
    h = util::hashCombine(
        h, util::bytesHash64(profile.name.data(), profile.name.size()));
    h = util::hashCombine(h,
                          util::bytesHash64(profile.mappingScheme.data(),
                                            profile.mappingScheme.size()));
    mix(profile.targets.hcOnReduction);
    mix(profile.targets.hcOffIncrease);
    mix(profile.targets.berOnRatio);
    mix(profile.targets.berOffRatio);
    mix(profile.solveBerOnRatio);
    mix(profile.solveBerOffRatio);
    mix(profile.sigmaCap);
    h = util::hashCombine(h, profile.tempMixture.size());
    for (const auto &component : profile.tempMixture) {
        mix(component.fraction);
        mix(component.tinfMean);
        mix(component.tinfSigma);
        mix(component.widthMin);
        mix(component.widthMax);
        mix(component.sigmaScale);
        mix(component.logMedianShift);
    }
    mix(profile.cellsPerRowMean);
    mix(profile.rowSigma);
    mix(profile.weakRowFraction);
    mix(profile.weakRowFactor);
    mix(profile.subarraySigma);
    mix(profile.moduleSigma);
    mix(profile.designMix);
    mix(profile.designDeadFraction);
    mix(profile.processDeadFraction);
    mix(profile.columnSigma);
    mix(profile.trialNoiseSigma);
    mix(profile.distance1Damage);
    mix(profile.distance2Damage);
    mix(profile.dataFactorBase);
    mix(profile.wCouple);
    mix(profile.kOn);
    mix(profile.cellSigma);
    mix(profile.zBase);
    mix(profile.hcMedianLog);
    return h;
}

} // namespace

std::uint64_t
modelParamsFingerprint()
{
    // The format identity word seeds the chain so a fingerprint can
    // never collide with a digest of unrelated bytes.
    std::uint64_t h = util::splitMix64(0x52485353'4e415031ULL);
    for (const auto mfr : allMfrs) {
        h = hashProfile(h, profileFor(mfr));
        h = util::hashCombine(
            h, defaultChipCount(mfr, dram::Standard::DDR4));
    }
    const DimmOptions defaults;
    h = util::hashTuple(h, static_cast<std::uint64_t>(defaults.standard),
                        defaults.banks, defaults.subarraysPerBank,
                        defaults.rowsPerSubarray, defaults.columnsPerRow,
                        defaults.chips);
    return h;
}

} // namespace rhs::rhmodel::curve_io

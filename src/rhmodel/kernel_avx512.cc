/**
 * @file
 * The AVX-512 kernel variant: 8 double lanes per vector, using the F
 * and DQ subsets (vpmullq for the hash chain, vcvtuqq2pd for the exact
 * unsigned convert, mask registers for lane predicates). This TU is
 * compiled with -mavx512f -mavx512dq and must only be entered through
 * the dispatch table after cpuSupports(Avx512) confirmed the host.
 */

#if defined(__x86_64__) || defined(_M_X64)

// GCC 12's avx512fintrin.h trips -Wmaybe-uninitialized inside its own
// maskless intrinsic wrappers (GCC PR 105593); the diagnostic points
// at the system header, not this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include "rhmodel/kernel.hh"
#include "rhmodel/kernel_math.hh"

namespace rhs::rhmodel::kern
{

namespace
{

struct Avx512Backend
{
    static constexpr std::size_t kLanes = 8;
    using F = __m512d;
    using U = __m512i;
    using M = __mmask8;

    static F fbroadcast(double v) { return _mm512_set1_pd(v); }
    static F fload(const double *p) { return _mm512_loadu_pd(p); }
    static void fstore(double *p, F v) { _mm512_storeu_pd(p, v); }
    static F add(F a, F b) { return _mm512_add_pd(a, b); }
    static F sub(F a, F b) { return _mm512_sub_pd(a, b); }
    static F mul(F a, F b) { return _mm512_mul_pd(a, b); }
    static F div(F a, F b) { return _mm512_div_pd(a, b); }
    static F sqrt(F a) { return _mm512_sqrt_pd(a); }
    static F fmin(F a, F b) { return _mm512_min_pd(a, b); }
    static F fmax(F a, F b) { return _mm512_max_pd(a, b); }
    static M gt(F a, F b)
    {
        return _mm512_cmp_pd_mask(a, b, _CMP_GT_OQ);
    }
    static M lt(F a, F b)
    {
        return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ);
    }
    static M le(F a, F b)
    {
        return _mm512_cmp_pd_mask(a, b, _CMP_LE_OQ);
    }
    //! mask_blend picks b where the mask is set.
    static F select(M m, F a, F b)
    {
        return _mm512_mask_blend_pd(m, b, a);
    }
    static M mand(M a, M b)
    {
        return static_cast<M>(a & b);
    }
    static bool any(M m) { return m != 0; }

    static U ubroadcast(std::uint64_t v)
    {
        return _mm512_set1_epi64(static_cast<long long>(v));
    }
    static U uload(const std::uint64_t *p)
    {
        return _mm512_loadu_si512(p);
    }
    static void ustore(std::uint64_t *p, U v)
    {
        _mm512_storeu_si512(p, v);
    }
    static U uadd(U a, U b) { return _mm512_add_epi64(a, b); }
    static U usub(U a, U b) { return _mm512_sub_epi64(a, b); }
    static U uand(U a, U b) { return _mm512_and_si512(a, b); }
    static U uor(U a, U b) { return _mm512_or_si512(a, b); }
    static U uxor(U a, U b) { return _mm512_xor_si512(a, b); }
    static U umul(U a, U b) { return _mm512_mullo_epi64(a, b); }
    template <int N> static U ushl(U a) { return _mm512_slli_epi64(a, N); }
    template <int N> static U ushr(U a) { return _mm512_srli_epi64(a, N); }
    static U ushrv(U a, U n) { return _mm512_srlv_epi64(a, n); }
    static M ueq(U a, U b) { return _mm512_cmpeq_epu64_mask(a, b); }

    //! vcvtuqq2pd is exact below 2^53 (the only inputs used).
    static F u2f(U v) { return _mm512_cvtepu64_pd(v); }
    static U f2bits(F v) { return _mm512_castpd_si512(v); }
    static F bits2f(U v) { return _mm512_castsi512_pd(v); }
};

} // namespace

double
runAvx512(const KernelArgs &args)
{
    return kernelLoop<Avx512Backend>(args, 0, args.n);
}

void
fillAvx512(std::uint64_t rowHash, std::uint8_t *dst, std::size_t columns)
{
    fillLoop<Avx512Backend>(rowHash, dst, columns);
}

} // namespace rhs::rhmodel::kern

#endif // x86_64

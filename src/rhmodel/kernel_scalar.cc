/**
 * @file
 * The portable scalar kernel variant: the reference instantiation of
 * the shared kernel templates, compiled with the baseline target flags
 * so it runs on any host. Every vector variant's results are defined
 * as "byte-identical to this".
 */

#include "rhmodel/kernel.hh"
#include "rhmodel/kernel_math.hh"

namespace rhs::rhmodel::kern
{

double
runScalar(const KernelArgs &args)
{
    return kernelLoop<ScalarBackend>(args, 0, args.n);
}

void
fillScalar(std::uint64_t rowHash, std::uint8_t *dst, std::size_t columns)
{
    fillLoop<ScalarBackend>(rowHash, dst, columns);
}

} // namespace rhs::rhmodel::kern

#include "rhmodel/retention.hh"

#include <cmath>

#include "rhmodel/profile.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace rhs::rhmodel
{

namespace
{

enum : std::uint64_t
{
    SaltRetention = 0x9009,
    SaltRetentionBulk = 0x900A,
};

} // namespace

RetentionModel::RetentionModel(std::uint64_t serial,
                               const dram::Geometry &geometry,
                               unsigned chips,
                               const RetentionParams &params)
    : serial(serial), geometry(geometry), chips(chips), params(params)
{
    RHS_ASSERT(chips > 0);
}

double
RetentionModel::temperatureDerating(double temperature) const
{
    // Retention shortens exponentially with temperature (leakage
    // roughly doubles every ~10 degC).
    return std::exp(-params.temperatureSlopePerDegC *
                    (temperature - 50.0));
}

double
RetentionModel::retentionMsAt50C(const dram::CellLocation &location) const
{
    const auto seed =
        util::hashTuple(serial, SaltRetention, location.chip,
                        location.bank, location.row, location.column,
                        location.bit);
    util::Rng rng(seed);
    if (rng.uniform() < params.weakFraction)
        return rng.uniform(params.weakMinMs, params.weakMaxMs);
    return std::exp(std::log(params.medianMs) +
                    params.sigma * rng.gaussian());
}

std::vector<RetentionFailure>
RetentionModel::failuresInRow(unsigned bank, unsigned physical_row,
                              double elapsed_ms,
                              double temperature) const
{
    std::vector<RetentionFailure> failures;
    const double derate = temperatureDerating(temperature);

    // Weak-tail cells, sampled procedurally per row (checking all
    // bit positions individually would dominate the cost for a tail
    // this sparse).
    const double positions = static_cast<double>(chips) *
                             geometry.bitsPerRow();
    const auto row_seed = util::hashTuple(serial, SaltRetention, bank,
                                          physical_row);
    util::Rng rng(row_seed);
    const unsigned weak_count =
        rng.poisson(positions * params.weakFraction);
    for (unsigned i = 0; i < weak_count; ++i) {
        RetentionFailure failure;
        failure.location.chip =
            static_cast<unsigned>(rng.uniformInt(chips));
        failure.location.bank = bank;
        failure.location.row = physical_row;
        failure.location.column = static_cast<unsigned>(
            rng.uniformInt(geometry.columnsPerRow));
        failure.location.bit = static_cast<unsigned>(
            rng.uniformInt(geometry.bitsPerColumn));
        failure.retentionMs =
            rng.uniform(params.weakMinMs, params.weakMaxMs) * derate;
        if (failure.retentionMs <= elapsed_ms)
            failures.push_back(failure);
    }

    // Bulk population: only relevant for very long refresh-free
    // intervals. Expected failure count via the log-normal CDF.
    const double effective = elapsed_ms / derate;
    if (effective > params.weakMaxMs) {
        const double z = (std::log(effective) -
                          std::log(params.medianMs)) /
                         params.sigma;
        const double bulk_fraction = normalCdf(z);
        util::Rng bulk_rng(util::hashTuple(serial, SaltRetentionBulk,
                                           bank, physical_row));
        const unsigned bulk_count =
            bulk_rng.poisson(positions * bulk_fraction);
        for (unsigned i = 0; i < bulk_count; ++i) {
            RetentionFailure failure;
            failure.location.chip =
                static_cast<unsigned>(bulk_rng.uniformInt(chips));
            failure.location.bank = bank;
            failure.location.row = physical_row;
            failure.location.column = static_cast<unsigned>(
                bulk_rng.uniformInt(geometry.columnsPerRow));
            failure.location.bit = static_cast<unsigned>(
                bulk_rng.uniformInt(geometry.bitsPerColumn));
            failure.retentionMs = effective * derate;
            failures.push_back(failure);
        }
    }
    return failures;
}

bool
RetentionModel::testIsRetentionSafe(unsigned bank, unsigned physical_row,
                                    double elapsed_ms,
                                    double temperature) const
{
    return failuresInRow(bank, physical_row, elapsed_ms, temperature)
        .empty();
}

} // namespace rhs::rhmodel

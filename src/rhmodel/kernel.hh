/**
 * @file
 * The row-evaluation kernel's SIMD dispatch surface.
 *
 * One binary carries several compilations of the same kernel — a
 * portable scalar build plus AVX2/AVX-512 (x86-64) or NEON (aarch64)
 * vector builds — and picks one at runtime from what the host CPU
 * supports, so a heterogeneous fleet runs a single artifact instead of
 * per-host -march=native builds.
 *
 * Determinism contract: every variant computes each cell with the same
 * operation sequence over IEEE-754 doubles, and all transcendental
 * math funnels through the deterministic implementations in
 * kernel_math.hh (shared with the scalar reference path in
 * cell_model.cc). Basic IEEE operations are exactly rounded on every
 * ISA, so all variants produce byte-identical RowEval curves — the
 * per-variant equivalence suite in tests/rhmodel_equivalence_test.cc
 * asserts exactly that.
 *
 * Selection order: forceVariant()/setVariant() override (the --simd
 * flag) > the RHS_SIMD environment variable > best supported vector
 * ISA > scalar. The resolved choice is logged once and exported as
 * obs metrics (gauge roweval.simd.variant = ordinal, info
 * roweval.simd.variant = name), which the rhs-serve stats snapshot
 * picks up from the global registry.
 */

#ifndef RHS_RHMODEL_KERNEL_HH
#define RHS_RHMODEL_KERNEL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rhs::obs
{
class Counter;
} // namespace rhs::obs

namespace rhs::rhmodel::kern
{

/** Kernel variants, ordered worst to best (auto picks the highest). */
enum class Simd : int
{
    Scalar = 0,
    Neon = 1,
    Avx2 = 2,
    Avx512 = 3,
};

/** Lower-case variant name ("scalar", "avx2", ...). */
const char *name(Simd simd);

/**
 * One row evaluation, laid out SoA. All arrays hold `n` entries unless
 * noted; byte tables hold one byte per column address. The kernel
 * writes outHc[i] = the cell's HCfirst, or +inf when the cell is
 * ineligible (wrong stored polarity or zero damage rate), and returns
 * the minimum over all lanes (+inf when none is eligible).
 */
struct KernelArgs
{
    std::size_t n = 0;
    const std::uint64_t *seedHash = nullptr; //!< splitMix64(cell.seed).
    const double *threshold = nullptr;
    const double *tinf = nullptr;
    const double *width = nullptr;
    const std::uint32_t *column = nullptr;
    const std::uint64_t *bit = nullptr;     //!< Bit index within byte.
    const std::uint64_t *charged = nullptr; //!< chargedValue, 0/1.

    //! Victim-row pattern bytes by column (null = column-invariant
    //! pattern; use victimConstByte).
    const std::uint8_t *victimBytes = nullptr;
    std::uint8_t victimConstByte = 0;

    std::size_t aggrCount = 0;           //!< Active aggressors only.
    const double *aggrDist = nullptr;    //!< [aggrCount] dist factors.
    //! [aggrCount] per-column byte tables (entries null when the
    //! pattern is column-invariant; use aggrConstByte).
    const std::uint8_t *const *aggrBytes = nullptr;
    const std::uint8_t *aggrConstByte = nullptr; //!< [aggrCount].

    double timing = 1.0;      //!< Hoisted timingFactor(conditions).
    double temperature = 50.0;
    double dataBase = 0.0;    //!< profile.dataFactorBase.
    double trialSigma = 0.0;  //!< profile.trialNoiseSigma.
    std::uint64_t trial = 0;
    std::uint64_t tempKey = 0; //!< llround(temperature * 10).

    double *outHc = nullptr; //!< [n], written by the kernel.
};

/** A kernel pass: fill outHc, return the minimum HCfirst. */
using KernelFn = double (*)(const KernelArgs &args);

/**
 * Fill dst[c] with the Random pattern byte of column c for the row
 * whose pattern stream is rowHash = hashCombine(splitMix64(seed),
 * physical_row) — the vectorized form of DataPattern::byteAt.
 */
using FillFn = void (*)(std::uint64_t rowHash, std::uint8_t *dst,
                        std::size_t columns);

/** The resolved kernel: entry points plus its obs pass counter. */
struct Active
{
    Simd id = Simd::Scalar;
    KernelFn kernel = nullptr;
    FillFn fill = nullptr;
    //! "roweval.kernel.passes.<name>" in the global registry.
    obs::Counter *passes = nullptr;
};

// Per-variant entry points. Each pair is defined in its own TU
// (kernel_<variant>.cc) compiled with that ISA's flags; only the
// variants in compiledVariants() are linked into the binary.
double runScalar(const KernelArgs &args);
void fillScalar(std::uint64_t rowHash, std::uint8_t *dst,
                std::size_t columns);
double runAvx2(const KernelArgs &args);
void fillAvx2(std::uint64_t rowHash, std::uint8_t *dst,
              std::size_t columns);
double runAvx512(const KernelArgs &args);
void fillAvx512(std::uint64_t rowHash, std::uint8_t *dst,
                std::size_t columns);
double runNeon(const KernelArgs &args);
void fillNeon(std::uint64_t rowHash, std::uint8_t *dst,
              std::size_t columns);

/** Variants compiled into this binary (always includes Scalar). */
std::vector<Simd> compiledVariants();

/** True when the host CPU can execute the variant. */
bool cpuSupports(Simd simd);

/** Compiled AND executable on this host (always includes Scalar). */
std::vector<Simd> supportedVariants();

/**
 * The active kernel. First call resolves the choice (override > the
 * RHS_SIMD environment variable > best supported), logs it once, and
 * publishes the obs gauge/info metrics. RHS_SIMD naming an unknown or
 * unsupported variant is a fatal configuration error.
 */
const Active &active();

/**
 * Set the variant by name ("scalar", "avx2", "avx512", "neon", or
 * "auto"), as the --simd flag does. Returns false (with a message in
 * *error) when the name is unknown or the variant is not supported on
 * this host. Not thread-safe against kernel passes in flight: call it
 * at startup or between experiment phases.
 */
bool setVariant(const std::string &spec, std::string *error = nullptr);

/** Test/bench hook: force a specific supported variant. */
void forceVariant(Simd simd);

} // namespace rhs::rhmodel::kern

#endif // RHS_RHMODEL_KERNEL_HH

/**
 * @file
 * Binary serialization of RowEval curves and their lookup keys — the
 * record layer shared by the rhs-snap/1 snapshot format and the
 * RowEval eviction spill file (src/snap).
 *
 * A stored curve is one self-describing *record*:
 *
 *   RecordHeader   24 B  {keyBytes, cellCount, vulnerableCells,
 *                         flags, minHcFirst}
 *   key            keyBytes, zero-padded to 8 B
 *   hcFirst        cellCount * 8 B (f64, 8-byte aligned)
 *   loc            cellCount * 20 B (dram::CellLocation, raw)
 *   padding        to 8 B
 *   digest         8 B (util::bytesHash64 over everything above)
 *
 * All integers are little-endian native; the container (snapshot file
 * header) carries an endianness tag so a foreign-endian file is
 * rejected instead of misread. Offsets are arranged so that when a
 * record starts 8-byte aligned, the hcFirst array is 8-byte aligned
 * in place — which is what lets the snapshot reader hand out
 * std::span<const double> views straight into the mmap (zero copy).
 *
 * The key is the module-scoped EvalKey: ModuleRef (which simulated
 * module) + every EvalKey field. Lookups compare full encoded key
 * bytes, so a hash collision can never return a wrong curve, and the
 * record digest is verified before a curve is served, so a flipped
 * bit degrades to a miss (live recompute), never wrong data.
 */

#ifndef RHS_RHMODEL_CURVE_IO_HH
#define RHS_RHMODEL_CURVE_IO_HH

#include <cstdint>
#include <span>
#include <vector>

#include "rhmodel/analytic.hh"
#include "rhmodel/mfr.hh"

namespace rhs::rhmodel::curve_io
{

/** Identity of one simulated module (the key's global scope). */
struct ModuleRef
{
    std::uint32_t mfr = 0;         //!< static_cast of rhmodel::Mfr.
    std::uint32_t moduleIndex = 0; //!< Procedural-randomness seed.
    std::uint32_t subarrays = 0;   //!< 0 = model-default geometry.

    bool operator==(const ModuleRef &) const = default;
};

/** Fixed-size prefix of every record (see file comment for layout). */
struct RecordHeader
{
    std::uint32_t keyBytes = 0;
    std::uint32_t cellCount = 0;
    std::uint32_t vulnerableCells = 0;
    std::uint32_t flags = 0; //!< Reserved, must be 0 in rhs-snap/1.
    double minHcFirst = 0.0;
};
static_assert(sizeof(RecordHeader) == 24);

/** Zero-copy view into one parsed record. */
struct RecordView
{
    std::span<const std::uint8_t> key;
    std::span<const double> hcFirst;
    std::span<const dram::CellLocation> loc;
    unsigned vulnerableCells = 0;
    double minHcFirst = 0.0;
};

/** Serialize the module-scoped key (replaces `out`). */
void encodeKey(const ModuleRef &module, const EvalKey &key,
               std::vector<std::uint8_t> &out);

/** Serialize one full record, digest included (replaces `out`). */
void encodeRecord(std::span<const std::uint8_t> key, const RowEval &eval,
                  std::vector<std::uint8_t> &out);

/**
 * Parse a record in place. Validates structure (bounds, padding,
 * alignment of the in-place f64 array) but NOT the digest — callers
 * decide when to pay for verifyRecordDigest (the snapshot reader
 * verifies once per record, the spill tier on every read).
 *
 * @return False when the bytes cannot be a well-formed record; the
 *         caller treats that as a miss.
 */
bool parseRecord(const std::uint8_t *data, std::size_t size,
                 RecordView &view);

/** True when the record's trailing digest matches its contents. */
bool verifyRecordDigest(const std::uint8_t *data, std::size_t size);

/**
 * Fingerprint of everything curve values depend on besides the key:
 * all four calibrated manufacturer profiles (every field, mixture
 * components included) and the default module geometry. A snapshot
 * records it at build time; a reader rejects a file whose fingerprint
 * differs — the model changed, so stored curves are stale.
 */
std::uint64_t modelParamsFingerprint();

} // namespace rhs::rhmodel::curve_io

#endif // RHS_RHMODEL_CURVE_IO_HH

/**
 * @file
 * Data patterns of Table 1 in the paper.
 *
 * A RowHammer test writes a pattern to the victim row V and its
 * physically-adjacent rows V±[1..8]. Rows with the same address parity
 * as V receive one byte, the rows of opposite parity another:
 *
 *   pattern     V±even   V±odd
 *   colstripe   0x55     0x55     (+ complement)
 *   checkered   0x55     0xaa     (+ complement)
 *   rowstripe   0x00     0xff     (+ complement)
 *   random      per-cell pseudorandom
 *
 * The worst-case data pattern (WCDP) of a module is the one producing
 * the most bit flips (§4.2); core::findWorstCasePattern measures it.
 */

#ifndef RHS_RHMODEL_PATTERN_HH
#define RHS_RHMODEL_PATTERN_HH

#include <array>
#include <cstdint>
#include <string>

namespace rhs::rhmodel
{

/** The seven patterns of Table 1. */
enum class PatternId : std::uint8_t
{
    ColStripe,
    ColStripeInv,
    Checkered,
    CheckeredInv,
    RowStripe,
    RowStripeInv,
    Random,
};

/** All patterns, for WCDP scans. */
inline constexpr std::array<PatternId, 7> allPatterns{
    PatternId::ColStripe, PatternId::ColStripeInv, PatternId::Checkered,
    PatternId::CheckeredInv, PatternId::RowStripe, PatternId::RowStripeInv,
    PatternId::Random,
};

/** Pattern name for reports. */
std::string to_string(PatternId id);

/** A concrete data pattern instance (Random carries a seed). */
class DataPattern
{
  public:
    /**
     * @param id Which Table 1 pattern.
     * @param seed Seed for the Random pattern (ignored otherwise).
     */
    explicit DataPattern(PatternId id, std::uint64_t seed = 0)
        : patternId(id), seed(seed)
    {
    }

    PatternId id() const { return patternId; }

    /**
     * True when byteAt ignores the column — every Table 1 pattern but
     * Random. The row-evaluation kernel hoists such patterns' bytes
     * out of its per-cell loop (one byte per row instead of one lookup
     * per cell).
     */
    bool columnInvariant() const { return patternId != PatternId::Random; }

    /** The Random pattern's seed (pattern identity for cache keys). */
    std::uint64_t patternSeed() const { return seed; }

    /**
     * The byte this pattern stores at (physical row, column), for a
     * test whose victim is victim_row (parity is relative to the
     * victim's address, per Table 1).
     */
    std::uint8_t byteAt(unsigned physical_row, unsigned victim_row,
                        unsigned column) const;

    /** The stored value of one bit under this pattern. */
    bool
    bitAt(unsigned physical_row, unsigned victim_row, unsigned column,
          unsigned bit) const
    {
        return (byteAt(physical_row, victim_row, column) >> bit) & 1;
    }

  private:
    PatternId patternId;
    std::uint64_t seed;
};

} // namespace rhs::rhmodel

#endif // RHS_RHMODEL_PATTERN_HH

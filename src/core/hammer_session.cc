#include "core/hammer_session.hh"

#include "softmc/host.hh"
#include "util/logging.hh"

namespace rhs::core
{

void
installPattern(rhmodel::SimulatedDimm &dimm, unsigned bank,
               unsigned victim_physical_row,
               const rhmodel::DataPattern &pattern,
               unsigned pattern_radius)
{
    auto &module = dimm.module();
    const auto &geometry = module.geometry();
    const auto &mapping = module.rowMapping();
    const unsigned rows = geometry.rowsPerBank();
    const unsigned chips = module.chipCount();

    const long lo = static_cast<long>(victim_physical_row) -
                    static_cast<long>(pattern_radius);
    const long hi = static_cast<long>(victim_physical_row) +
                    static_cast<long>(pattern_radius);
    for (long phys = lo; phys <= hi; ++phys) {
        if (phys < 0 || phys >= static_cast<long>(rows))
            continue;
        const auto phys_row = static_cast<unsigned>(phys);

        // Every chip of the lock-step rank stores the same row image:
        // build it once and replicate, instead of regenerating it
        // column-by-column per chip.
        std::vector<std::uint8_t> image;
        image.reserve(geometry.bytesPerRow());
        for (unsigned col = 0; col < geometry.columnsPerRow; ++col)
            image.push_back(
                pattern.byteAt(phys_row, victim_physical_row, col));
        image.resize(geometry.bytesPerRow());

        const std::vector<std::vector<std::uint8_t>> images(chips, image);
        module.storeRowDirect(bank, mapping.toLogical(phys_row), images);
    }
}

CycleTestResult
runCycleHammerTest(rhmodel::SimulatedDimm &dimm,
                   const rhmodel::DataPattern &pattern,
                   const CycleTestConfig &config)
{
    auto &module = dimm.module();
    const auto &geometry = module.geometry();
    const auto &mapping = module.rowMapping();
    const unsigned rows = geometry.rowsPerBank();
    const unsigned victim = config.victimPhysicalRow;
    RHS_ASSERT(victim >= 1 && victim + 1 < rows,
               "double-sided victim needs both neighbours: row ", victim);

    module.resetTiming(); // Each test session restarts its clock.
    installPattern(dimm, config.bank, victim, pattern,
                   config.patternRadius);

    auto &injector = dimm.injector();
    injector.setTemperature(config.conditions.temperature);
    injector.setTrial(config.trial);
    injector.beginTest();

    softmc::HammerProgramSpec spec;
    spec.bank = config.bank;
    spec.aggressorA = mapping.toLogical(victim - 1);
    spec.aggressorB = mapping.toLogical(victim + 1);
    spec.hammers = config.hammers;
    spec.tAggOn = config.conditions.tAggOn;
    spec.tAggOff = config.conditions.tAggOff;
    spec.readsPerActivation = config.readsPerActivation;

    softmc::Host host(module);
    const auto program = softmc::makeHammerProgram(module.timing(), spec);
    const auto run = host.run(program);

    CycleTestResult result;
    result.elapsedNs = run.elapsedNs;

    const long radius = static_cast<long>(config.patternRadius);
    for (long offset = -radius; offset <= radius; ++offset) {
        const long phys = static_cast<long>(victim) + offset;
        if (phys < 0 || phys >= static_cast<long>(rows))
            continue;
        const auto phys_row = static_cast<unsigned>(phys);
        const auto images =
            module.loadRowDirect(config.bank, mapping.toLogical(phys_row));

        unsigned flips = 0;
        for (unsigned chip = 0; chip < module.chipCount(); ++chip) {
            for (unsigned col = 0; col < geometry.columnsPerRow; ++col) {
                const std::uint8_t expected =
                    pattern.byteAt(phys_row, victim, col);
                const std::uint8_t diff = images[chip][col] ^ expected;
                flips += static_cast<unsigned>(__builtin_popcount(diff));
            }
        }
        if (flips > 0 || (offset >= -2 && offset <= 2))
            result.flipsByOffset[static_cast<int>(offset)] = flips;
    }
    return result;
}

} // namespace rhs::core

#include "core/spatial.hh"

#include <algorithm>
#include <cmath>

#include "obs/trace.hh"
#include "stats/descriptive.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace rhs::core
{

rhmodel::Conditions
spatialConditions()
{
    rhmodel::Conditions conditions;
    conditions.temperature = 75.0; // §7 experiments run at 75 degC.
    return conditions;
}

std::vector<double>
rowHcFirstSurvey(const Tester &tester, unsigned bank,
                 const std::vector<unsigned> &rows,
                 const rhmodel::DataPattern &pattern)
{
    OBS_SPAN("sweep.row_survey");
    const auto conditions = spatialConditions();
    // Parallel per-row searches into pre-sized slots, compacted in
    // row order (so the survey is bit-identical for any job count).
    std::vector<std::uint64_t> raw(rows.size(), kNotVulnerable);
    util::parallelFor(0, rows.size(), [&](std::size_t r) {
        raw[r] = tester.hcFirstMin(bank, rows[r], conditions, pattern);
    });

    std::vector<double> hcs;
    hcs.reserve(rows.size());
    for (auto hc : raw) {
        if (hc != kNotVulnerable)
            hcs.push_back(static_cast<double>(hc));
    }
    return hcs;
}

RowVariationSummary
summarizeRowVariation(const std::vector<double> &hcs)
{
    RHS_ASSERT(!hcs.empty(), "no vulnerable rows to summarize");
    RowVariationSummary summary;
    summary.minHcFirst = stats::minValue(hcs);
    summary.p1Ratio = stats::quantile(hcs, 0.01) / summary.minHcFirst;
    summary.p5Ratio = stats::quantile(hcs, 0.05) / summary.minHcFirst;
    summary.p10Ratio = stats::quantile(hcs, 0.10) / summary.minHcFirst;
    return summary;
}

double
ColumnFlipCounts::zeroFraction() const
{
    std::uint64_t zero = 0, total = 0;
    for (const auto &chip : counts) {
        for (auto count : chip) {
            ++total;
            if (count == 0)
                ++zero;
        }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(zero) /
                            static_cast<double>(total);
}

double
ColumnFlipCounts::overFraction(std::uint64_t threshold) const
{
    std::uint64_t over = 0, total = 0;
    for (const auto &chip : counts) {
        for (auto count : chip) {
            ++total;
            if (count > threshold)
                ++over;
        }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(over) /
                            static_cast<double>(total);
}

std::uint64_t
ColumnFlipCounts::chipMinimum(unsigned chip) const
{
    RHS_ASSERT(chip < counts.size());
    return *std::min_element(counts[chip].begin(), counts[chip].end());
}

ColumnFlipCounts
columnFlipSurvey(const Tester &tester, unsigned bank,
                 const std::vector<unsigned> &rows,
                 const rhmodel::DataPattern &pattern,
                 std::uint64_t hammers)
{
    const auto &module = tester.module().module();
    const auto conditions = spatialConditions();

    ColumnFlipCounts result;
    result.counts.assign(
        module.chipCount(),
        std::vector<std::uint64_t>(module.geometry().columnsPerRow, 0));

    // Per-row flip lists in parallel, read straight off the cached
    // row-evaluation curves; the fold only increments integer
    // counters, so accumulation order cannot change it.
    std::vector<std::vector<dram::CellLocation>> flips(rows.size());
    util::parallelFor(0, rows.size(), [&](std::size_t r) {
        const auto eval =
            tester.rowEval(bank, rows[r], conditions, pattern);
        eval->forEachFlip(static_cast<double>(hammers),
                          [&](const dram::CellLocation &loc) {
                              flips[r].push_back(loc);
                          });
    });
    for (const auto &row_flips : flips)
        for (const auto &loc : row_flips)
            ++result.counts[loc.chip][loc.column];
    return result;
}

double
ColumnVariation::designConsistentFraction(double eps) const
{
    std::size_t hit = 0, total = 0;
    for (std::size_t i = 0; i < cvExcessAcrossChips.size(); ++i) {
        if (relativeVulnerability[i] <= 0.0)
            continue;
        ++total;
        if (cvExcessAcrossChips[i] < eps)
            ++hit;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(hit) /
                            static_cast<double>(total);
}

double
ColumnVariation::processDominatedFraction(double threshold) const
{
    std::size_t hit = 0, total = 0;
    for (std::size_t i = 0; i < cvExcessAcrossChips.size(); ++i) {
        if (relativeVulnerability[i] <= 0.0)
            continue;
        ++total;
        if (cvExcessAcrossChips[i] >= threshold)
            ++hit;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(hit) /
                            static_cast<double>(total);
}

ColumnVariation
analyzeColumnVariation(const ColumnFlipCounts &counts)
{
    RHS_ASSERT(!counts.counts.empty());
    const std::size_t chips = counts.counts.size();
    const std::size_t columns = counts.counts.front().size();

    // Normalize to the maximum column BER in the module (§7.2).
    std::uint64_t max_count = 0;
    for (const auto &chip : counts.counts)
        for (auto c : chip)
            max_count = std::max(max_count, c);

    ColumnVariation variation;
    variation.relativeVulnerability.resize(columns, 0.0);
    variation.cvAcrossChips.resize(columns, 0.0);
    variation.cvExcessAcrossChips.resize(columns, 0.0);
    if (max_count == 0)
        return variation;

    for (std::size_t col = 0; col < columns; ++col) {
        std::vector<double> raw;
        raw.reserve(chips);
        for (std::size_t chip = 0; chip < chips; ++chip)
            raw.push_back(
                static_cast<double>(counts.counts[chip][col]));

        const double mean_count = stats::mean(raw);
        variation.relativeVulnerability[col] =
            mean_count / static_cast<double>(max_count);
        if (mean_count > 0.0) {
            const double sd = stats::stddev(raw);
            // The paper saturates the CV axis at 1.0 (footnote 9).
            variation.cvAcrossChips[col] =
                std::min(sd / mean_count, 1.0);
            // Poisson sampling contributes a variance floor equal to
            // the mean; subtract it to expose the cross-chip rate
            // variation the paper's 24K-row counts resolve directly.
            const double excess_var =
                std::max(0.0, sd * sd - mean_count);
            variation.cvExcessAcrossChips[col] =
                std::min(std::sqrt(excess_var) / mean_count, 1.0);
        }
    }
    return variation;
}

std::vector<SubarrayStats>
subarraySurvey(const Tester &tester, unsigned bank,
               unsigned subarray_count, unsigned rows_per_subarray,
               const rhmodel::DataPattern &pattern)
{
    OBS_SPAN("sweep.subarrays");
    const auto &geometry = tester.module().module().geometry();
    RHS_ASSERT(subarray_count > 0 &&
               subarray_count <= geometry.subarraysPerBank);
    RHS_ASSERT(rows_per_subarray > 0 &&
               rows_per_subarray <= geometry.rowsPerSubarray);

    const auto conditions = spatialConditions();
    std::vector<SubarrayStats> result;
    const unsigned stride = geometry.subarraysPerBank / subarray_count;
    const unsigned row_stride =
        geometry.rowsPerSubarray / rows_per_subarray;

    // Flatten the (subarray, row) grid so small subarray counts still
    // fill every job; each slot is an independent HCfirst search.
    // kNotVulnerable doubles as the sentinel for rows skipped at the
    // bank edge — the serial loop never measured those either.
    const std::size_t total =
        std::size_t{subarray_count} * rows_per_subarray;
    std::vector<std::uint64_t> hc_grid(total, kNotVulnerable);
    util::parallelFor(0, total, [&](std::size_t i) {
        const unsigned s = static_cast<unsigned>(i / rows_per_subarray);
        const unsigned r = static_cast<unsigned>(i % rows_per_subarray);
        const unsigned base = s * stride * geometry.rowsPerSubarray;
        const unsigned row = base + r * row_stride;
        if (row < 2 || row + 2 >= geometry.rowsPerBank())
            return;
        hc_grid[i] = tester.hcFirstMin(bank, row, conditions, pattern);
    });

    for (unsigned s = 0; s < subarray_count; ++s) {
        SubarrayStats stats_entry;
        stats_entry.subarray = s * stride;
        for (unsigned r = 0; r < rows_per_subarray; ++r) {
            const auto hc =
                hc_grid[std::size_t{s} * rows_per_subarray + r];
            if (hc != kNotVulnerable)
                stats_entry.hcFirstValues.push_back(
                    static_cast<double>(hc));
        }
        if (stats_entry.hcFirstValues.empty())
            continue;
        stats_entry.averageHcFirst = stats::mean(stats_entry.hcFirstValues);
        stats_entry.minimumHcFirst =
            stats::minValue(stats_entry.hcFirstValues);
        result.push_back(std::move(stats_entry));
    }
    return result;
}

stats::LinearFit
fitSubarrayModel(const std::vector<SubarrayStats> &stats_list)
{
    std::vector<double> xs, ys;
    xs.reserve(stats_list.size());
    ys.reserve(stats_list.size());
    for (const auto &s : stats_list) {
        xs.push_back(s.averageHcFirst);
        ys.push_back(s.minimumHcFirst);
    }
    return stats::linearFit(xs, ys);
}

} // namespace rhs::core
